#include "ivr/retrieval/engine.h"

#include <algorithm>
#include <utility>

#include "ivr/cache/result_cache.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/logging.h"
#include "ivr/core/thread_pool.h"
#include "ivr/index/score_accumulator.h"
#include "ivr/obs/trace.h"
#include "ivr/retrieval/fusion.h"

namespace ivr {
namespace {

// ---------------------------------------------------------------------------
// Cache-key fingerprints.
//
// Keys embed every input that determines a ranking as raw bytes — doubles
// included — and the cache compares keys byte-for-byte, so a hit can only
// return the exact list the same inputs produced: no hashing, no rounding,
// no collision can break the bit-identical-serving guarantee. Keys live
// only inside one process (never persisted), so native endianness is fine.
//
// Canonicalisation: analysed text terms are sorted lexicographically —
// the searcher processes terms in lexicographic order regardless of the
// query map's iteration order, so two orderings of the same terms score
// identically and may share an entry. Visual-example order and concept-id
// order are preserved: they set the floating-point accumulation order in
// fusion, where reordering could change low bits.

void AppendRaw(std::string* key, const void* data, size_t n) {
  key->append(static_cast<const char*>(data), n);
}

void AppendU32(std::string* key, uint32_t v) { AppendRaw(key, &v, sizeof v); }

void AppendU64(std::string* key, uint64_t v) { AppendRaw(key, &v, sizeof v); }

void AppendDouble(std::string* key, double v) {
  AppendRaw(key, &v, sizeof v);
}

void AppendLengthPrefixed(std::string* key, const std::string& s) {
  AppendU32(key, static_cast<uint32_t>(s.size()));
  key->append(s);
}

void AppendTermQuery(std::string* key, const TermQuery& query) {
  std::vector<const std::string*> terms;
  terms.reserve(query.weights.size());
  for (const auto& entry : query.weights) {
    terms.push_back(&entry.first);
  }
  std::sort(terms.begin(), terms.end(),
            [](const std::string* a, const std::string* b) {
              return *a < *b;
            });
  AppendU32(key, static_cast<uint32_t>(terms.size()));
  for (const std::string* term : terms) {
    AppendLengthPrefixed(key, *term);
    AppendDouble(key, query.weights.at(*term));
    AppendU32(key, query.QueryTf(*term));
  }
}

void AppendHistogram(std::string* key, const ColorHistogram& example) {
  const std::vector<double>& bins = example.bins();
  AppendU32(key, static_cast<uint32_t>(bins.size()));
  AppendRaw(key, bins.data(), bins.size() * sizeof(double));
}

std::string TermsKey(const TermQuery& query, size_t k,
                     const std::string& scorer) {
  std::string key("T1|");
  AppendLengthPrefixed(&key, scorer);
  AppendU64(&key, k);
  AppendTermQuery(&key, query);
  return key;
}

std::string VisualKey(const ColorHistogram& example, size_t k,
                      VisualSimilarity similarity) {
  std::string key("V1|");
  AppendU32(&key, static_cast<uint32_t>(similarity));
  AppendU64(&key, k);
  AppendHistogram(&key, example);
  return key;
}

std::string ConceptsKey(const std::vector<ConceptId>& concepts, size_t k,
                        uint64_t detector_seed) {
  std::string key("C1|");
  AppendU64(&key, detector_seed);
  AppendU64(&key, k);
  AppendU32(&key, static_cast<uint32_t>(concepts.size()));
  for (const ConceptId id : concepts) {
    AppendU32(&key, id);
  }
  return key;
}

std::string FusedKey(const Query& query, const TermQuery& terms, size_t k,
                     const EngineOptions& options) {
  std::string key("F1|");
  AppendLengthPrefixed(&key, options.scorer);
  AppendDouble(&key, options.text_weight);
  AppendDouble(&key, options.visual_weight);
  AppendDouble(&key, options.concept_weight);
  AppendU32(&key, static_cast<uint32_t>(options.visual_similarity));
  AppendU64(&key, options.detector_seed);
  AppendU64(&key, options.candidate_pool);
  AppendU64(&key, k);
  AppendTermQuery(&key, terms);
  AppendU32(&key, static_cast<uint32_t>(query.examples.size()));
  for (const ColorHistogram& example : query.examples) {
    AppendHistogram(&key, example);
  }
  AppendU32(&key, static_cast<uint32_t>(query.concepts.size()));
  for (const ConceptId id : query.concepts) {
    AppendU32(&key, id);
  }
  return key;
}

}  // namespace

RetrievalEngine::RetrievalEngine(EngineOptions options,
                                 std::unique_ptr<Scorer> scorer)
    : options_(std::move(options)), scorer_(std::move(scorer)) {
  obs::Registry& registry = obs::Registry::Global();
  metrics_.queries = registry.GetCounter("engine.queries");
  metrics_.degraded_queries = registry.GetCounter("engine.degraded_queries");
  metrics_.text_faults = registry.GetCounter("engine.text_faults");
  metrics_.visual_faults = registry.GetCounter("engine.visual_faults");
  metrics_.concept_faults = registry.GetCounter("engine.concept_faults");
  metrics_.concepts_dropped = registry.GetCounter("engine.concepts_dropped");
  metrics_.search_us = registry.GetHistogram("engine.search_us");
  metrics_.text_us = registry.GetHistogram("engine.text_us");
  metrics_.visual_us = registry.GetHistogram("engine.visual_us");
  metrics_.concept_us = registry.GetHistogram("engine.concept_us");
}

namespace {

Status ValidateOptions(const EngineOptions& options) {
  if (options.text_weight < 0.0 || options.visual_weight < 0.0 ||
      options.text_weight + options.visual_weight <= 0.0) {
    return Status::InvalidArgument("fusion weights must be non-negative "
                                   "and not both zero");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<RetrievalEngine>> RetrievalEngine::Build(
    const VideoCollection& collection, EngineOptions options) {
  std::unique_ptr<Scorer> scorer = MakeScorer(options.scorer);
  if (scorer == nullptr) {
    return Status::InvalidArgument("unknown scorer: " + options.scorer);
  }
  IVR_RETURN_IF_ERROR(ValidateOptions(options));
  auto engine = std::unique_ptr<RetrievalEngine>(
      new RetrievalEngine(std::move(options), std::move(scorer)));
  // Non-owning alias: the caller guarantees the collection outlives the
  // engine (the documented single-shard contract).
  std::shared_ptr<const VideoCollection> slice(
      std::shared_ptr<const VideoCollection>(), &collection);
  IVR_ASSIGN_OR_RETURN(
      std::shared_ptr<const SubIndex> sub,
      SubIndex::Build(std::move(slice), engine->options_,
                      /*shot_key_offset=*/0));
  IVR_RETURN_IF_ERROR(engine->AdoptShards({std::move(sub)}));
  return engine;
}

Result<std::unique_ptr<RetrievalEngine>> RetrievalEngine::BuildSegmented(
    std::vector<std::shared_ptr<const SubIndex>> shards,
    EngineOptions options) {
  std::unique_ptr<Scorer> scorer = MakeScorer(options.scorer);
  if (scorer == nullptr) {
    return Status::InvalidArgument("unknown scorer: " + options.scorer);
  }
  IVR_RETURN_IF_ERROR(ValidateOptions(options));
  auto engine = std::unique_ptr<RetrievalEngine>(
      new RetrievalEngine(std::move(options), std::move(scorer)));
  IVR_RETURN_IF_ERROR(engine->AdoptShards(std::move(shards)));
  return engine;
}

Status RetrievalEngine::AdoptShards(
    std::vector<std::shared_ptr<const SubIndex>> shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("engine needs at least one shard");
  }
  shards_ = std::move(shards);
  index_segments_.clear();
  index_segments_.reserve(shards_.size());
  num_shots_ = 0;
  concepts_available_ = options_.use_concepts;
  for (const std::shared_ptr<const SubIndex>& shard : shards_) {
    if (shard == nullptr) {
      return Status::InvalidArgument("null shard");
    }
    index_segments_.push_back(
        IndexSegment{&shard->index(), static_cast<DocId>(num_shots_)});
    num_shots_ += shard->num_shots();
    if (shard->concepts() == nullptr) concepts_available_ = false;
  }
  return Status::OK();
}

size_t RetrievalEngine::ShardOf(ShotId shot) const {
  if (shot >= num_shots_) return shards_.size();
  // Shards are few (segments compact under the merge policy); a linear
  // scan from the back beats binary search at these sizes.
  size_t s = shards_.size();
  while (s > 0 && index_segments_[s - 1].doc_offset > shot) --s;
  return s - 1;
}

const Shot* RetrievalEngine::FindShot(ShotId shot) const {
  const size_t s = ShardOf(shot);
  if (s >= shards_.size()) return nullptr;
  const Result<const Shot*> found = shards_[s]->collection().shot(
      shot - index_segments_[s].doc_offset);
  return found.ok() ? *found : nullptr;
}

ResultList RetrievalEngine::Search(const Query& query, size_t k,
                                   SearchDiagnostics* diagnostics) const {
  obs::ScopedSpan span("engine.search");
  const obs::Stopwatch total;
  metrics_.queries->Inc();
  FaultInjector& faults = FaultInjector::Global();
  const bool chaos = faults.enabled();
  // Parse once: the cache fingerprint and the text modality share it.
  TermQuery terms;
  if (query.HasText()) terms = ParseText(query.text);
  ResultCache* const cache = cache_.get();
  const bool cacheable =
      cache != nullptr &&
      (query.HasText() || query.HasExamples() || query.HasConcepts());
  std::string cache_key;
  uint64_t cache_generation = 0;
  if (cacheable) {
    cache_key = EpochKey(FusedKey(query, terms, k, options_));
    cache_generation = cache->generation();
    ResultList cached;
    if (cache->Lookup(cache_key, &cached)) {
      span.Annotate("cache", "hit");
      metrics_.search_us->Record(total.ElapsedUs());
      return cached;
    }
  }
  std::vector<ResultList> lists;
  std::vector<double> weights;
  bool degraded = false;
  if (query.HasText()) {
    // "engine.text" stands in for any fault on the posting-read path:
    // the modality is served empty-handed rather than crashing the query.
    if (chaos && faults.ShouldFail("engine.text")) {
      text_faults_.fetch_add(1, std::memory_order_relaxed);
      metrics_.text_faults->Inc();
      if (diagnostics != nullptr) diagnostics->text_faulted = true;
      degraded = true;
    } else {
      const obs::Stopwatch modality;
      lists.push_back(SearchTerms(terms, options_.candidate_pool));
      weights.push_back(options_.text_weight);
      metrics_.text_us->Record(modality.ElapsedUs());
    }
  }
  if (query.HasExamples()) {
    if (chaos && faults.ShouldFail("engine.visual")) {
      visual_faults_.fetch_add(1, std::memory_order_relaxed);
      metrics_.visual_faults->Inc();
      if (diagnostics != nullptr) diagnostics->visual_faulted = true;
      degraded = true;
    } else {
      const obs::Stopwatch modality;
      // Average the evidence over all examples.
      std::vector<ResultList> visual;
      visual.reserve(query.examples.size());
      for (const ColorHistogram& example : query.examples) {
        visual.push_back(SearchVisual(example, options_.candidate_pool));
      }
      lists.push_back(CombSum(visual));
      weights.push_back(options_.visual_weight);
      metrics_.visual_us->Record(modality.ElapsedUs());
    }
  }
  if (query.HasConcepts()) {
    if (!concepts_available_) {
      // Degrade loudly, not silently: the query asked for a modality this
      // engine cannot serve, which biases any evaluation built on it.
      concepts_dropped_.fetch_add(1, std::memory_order_relaxed);
      metrics_.concepts_dropped->Inc();
      if (diagnostics != nullptr) diagnostics->concepts_dropped = true;
      degraded = true;
      if (!degradation_logged_.exchange(true, std::memory_order_relaxed)) {
        IVR_LOG(Warning)
            << "concept query on an engine without a concept index; "
               "concept evidence dropped from fusion (logged once; see "
               "num_degraded_queries())";
      }
    } else if (chaos && faults.ShouldFail("engine.concept")) {
      concept_faults_.fetch_add(1, std::memory_order_relaxed);
      metrics_.concept_faults->Inc();
      if (diagnostics != nullptr) diagnostics->concepts_faulted = true;
      degraded = true;
    } else {
      const obs::Stopwatch modality;
      lists.push_back(
          SearchConceptsMerged(query.concepts, options_.candidate_pool));
      weights.push_back(options_.concept_weight);
      metrics_.concept_us->Record(modality.ElapsedUs());
    }
  }
  if (degraded) {
    degraded_queries_.fetch_add(1, std::memory_order_relaxed);
    metrics_.degraded_queries->Inc();
    span.Annotate("degraded", "true");
  }
  ResultList fused;
  if (!lists.empty()) {
    fused = lists.size() == 1 ? std::move(lists.front())
                              : WeightedLinear(lists, weights);
    fused.Truncate(k);
  }
  // Degraded rankings are transient (a fault fired on this call); caching
  // one would keep serving it after the fault cleared.
  if (cacheable && !degraded) {
    cache->Insert(cache_key, fused, cache_generation);
  }
  metrics_.search_us->Record(total.ElapsedUs());
  return fused;
}

std::vector<ResultList> RetrievalEngine::BatchSearch(
    const std::vector<Query>& queries, size_t k, size_t threads) const {
  if (threads == 0) threads = ThreadPool::DefaultThreadCount();
  std::vector<ResultList> results(queries.size());
  // Workers write into their query's slot: output order — and, because
  // every per-query computation is independent and deterministic, every
  // score — matches the sequential path bit for bit.
  ParallelFor(queries.size(), threads,
              [this, &queries, k, &results](size_t i, size_t /*worker*/) {
                results[i] = Search(queries[i], k);
              });
  return results;
}

HealthReport RetrievalEngine::Health() const {
  HealthReport report;
  report.concept_index_available =
      !options_.use_concepts || concepts_available_;
  report.degraded_queries =
      degraded_queries_.load(std::memory_order_relaxed);
  report.text_faults = text_faults_.load(std::memory_order_relaxed);
  report.visual_faults = visual_faults_.load(std::memory_order_relaxed);
  report.concept_faults = concept_faults_.load(std::memory_order_relaxed);
  report.concepts_dropped =
      concepts_dropped_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) {
    report.cache_lookup_faults = cache_->Stats().lookup_faults;
  }
  report.faults_injected = FaultInjector::Global().num_injected();
  return report;
}

ResultList RetrievalEngine::SearchConceptsMerged(
    const std::vector<ConceptId>& concepts, size_t k) const {
  if (shards_.size() == 1) {
    return shards_.front()->concepts()->SearchAll(concepts, k);
  }
  // Per-shard top-k under the same strict total order (mean confidence
  // desc, global ShotId asc), merged and re-truncated: per-shot scores
  // depend only on shot content and the global detection key, so the
  // merged list is bit-identical to a monolithic concept index's.
  std::vector<RankedShot> items;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const ResultList local = shards_[s]->concepts()->SearchAll(concepts, k);
    const ShotId offset = static_cast<ShotId>(index_segments_[s].doc_offset);
    for (size_t i = 0; i < local.size(); ++i) {
      const RankedShot& entry = local.at(i);
      items.push_back(RankedShot{entry.shot + offset, entry.score});
    }
  }
  ResultList out(std::move(items));
  out.Truncate(k);
  return out;
}

Result<ResultList> RetrievalEngine::SearchConcepts(
    const std::vector<ConceptId>& concepts, size_t k) const {
  if (!concepts_available_) {
    return Status::FailedPrecondition(
        "engine was built without use_concepts");
  }
  ResultCache* const cache = cache_.get();
  std::string key;
  uint64_t generation = 0;
  if (cache != nullptr && !concepts.empty()) {
    key = EpochKey(ConceptsKey(concepts, k, options_.detector_seed));
    generation = cache->generation();
    ResultList cached;
    if (cache->Lookup(key, &cached)) return cached;
  }
  ResultList out = SearchConceptsMerged(concepts, k);
  if (cache != nullptr && !concepts.empty()) {
    cache->Insert(key, out, generation);
  }
  return out;
}

ResultList RetrievalEngine::SearchTerms(const TermQuery& query,
                                        size_t k) const {
  ResultCache* const cache = cache_.get();
  std::string key;
  uint64_t generation = 0;
  if (cache != nullptr && !query.empty()) {
    key = EpochKey(TermsKey(query, k, options_.scorer));
    generation = cache->generation();
    ResultList cached;
    if (cache->Lookup(key, &cached)) return cached;
  }
  // One flat accumulator per thread, reused across queries: steady-state
  // text search allocates nothing and stays safe under BatchSearch and
  // parallel session sweeps.
  static thread_local ScoreAccumulator accum;
  const Searcher searcher(index_segments_, *scorer_);
  ResultList out;
  for (const SearchHit& hit : searcher.Search(query, k, &accum)) {
    out.Add(static_cast<ShotId>(hit.doc), hit.score);
  }
  if (cache != nullptr && !query.empty()) {
    cache->Insert(key, out, generation);
  }
  return out;
}

ResultList RetrievalEngine::SearchVisual(const ColorHistogram& example,
                                         size_t k) const {
  ResultCache* const cache = cache_.get();
  std::string key;
  uint64_t generation = 0;
  if (cache != nullptr) {
    key = EpochKey(VisualKey(example, k, options_.visual_similarity));
    generation = cache->generation();
    ResultList cached;
    if (cache->Lookup(key, &cached)) return cached;
  }
  ResultList out;
  if (shards_.size() == 1) {
    const VisualSearcher searcher(shards_.front()->keyframes(),
                                  options_.visual_similarity);
    for (const Neighbor& n : searcher.NearestNeighbors(example, k)) {
      out.Add(static_cast<ShotId>(n.index), n.score);
    }
  } else {
    // Per-shard top-k (similarity desc, global index asc — a strict total
    // order on content-only scores), merged and re-truncated: identical
    // to a monolithic scan over the concatenated keyframes.
    std::vector<RankedShot> items;
    for (size_t s = 0; s < shards_.size(); ++s) {
      const VisualSearcher searcher(shards_[s]->keyframes(),
                                    options_.visual_similarity);
      const ShotId offset =
          static_cast<ShotId>(index_segments_[s].doc_offset);
      for (const Neighbor& n : searcher.NearestNeighbors(example, k)) {
        items.push_back(
            RankedShot{static_cast<ShotId>(n.index) + offset, n.score});
      }
    }
    out = ResultList(std::move(items));
    out.Truncate(k);
  }
  if (cache != nullptr) {
    cache->Insert(key, out, generation);
  }
  return out;
}

std::string RetrievalEngine::EpochKey(std::string key) const {
  if (cache_key_epoch_ == 0) return key;
  return "G" + std::to_string(cache_key_epoch_) + "|" + key;
}

TermQuery RetrievalEngine::ParseText(const std::string& text) const {
  const Searcher searcher(index_segments_, *scorer_);
  return searcher.ParseQuery(text);
}

double RetrievalEngine::ScoreShot(const TermQuery& query, ShotId shot) const {
  const Searcher searcher(index_segments_, *scorer_);
  return searcher.ScoreDocument(query, static_cast<DocId>(shot));
}

std::string RetrievalEngine::IndexedText(ShotId shot) const {
  const size_t s = ShardOf(shot);
  if (s >= shards_.size()) return std::string();
  Result<const Document*> doc = shards_[s]->docs().Get(
      static_cast<DocId>(shot - index_segments_[s].doc_offset));
  if (!doc.ok()) return std::string();
  std::string text = (*doc)->text;
  auto it = (*doc)->fields.find("headline");
  if (it != (*doc)->fields.end()) {
    text += " ";
    text += it->second;
  }
  return text;
}

}  // namespace ivr
