#include "ivr/retrieval/engine.h"

#include <algorithm>
#include <utility>

#include "ivr/cache/result_cache.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/logging.h"
#include "ivr/core/thread_pool.h"
#include "ivr/index/score_accumulator.h"
#include "ivr/obs/trace.h"
#include "ivr/retrieval/fusion.h"

namespace ivr {
namespace {

// ---------------------------------------------------------------------------
// Cache-key fingerprints.
//
// Keys embed every input that determines a ranking as raw bytes — doubles
// included — and the cache compares keys byte-for-byte, so a hit can only
// return the exact list the same inputs produced: no hashing, no rounding,
// no collision can break the bit-identical-serving guarantee. Keys live
// only inside one process (never persisted), so native endianness is fine.
//
// Canonicalisation: analysed text terms are sorted lexicographically —
// the searcher processes terms in lexicographic order regardless of the
// query map's iteration order, so two orderings of the same terms score
// identically and may share an entry. Visual-example order and concept-id
// order are preserved: they set the floating-point accumulation order in
// fusion, where reordering could change low bits.

void AppendRaw(std::string* key, const void* data, size_t n) {
  key->append(static_cast<const char*>(data), n);
}

void AppendU32(std::string* key, uint32_t v) { AppendRaw(key, &v, sizeof v); }

void AppendU64(std::string* key, uint64_t v) { AppendRaw(key, &v, sizeof v); }

void AppendDouble(std::string* key, double v) {
  AppendRaw(key, &v, sizeof v);
}

void AppendLengthPrefixed(std::string* key, const std::string& s) {
  AppendU32(key, static_cast<uint32_t>(s.size()));
  key->append(s);
}

void AppendTermQuery(std::string* key, const TermQuery& query) {
  std::vector<const std::string*> terms;
  terms.reserve(query.weights.size());
  for (const auto& entry : query.weights) {
    terms.push_back(&entry.first);
  }
  std::sort(terms.begin(), terms.end(),
            [](const std::string* a, const std::string* b) {
              return *a < *b;
            });
  AppendU32(key, static_cast<uint32_t>(terms.size()));
  for (const std::string* term : terms) {
    AppendLengthPrefixed(key, *term);
    AppendDouble(key, query.weights.at(*term));
    AppendU32(key, query.QueryTf(*term));
  }
}

void AppendHistogram(std::string* key, const ColorHistogram& example) {
  const std::vector<double>& bins = example.bins();
  AppendU32(key, static_cast<uint32_t>(bins.size()));
  AppendRaw(key, bins.data(), bins.size() * sizeof(double));
}

std::string TermsKey(const TermQuery& query, size_t k,
                     const std::string& scorer) {
  std::string key("T1|");
  AppendLengthPrefixed(&key, scorer);
  AppendU64(&key, k);
  AppendTermQuery(&key, query);
  return key;
}

std::string VisualKey(const ColorHistogram& example, size_t k,
                      VisualSimilarity similarity) {
  std::string key("V1|");
  AppendU32(&key, static_cast<uint32_t>(similarity));
  AppendU64(&key, k);
  AppendHistogram(&key, example);
  return key;
}

std::string ConceptsKey(const std::vector<ConceptId>& concepts, size_t k,
                        uint64_t detector_seed) {
  std::string key("C1|");
  AppendU64(&key, detector_seed);
  AppendU64(&key, k);
  AppendU32(&key, static_cast<uint32_t>(concepts.size()));
  for (const ConceptId id : concepts) {
    AppendU32(&key, id);
  }
  return key;
}

std::string FusedKey(const Query& query, const TermQuery& terms, size_t k,
                     const EngineOptions& options) {
  std::string key("F1|");
  AppendLengthPrefixed(&key, options.scorer);
  AppendDouble(&key, options.text_weight);
  AppendDouble(&key, options.visual_weight);
  AppendDouble(&key, options.concept_weight);
  AppendU32(&key, static_cast<uint32_t>(options.visual_similarity));
  AppendU64(&key, options.detector_seed);
  AppendU64(&key, options.candidate_pool);
  AppendU64(&key, k);
  AppendTermQuery(&key, terms);
  AppendU32(&key, static_cast<uint32_t>(query.examples.size()));
  for (const ColorHistogram& example : query.examples) {
    AppendHistogram(&key, example);
  }
  AppendU32(&key, static_cast<uint32_t>(query.concepts.size()));
  for (const ConceptId id : query.concepts) {
    AppendU32(&key, id);
  }
  return key;
}

}  // namespace

RetrievalEngine::RetrievalEngine(const VideoCollection& collection,
                                 EngineOptions options,
                                 std::unique_ptr<Scorer> scorer)
    : collection_(&collection),
      options_(std::move(options)),
      scorer_(std::move(scorer)) {
  obs::Registry& registry = obs::Registry::Global();
  metrics_.queries = registry.GetCounter("engine.queries");
  metrics_.degraded_queries = registry.GetCounter("engine.degraded_queries");
  metrics_.text_faults = registry.GetCounter("engine.text_faults");
  metrics_.visual_faults = registry.GetCounter("engine.visual_faults");
  metrics_.concept_faults = registry.GetCounter("engine.concept_faults");
  metrics_.concepts_dropped = registry.GetCounter("engine.concepts_dropped");
  metrics_.search_us = registry.GetHistogram("engine.search_us");
  metrics_.text_us = registry.GetHistogram("engine.text_us");
  metrics_.visual_us = registry.GetHistogram("engine.visual_us");
  metrics_.concept_us = registry.GetHistogram("engine.concept_us");
}

Result<std::unique_ptr<RetrievalEngine>> RetrievalEngine::Build(
    const VideoCollection& collection, EngineOptions options) {
  std::unique_ptr<Scorer> scorer = MakeScorer(options.scorer);
  if (scorer == nullptr) {
    return Status::InvalidArgument("unknown scorer: " + options.scorer);
  }
  if (options.text_weight < 0.0 || options.visual_weight < 0.0 ||
      options.text_weight + options.visual_weight <= 0.0) {
    return Status::InvalidArgument("fusion weights must be non-negative "
                                   "and not both zero");
  }
  auto engine = std::unique_ptr<RetrievalEngine>(
      new RetrievalEngine(collection, std::move(options), std::move(scorer)));
  IVR_RETURN_IF_ERROR(engine->BuildIndex());
  if (engine->options_.use_concepts) {
    // Graceful degradation: a faulted detector bank (site "concept.build")
    // must not take the whole engine down — text and visual retrieval are
    // still worth serving, and Health() reports the missing modality.
    if (FaultInjector::Global().ShouldFail("concept.build")) {
      IVR_LOG(Warning) << "concept index construction faulted; engine "
                          "serves without the concept modality";
    } else {
      const SimulatedConceptDetector detector(
          collection.num_topics(), engine->options_.detector,
          engine->options_.detector_seed);
      engine->concepts_ =
          std::make_unique<ConceptIndex>(collection, detector);
    }
  }
  return engine;
}

Status RetrievalEngine::BuildIndex() {
  keyframes_.reserve(collection_->num_shots());
  for (const Shot& shot : collection_->shots()) {
    Document doc;
    doc.external_id = shot.external_id;
    doc.text = shot.asr_transcript;
    if (options_.index_headlines) {
      IVR_ASSIGN_OR_RETURN(const NewsStory* story,
                           collection_->story(shot.story));
      doc.fields["headline"] = story->headline;
    }
    IVR_ASSIGN_OR_RETURN(DocId id, docs_.Add(std::move(doc)));
    if (id != shot.id) {
      return Status::Internal("DocId / ShotId misalignment");
    }
    // Index transcript and headline together.
    std::string text = shot.asr_transcript;
    if (options_.index_headlines) {
      IVR_ASSIGN_OR_RETURN(const Document* stored, docs_.Get(id));
      text += " ";
      text += stored->fields.at("headline");
    }
    IVR_RETURN_IF_ERROR(index_.IndexText(id, text));
    keyframes_.push_back(shot.keyframe);
  }
  return Status::OK();
}

ResultList RetrievalEngine::Search(const Query& query, size_t k,
                                   SearchDiagnostics* diagnostics) const {
  obs::ScopedSpan span("engine.search");
  const obs::Stopwatch total;
  metrics_.queries->Inc();
  FaultInjector& faults = FaultInjector::Global();
  const bool chaos = faults.enabled();
  // Parse once: the cache fingerprint and the text modality share it.
  TermQuery terms;
  if (query.HasText()) terms = ParseText(query.text);
  ResultCache* const cache = cache_.get();
  const bool cacheable =
      cache != nullptr &&
      (query.HasText() || query.HasExamples() || query.HasConcepts());
  std::string cache_key;
  uint64_t cache_generation = 0;
  if (cacheable) {
    cache_key = EpochKey(FusedKey(query, terms, k, options_));
    cache_generation = cache->generation();
    ResultList cached;
    if (cache->Lookup(cache_key, &cached)) {
      span.Annotate("cache", "hit");
      metrics_.search_us->Record(total.ElapsedUs());
      return cached;
    }
  }
  std::vector<ResultList> lists;
  std::vector<double> weights;
  bool degraded = false;
  if (query.HasText()) {
    // "engine.text" stands in for any fault on the posting-read path:
    // the modality is served empty-handed rather than crashing the query.
    if (chaos && faults.ShouldFail("engine.text")) {
      text_faults_.fetch_add(1, std::memory_order_relaxed);
      metrics_.text_faults->Inc();
      if (diagnostics != nullptr) diagnostics->text_faulted = true;
      degraded = true;
    } else {
      const obs::Stopwatch modality;
      lists.push_back(SearchTerms(terms, options_.candidate_pool));
      weights.push_back(options_.text_weight);
      metrics_.text_us->Record(modality.ElapsedUs());
    }
  }
  if (query.HasExamples()) {
    if (chaos && faults.ShouldFail("engine.visual")) {
      visual_faults_.fetch_add(1, std::memory_order_relaxed);
      metrics_.visual_faults->Inc();
      if (diagnostics != nullptr) diagnostics->visual_faulted = true;
      degraded = true;
    } else {
      const obs::Stopwatch modality;
      // Average the evidence over all examples.
      std::vector<ResultList> visual;
      visual.reserve(query.examples.size());
      for (const ColorHistogram& example : query.examples) {
        visual.push_back(SearchVisual(example, options_.candidate_pool));
      }
      lists.push_back(CombSum(visual));
      weights.push_back(options_.visual_weight);
      metrics_.visual_us->Record(modality.ElapsedUs());
    }
  }
  if (query.HasConcepts()) {
    if (concepts_ == nullptr) {
      // Degrade loudly, not silently: the query asked for a modality this
      // engine cannot serve, which biases any evaluation built on it.
      concepts_dropped_.fetch_add(1, std::memory_order_relaxed);
      metrics_.concepts_dropped->Inc();
      if (diagnostics != nullptr) diagnostics->concepts_dropped = true;
      degraded = true;
      if (!degradation_logged_.exchange(true, std::memory_order_relaxed)) {
        IVR_LOG(Warning)
            << "concept query on an engine without a concept index; "
               "concept evidence dropped from fusion (logged once; see "
               "num_degraded_queries())";
      }
    } else if (chaos && faults.ShouldFail("engine.concept")) {
      concept_faults_.fetch_add(1, std::memory_order_relaxed);
      metrics_.concept_faults->Inc();
      if (diagnostics != nullptr) diagnostics->concepts_faulted = true;
      degraded = true;
    } else {
      const obs::Stopwatch modality;
      lists.push_back(concepts_->SearchAll(query.concepts,
                                           options_.candidate_pool));
      weights.push_back(options_.concept_weight);
      metrics_.concept_us->Record(modality.ElapsedUs());
    }
  }
  if (degraded) {
    degraded_queries_.fetch_add(1, std::memory_order_relaxed);
    metrics_.degraded_queries->Inc();
    span.Annotate("degraded", "true");
  }
  ResultList fused;
  if (!lists.empty()) {
    fused = lists.size() == 1 ? std::move(lists.front())
                              : WeightedLinear(lists, weights);
    fused.Truncate(k);
  }
  // Degraded rankings are transient (a fault fired on this call); caching
  // one would keep serving it after the fault cleared.
  if (cacheable && !degraded) {
    cache->Insert(cache_key, fused, cache_generation);
  }
  metrics_.search_us->Record(total.ElapsedUs());
  return fused;
}

std::vector<ResultList> RetrievalEngine::BatchSearch(
    const std::vector<Query>& queries, size_t k, size_t threads) const {
  if (threads == 0) threads = ThreadPool::DefaultThreadCount();
  std::vector<ResultList> results(queries.size());
  // Workers write into their query's slot: output order — and, because
  // every per-query computation is independent and deterministic, every
  // score — matches the sequential path bit for bit.
  ParallelFor(queries.size(), threads,
              [this, &queries, k, &results](size_t i, size_t /*worker*/) {
                results[i] = Search(queries[i], k);
              });
  return results;
}

HealthReport RetrievalEngine::Health() const {
  HealthReport report;
  report.concept_index_available =
      !options_.use_concepts || concepts_ != nullptr;
  report.degraded_queries =
      degraded_queries_.load(std::memory_order_relaxed);
  report.text_faults = text_faults_.load(std::memory_order_relaxed);
  report.visual_faults = visual_faults_.load(std::memory_order_relaxed);
  report.concept_faults = concept_faults_.load(std::memory_order_relaxed);
  report.concepts_dropped =
      concepts_dropped_.load(std::memory_order_relaxed);
  if (cache_ != nullptr) {
    report.cache_lookup_faults = cache_->Stats().lookup_faults;
  }
  report.faults_injected = FaultInjector::Global().num_injected();
  return report;
}

Result<ResultList> RetrievalEngine::SearchConcepts(
    const std::vector<ConceptId>& concepts, size_t k) const {
  if (concepts_ == nullptr) {
    return Status::FailedPrecondition(
        "engine was built without use_concepts");
  }
  ResultCache* const cache = cache_.get();
  std::string key;
  uint64_t generation = 0;
  if (cache != nullptr && !concepts.empty()) {
    key = EpochKey(ConceptsKey(concepts, k, options_.detector_seed));
    generation = cache->generation();
    ResultList cached;
    if (cache->Lookup(key, &cached)) return cached;
  }
  ResultList out = concepts_->SearchAll(concepts, k);
  if (cache != nullptr && !concepts.empty()) {
    cache->Insert(key, out, generation);
  }
  return out;
}

ResultList RetrievalEngine::SearchTerms(const TermQuery& query,
                                        size_t k) const {
  ResultCache* const cache = cache_.get();
  std::string key;
  uint64_t generation = 0;
  if (cache != nullptr && !query.empty()) {
    key = EpochKey(TermsKey(query, k, options_.scorer));
    generation = cache->generation();
    ResultList cached;
    if (cache->Lookup(key, &cached)) return cached;
  }
  // One flat accumulator per thread, reused across queries: steady-state
  // text search allocates nothing and stays safe under BatchSearch and
  // parallel session sweeps.
  static thread_local ScoreAccumulator accum;
  const Searcher searcher(index_, *scorer_);
  ResultList out;
  for (const SearchHit& hit : searcher.Search(query, k, &accum)) {
    out.Add(static_cast<ShotId>(hit.doc), hit.score);
  }
  if (cache != nullptr && !query.empty()) {
    cache->Insert(key, out, generation);
  }
  return out;
}

ResultList RetrievalEngine::SearchVisual(const ColorHistogram& example,
                                         size_t k) const {
  ResultCache* const cache = cache_.get();
  std::string key;
  uint64_t generation = 0;
  if (cache != nullptr) {
    key = EpochKey(VisualKey(example, k, options_.visual_similarity));
    generation = cache->generation();
    ResultList cached;
    if (cache->Lookup(key, &cached)) return cached;
  }
  const VisualSearcher searcher(keyframes_, options_.visual_similarity);
  ResultList out;
  for (const Neighbor& n : searcher.NearestNeighbors(example, k)) {
    out.Add(static_cast<ShotId>(n.index), n.score);
  }
  if (cache != nullptr) {
    cache->Insert(key, out, generation);
  }
  return out;
}

std::string RetrievalEngine::EpochKey(std::string key) const {
  if (cache_key_epoch_ == 0) return key;
  return "G" + std::to_string(cache_key_epoch_) + "|" + key;
}

TermQuery RetrievalEngine::ParseText(const std::string& text) const {
  const Searcher searcher(index_, *scorer_);
  return searcher.ParseQuery(text);
}

double RetrievalEngine::ScoreShot(const TermQuery& query, ShotId shot) const {
  const Searcher searcher(index_, *scorer_);
  return searcher.ScoreDocument(query, static_cast<DocId>(shot));
}

std::string RetrievalEngine::IndexedText(ShotId shot) const {
  Result<const Document*> doc = docs_.Get(static_cast<DocId>(shot));
  if (!doc.ok()) return std::string();
  std::string text = (*doc)->text;
  auto it = (*doc)->fields.find("headline");
  if (it != (*doc)->fields.end()) {
    text += " ";
    text += it->second;
  }
  return text;
}

}  // namespace ivr
