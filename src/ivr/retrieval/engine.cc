#include "ivr/retrieval/engine.h"

#include <utility>

#include "ivr/core/fault_injection.h"
#include "ivr/core/logging.h"
#include "ivr/core/thread_pool.h"
#include "ivr/index/score_accumulator.h"
#include "ivr/obs/trace.h"
#include "ivr/retrieval/fusion.h"

namespace ivr {

RetrievalEngine::RetrievalEngine(const VideoCollection& collection,
                                 EngineOptions options,
                                 std::unique_ptr<Scorer> scorer)
    : collection_(&collection),
      options_(std::move(options)),
      scorer_(std::move(scorer)) {
  obs::Registry& registry = obs::Registry::Global();
  metrics_.queries = registry.GetCounter("engine.queries");
  metrics_.degraded_queries = registry.GetCounter("engine.degraded_queries");
  metrics_.text_faults = registry.GetCounter("engine.text_faults");
  metrics_.visual_faults = registry.GetCounter("engine.visual_faults");
  metrics_.concept_faults = registry.GetCounter("engine.concept_faults");
  metrics_.concepts_dropped = registry.GetCounter("engine.concepts_dropped");
  metrics_.search_us = registry.GetHistogram("engine.search_us");
  metrics_.text_us = registry.GetHistogram("engine.text_us");
  metrics_.visual_us = registry.GetHistogram("engine.visual_us");
  metrics_.concept_us = registry.GetHistogram("engine.concept_us");
}

Result<std::unique_ptr<RetrievalEngine>> RetrievalEngine::Build(
    const VideoCollection& collection, EngineOptions options) {
  std::unique_ptr<Scorer> scorer = MakeScorer(options.scorer);
  if (scorer == nullptr) {
    return Status::InvalidArgument("unknown scorer: " + options.scorer);
  }
  if (options.text_weight < 0.0 || options.visual_weight < 0.0 ||
      options.text_weight + options.visual_weight <= 0.0) {
    return Status::InvalidArgument("fusion weights must be non-negative "
                                   "and not both zero");
  }
  auto engine = std::unique_ptr<RetrievalEngine>(
      new RetrievalEngine(collection, std::move(options), std::move(scorer)));
  IVR_RETURN_IF_ERROR(engine->BuildIndex());
  if (engine->options_.use_concepts) {
    // Graceful degradation: a faulted detector bank (site "concept.build")
    // must not take the whole engine down — text and visual retrieval are
    // still worth serving, and Health() reports the missing modality.
    if (FaultInjector::Global().ShouldFail("concept.build")) {
      IVR_LOG(Warning) << "concept index construction faulted; engine "
                          "serves without the concept modality";
    } else {
      const SimulatedConceptDetector detector(
          collection.num_topics(), engine->options_.detector,
          engine->options_.detector_seed);
      engine->concepts_ =
          std::make_unique<ConceptIndex>(collection, detector);
    }
  }
  return engine;
}

Status RetrievalEngine::BuildIndex() {
  keyframes_.reserve(collection_->num_shots());
  for (const Shot& shot : collection_->shots()) {
    Document doc;
    doc.external_id = shot.external_id;
    doc.text = shot.asr_transcript;
    if (options_.index_headlines) {
      IVR_ASSIGN_OR_RETURN(const NewsStory* story,
                           collection_->story(shot.story));
      doc.fields["headline"] = story->headline;
    }
    IVR_ASSIGN_OR_RETURN(DocId id, docs_.Add(std::move(doc)));
    if (id != shot.id) {
      return Status::Internal("DocId / ShotId misalignment");
    }
    // Index transcript and headline together.
    std::string text = shot.asr_transcript;
    if (options_.index_headlines) {
      IVR_ASSIGN_OR_RETURN(const Document* stored, docs_.Get(id));
      text += " ";
      text += stored->fields.at("headline");
    }
    IVR_RETURN_IF_ERROR(index_.IndexText(id, text));
    keyframes_.push_back(shot.keyframe);
  }
  return Status::OK();
}

ResultList RetrievalEngine::Search(const Query& query, size_t k,
                                   SearchDiagnostics* diagnostics) const {
  obs::ScopedSpan span("engine.search");
  const obs::Stopwatch total;
  metrics_.queries->Inc();
  FaultInjector& faults = FaultInjector::Global();
  const bool chaos = faults.enabled();
  std::vector<ResultList> lists;
  std::vector<double> weights;
  bool degraded = false;
  if (query.HasText()) {
    // "engine.text" stands in for any fault on the posting-read path:
    // the modality is served empty-handed rather than crashing the query.
    if (chaos && faults.ShouldFail("engine.text")) {
      text_faults_.fetch_add(1, std::memory_order_relaxed);
      metrics_.text_faults->Inc();
      if (diagnostics != nullptr) diagnostics->text_faulted = true;
      degraded = true;
    } else {
      const obs::Stopwatch modality;
      lists.push_back(SearchTerms(ParseText(query.text),
                                  options_.candidate_pool));
      weights.push_back(options_.text_weight);
      metrics_.text_us->Record(modality.ElapsedUs());
    }
  }
  if (query.HasExamples()) {
    if (chaos && faults.ShouldFail("engine.visual")) {
      visual_faults_.fetch_add(1, std::memory_order_relaxed);
      metrics_.visual_faults->Inc();
      if (diagnostics != nullptr) diagnostics->visual_faulted = true;
      degraded = true;
    } else {
      const obs::Stopwatch modality;
      // Average the evidence over all examples.
      std::vector<ResultList> visual;
      visual.reserve(query.examples.size());
      for (const ColorHistogram& example : query.examples) {
        visual.push_back(SearchVisual(example, options_.candidate_pool));
      }
      lists.push_back(CombSum(visual));
      weights.push_back(options_.visual_weight);
      metrics_.visual_us->Record(modality.ElapsedUs());
    }
  }
  if (query.HasConcepts()) {
    if (concepts_ == nullptr) {
      // Degrade loudly, not silently: the query asked for a modality this
      // engine cannot serve, which biases any evaluation built on it.
      concepts_dropped_.fetch_add(1, std::memory_order_relaxed);
      metrics_.concepts_dropped->Inc();
      if (diagnostics != nullptr) diagnostics->concepts_dropped = true;
      degraded = true;
      if (!degradation_logged_.exchange(true, std::memory_order_relaxed)) {
        IVR_LOG(Warning)
            << "concept query on an engine without a concept index; "
               "concept evidence dropped from fusion (logged once; see "
               "num_degraded_queries())";
      }
    } else if (chaos && faults.ShouldFail("engine.concept")) {
      concept_faults_.fetch_add(1, std::memory_order_relaxed);
      metrics_.concept_faults->Inc();
      if (diagnostics != nullptr) diagnostics->concepts_faulted = true;
      degraded = true;
    } else {
      const obs::Stopwatch modality;
      lists.push_back(concepts_->SearchAll(query.concepts,
                                           options_.candidate_pool));
      weights.push_back(options_.concept_weight);
      metrics_.concept_us->Record(modality.ElapsedUs());
    }
  }
  if (degraded) {
    degraded_queries_.fetch_add(1, std::memory_order_relaxed);
    metrics_.degraded_queries->Inc();
    span.Annotate("degraded", "true");
  }
  ResultList fused;
  if (!lists.empty()) {
    fused = lists.size() == 1 ? std::move(lists.front())
                              : WeightedLinear(lists, weights);
    fused.Truncate(k);
  }
  metrics_.search_us->Record(total.ElapsedUs());
  return fused;
}

std::vector<ResultList> RetrievalEngine::BatchSearch(
    const std::vector<Query>& queries, size_t k, size_t threads) const {
  if (threads == 0) threads = ThreadPool::DefaultThreadCount();
  std::vector<ResultList> results(queries.size());
  // Workers write into their query's slot: output order — and, because
  // every per-query computation is independent and deterministic, every
  // score — matches the sequential path bit for bit.
  ParallelFor(queries.size(), threads,
              [this, &queries, k, &results](size_t i, size_t /*worker*/) {
                results[i] = Search(queries[i], k);
              });
  return results;
}

HealthReport RetrievalEngine::Health() const {
  HealthReport report;
  report.concept_index_available =
      !options_.use_concepts || concepts_ != nullptr;
  report.degraded_queries =
      degraded_queries_.load(std::memory_order_relaxed);
  report.text_faults = text_faults_.load(std::memory_order_relaxed);
  report.visual_faults = visual_faults_.load(std::memory_order_relaxed);
  report.concept_faults = concept_faults_.load(std::memory_order_relaxed);
  report.concepts_dropped =
      concepts_dropped_.load(std::memory_order_relaxed);
  report.faults_injected = FaultInjector::Global().num_injected();
  return report;
}

Result<ResultList> RetrievalEngine::SearchConcepts(
    const std::vector<ConceptId>& concepts, size_t k) const {
  if (concepts_ == nullptr) {
    return Status::FailedPrecondition(
        "engine was built without use_concepts");
  }
  return concepts_->SearchAll(concepts, k);
}

ResultList RetrievalEngine::SearchTerms(const TermQuery& query,
                                        size_t k) const {
  // One flat accumulator per thread, reused across queries: steady-state
  // text search allocates nothing and stays safe under BatchSearch and
  // parallel session sweeps.
  static thread_local ScoreAccumulator accum;
  const Searcher searcher(index_, *scorer_);
  ResultList out;
  for (const SearchHit& hit : searcher.Search(query, k, &accum)) {
    out.Add(static_cast<ShotId>(hit.doc), hit.score);
  }
  return out;
}

ResultList RetrievalEngine::SearchVisual(const ColorHistogram& example,
                                         size_t k) const {
  const VisualSearcher searcher(keyframes_, options_.visual_similarity);
  ResultList out;
  for (const Neighbor& n : searcher.NearestNeighbors(example, k)) {
    out.Add(static_cast<ShotId>(n.index), n.score);
  }
  return out;
}

TermQuery RetrievalEngine::ParseText(const std::string& text) const {
  const Searcher searcher(index_, *scorer_);
  return searcher.ParseQuery(text);
}

double RetrievalEngine::ScoreShot(const TermQuery& query, ShotId shot) const {
  const Searcher searcher(index_, *scorer_);
  return searcher.ScoreDocument(query, static_cast<DocId>(shot));
}

std::string RetrievalEngine::IndexedText(ShotId shot) const {
  Result<const Document*> doc = docs_.Get(static_cast<DocId>(shot));
  if (!doc.ok()) return std::string();
  std::string text = (*doc)->text;
  auto it = (*doc)->fields.find("headline");
  if (it != (*doc)->fields.end()) {
    text += " ";
    text += it->second;
  }
  return text;
}

}  // namespace ivr
