#ifndef IVR_RETRIEVAL_ENGINE_OPTIONS_H_
#define IVR_RETRIEVAL_ENGINE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "ivr/features/concept_detector.h"
#include "ivr/features/similarity.h"

namespace ivr {

struct EngineOptions {
  /// "bm25" | "tfidf" | "lm".
  std::string scorer = "bm25";
  /// Fusion weights for text vs. visual evidence (normalised internally).
  double text_weight = 0.75;
  double visual_weight = 0.25;
  /// Similarity used for query-by-visual-example.
  VisualSimilarity visual_similarity =
      VisualSimilarity::kHistogramIntersection;
  /// Index story headlines together with shot transcripts.
  bool index_headlines = true;
  /// Build a concept index (simulated detector bank over the collection's
  /// topic space) and allow concept-bag queries.
  bool use_concepts = false;
  double concept_weight = 0.25;
  SimulatedConceptDetector::Options detector;
  uint64_t detector_seed = 7;
  /// Candidate pool size per modality before fusion.
  size_t candidate_pool = 1000;
};

}  // namespace ivr

#endif  // IVR_RETRIEVAL_ENGINE_OPTIONS_H_
