#include "ivr/retrieval/health.h"

#include "ivr/core/string_util.h"

namespace ivr {

std::string HealthReport::ToString() const {
  if (!degraded()) return "health: ok";
  std::string out = "health: degraded";
  if (!concept_index_available) out += " concept_index=unavailable";
  if (!profile_available) out += " profiles=unavailable";
  const auto add = [&out](const char* key, uint64_t v) {
    if (v > 0) {
      out += StrFormat(" %s=%llu", key,
                       static_cast<unsigned long long>(v));
    }
  };
  add("degraded_queries", degraded_queries);
  add("text_faults", text_faults);
  add("visual_faults", visual_faults);
  add("concept_faults", concept_faults);
  add("concepts_dropped", concepts_dropped);
  add("cache_lookup_faults", cache_lookup_faults);
  add("feedback_skipped", feedback_skipped);
  add("profile_reranks_skipped", profile_reranks_skipped);
  add("sessions_active", sessions_active);
  add("sessions_evicted", sessions_evicted);
  add("session_persist_failures", session_persist_failures);
  add("ingest_orphan_segments_dropped", ingest_orphan_segments_dropped);
  add("ingest_torn_segments_dropped", ingest_torn_segments_dropped);
  add("ingest_torn_manifest_chunks", ingest_torn_manifest_chunks);
  add("ingest_stale_temp_files_removed", ingest_stale_temp_files_removed);
  add("faults_injected", faults_injected);
  return out;
}

}  // namespace ivr
