#include "ivr/retrieval/fusion.h"

#include <atomic>
#include <unordered_map>

#include "ivr/core/logging.h"

namespace ivr {
namespace {

ResultList FromMap(const std::unordered_map<ShotId, double>& scores) {
  std::vector<RankedShot> items;
  items.reserve(scores.size());
  for (const auto& [shot, score] : scores) {
    items.push_back(RankedShot{shot, score});
  }
  return ResultList(std::move(items));
}

}  // namespace

ResultList MinMaxNormalize(const ResultList& list) {
  if (list.empty()) return ResultList();
  double lo = list.at(0).score;
  double hi = list.at(0).score;
  for (const RankedShot& r : list.items()) {
    lo = std::min(lo, r.score);
    hi = std::max(hi, r.score);
  }
  std::vector<RankedShot> items;
  items.reserve(list.size());
  const double range = hi - lo;
  if (range <= 0.0) {
    // A constant-score list carries no ranking evidence. Mapping it to
    // all-ones would hand a degenerate modality maximal weight in
    // CombSum/CombMnz/WeightedLinear and let it dominate fusion; map to
    // the neutral midpoint instead. Logged once per process — this fires
    // on every single-entry list, which is common and harmless.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      IVR_LOG(Warning) << "MinMaxNormalize: constant-score list ("
                       << list.size() << " entries, score " << lo
                       << "); normalising to neutral 0.5";
    }
  }
  for (const RankedShot& r : list.items()) {
    const double s = range > 0.0 ? (r.score - lo) / range : 0.5;
    items.push_back(RankedShot{r.shot, s});
  }
  return ResultList(std::move(items));
}

ResultList CombSum(const std::vector<ResultList>& lists) {
  std::unordered_map<ShotId, double> acc;
  for (const ResultList& list : lists) {
    const ResultList norm = MinMaxNormalize(list);
    for (const RankedShot& r : norm.items()) {
      acc[r.shot] += r.score;
    }
  }
  return FromMap(acc);
}

ResultList CombMnz(const std::vector<ResultList>& lists) {
  std::unordered_map<ShotId, double> sum;
  std::unordered_map<ShotId, int> hits;
  for (const ResultList& list : lists) {
    const ResultList norm = MinMaxNormalize(list);
    for (const RankedShot& r : norm.items()) {
      sum[r.shot] += r.score;
      ++hits[r.shot];
    }
  }
  std::unordered_map<ShotId, double> acc;
  for (const auto& [shot, s] : sum) {
    acc[shot] = s * hits[shot];
  }
  return FromMap(acc);
}

ResultList WeightedLinear(const std::vector<ResultList>& lists,
                          const std::vector<double>& weights) {
  if (lists.size() != weights.size()) {
    // A caller bug: fusing min(lists, weights) silently drops evidence
    // (or weights). Flag it, then fuse the aligned prefix so callers
    // still get a ranking.
    IVR_LOG(Error) << "WeightedLinear: " << lists.size() << " lists vs "
                   << weights.size()
                   << " weights; fusing only the aligned prefix";
  }
  std::unordered_map<ShotId, double> acc;
  const size_t n = std::min(lists.size(), weights.size());
  for (size_t i = 0; i < n; ++i) {
    if (weights[i] == 0.0) continue;
    const ResultList norm = MinMaxNormalize(lists[i]);
    for (const RankedShot& r : norm.items()) {
      acc[r.shot] += weights[i] * r.score;
    }
  }
  return FromMap(acc);
}

ResultList ReciprocalRankFusion(const std::vector<ResultList>& lists,
                                double k) {
  std::unordered_map<ShotId, double> acc;
  for (const ResultList& list : lists) {
    const auto& items = list.items();
    for (size_t rank = 0; rank < items.size(); ++rank) {
      acc[items[rank].shot] += 1.0 / (k + static_cast<double>(rank) + 1.0);
    }
  }
  return FromMap(acc);
}

ResultList BordaCount(const std::vector<ResultList>& lists) {
  std::unordered_map<ShotId, double> acc;
  for (const ResultList& list : lists) {
    const auto& items = list.items();
    const double n = static_cast<double>(items.size());
    for (size_t rank = 0; rank < items.size(); ++rank) {
      acc[items[rank].shot] += n - static_cast<double>(rank);
    }
  }
  return FromMap(acc);
}

}  // namespace ivr
