#ifndef IVR_RETRIEVAL_STORY_RANK_H_
#define IVR_RETRIEVAL_STORY_RANK_H_

#include <vector>

#include "ivr/retrieval/result_list.h"
#include "ivr/video/collection.h"

namespace ivr {

/// A ranked news story.
struct RankedStory {
  StoryId story = kInvalidStoryId;
  double score = 0.0;
  /// Shots of this story that appeared in the shot-level result list,
  /// best first (the story's "entry points" for the UI).
  std::vector<ShotId> supporting_shots;
};

/// How shot evidence aggregates to the story level.
enum class StoryAggregation {
  kMax,   ///< best shot wins (precision-oriented; default)
  kSum,   ///< total evidence (favours long, consistently matching stories)
  kMean,  ///< average over the story's *retrieved* shots
};

/// Aggregates a shot-level result list into a story ranking — what a news
/// interface actually presents ("stories about X tonight"), while shots
/// remain the unit of playback and judgement. Stories without any
/// retrieved shot are omitted; ties break by ascending StoryId.
std::vector<RankedStory> RankStories(
    const ResultList& shots, const VideoCollection& collection, size_t k,
    StoryAggregation aggregation = StoryAggregation::kMax);

}  // namespace ivr

#endif  // IVR_RETRIEVAL_STORY_RANK_H_
