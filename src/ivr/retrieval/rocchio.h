#ifndef IVR_RETRIEVAL_ROCCHIO_H_
#define IVR_RETRIEVAL_ROCCHIO_H_

#include <string>
#include <vector>

#include "ivr/index/searcher.h"
#include "ivr/text/analyzer.h"

namespace ivr {

/// Rocchio relevance-feedback query expansion. Feedback documents can be
/// weighted (implicit feedback yields graded, not binary, evidence — a
/// shot played to the end counts more than one merely clicked).
struct RocchioOptions {
  double alpha = 1.0;  ///< weight of the original query
  double beta = 0.75;  ///< weight of the positive centroid
  double gamma = 0.15; ///< weight of the negative centroid (subtracted)
  /// Keep only the strongest N expansion terms (original terms always
  /// survive). 0 keeps everything.
  size_t max_expansion_terms = 20;
};

/// One feedback document with its evidence weight (> 0).
struct FeedbackDoc {
  std::string text;
  double weight = 1.0;
};

/// Produces the expanded query
///   alpha * q + beta * centroid(positive) - gamma * centroid(negative),
/// where centroids are weight-normalised term-frequency vectors in
/// analysed term space. Terms whose final weight is <= 0 are dropped.
TermQuery RocchioExpand(const TermQuery& original,
                        const std::vector<FeedbackDoc>& positive,
                        const std::vector<FeedbackDoc>& negative,
                        const Analyzer& analyzer,
                        const RocchioOptions& options = RocchioOptions());

}  // namespace ivr

#endif  // IVR_RETRIEVAL_ROCCHIO_H_
