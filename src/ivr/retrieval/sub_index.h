#ifndef IVR_RETRIEVAL_SUB_INDEX_H_
#define IVR_RETRIEVAL_SUB_INDEX_H_

#include <memory>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/features/similarity.h"
#include "ivr/index/document_store.h"
#include "ivr/index/inverted_index.h"
#include "ivr/retrieval/concept_index.h"
#include "ivr/retrieval/engine_options.h"
#include "ivr/video/collection.h"

namespace ivr {

/// An immutable per-segment retrieval bundle: inverted text index,
/// document store, keyframe vector and (optionally) concept index over
/// one contiguous slice of a segmented collection. Built ONCE from the
/// delta at publish time and shared by every engine generation that
/// serves the segment, so publish cost scales with the delta, not the
/// corpus.
///
/// The slice uses local ids 0..n-1; `shot_key_offset` is the global id of
/// the slice's shot 0 in the concatenated collection. Postings, document
/// stats and keyframes are stored with local ids (the engine offsets at
/// query time); only the simulated concept detector is seeded with the
/// global key, exactly as a monolithic build would seed it — which is
/// what keeps segmented serving bit-identical to a full rebuild.
class SubIndex {
 public:
  /// Builds the bundle over `slice` (shared ownership: the sub-index
  /// keeps its source slice alive). Fault site "concept.build" degrades
  /// the concept modality of this segment (concepts() == nullptr,
  /// concepts_degraded() == true) without failing the build.
  static Result<std::shared_ptr<const SubIndex>> Build(
      std::shared_ptr<const VideoCollection> slice,
      const EngineOptions& options, ShotId shot_key_offset);

  SubIndex(const SubIndex&) = delete;
  SubIndex& operator=(const SubIndex&) = delete;

  const VideoCollection& collection() const { return *slice_; }
  const InvertedIndex& index() const { return index_; }
  const DocumentStore& docs() const { return docs_; }
  const std::vector<ColorHistogram>& keyframes() const { return keyframes_; }
  /// Null when concepts are disabled — or requested but degraded away
  /// (construction faulted at site "concept.build").
  const ConceptIndex* concepts() const { return concepts_.get(); }
  bool concepts_degraded() const { return concepts_degraded_; }
  size_t num_shots() const { return slice_->num_shots(); }

 private:
  explicit SubIndex(std::shared_ptr<const VideoCollection> slice)
      : slice_(std::move(slice)) {}

  Status BuildText(const EngineOptions& options);

  std::shared_ptr<const VideoCollection> slice_;
  InvertedIndex index_;
  DocumentStore docs_;  // local DocId == local ShotId
  std::vector<ColorHistogram> keyframes_;  // aligned with local ShotId
  std::unique_ptr<ConceptIndex> concepts_;
  bool concepts_degraded_ = false;
};

}  // namespace ivr

#endif  // IVR_RETRIEVAL_SUB_INDEX_H_
