#ifndef IVR_RETRIEVAL_ENGINE_H_
#define IVR_RETRIEVAL_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/features/concept_detector.h"
#include "ivr/obs/metrics.h"
#include "ivr/features/similarity.h"
#include "ivr/index/document_store.h"
#include "ivr/index/inverted_index.h"
#include "ivr/index/scorer.h"
#include "ivr/index/searcher.h"
#include "ivr/retrieval/concept_index.h"
#include "ivr/retrieval/engine_options.h"
#include "ivr/retrieval/health.h"
#include "ivr/retrieval/result_list.h"
#include "ivr/retrieval/sub_index.h"
#include "ivr/video/collection.h"

namespace ivr {

class ResultCache;

/// A multimodal query: free text, optional visual examples, optional
/// high-level concept targets (available when the engine was built with
/// use_concepts).
struct Query {
  std::string text;
  std::vector<ColorHistogram> examples;
  std::vector<ConceptId> concepts;

  bool HasText() const { return !text.empty(); }
  bool HasExamples() const { return !examples.empty(); }
  bool HasConcepts() const { return !concepts.empty(); }
};

/// The news-video retrieval engine of the framework (the paper's Section 3
/// "recording, analysing, indexing and retrieving news videos" backend,
/// minus the recording hardware). It indexes one document per shot — ASR
/// transcript plus story headline metadata — and answers multimodal
/// queries by fusing text and visual-example evidence.
///
/// Per-query degradation report: which parts of a multimodal query the
/// engine could not honour. Silent modality drops skew experiments, so
/// callers that care (sweeps, tools) pass one in and check it.
struct SearchDiagnostics {
  /// The query carried concepts but the engine was built without
  /// use_concepts (or concept construction was degraded away) — the
  /// concept modality was dropped from fusion.
  bool concepts_dropped = false;
  /// A modality the query carried faulted (injected or real I/O fault on
  /// its read path) and was served without: the result is degraded, not
  /// wrong. "text" covers posting reads.
  bool text_faulted = false;
  bool visual_faulted = false;
  bool concepts_faulted = false;

  bool any_degradation() const {
    return concepts_dropped || text_faulted || visual_faulted ||
           concepts_faulted;
  }
};

/// The engine itself is stateless across queries; all personalisation and
/// feedback adaptation lives above it (AdaptiveEngine). Search is safe to
/// call from multiple threads concurrently.
///
/// Internally the engine serves one or more immutable SubIndex shards,
/// each covering a contiguous slice of the global ShotId space. Every
/// query path merges top-k across shards under the modality's strict
/// total order (score desc, id asc) with scorers prepared from the summed
/// collection statistics, so a segmented engine ranks bit-identically to
/// a monolithic engine built over the concatenated collection — the
/// invariant `ivr_ingest --check` enforces.
class RetrievalEngine {
 public:
  /// Builds a single-shard engine over `collection`, which must outlive
  /// the engine.
  static Result<std::unique_ptr<RetrievalEngine>> Build(
      const VideoCollection& collection,
      EngineOptions options = EngineOptions());

  /// Builds an engine over prebuilt immutable shards. Shards must be
  /// non-empty, built with these same options, and supplied in ascending
  /// global-id order (shard i's shot_key_offset must equal the total shot
  /// count of shards 0..i-1 — the engine recomputes and checks offsets).
  static Result<std::unique_ptr<RetrievalEngine>> BuildSegmented(
      std::vector<std::shared_ptr<const SubIndex>> shards,
      EngineOptions options = EngineOptions());

  RetrievalEngine(const RetrievalEngine&) = delete;
  RetrievalEngine& operator=(const RetrievalEngine&) = delete;

  /// Multimodal search: runs each present modality and fuses with the
  /// configured weights. A dropped modality (concept query on a
  /// concept-less engine) is reported through `diagnostics` when non-null,
  /// logged once per engine, and counted in num_degraded_queries().
  ResultList Search(const Query& query, size_t k,
                    SearchDiagnostics* diagnostics = nullptr) const;

  /// Answers every query and returns the result lists in input order,
  /// fanned out over up to `threads` workers (0 = hardware concurrency).
  /// Rankings are bit-identical to sequential Search() calls: workers
  /// merge by query index, never by completion order.
  std::vector<ResultList> BatchSearch(const std::vector<Query>& queries,
                                      size_t k, size_t threads = 0) const;

  /// How many queries so far were answered degraded (a modality silently
  /// unavailable). Monotonic, thread-safe.
  uint64_t num_degraded_queries() const {
    return degraded_queries_.load(std::memory_order_relaxed);
  }

  /// Engine-lifetime degraded-mode counters (see health.h). Thread-safe.
  HealthReport Health() const;

  /// Attaches a shared base-ranking cache (nullptr detaches). Search,
  /// SearchTerms, SearchVisual and SearchConcepts then serve repeated
  /// queries from the cache — bit-identical to uncached serving, because
  /// keys are exact byte fingerprints and hits return copies of the
  /// stored lists. One cache may be shared by several engines built with
  /// identical options over the same collection (the simulate/serve
  /// per-worker engines); attach before serving, not while searches are
  /// in flight. Degraded (faulted-modality) results are never inserted.
  void AttachCache(std::shared_ptr<ResultCache> cache) {
    cache_ = std::move(cache);
  }
  ResultCache* cache() const { return cache_.get(); }

  /// Scopes this engine's cache keys to a segment-set epoch: when
  /// nonzero, every cache fingerprint is prefixed with "G<epoch>|", so
  /// engines over DIFFERENT generations of a live collection can share
  /// one cache without a query pinned to an old generation ever hitting
  /// (or polluting) a newer generation's entries. Compaction (merge)
  /// keeps the epoch: a merged engine ranks bit-identically, so its
  /// entries stay valid. Set together with AttachCache, before serving.
  /// 0 (the default) leaves keys unprefixed — identical to the
  /// pre-generational format.
  void SetCacheKeyEpoch(uint64_t epoch) { cache_key_epoch_ = epoch; }
  uint64_t cache_key_epoch() const { return cache_key_epoch_; }

  /// Text-only search over an explicit weighted term query (used by
  /// feedback/expansion components).
  ResultList SearchTerms(const TermQuery& query, size_t k) const;

  /// Visual-only search by example keyframe.
  ResultList SearchVisual(const ColorHistogram& example, size_t k) const;

  /// Concept-only search; FailedPrecondition unless built with
  /// use_concepts (and every shard's concept index survived construction).
  Result<ResultList> SearchConcepts(const std::vector<ConceptId>& concepts,
                                    size_t k) const;

  /// The concept index of a single-shard engine (nullptr when concepts
  /// are disabled or the engine is multi-shard — per-segment concept
  /// indexes are not individually exposed).
  const ConceptIndex* concept_index() const {
    return shards_.size() == 1 ? shards_.front()->concepts() : nullptr;
  }

  /// Parses raw text into the engine's analysed term space.
  TermQuery ParseText(const std::string& text) const;

  /// Absolute text score of one shot for a term query.
  double ScoreShot(const TermQuery& query, ShotId shot) const;

  /// Indexed text of one shot (what Rocchio feeds back); empty for bad id.
  std::string IndexedText(ShotId shot) const;

  /// Resolves a global ShotId to its shot (nullptr when out of range).
  /// The segmented replacement for handing out a monolithic collection.
  const Shot* FindShot(ShotId shot) const;

  /// The first shard's text index (the whole index for a single-shard
  /// engine; multi-shard callers search through the engine instead).
  const InvertedIndex& index() const { return shards_.front()->index(); }
  const Analyzer& analyzer() const { return index().analyzer(); }
  const EngineOptions& options() const { return options_; }
  size_t num_shots() const { return num_shots_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  RetrievalEngine(EngineOptions options, std::unique_ptr<Scorer> scorer);

  /// Adopts `shards` (ascending, contiguous) and precomputes offsets.
  Status AdoptShards(std::vector<std::shared_ptr<const SubIndex>> shards);
  /// Shard containing global shot id, or npos. The local id is
  /// `shot - index_segments_[i].doc_offset`.
  size_t ShardOf(ShotId shot) const;
  /// Uncached concept-bag search merged across shards; requires
  /// concepts_available_.
  ResultList SearchConceptsMerged(const std::vector<ConceptId>& concepts,
                                  size_t k) const;

  EngineOptions options_;
  std::unique_ptr<Scorer> scorer_;
  std::vector<std::shared_ptr<const SubIndex>> shards_;
  /// Parallel to shards_: the text-index view Searcher consumes
  /// (doc_offset = global id of the shard's local doc 0).
  std::vector<IndexSegment> index_segments_;
  size_t num_shots_ = 0;
  /// All shards carry a concept index (vacuously false when use_concepts
  /// is off, or when any shard's concept construction was degraded away).
  bool concepts_available_ = false;
  std::shared_ptr<ResultCache> cache_;
  uint64_t cache_key_epoch_ = 0;

  /// Applies the generation epoch prefix to a cache fingerprint.
  std::string EpochKey(std::string key) const;
  mutable std::atomic<uint64_t> degraded_queries_{0};
  mutable std::atomic<uint64_t> text_faults_{0};
  mutable std::atomic<uint64_t> visual_faults_{0};
  mutable std::atomic<uint64_t> concept_faults_{0};
  mutable std::atomic<uint64_t> concepts_dropped_{0};
  mutable std::atomic<bool> degradation_logged_{false};

  /// Registry pointers resolved once at construction; Search touches only
  /// these (relaxed increments), never the registry mutex.
  struct Metrics {
    obs::Counter* queries;
    obs::Counter* degraded_queries;
    obs::Counter* text_faults;
    obs::Counter* visual_faults;
    obs::Counter* concept_faults;
    obs::Counter* concepts_dropped;
    obs::LatencyHistogram* search_us;
    obs::LatencyHistogram* text_us;
    obs::LatencyHistogram* visual_us;
    obs::LatencyHistogram* concept_us;
  };
  Metrics metrics_;
};

}  // namespace ivr

#endif  // IVR_RETRIEVAL_ENGINE_H_
