#include "ivr/retrieval/rocchio.h"

#include <algorithm>
#include <unordered_map>

namespace ivr {
namespace {

// Weight-normalised centroid of analysed term frequencies.
std::unordered_map<std::string, double> Centroid(
    const std::vector<FeedbackDoc>& docs, const Analyzer& analyzer) {
  std::unordered_map<std::string, double> centroid;
  double total_weight = 0.0;
  for (const FeedbackDoc& doc : docs) {
    if (doc.weight <= 0.0) continue;
    total_weight += doc.weight;
    std::unordered_map<std::string, double> tf;
    const std::vector<std::string> terms = analyzer.Analyze(doc.text);
    if (terms.empty()) continue;
    for (const std::string& term : terms) {
      tf[term] += 1.0;
    }
    // Length-normalise each document before weighting so long transcripts
    // do not dominate the centroid.
    const double len = static_cast<double>(terms.size());
    for (const auto& [term, count] : tf) {
      centroid[term] += doc.weight * count / len;
    }
  }
  if (total_weight > 0.0) {
    for (auto& [term, w] : centroid) {
      (void)term;
      w /= total_weight;
    }
  }
  return centroid;
}

}  // namespace

TermQuery RocchioExpand(const TermQuery& original,
                        const std::vector<FeedbackDoc>& positive,
                        const std::vector<FeedbackDoc>& negative,
                        const Analyzer& analyzer,
                        const RocchioOptions& options) {
  std::unordered_map<std::string, double> weights;
  for (const auto& [term, w] : original.weights) {
    weights[term] += options.alpha * w;
  }
  const auto pos = Centroid(positive, analyzer);
  const auto neg = Centroid(negative, analyzer);

  // Candidate expansion terms, ranked by their positive-centroid mass so
  // max_expansion_terms keeps the most informative ones.
  std::vector<std::pair<std::string, double>> candidates;
  for (const auto& [term, w] : pos) {
    if (original.weights.count(term) == 0) {
      candidates.emplace_back(term, w);
    } else {
      weights[term] += options.beta * w;
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  const size_t keep = options.max_expansion_terms == 0
                          ? candidates.size()
                          : std::min(candidates.size(),
                                     options.max_expansion_terms);
  for (size_t i = 0; i < keep; ++i) {
    weights[candidates[i].first] += options.beta * candidates[i].second;
  }

  for (const auto& [term, w] : neg) {
    auto it = weights.find(term);
    if (it != weights.end()) {
      it->second -= options.gamma * w;
    }
  }

  TermQuery out;
  for (const auto& [term, w] : weights) {
    if (w > 0.0) {
      out.weights.emplace(term, w);
    }
  }
  return out;
}

}  // namespace ivr
