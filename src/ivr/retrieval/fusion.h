#ifndef IVR_RETRIEVAL_FUSION_H_
#define IVR_RETRIEVAL_FUSION_H_

#include <vector>

#include "ivr/retrieval/result_list.h"

namespace ivr {

/// Rank/score fusion operators for combining evidence from several
/// retrieval runs (e.g. text search + visual example search, or results
/// before/after feedback). All operators are deterministic.

/// Min–max normalises scores of a list into [0,1]; a constant-score list
/// carries no ranking evidence and maps to all-0.5 (neutral), so a
/// degenerate modality cannot dominate downstream fusion.
ResultList MinMaxNormalize(const ResultList& list);

/// CombSUM: sum of min-max-normalised scores.
ResultList CombSum(const std::vector<ResultList>& lists);

/// CombMNZ: CombSUM multiplied by the number of lists containing the shot.
ResultList CombMnz(const std::vector<ResultList>& lists);

/// Weighted linear combination of min-max-normalised scores. `weights`
/// must be the same length as `lists`; a mismatch is logged as an error
/// and only the aligned prefix is fused. Missing shots contribute 0.
ResultList WeightedLinear(const std::vector<ResultList>& lists,
                          const std::vector<double>& weights);

/// Reciprocal rank fusion: sum over lists of 1 / (k + rank + 1).
ResultList ReciprocalRankFusion(const std::vector<ResultList>& lists,
                                double k = 60.0);

/// Borda count: each list awards (list_size - rank) points.
ResultList BordaCount(const std::vector<ResultList>& lists);

}  // namespace ivr

#endif  // IVR_RETRIEVAL_FUSION_H_
