#ifndef IVR_RETRIEVAL_RESULT_LIST_H_
#define IVR_RETRIEVAL_RESULT_LIST_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "ivr/video/types.h"

namespace ivr {

/// One ranked entry of a result list.
struct RankedShot {
  ShotId shot = kInvalidShotId;
  double score = 0.0;

  friend bool operator==(const RankedShot& a, const RankedShot& b) {
    return a.shot == b.shot && a.score == b.score;
  }
};

/// An ordered retrieval result over shots. Always kept sorted by
/// descending score with ties broken by ascending ShotId, so equal inputs
/// produce byte-identical rankings.
class ResultList {
 public:
  ResultList() = default;
  /// Takes arbitrary (shot, score) pairs; duplicates keep the max score.
  explicit ResultList(std::vector<RankedShot> items);

  /// Adds one entry (re-sorts lazily on next read).
  void Add(ShotId shot, double score);

  /// Keeps only the top k entries.
  void Truncate(size_t k);

  size_t size() const;
  bool empty() const { return size() == 0; }

  /// i-th ranked entry (0-based); requires i < size().
  const RankedShot& at(size_t i) const;

  /// 0-based rank of a shot, nullopt when absent.
  std::optional<size_t> RankOf(ShotId shot) const;

  bool Contains(ShotId shot) const { return RankOf(shot).has_value(); }

  double ScoreOf(ShotId shot) const;

  /// Shot ids in rank order.
  std::vector<ShotId> ShotIds() const;

  const std::vector<RankedShot>& items() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<RankedShot> items_;
  mutable bool sorted_ = true;
};

}  // namespace ivr

#endif  // IVR_RETRIEVAL_RESULT_LIST_H_
