#ifndef IVR_RETRIEVAL_RESULT_LIST_H_
#define IVR_RETRIEVAL_RESULT_LIST_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "ivr/video/types.h"

namespace ivr {

/// One ranked entry of a result list.
struct RankedShot {
  ShotId shot = kInvalidShotId;
  double score = 0.0;

  friend bool operator==(const RankedShot& a, const RankedShot& b) {
    return a.shot == b.shot && a.score == b.score;
  }
};

/// An ordered retrieval result over shots. Always kept sorted by
/// descending score with ties broken by ascending ShotId, so equal inputs
/// produce byte-identical rankings.
///
/// Thread safety: const accessors are safe to call concurrently on a
/// shared list (the result cache hands one ResultList to every session
/// that hits). Construction from a vector sorts eagerly, and a list made
/// unsorted again via Add() resolves the pending sort exactly once behind
/// a mutex, so readers never observe a half-sorted vector. Mutators
/// (Add/Truncate) must not race with readers or each other.
class ResultList {
 public:
  ResultList() = default;
  /// Takes arbitrary (shot, score) pairs; duplicates keep the max score.
  /// Sorts eagerly so the new list is immediately shareable.
  explicit ResultList(std::vector<RankedShot> items);

  ResultList(const ResultList& other);
  ResultList(ResultList&& other) noexcept;
  ResultList& operator=(const ResultList& other);
  ResultList& operator=(ResultList&& other) noexcept;

  /// Adds one entry (re-sorts lazily on next read).
  void Add(ShotId shot, double score);

  /// Keeps only the top k entries.
  void Truncate(size_t k);

  size_t size() const;
  bool empty() const { return size() == 0; }

  /// i-th ranked entry (0-based); requires i < size().
  const RankedShot& at(size_t i) const;

  /// 0-based rank of a shot, nullopt when absent.
  std::optional<size_t> RankOf(ShotId shot) const;

  bool Contains(ShotId shot) const { return RankOf(shot).has_value(); }

  double ScoreOf(ShotId shot) const;

  /// Shot ids in rank order.
  std::vector<ShotId> ShotIds() const;

  const std::vector<RankedShot>& items() const;

  /// Bytes of heap memory held by the entries (cache accounting).
  size_t MemoryBytes() const;

 private:
  void EnsureSorted() const;
  /// Dedups + sorts and publishes sorted_ = true. Callers either hold
  /// sort_mu_ or have exclusive access (constructors).
  void SortNow() const;

  mutable std::mutex sort_mu_;
  mutable std::vector<RankedShot> items_;
  mutable std::atomic<bool> sorted_{true};
};

}  // namespace ivr

#endif  // IVR_RETRIEVAL_RESULT_LIST_H_
