#include "ivr/retrieval/sub_index.h"

#include <string>
#include <utility>

#include "ivr/core/fault_injection.h"
#include "ivr/core/logging.h"

namespace ivr {

Result<std::shared_ptr<const SubIndex>> SubIndex::Build(
    std::shared_ptr<const VideoCollection> slice,
    const EngineOptions& options, ShotId shot_key_offset) {
  if (slice == nullptr) {
    return Status::InvalidArgument("SubIndex::Build: null slice");
  }
  std::shared_ptr<SubIndex> sub(new SubIndex(std::move(slice)));
  IVR_RETURN_IF_ERROR(sub->BuildText(options));
  if (options.use_concepts) {
    // Graceful degradation: a faulted detector bank (site "concept.build")
    // must not take the segment down — text and visual retrieval are
    // still worth serving, and the engine reports the missing modality.
    if (FaultInjector::Global().ShouldFail("concept.build")) {
      sub->concepts_degraded_ = true;
      IVR_LOG(Warning) << "concept sub-index construction faulted; "
                          "segment serves without the concept modality";
    } else {
      const SimulatedConceptDetector detector(sub->slice_->num_topics(),
                                              options.detector,
                                              options.detector_seed);
      sub->concepts_ = std::make_unique<ConceptIndex>(*sub->slice_, detector,
                                                      shot_key_offset);
    }
  }
  return std::shared_ptr<const SubIndex>(std::move(sub));
}

Status SubIndex::BuildText(const EngineOptions& options) {
  keyframes_.reserve(slice_->num_shots());
  for (const Shot& shot : slice_->shots()) {
    Document doc;
    doc.external_id = shot.external_id;
    doc.text = shot.asr_transcript;
    if (options.index_headlines) {
      IVR_ASSIGN_OR_RETURN(const NewsStory* story, slice_->story(shot.story));
      doc.fields["headline"] = story->headline;
    }
    IVR_ASSIGN_OR_RETURN(DocId id, docs_.Add(std::move(doc)));
    if (id != shot.id) {
      return Status::Internal("DocId / ShotId misalignment");
    }
    // Index transcript and headline together.
    std::string text = shot.asr_transcript;
    if (options.index_headlines) {
      IVR_ASSIGN_OR_RETURN(const Document* stored, docs_.Get(id));
      text += " ";
      text += stored->fields.at("headline");
    }
    IVR_RETURN_IF_ERROR(index_.IndexText(id, text));
    keyframes_.push_back(shot.keyframe);
  }
  return Status::OK();
}

}  // namespace ivr
