#ifndef IVR_RETRIEVAL_HEALTH_H_
#define IVR_RETRIEVAL_HEALTH_H_

#include <cstdint>
#include <string>

namespace ivr {

/// Aggregated degraded-mode report for a retrieval stack — the
/// engine-lifetime extension of the per-query SearchDiagnostics from
/// engine.h. A RetrievalEngine fills the modality/fault counters, an
/// AdaptiveEngine layers its personalisation counters on top, and tools
/// print the result after a run so chaos sweeps (and production
/// monitoring) can tell "served degraded" apart from "served wrong".
struct HealthReport {
  /// The engine was asked for concepts and has a live concept index.
  bool concept_index_available = true;
  /// A user profile / profile store was available when requested.
  bool profile_available = true;

  /// Queries answered with at least one modality missing or faulted.
  uint64_t degraded_queries = 0;
  /// Per-modality injected/IO faults absorbed by serving without that
  /// modality ("engine.text" covers posting reads).
  uint64_t text_faults = 0;
  uint64_t visual_faults = 0;
  uint64_t concept_faults = 0;
  /// Concept queries dropped because the engine has no concept index.
  uint64_t concepts_dropped = 0;

  /// Result-cache lookups that failed through the "cache.lookup" fault
  /// site; each degraded to an uncached search (correct, just slower).
  uint64_t cache_lookup_faults = 0;

  /// AdaptiveEngine: searches answered without implicit-feedback
  /// expansion / profile re-ranking because that step faulted.
  uint64_t feedback_skipped = 0;
  uint64_t profile_reranks_skipped = 0;

  /// SessionManager: live sessions right now, sessions evicted over the
  /// manager's lifetime (TTL + capacity), and eviction-time persistence
  /// attempts that failed (those sessions served fine but their logs are
  /// incomplete on disk — a degraded-mode signal).
  uint64_t sessions_active = 0;
  uint64_t sessions_evicted = 0;
  uint64_t session_persist_failures = 0;

  /// Ingest layer (LiveEngine startup salvage): segment files on disk
  /// that no intact manifest record references, manifest-referenced
  /// segments dropped as torn/corrupt (the reader fell back to an older
  /// generation), and torn manifest journal tails dropped on replay.
  /// Serving stays correct — these count durably lost publishes.
  uint64_t ingest_orphan_segments_dropped = 0;
  uint64_t ingest_torn_segments_dropped = 0;
  uint64_t ingest_torn_manifest_chunks = 0;
  /// Stale WriteFileAtomic temp files swept at startup: each is the
  /// residue of a crash mid-atomic-write. Disjoint from the orphan/torn
  /// counters above (a temp never names a committed segment).
  uint64_t ingest_stale_temp_files_removed = 0;

  /// Snapshot of FaultInjector::Global().num_injected() (0 when chaos is
  /// off): total injected faults across every site, including I/O.
  uint64_t faults_injected = 0;

  /// Any degraded-mode signal at all.
  bool degraded() const {
    return !concept_index_available || !profile_available ||
           degraded_queries > 0 || feedback_skipped > 0 ||
           profile_reranks_skipped > 0 ||
           session_persist_failures > 0 ||
           ingest_orphan_segments_dropped > 0 ||
           ingest_torn_segments_dropped > 0 ||
           ingest_torn_manifest_chunks > 0 ||
           ingest_stale_temp_files_removed > 0 || faults_injected > 0;
  }

  /// Compact single-line "healthy" / key=value summary for tool stderr.
  std::string ToString() const;
};

}  // namespace ivr

#endif  // IVR_RETRIEVAL_HEALTH_H_
