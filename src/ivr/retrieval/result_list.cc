#include "ivr/retrieval/result_list.h"

#include <algorithm>
#include <utility>

namespace ivr {
namespace {

bool Better(const RankedShot& a, const RankedShot& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.shot < b.shot;
}

}  // namespace

ResultList::ResultList(std::vector<RankedShot> items)
    : items_(std::move(items)), sorted_(false) {
  // Sort eagerly: freshly built lists are the ones handed to the result
  // cache and shared across threads, so they must never carry a pending
  // mutation into a const accessor.
  SortNow();
}

ResultList::ResultList(const ResultList& other) {
  other.EnsureSorted();
  items_ = other.items_;
  sorted_.store(true, std::memory_order_relaxed);
}

ResultList::ResultList(ResultList&& other) noexcept
    : items_(std::move(other.items_)),
      sorted_(other.sorted_.load(std::memory_order_relaxed)) {
  other.items_.clear();
  other.sorted_.store(true, std::memory_order_relaxed);
}

ResultList& ResultList::operator=(const ResultList& other) {
  if (this == &other) return *this;
  other.EnsureSorted();
  items_ = other.items_;
  sorted_.store(true, std::memory_order_relaxed);
  return *this;
}

ResultList& ResultList::operator=(ResultList&& other) noexcept {
  if (this == &other) return *this;
  items_ = std::move(other.items_);
  sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  other.items_.clear();
  other.sorted_.store(true, std::memory_order_relaxed);
  return *this;
}

void ResultList::Add(ShotId shot, double score) {
  items_.push_back(RankedShot{shot, score});
  sorted_.store(false, std::memory_order_release);
}

void ResultList::Truncate(size_t k) {
  EnsureSorted();
  if (items_.size() > k) items_.resize(k);
}

size_t ResultList::size() const {
  EnsureSorted();  // deduplication can shrink the list
  return items_.size();
}

const RankedShot& ResultList::at(size_t i) const {
  EnsureSorted();
  return items_[i];
}

std::optional<size_t> ResultList::RankOf(ShotId shot) const {
  EnsureSorted();
  for (size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].shot == shot) return i;
  }
  return std::nullopt;
}

double ResultList::ScoreOf(ShotId shot) const {
  const std::optional<size_t> rank = RankOf(shot);
  return rank.has_value() ? items_[*rank].score : 0.0;
}

std::vector<ShotId> ResultList::ShotIds() const {
  EnsureSorted();
  std::vector<ShotId> out;
  out.reserve(items_.size());
  for (const RankedShot& r : items_) {
    out.push_back(r.shot);
  }
  return out;
}

const std::vector<RankedShot>& ResultList::items() const {
  EnsureSorted();
  return items_;
}

size_t ResultList::MemoryBytes() const {
  EnsureSorted();
  return items_.capacity() * sizeof(RankedShot);
}

void ResultList::EnsureSorted() const {
  if (sorted_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(sort_mu_);
  if (sorted_.load(std::memory_order_relaxed)) return;
  SortNow();
}

void ResultList::SortNow() const {
  // Deduplicate by shot (keeping the max score), then order by score.
  std::sort(items_.begin(), items_.end(),
            [](const RankedShot& a, const RankedShot& b) {
              if (a.shot != b.shot) return a.shot < b.shot;
              return a.score > b.score;
            });
  items_.erase(std::unique(items_.begin(), items_.end(),
                           [](const RankedShot& a, const RankedShot& b) {
                             return a.shot == b.shot;
                           }),
               items_.end());
  std::sort(items_.begin(), items_.end(), Better);
  sorted_.store(true, std::memory_order_release);
}

}  // namespace ivr
