#ifndef IVR_RETRIEVAL_CONCEPT_INDEX_H_
#define IVR_RETRIEVAL_CONCEPT_INDEX_H_

#include <vector>

#include "ivr/features/concept_detector.h"
#include "ivr/retrieval/result_list.h"
#include "ivr/video/collection.h"

namespace ivr {

/// Precomputed high-level concept confidences for every shot — what a
/// TRECVID-style concept-detector bank produces offline. This is the
/// "automatic detection of high level concepts" retrieval route the paper
/// discusses (and reports as "not efficient enough" at 2008 detector
/// quality); experiment A1 sweeps detector quality over exactly this
/// index.
class ConceptIndex {
 public:
  /// Runs the detector over every shot of the collection. The detector's
  /// concept space must cover the collection's topic space.
  ///
  /// `shot_key_offset` is the global id of the collection's shot 0 when
  /// `collection` is one segment of a larger segmented collection: the
  /// simulated detector seeds its per-(shot, concept) noise from the
  /// detection key `shot_key_offset + shot.id`, so a per-segment index
  /// produces bit-identical confidences to a monolithic index over the
  /// concatenated collection (where the shot's global id is exactly that
  /// sum). Confidences are still stored by local shot id.
  ConceptIndex(const VideoCollection& collection,
               const SimulatedConceptDetector& detector,
               ShotId shot_key_offset = 0);

  /// Detector confidence that `concept_id` appears in `shot`; 0 for ids
  /// out of range.
  double Confidence(ShotId shot, ConceptId concept_id) const;

  /// Ranks all shots by confidence for one concept.
  ResultList Search(ConceptId concept_id, size_t k) const;

  /// Ranks by the mean confidence over several concepts (a concept-bag
  /// query). Empty input yields an empty list.
  ResultList SearchAll(const std::vector<ConceptId>& concepts,
                       size_t k) const;

  size_t num_shots() const { return num_shots_; }
  size_t num_concepts() const { return num_concepts_; }

 private:
  size_t num_shots_ = 0;
  size_t num_concepts_ = 0;
  /// Row-major [shot][concept].
  std::vector<double> confidences_;
};

}  // namespace ivr

#endif  // IVR_RETRIEVAL_CONCEPT_INDEX_H_
