#include "ivr/retrieval/concept_index.h"

namespace ivr {

ConceptIndex::ConceptIndex(const VideoCollection& collection,
                           const SimulatedConceptDetector& detector,
                           ShotId shot_key_offset)
    : num_shots_(collection.num_shots()),
      num_concepts_(detector.num_concepts()) {
  confidences_.resize(num_shots_ * num_concepts_, 0.0);
  for (const Shot& shot : collection.shots()) {
    const std::vector<double> scores =
        detector.DetectAll(shot_key_offset + shot.id, shot.concepts);
    for (size_t c = 0; c < num_concepts_ && c < scores.size(); ++c) {
      confidences_[static_cast<size_t>(shot.id) * num_concepts_ + c] =
          scores[c];
    }
  }
}

double ConceptIndex::Confidence(ShotId shot, ConceptId concept_id) const {
  if (shot >= num_shots_ || concept_id >= num_concepts_) return 0.0;
  return confidences_[static_cast<size_t>(shot) * num_concepts_ +
                      concept_id];
}

ResultList ConceptIndex::Search(ConceptId concept_id, size_t k) const {
  return SearchAll({concept_id}, k);
}

ResultList ConceptIndex::SearchAll(const std::vector<ConceptId>& concepts,
                                   size_t k) const {
  if (concepts.empty()) return ResultList();
  std::vector<RankedShot> items;
  items.reserve(num_shots_);
  for (size_t shot = 0; shot < num_shots_; ++shot) {
    double total = 0.0;
    for (ConceptId c : concepts) {
      total += Confidence(static_cast<ShotId>(shot), c);
    }
    items.push_back(RankedShot{static_cast<ShotId>(shot),
                               total / static_cast<double>(concepts.size())});
  }
  ResultList out(std::move(items));
  out.Truncate(k);
  return out;
}

}  // namespace ivr
