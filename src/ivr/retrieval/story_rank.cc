#include "ivr/retrieval/story_rank.h"

#include <algorithm>
#include <map>

namespace ivr {

std::vector<RankedStory> RankStories(const ResultList& shots,
                                     const VideoCollection& collection,
                                     size_t k,
                                     StoryAggregation aggregation) {
  struct Accum {
    double max = 0.0;
    double sum = 0.0;
    size_t count = 0;
    std::vector<std::pair<double, ShotId>> supporting;
  };
  std::map<StoryId, Accum> by_story;
  for (const RankedShot& r : shots.items()) {
    Result<const Shot*> shot = collection.shot(r.shot);
    if (!shot.ok()) continue;
    Accum& a = by_story[(*shot)->story];
    a.max = a.count == 0 ? r.score : std::max(a.max, r.score);
    a.sum += r.score;
    ++a.count;
    a.supporting.emplace_back(r.score, r.shot);
  }

  std::vector<RankedStory> out;
  out.reserve(by_story.size());
  for (auto& [story, a] : by_story) {
    RankedStory ranked;
    ranked.story = story;
    switch (aggregation) {
      case StoryAggregation::kMax:
        ranked.score = a.max;
        break;
      case StoryAggregation::kSum:
        ranked.score = a.sum;
        break;
      case StoryAggregation::kMean:
        ranked.score = a.sum / static_cast<double>(a.count);
        break;
    }
    std::sort(a.supporting.begin(), a.supporting.end(),
              [](const auto& x, const auto& y) {
                if (x.first != y.first) return x.first > y.first;
                return x.second < y.second;
              });
    for (const auto& [score, shot] : a.supporting) {
      (void)score;
      ranked.supporting_shots.push_back(shot);
    }
    out.push_back(std::move(ranked));
  }
  std::sort(out.begin(), out.end(),
            [](const RankedStory& x, const RankedStory& y) {
              if (x.score != y.score) return x.score > y.score;
              return x.story < y.story;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace ivr
