#include "ivr/features/similarity.h"

#include <algorithm>

namespace ivr {

double ComputeSimilarity(VisualSimilarity kind, const ColorHistogram& a,
                         const ColorHistogram& b) {
  switch (kind) {
    case VisualSimilarity::kHistogramIntersection:
      return HistogramIntersection(a, b);
    case VisualSimilarity::kCosine:
      return CosineSimilarity(a, b);
    case VisualSimilarity::kInverseL1:
      return 1.0 / (1.0 + L1Distance(a, b));
  }
  return 0.0;
}

std::vector<Neighbor> VisualSearcher::NearestNeighbors(
    const ColorHistogram& query, size_t k) const {
  std::vector<Neighbor> all;
  all.reserve(corpus_.size());
  for (size_t i = 0; i < corpus_.size(); ++i) {
    all.push_back(Neighbor{i, ComputeSimilarity(kind_, query, corpus_[i])});
  }
  auto better = [](const Neighbor& a, const Neighbor& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.index < b.index;
  };
  if (all.size() > k) {
    std::partial_sort(all.begin(), all.begin() + static_cast<long>(k),
                      all.end(), better);
    all.resize(k);
  } else {
    std::sort(all.begin(), all.end(), better);
  }
  return all;
}

std::vector<double> VisualSearcher::ScoreAll(
    const ColorHistogram& query) const {
  std::vector<double> scores;
  scores.reserve(corpus_.size());
  for (const ColorHistogram& h : corpus_) {
    scores.push_back(ComputeSimilarity(kind_, query, h));
  }
  return scores;
}

}  // namespace ivr
