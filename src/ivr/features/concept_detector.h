#ifndef IVR_FEATURES_CONCEPT_DETECTOR_H_
#define IVR_FEATURES_CONCEPT_DETECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ivr/core/rng.h"

namespace ivr {

/// Identifier of a semantic concept ("sports", "politics", ...). In the
/// synthetic collection the concept space coincides with the topic space.
using ConceptId = uint32_t;

/// A simulated high-level concept detector — the substitution for trained
/// TRECVID concept detectors. Given a shot's ground-truth concept
/// memberships it emits confidence scores whose reliability is controlled
/// by one parameter, so experiments can sweep detector quality from random
/// (0.5 AUC) to near-perfect and reproduce the semantic-gap regimes the
/// paper discusses.
class SimulatedConceptDetector {
 public:
  struct Options {
    /// Mean confidence emitted for a concept that is truly present; the
    /// mean for an absent concept is (1 - mean_positive). 0.5 makes the
    /// detector uninformative.
    double mean_positive = 0.8;
    /// Standard deviation of the Gaussian noise added to the mean before
    /// clamping to [0, 1]. Larger -> less reliable detector.
    double noise_stddev = 0.15;
  };

  SimulatedConceptDetector(size_t num_concepts, Options options,
                           uint64_t seed);

  /// Confidence in [0,1] that `concept` is present given the ground truth.
  /// Deterministic per (detector instance, shot_key, concept): repeated
  /// calls return the same value, as a real detector would.
  double Detect(uint64_t shot_key, ConceptId concept_id,
                bool truly_present) const;

  /// Scores all concepts at once; `truth[i]` is ground truth for concept i.
  std::vector<double> DetectAll(uint64_t shot_key,
                                const std::vector<bool>& truth) const;

  size_t num_concepts() const { return num_concepts_; }
  const Options& options() const { return options_; }

 private:
  size_t num_concepts_;
  Options options_;
  uint64_t seed_;
};

}  // namespace ivr

#endif  // IVR_FEATURES_CONCEPT_DETECTOR_H_
