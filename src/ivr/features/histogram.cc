#include "ivr/features/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ivr {

ColorHistogram ColorHistogram::RandomPrototype(Rng* rng, size_t bins) {
  std::vector<double> b(bins);
  for (double& v : b) {
    // Exponential draws normalised to sum 1 give a flat Dirichlet sample,
    // producing diverse but valid prototypes.
    v = rng->Exponential(1.0);
  }
  ColorHistogram h(std::move(b));
  h.NormalizeL1();
  return h;
}

ColorHistogram ColorHistogram::Perturb(Rng* rng, double sigma) const {
  ColorHistogram out(*this);
  if (sigma > 0.0) {
    for (double& v : *out.mutable_bins()) {
      v *= std::exp(rng->Normal(0.0, sigma));
    }
    out.NormalizeL1();
  }
  return out;
}

void ColorHistogram::NormalizeL1() {
  double total = 0.0;
  for (double v : bins_) {
    total += std::max(v, 0.0);
  }
  if (total <= 0.0) return;
  for (double& v : bins_) {
    v = std::max(v, 0.0) / total;
  }
}

double L1Distance(const ColorHistogram& a, const ColorHistogram& b) {
  if (a.size() != b.size()) {
    return std::numeric_limits<double>::infinity();
  }
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    d += std::fabs(a[i] - b[i]);
  }
  return d;
}

double L2Distance(const ColorHistogram& a, const ColorHistogram& b) {
  if (a.size() != b.size()) {
    return std::numeric_limits<double>::infinity();
  }
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return std::sqrt(d);
}

double CosineSimilarity(const ColorHistogram& a, const ColorHistogram& b) {
  if (a.size() != b.size()) return 0.0;
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double HistogramIntersection(const ColorHistogram& a,
                             const ColorHistogram& b) {
  if (a.size() != b.size()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    s += std::min(a[i], b[i]);
  }
  return s;
}

}  // namespace ivr
