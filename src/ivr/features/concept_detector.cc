#include "ivr/features/concept_detector.h"

#include <algorithm>

namespace ivr {

SimulatedConceptDetector::SimulatedConceptDetector(size_t num_concepts,
                                                   Options options,
                                                   uint64_t seed)
    : num_concepts_(num_concepts), options_(options), seed_(seed) {}

double SimulatedConceptDetector::Detect(uint64_t shot_key, ConceptId concept_id,
                                        bool truly_present) const {
  // Derive a per-(shot, concept) RNG so detection is a pure function of
  // the inputs — a detector gives the same answer every time it is asked.
  Rng rng(seed_ ^ (shot_key * 0x9E3779B97F4A7C15ull) ^
          (static_cast<uint64_t>(concept_id) + 1) * 0xC2B2AE3D27D4EB4Full);
  const double mean =
      truly_present ? options_.mean_positive : 1.0 - options_.mean_positive;
  const double raw = rng.Normal(mean, options_.noise_stddev);
  return std::clamp(raw, 0.0, 1.0);
}

std::vector<double> SimulatedConceptDetector::DetectAll(
    uint64_t shot_key, const std::vector<bool>& truth) const {
  std::vector<double> out(num_concepts_, 0.0);
  for (size_t c = 0; c < num_concepts_; ++c) {
    const bool present = c < truth.size() && truth[c];
    out[c] = Detect(shot_key, static_cast<ConceptId>(c), present);
  }
  return out;
}

}  // namespace ivr
