#ifndef IVR_FEATURES_HISTOGRAM_H_
#define IVR_FEATURES_HISTOGRAM_H_

#include <cstddef>
#include <vector>

#include "ivr/core/rng.h"

namespace ivr {

/// A keyframe's visual feature vector, modelled as an L1-normalised colour
/// histogram. The synthetic collection generator produces one per keyframe
/// by perturbing a topic-specific prototype, so that visual similarity
/// correlates (noisily) with topical relatedness — the property content-
/// based video retrieval exploits.
class ColorHistogram {
 public:
  /// Default dimensionality: 8 bins per RGB-ish channel -> 64 bins works
  /// well; we use 64 throughout the library.
  static constexpr size_t kDefaultBins = 64;

  ColorHistogram() : bins_(kDefaultBins, 0.0) {}
  explicit ColorHistogram(std::vector<double> bins)
      : bins_(std::move(bins)) {}

  /// Builds a random prototype histogram (Dirichlet-ish via exponential
  /// draws, then normalised). Used for topic prototypes.
  static ColorHistogram RandomPrototype(Rng* rng,
                                        size_t bins = kDefaultBins);

  /// Returns a perturbed copy: each bin multiplied by exp(noise) with
  /// noise ~ N(0, sigma), then re-normalised. sigma=0 returns a copy.
  ColorHistogram Perturb(Rng* rng, double sigma) const;

  /// Normalises bins to sum 1 (no-op for the zero vector).
  void NormalizeL1();

  size_t size() const { return bins_.size(); }
  double operator[](size_t i) const { return bins_[i]; }
  const std::vector<double>& bins() const { return bins_; }
  std::vector<double>* mutable_bins() { return &bins_; }

 private:
  std::vector<double> bins_;
};

/// Distance / similarity measures between histograms of equal size.
/// Mismatched sizes yield worst-case values (distance infinity /
/// similarity 0) rather than UB.
double L1Distance(const ColorHistogram& a, const ColorHistogram& b);
double L2Distance(const ColorHistogram& a, const ColorHistogram& b);
double CosineSimilarity(const ColorHistogram& a, const ColorHistogram& b);
/// Histogram intersection in [0,1] for L1-normalised inputs (1 = equal).
double HistogramIntersection(const ColorHistogram& a,
                             const ColorHistogram& b);

}  // namespace ivr

#endif  // IVR_FEATURES_HISTOGRAM_H_
