#ifndef IVR_FEATURES_SIMILARITY_H_
#define IVR_FEATURES_SIMILARITY_H_

#include <cstddef>
#include <vector>

#include "ivr/features/histogram.h"

namespace ivr {

/// A scored neighbour returned by visual search.
struct Neighbor {
  size_t index = 0;     ///< position in the corpus passed to the searcher
  double score = 0.0;   ///< similarity in [0,1]; larger = more similar
};

/// Which similarity function visual search uses.
enum class VisualSimilarity {
  kHistogramIntersection,
  kCosine,
  kInverseL1,  ///< 1 / (1 + L1 distance)
};

double ComputeSimilarity(VisualSimilarity kind, const ColorHistogram& a,
                         const ColorHistogram& b);

/// Brute-force k-nearest-neighbour search over a histogram corpus. The
/// corpus reference must outlive the searcher. Linear scan is adequate for
/// the collection sizes the simulator generates (tens of thousands).
class VisualSearcher {
 public:
  explicit VisualSearcher(
      const std::vector<ColorHistogram>& corpus,
      VisualSimilarity kind = VisualSimilarity::kHistogramIntersection)
      : corpus_(corpus), kind_(kind) {}

  /// Returns the top-k most similar corpus entries to `query`, sorted by
  /// descending score (ties by ascending index).
  std::vector<Neighbor> NearestNeighbors(const ColorHistogram& query,
                                         size_t k) const;

  /// Scores every corpus entry against the query (index-aligned).
  std::vector<double> ScoreAll(const ColorHistogram& query) const;

 private:
  const std::vector<ColorHistogram>& corpus_;
  VisualSimilarity kind_;
};

}  // namespace ivr

#endif  // IVR_FEATURES_SIMILARITY_H_
