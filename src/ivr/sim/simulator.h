#ifndef IVR_SIM_SIMULATOR_H_
#define IVR_SIM_SIMULATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/feedback/backend.h"
#include "ivr/iface/session_log.h"
#include "ivr/sim/policy.h"
#include "ivr/sim/user_model.h"
#include "ivr/video/collection.h"
#include "ivr/video/qrels.h"
#include "ivr/video/topics.h"

namespace ivr {

/// Which interaction environment a session runs in.
enum class Environment { kDesktop, kTv };

std::string_view EnvironmentName(Environment env);

/// Constructs the matching interface for an environment. All pointers and
/// references must outlive the returned interface.
std::unique_ptr<SearchInterface> MakeInterface(
    Environment env, SearchBackend* backend,
    const VideoCollection& collection, SearchInterface::Config config,
    SessionLog* log, SimulatedClock* clock);

/// One simulated session's full record.
struct SimulatedSession {
  std::string session_id;
  std::string user_id;
  SearchTopicId topic = 0;
  Environment environment = Environment::kDesktop;
  SessionOutcome outcome;
  std::vector<InteractionEvent> events;
};

/// Orchestrates simulated user sessions: wires clock + interface + policy
/// + backend, runs the session, and collects outcome plus events. The
/// central harness every experiment drives.
class SessionSimulator {
 public:
  /// References must outlive the simulator.
  SessionSimulator(const VideoCollection& collection, const Qrels& qrels)
      : collection_(&collection), qrels_(&qrels) {}

  struct RunConfig {
    Environment environment = Environment::kDesktop;
    std::string session_id = "s0";
    std::string user_id = "u0";
    uint64_t seed = 1;
    /// Session start time (lets multi-session logs stay chronological).
    TimeMs start_time = 0;
  };

  /// Runs one session of `user` working on `topic` against `backend`.
  /// The backend's BeginSession() is called first; events are appended to
  /// `log` when non-null.
  Result<SimulatedSession> Run(SearchBackend* backend,
                               const SearchTopic& topic,
                               const UserModel& user,
                               const RunConfig& config,
                               SessionLog* log) const;

  /// One unit of a sweep; the pointed-to topic and user must outlive the
  /// RunSweep call.
  struct SweepJob {
    const SearchTopic* topic = nullptr;
    const UserModel* user = nullptr;
    RunConfig config;
  };

  /// Runs every job, fanned out across up to `threads` workers (0 =
  /// hardware concurrency). `backend_for_worker` supplies the backend a
  /// worker drives; with threads > 1 the backends must be stateless
  /// (StaticBackend over one engine) or one independent instance per
  /// worker — interleaving sessions through one adaptive backend would
  /// corrupt its per-session state. Sessions are returned in job order
  /// and events append to `log` grouped by job, never by completion
  /// order, so a sweep's output is identical for every thread count.
  Result<std::vector<SimulatedSession>> RunSweep(
      const std::vector<SweepJob>& jobs,
      const std::function<SearchBackend*(size_t worker)>& backend_for_worker,
      size_t threads, SessionLog* log) const;

 private:
  const VideoCollection* collection_;
  const Qrels* qrels_;
};

}  // namespace ivr

#endif  // IVR_SIM_SIMULATOR_H_
