#ifndef IVR_SIM_REPLAYER_H_
#define IVR_SIM_REPLAYER_H_

#include <string>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/feedback/backend.h"
#include "ivr/iface/session_log.h"
#include "ivr/retrieval/result_list.h"

namespace ivr {

/// What a replayed session yields: the results each logged query would
/// receive from the backend under test, in log order.
struct ReplayedSession {
  std::string session_id;
  SearchTopicId topic = 0;
  std::vector<std::string> queries;
  std::vector<ResultList> per_query_results;
};

/// Replays recorded interaction logs against a (possibly different,
/// possibly adaptive) backend — the Vallet et al. [21] methodology of
/// "mimicking the interaction of past users" to evaluate new systems on
/// old behaviour. Every logged event is fed to the backend in order; each
/// logged query is re-executed and its fresh results captured.
class LogReplayer {
 public:
  explicit LogReplayer(size_t results_per_query = 200)
      : results_per_query_(results_per_query) {}

  /// Replays the events of one session (assumed chronologically ordered,
  /// all with the same session id). BeginSession() is called first.
  Result<ReplayedSession> ReplaySession(
      const std::vector<InteractionEvent>& events,
      SearchBackend* backend) const;

  /// Replays every session found in `log`, in first-appearance order.
  Result<std::vector<ReplayedSession>> ReplayAll(
      const SessionLog& log, SearchBackend* backend) const;

 private:
  size_t results_per_query_;
};

}  // namespace ivr

#endif  // IVR_SIM_REPLAYER_H_
