#include "ivr/sim/simulator.h"

#include <optional>
#include <utility>

#include "ivr/core/thread_pool.h"
#include "ivr/iface/desktop.h"
#include "ivr/iface/tv.h"

namespace ivr {

std::string_view EnvironmentName(Environment env) {
  switch (env) {
    case Environment::kDesktop:
      return "desktop";
    case Environment::kTv:
      return "tv";
  }
  return "unknown";
}

std::unique_ptr<SearchInterface> MakeInterface(
    Environment env, SearchBackend* backend,
    const VideoCollection& collection, SearchInterface::Config config,
    SessionLog* log, SimulatedClock* clock) {
  switch (env) {
    case Environment::kDesktop:
      return std::make_unique<DesktopInterface>(backend, collection,
                                                std::move(config), log,
                                                clock);
    case Environment::kTv:
      return std::make_unique<TvInterface>(backend, collection,
                                           std::move(config), log, clock);
  }
  return nullptr;
}

Result<SimulatedSession> SessionSimulator::Run(SearchBackend* backend,
                                               const SearchTopic& topic,
                                               const UserModel& user,
                                               const RunConfig& config,
                                               SessionLog* log) const {
  SimulatedSession session;
  session.session_id = config.session_id;
  session.user_id = config.user_id;
  session.topic = topic.id;
  session.environment = config.environment;

  SimulatedClock clock(config.start_time);
  // Private log so the session's own events are recoverable even when the
  // caller passed a shared (multi-session) log.
  SessionLog local_log;

  SearchInterface::Config iface_config;
  iface_config.session_id = config.session_id;
  iface_config.user_id = config.user_id;
  iface_config.topic = topic.id;

  backend->BeginSession();
  std::unique_ptr<SearchInterface> iface =
      MakeInterface(config.environment, backend, *collection_,
                    std::move(iface_config), &local_log, &clock);
  if (iface == nullptr) {
    return Status::InvalidArgument("unknown environment");
  }

  BehaviorPolicy policy(user, topic, *qrels_, config.seed);
  IVR_ASSIGN_OR_RETURN(session.outcome, policy.RunSession(iface.get()));

  session.events = local_log.events();
  if (log != nullptr) {
    for (const InteractionEvent& ev : session.events) {
      log->Append(ev);
    }
  }
  return session;
}

Result<std::vector<SimulatedSession>> SessionSimulator::RunSweep(
    const std::vector<SweepJob>& jobs,
    const std::function<SearchBackend*(size_t)>& backend_for_worker,
    size_t threads, SessionLog* log) const {
  std::vector<std::optional<Result<SimulatedSession>>> slots(jobs.size());
  // Each session records into its own slot (Run keeps a private event
  // log); the shared log is filled afterwards in job order.
  ParallelFor(jobs.size(), threads,
              [this, &jobs, &backend_for_worker, &slots](size_t i,
                                                         size_t worker) {
                const SweepJob& job = jobs[i];
                slots[i] = Run(backend_for_worker(worker), *job.topic,
                               *job.user, job.config, /*log=*/nullptr);
              });
  std::vector<SimulatedSession> sessions;
  sessions.reserve(jobs.size());
  for (std::optional<Result<SimulatedSession>>& slot : slots) {
    if (!slot.has_value()) {
      return Status::Internal("sweep job did not run");
    }
    if (!slot->ok()) return slot->status();
    sessions.push_back(std::move(*slot).value());
    if (log != nullptr) {
      for (const InteractionEvent& ev : sessions.back().events) {
        log->Append(ev);
      }
    }
  }
  return sessions;
}

}  // namespace ivr
