#include "ivr/sim/simulator.h"

#include <utility>

#include "ivr/iface/desktop.h"
#include "ivr/iface/tv.h"

namespace ivr {

std::string_view EnvironmentName(Environment env) {
  switch (env) {
    case Environment::kDesktop:
      return "desktop";
    case Environment::kTv:
      return "tv";
  }
  return "unknown";
}

std::unique_ptr<SearchInterface> MakeInterface(
    Environment env, SearchBackend* backend,
    const VideoCollection& collection, SearchInterface::Config config,
    SessionLog* log, SimulatedClock* clock) {
  switch (env) {
    case Environment::kDesktop:
      return std::make_unique<DesktopInterface>(backend, collection,
                                                std::move(config), log,
                                                clock);
    case Environment::kTv:
      return std::make_unique<TvInterface>(backend, collection,
                                           std::move(config), log, clock);
  }
  return nullptr;
}

Result<SimulatedSession> SessionSimulator::Run(SearchBackend* backend,
                                               const SearchTopic& topic,
                                               const UserModel& user,
                                               const RunConfig& config,
                                               SessionLog* log) const {
  SimulatedSession session;
  session.session_id = config.session_id;
  session.user_id = config.user_id;
  session.topic = topic.id;
  session.environment = config.environment;

  SimulatedClock clock(config.start_time);
  // Private log so the session's own events are recoverable even when the
  // caller passed a shared (multi-session) log.
  SessionLog local_log;

  SearchInterface::Config iface_config;
  iface_config.session_id = config.session_id;
  iface_config.user_id = config.user_id;
  iface_config.topic = topic.id;

  backend->BeginSession();
  std::unique_ptr<SearchInterface> iface =
      MakeInterface(config.environment, backend, *collection_,
                    std::move(iface_config), &local_log, &clock);
  if (iface == nullptr) {
    return Status::InvalidArgument("unknown environment");
  }

  BehaviorPolicy policy(user, topic, *qrels_, config.seed);
  IVR_ASSIGN_OR_RETURN(session.outcome, policy.RunSession(iface.get()));

  session.events = local_log.events();
  if (log != nullptr) {
    for (const InteractionEvent& ev : session.events) {
      log->Append(ev);
    }
  }
  return session;
}

}  // namespace ivr
