#include "ivr/sim/user_model.h"

namespace ivr {

UserModel NoviceUser() {
  UserModel m;
  m.name = "novice";
  m.judgment_accuracy = 0.75;
  m.query_terms = 2;
  m.max_queries = 3;
  m.max_pages = 4;
  m.page_patience = 0.75;
  m.tooltip_propensity = 0.6;
  m.click_if_promising = 0.8;
  m.click_if_unpromising = 0.15;
  m.play_through_fraction = 0.85;
  m.play_abandon_fraction = 0.25;
  m.seek_propensity = 0.2;
  m.metadata_curiosity = 0.2;
  m.visual_example_propensity = 0.08;
  m.explicit_propensity = 0.05;
  return m;
}

UserModel ExpertUser() {
  UserModel m;
  m.name = "expert";
  m.judgment_accuracy = 0.92;
  m.query_terms = 4;
  m.max_queries = 5;
  m.max_pages = 3;
  m.page_patience = 0.6;
  m.tooltip_propensity = 0.35;
  m.click_if_promising = 0.9;
  m.click_if_unpromising = 0.04;
  m.play_through_fraction = 0.95;
  m.play_abandon_fraction = 0.1;
  m.seek_propensity = 0.45;
  m.metadata_curiosity = 0.4;
  m.visual_example_propensity = 0.2;
  m.explicit_propensity = 0.15;
  return m;
}

UserModel CouchViewerUser() {
  UserModel m;
  m.name = "couch-viewer";
  m.judgment_accuracy = 0.8;
  m.query_terms = 1;  // text entry is painful on a remote
  m.max_queries = 2;
  m.max_pages = 5;  // paging is one button press
  m.page_patience = 0.85;
  m.tooltip_propensity = 0.0;  // no pointer
  m.click_if_promising = 0.85;
  m.click_if_unpromising = 0.1;
  m.play_through_fraction = 0.95;  // lean-back: watches things through
  m.play_abandon_fraction = 0.3;
  m.seek_propensity = 0.15;
  m.metadata_curiosity = 0.0;   // no panel
  m.visual_example_propensity = 0.3;  // "more like this" beats typing
  m.explicit_propensity = 0.6;  // coloured keys are right there
  return m;
}

}  // namespace ivr
