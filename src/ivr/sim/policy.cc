#include "ivr/sim/policy.h"

#include <algorithm>
#include <optional>
#include <set>

#include "ivr/core/string_util.h"

namespace ivr {

namespace {

/// Mutable state threaded through one session run.
struct SessionState {
  SessionOutcome outcome;
  std::set<ShotId> seen;
  std::set<ShotId> found;  // perceived-relevant plays (deduplicated)
  TimeMs start = 0;
};

}  // namespace

BehaviorPolicy::BehaviorPolicy(UserModel model, const SearchTopic& topic,
                               const Qrels& qrels, uint64_t seed)
    : model_(std::move(model)),
      topic_(&topic),
      qrels_(&qrels),
      rng_(seed) {}

std::string BehaviorPolicy::FormulateQuery(size_t index) const {
  // First attempt: the topic title (what the user would naturally type).
  // Reformulations draw successive windows of the description, modelling a
  // user recalling more specific vocabulary.
  const std::vector<std::string> title = SplitWhitespace(topic_->title);
  const std::vector<std::string> desc =
      SplitWhitespace(topic_->description);
  std::vector<std::string> words;
  if (index == 0 || desc.empty()) {
    words = title;
  } else {
    const size_t window = std::max<size_t>(model_.query_terms, 1);
    const size_t start = (index * window) % desc.size();
    for (size_t i = 0; i < window; ++i) {
      words.push_back(desc[(start + i) % desc.size()]);
    }
    // Keep one anchoring title word so reformulations stay on topic.
    if (!title.empty()) words.insert(words.begin(), title[0]);
  }
  if (words.size() > model_.query_terms) {
    words.resize(std::max<size_t>(model_.query_terms, 1));
  }
  return Join(words, " ");
}

bool BehaviorPolicy::PerceivedRelevant(ShotId shot) {
  for (const auto& [cached_shot, verdict] : perception_cache_) {
    if (cached_shot == shot) return verdict;
  }
  const bool truth = qrels_->IsRelevant(topic_->id, shot);
  const bool verdict =
      rng_.Bernoulli(model_.judgment_accuracy) ? truth : !truth;
  perception_cache_.emplace_back(shot, verdict);
  return verdict;
}

Result<SessionOutcome> BehaviorPolicy::RunSession(SearchInterface* iface) {
  SessionState state;
  state.start = iface->Now();
  const InterfaceCapabilities caps = iface->capabilities();

  auto out_of_budget = [&]() {
    return iface->Now() - state.start >= model_.session_budget_ms;
  };
  auto satisfied = [&]() {
    return state.found.size() >= model_.satisfaction_target;
  };

  // Examines the current result pages; returns the shot the user wants to
  // use as a "find more like this" example, or nullopt when the user is
  // done with these results.
  auto examine_pages = [&]() -> Result<std::optional<ShotId>> {
    for (size_t page = 0; page < model_.max_pages; ++page) {
      if (page > 0) {
        if (!rng_.Bernoulli(model_.page_patience)) break;
        const Status next = iface->NextPage();
        if (next.IsOutOfRange()) break;  // no more pages
        IVR_RETURN_IF_ERROR(next);
      }
      for (ShotId shot : iface->VisibleShots()) {
        if (out_of_budget() || satisfied()) {
          return std::optional<ShotId>();
        }
        state.seen.insert(shot);
        ++state.outcome.shots_examined;

        // Optionally inspect the surrogate before deciding.
        if (caps.tooltip && rng_.Bernoulli(model_.tooltip_propensity)) {
          IVR_RETURN_IF_ERROR(
              iface->HoverTooltip(shot, rng_.UniformInt(400, 2500)));
        }

        const bool promising = PerceivedRelevant(shot);
        const double p_click = promising ? model_.click_if_promising
                                         : model_.click_if_unpromising;
        if (!rng_.Bernoulli(p_click)) continue;

        IVR_RETURN_IF_ERROR(iface->ClickKeyframe(shot));
        ++state.outcome.clicks;

        // Watch: liked shots play (nearly) through, disliked ones get
        // abandoned early.
        const double mean_fraction = promising
                                         ? model_.play_through_fraction
                                         : model_.play_abandon_fraction;
        const double fraction =
            std::clamp(rng_.Normal(mean_fraction, 0.1), 0.0, 1.0);
        IVR_RETURN_IF_ERROR(iface->Play(fraction));
        ++state.outcome.plays;

        if (caps.seek && promising &&
            rng_.Bernoulli(model_.seek_propensity)) {
          IVR_RETURN_IF_ERROR(iface->Seek(rng_.UniformInt(0, 5000)));
        }
        if (caps.metadata_highlight &&
            rng_.Bernoulli(model_.metadata_curiosity)) {
          IVR_RETURN_IF_ERROR(iface->HighlightMetadata(shot));
        }
        if (caps.explicit_judgment &&
            rng_.Bernoulli(model_.explicit_propensity)) {
          IVR_RETURN_IF_ERROR(iface->MarkRelevance(shot, promising));
          ++state.outcome.explicit_judgments;
        }

        if (promising && fraction > 0.5) {
          if (state.found.insert(shot).second &&
              qrels_->IsRelevant(topic_->id, shot)) {
            ++state.outcome.truly_relevant_found;
          }
          // A liked shot may prompt "find more like this".
          if (caps.visual_example &&
              rng_.Bernoulli(model_.visual_example_propensity)) {
            return std::optional<ShotId>(shot);
          }
        }
      }
    }
    return std::optional<ShotId>();
  };

  for (size_t q = 0; q < std::max<size_t>(model_.max_queries, 1); ++q) {
    if (out_of_budget() || satisfied()) break;
    const std::string query = FormulateQuery(q);
    if (query.empty()) break;
    IVR_RETURN_IF_ERROR(iface->SubmitQuery(query));
    ++state.outcome.queries_issued;
    state.outcome.per_query_results.push_back(iface->results());

    // Examine these results, following up to max_visual_examples
    // query-by-example hops off shots the user liked.
    size_t example_budget = model_.max_visual_examples;
    while (true) {
      IVR_ASSIGN_OR_RETURN(std::optional<ShotId> example,
                           examine_pages());
      if (!example.has_value() || example_budget == 0 ||
          out_of_budget() || satisfied()) {
        break;
      }
      --example_budget;
      IVR_RETURN_IF_ERROR(iface->SubmitVisualExample(*example));
      ++state.outcome.queries_issued;
      state.outcome.per_query_results.push_back(iface->results());
    }
  }
  IVR_RETURN_IF_ERROR(iface->EndSession());

  state.outcome.perceived_relevant.assign(state.found.begin(),
                                          state.found.end());
  state.outcome.distinct_shots_seen = state.seen.size();
  state.outcome.session_ms = iface->Now() - state.start;
  return state.outcome;
}

}  // namespace ivr
