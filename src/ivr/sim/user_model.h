#ifndef IVR_SIM_USER_MODEL_H_
#define IVR_SIM_USER_MODEL_H_

#include <string>

#include "ivr/core/clock.h"

namespace ivr {

/// A GUMS-style stereotype user (Finin [6]): a parameter vector describing
/// how a class of users perceives relevance and behaves at an interface.
/// The simulator draws every stochastic decision from these parameters, so
/// a user model plus a seed fully determines a session.
struct UserModel {
  std::string name = "default";

  // --- perception ---
  /// Probability of correctly assessing a shot's relevance from its
  /// surrogate (keyframe + tooltip). 0.5 = guessing.
  double judgment_accuracy = 0.85;

  // --- search behaviour ---
  /// Terms per issued query (later queries draw deeper description terms).
  size_t query_terms = 3;
  /// Maximum queries (original + reformulations) per session.
  size_t max_queries = 4;
  /// Maximum result pages examined per query.
  size_t max_pages = 3;
  /// Probability of moving to the next page after finishing one (within
  /// max_pages).
  double page_patience = 0.7;
  /// Stop the session once this many shots were played and perceived
  /// relevant (the user is satisfied).
  size_t satisfaction_target = 10;
  /// Wall-clock budget for the session.
  TimeMs session_budget_ms = 10 * kMillisPerMinute;

  // --- result examination ---
  double tooltip_propensity = 0.5;   ///< P(hover before deciding), if able
  double click_if_promising = 0.85;  ///< P(click | perceived relevant)
  double click_if_unpromising = 0.08;
  double play_through_fraction = 0.9;   ///< mean played fraction if liked
  double play_abandon_fraction = 0.15;  ///< mean if disliked
  double seek_propensity = 0.3;         ///< P(seek while playing), if able
  double metadata_curiosity = 0.3;      ///< P(expand metadata), if able
  /// P(issuing "find more like this" after watching a shot the user
  /// liked), if the interface supports query-by-example. At most
  /// `max_visual_examples` per text query.
  double visual_example_propensity = 0.1;
  size_t max_visual_examples = 2;
  /// P(explicitly judging a shot after examining it), if the interface has
  /// judgement keys. Remote-control users do this far more (the keys are
  /// cheap and text is not).
  double explicit_propensity = 0.15;
};

/// Stereotypes used throughout the experiments.

/// A non-expert desktop searcher: moderate accuracy, browses a lot.
UserModel NoviceUser();
/// An experienced searcher: accurate, reformulates often, scans fast.
UserModel ExpertUser();
/// A lean-back TV viewer: avoids typing, judges with the coloured keys,
/// watches clips through.
UserModel CouchViewerUser();

}  // namespace ivr

#endif  // IVR_SIM_USER_MODEL_H_
