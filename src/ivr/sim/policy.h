#ifndef IVR_SIM_POLICY_H_
#define IVR_SIM_POLICY_H_

#include <vector>

#include "ivr/core/result.h"
#include "ivr/core/rng.h"
#include "ivr/iface/interface.h"
#include "ivr/sim/user_model.h"
#include "ivr/video/qrels.h"
#include "ivr/video/topics.h"

namespace ivr {

/// What a simulated session produced, beyond its log.
struct SessionOutcome {
  size_t queries_issued = 0;
  size_t shots_examined = 0;  ///< results looked at (incl. tooltips)
  size_t clicks = 0;
  size_t plays = 0;
  size_t explicit_judgments = 0;
  /// Shots the user played and perceived as relevant.
  std::vector<ShotId> perceived_relevant;
  /// Of those, the ones that truly are (per qrels).
  size_t truly_relevant_found = 0;
  /// Distinct shots displayed to the user across the session.
  size_t distinct_shots_seen = 0;
  TimeMs session_ms = 0;
  /// Result list captured after each query (adaptive systems improve over
  /// these snapshots within a session).
  std::vector<ResultList> per_query_results;
};

/// Drives a SearchInterface the way a stereotype user would work on a
/// search topic, using the qrels as the user's (noisy) internal sense of
/// relevance — the simulated-evaluation methodology of White et al. [22]
/// and Hopfgartner et al. [9,11] that the paper adopts.
class BehaviorPolicy {
 public:
  /// References must outlive the policy.
  BehaviorPolicy(UserModel model, const SearchTopic& topic,
                 const Qrels& qrels, uint64_t seed);

  /// Runs one full session (queries, browsing, playback, judgements,
  /// session end). The interface must be fresh (no query issued yet).
  Result<SessionOutcome> RunSession(SearchInterface* iface);

  /// The query string the policy would issue as its `index`-th attempt —
  /// exposed for tests and for building query logs.
  std::string FormulateQuery(size_t index) const;

 private:
  /// Noisy relevance perception: the truth flipped with probability
  /// (1 - judgment_accuracy), memoised per shot so the user is
  /// self-consistent within the session.
  bool PerceivedRelevant(ShotId shot);

  UserModel model_;
  const SearchTopic* topic_;
  const Qrels* qrels_;
  Rng rng_;
  std::vector<std::pair<ShotId, bool>> perception_cache_;
};

}  // namespace ivr

#endif  // IVR_SIM_POLICY_H_
