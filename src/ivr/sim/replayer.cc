#include "ivr/sim/replayer.h"

namespace ivr {

Result<ReplayedSession> LogReplayer::ReplaySession(
    const std::vector<InteractionEvent>& events,
    SearchBackend* backend) const {
  if (backend == nullptr) {
    return Status::InvalidArgument("backend must not be null");
  }
  ReplayedSession out;
  backend->BeginSession();
  for (const InteractionEvent& ev : events) {
    if (out.session_id.empty()) {
      out.session_id = ev.session_id;
      out.topic = ev.topic;
    } else if (ev.session_id != out.session_id) {
      return Status::InvalidArgument(
          "ReplaySession expects events of a single session; found '" +
          ev.session_id + "' after '" + out.session_id + "'");
    }
    if (ev.type == EventType::kQuerySubmit && !ev.text.empty()) {
      Query query;
      query.text = ev.text;
      out.queries.push_back(ev.text);
      out.per_query_results.push_back(
          backend->Search(query, results_per_query_));
    }
    backend->ObserveEvent(ev);
  }
  return out;
}

Result<std::vector<ReplayedSession>> LogReplayer::ReplayAll(
    const SessionLog& log, SearchBackend* backend) const {
  std::vector<ReplayedSession> out;
  for (const std::string& id : log.SessionIds()) {
    IVR_ASSIGN_OR_RETURN(
        ReplayedSession session,
        ReplaySession(log.EventsForSession(id), backend));
    out.push_back(std::move(session));
  }
  return out;
}

}  // namespace ivr
