#ifndef IVR_OBS_METRICS_H_
#define IVR_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ivr {
namespace obs {

/// Lock-cheap process-wide metrics: named Counters, Gauges and fixed-bucket
/// log-scale LatencyHistograms. The contract the hot paths rely on:
///
///  - registry lookup happens ONCE, at init (a mutexed map lookup); the
///    returned raw pointer is stable for the process lifetime, and every
///    subsequent increment is a single relaxed atomic RMW on it;
///  - snapshots may be taken at any time from any thread while writers are
///    incrementing (each value is read atomically; the snapshot as a whole
///    is not an instantaneous cut, which is fine for monitoring);
///  - ResetValues() zeroes every registered metric without invalidating any
///    cached pointer, so tests and long-lived tools can reuse the registry;
///  - building with -DIVR_OBS_OFF=ON compiles every hot-path mutation
///    (Inc/Set/Add/Record, span recording, stopwatch reads) down to nothing,
///    the contract the bench_e10_micro overhead experiment (E-O1) pins.
///
/// Determinism: none of the primitives below consult a clock or an RNG.
/// Counter values are a pure function of the work performed, so workloads
/// whose per-item work is thread-count-independent (BatchSearch, sweeps)
/// produce bit-identical counter snapshots for any --threads value; time
/// enters only through values *recorded into* histograms, which is why the
/// obs clock below is injectable — under a fake clock even latency
/// histograms are bit-reproducible (stats_golden_test locks this down).

/// The observability time source: microseconds, monotonic. Defaults to
/// std::chrono::steady_clock; tests and deterministic tools install a fake
/// via SetClockForTest (a plain function pointer, swapped atomically, so
/// reading the clock is race-free and cheap).
using ClockFn = int64_t (*)();
int64_t NowUs();
/// Installs `fn` as the clock; nullptr restores the real steady clock.
/// Install before concurrent use; the swap itself is atomic.
void SetClockForTest(ClockFn fn);

/// Measures a duration for histogram recording. Compiles to nothing under
/// IVR_OBS_OFF (no clock read at all).
class Stopwatch {
 public:
  Stopwatch() {
#ifndef IVR_OBS_OFF
    start_ = NowUs();
#endif
  }
  int64_t ElapsedUs() const {
#ifndef IVR_OBS_OFF
    return NowUs() - start_;
#else
    return 0;
#endif
  }

 private:
#ifndef IVR_OBS_OFF
  int64_t start_ = 0;
#endif
};

/// A monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
#ifndef IVR_OBS_OFF
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time level (sessions live, queue depth, ...).
class Gauge {
 public:
  void Set(int64_t v) {
#ifndef IVR_OBS_OFF
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(int64_t delta) {
#ifndef IVR_OBS_OFF
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A copyable/movable relaxed-atomic uint64_t. NOT an observability
/// primitive (it is never compiled out): it exists so snapshot-style value
/// types (SessionContext, HealthReport sources) can carry counters that are
/// safe to increment and read from different threads without giving up
/// copy/move semantics. Copying reads the source relaxed — exactly the
/// monitoring-snapshot semantics callers want.
class RelaxedU64 {
 public:
  RelaxedU64(uint64_t v = 0) : value_(v) {}  // NOLINT: implicit by design
  RelaxedU64(const RelaxedU64& other) : value_(other.load()) {}
  RelaxedU64& operator=(const RelaxedU64& other) {
    value_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedU64& operator=(uint64_t v) {
    value_.store(v, std::memory_order_relaxed);
    return *this;
  }
  RelaxedU64& operator++() {
    value_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t load() const { return value_.load(std::memory_order_relaxed); }
  operator uint64_t() const { return load(); }  // NOLINT: snapshot read

 private:
  std::atomic<uint64_t> value_;
};

/// Point-in-time view of one histogram (plain values, freely copyable).
struct HistogramSnapshot {
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;
  std::vector<uint64_t> buckets;

  /// Quantile estimate: the upper bound of the bucket holding the q-th
  /// recorded value. Exact to within one (log-scale) bucket; 0 when empty.
  int64_t Quantile(double q) const;
};

/// Fixed-bucket log-scale histogram with atomic buckets, built for latency
/// in microseconds but happy with any non-negative magnitude. Values are
/// clamped below at 0. Bucket 0 holds exactly {0}; bucket i >= 1 holds
/// [2^(i-1), 2^i - 1]; the last bucket additionally absorbs everything
/// above its lower bound. Bucketing is a pure function of the value —
/// no clock, no sampling — which keeps snapshots deterministic whenever
/// the recorded values are.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  /// Bucket index for a value (values < 0 are clamped to 0).
  static size_t BucketIndex(int64_t value);
  /// Largest value bucket `i` holds (inclusive); the last bucket reports
  /// its nominal bound even though it is unbounded above.
  static int64_t BucketUpperBound(size_t i);
  /// Smallest value bucket `i` holds.
  static int64_t BucketLowerBound(size_t i);

  void Record(int64_t value) {
#ifndef IVR_OBS_OFF
    if (value < 0) value = 0;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    int64_t prev = max_.load(std::memory_order_relaxed);
    while (value > prev &&
           !max_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
#else
    (void)value;
#endif
  }

  /// Folds `other`'s recorded values into this histogram (exact: merging
  /// per-thread histograms equals recording the union into one).
  void MergeFrom(const LatencyHistogram& other);

  HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// Consistent, sorted-by-name view of every registered metric.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// The process-wide named-metric table. Get* registers on first use and
/// always returns the same pointer for the same name, so call sites cache
/// it (member pointer resolved in a constructor, or a function-local
/// static) and never touch the registry mutex on the hot path.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  /// Zeroes every registered metric. Registrations (and therefore every
  /// pointer previously handed out) stay valid.
  void ResetValues();

  RegistrySnapshot TakeSnapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace obs
}  // namespace ivr

#endif  // IVR_OBS_METRICS_H_
