#ifndef IVR_OBS_TRACE_H_
#define IVR_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "ivr/core/status.h"
#include "ivr/obs/metrics.h"

namespace ivr {
namespace obs {

/// One completed span: where a named stretch of work started, how long it
/// took, who its parent was, and any key=value annotations attached while
/// it ran. Times come from the obs clock (NowUs — injectable, so traces
/// recorded under a fake clock are deterministic).
struct TraceEvent {
  std::string name;
  int64_t start_us = 0;
  int64_t duration_us = 0;
  /// Process-unique span id (1-based; 0 is "no span").
  uint64_t id = 0;
  /// Enclosing span on the same thread at the time this span opened,
  /// 0 for a root span.
  uint64_t parent = 0;
  /// Small stable per-thread ordinal (1-based, assigned on first use) —
  /// NOT the OS thread id, so single-threaded traces are reproducible.
  uint32_t tid = 0;
  std::vector<std::pair<std::string, std::string>> annotations;
};

/// The process-wide trace sink: a bounded ring buffer per recording thread,
/// drained to JSONL on flush. Recording is OFF by default — a disabled
/// recorder costs one relaxed atomic load per would-be span. When a ring
/// fills, the oldest event is dropped and counted (monitoring must degrade,
/// never block or grow without bound).
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Starts recording, with at most `ring_capacity` buffered events per
  /// thread. Clears previously buffered events and the drop counter.
  void Enable(size_t ring_capacity = kDefaultRingCapacity);
  /// Stops recording and discards everything buffered.
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Events dropped to ring overflow since Enable().
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Removes and returns every buffered event, across all threads, sorted
  /// by (start_us, id) so the output order is stable.
  std::vector<TraceEvent> Drain();

  /// Drains and writes JSONL: one header object carrying the schema
  /// version and drop count, then one object per event. Atomic write.
  Status FlushToFile(const std::string& path);

  /// Buffers one completed event on the calling thread's ring.
  void Record(TraceEvent event);

  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// The innermost open span id on this thread (0 = none) and the stack
  /// ops ScopedSpan uses to maintain it.
  static uint64_t CurrentParent();
  static void PushSpan(uint64_t id);
  static void PopSpan();

  static constexpr size_t kDefaultRingCapacity = 8192;
  static constexpr int kTraceSchemaVersion = 1;

 private:
  struct Ring {
    std::mutex mu;
    std::deque<TraceEvent> events;
  };

  Ring* ThreadRing();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint32_t> next_tid_{1};
  size_t capacity_ = kDefaultRingCapacity;  // guarded by mu_
  mutable std::mutex mu_;                   // guards rings_
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// Per-thread ordinal of the calling thread (assigned on first use).
uint32_t TraceThreadId();

#ifndef IVR_OBS_OFF

/// RAII span: opens at construction, records at destruction. When the
/// recorder is disabled the constructor is one relaxed load and the
/// destructor a branch. `name` must outlive the span (string literals).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    TraceRecorder& recorder = TraceRecorder::Global();
    if (!recorder.enabled()) return;
    active_ = true;
    event_.name = name;
    event_.id = recorder.NextSpanId();
    event_.parent = TraceRecorder::CurrentParent();
    event_.tid = TraceThreadId();
    event_.start_us = NowUs();
    TraceRecorder::PushSpan(event_.id);
  }

  ~ScopedSpan() {
    if (!active_) return;
    event_.duration_us = NowUs() - event_.start_us;
    TraceRecorder::PopSpan();
    TraceRecorder::Global().Record(std::move(event_));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a key=value annotation (no-op when the span is inactive).
  void Annotate(const char* key, std::string value) {
    if (active_) event_.annotations.emplace_back(key, std::move(value));
  }

 private:
  bool active_ = false;
  TraceEvent event_;
};

#else  // IVR_OBS_OFF

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  void Annotate(const char*, std::string) {}
};

#endif  // IVR_OBS_OFF

}  // namespace obs
}  // namespace ivr

#endif  // IVR_OBS_TRACE_H_
