#include "ivr/obs/trace.h"

#include <algorithm>

#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"

namespace ivr {
namespace obs {
namespace {

std::atomic<uint32_t>* GlobalTidCounter() {
  static std::atomic<uint32_t>* counter = new std::atomic<uint32_t>(1);
  return counter;
}

thread_local uint64_t t_span_stack[64];
thread_local size_t t_span_depth = 0;

}  // namespace

uint32_t TraceThreadId() {
  thread_local uint32_t tid =
      GlobalTidCounter()->fetch_add(1, std::memory_order_relaxed);
  return tid;
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Enable(size_t ring_capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  for (const std::unique_ptr<Ring>& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->events.clear();
  }
}

TraceRecorder::Ring* TraceRecorder::ThreadRing() {
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(std::make_unique<Ring>());
    ring = rings_.back().get();
  }
  return ring;
}

void TraceRecorder::Record(TraceEvent event) {
  if (!enabled()) return;
  size_t capacity;
  {
    std::lock_guard<std::mutex> lock(mu_);
    capacity = capacity_;
  }
  Ring* ring = ThreadRing();
  std::lock_guard<std::mutex> lock(ring->mu);
  if (ring->events.size() >= capacity) {
    ring->events.pop_front();  // drop-oldest, never block
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ring->events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Drain() {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    for (TraceEvent& event : ring->events) {
      out.push_back(std::move(event));
    }
    ring->events.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.id < b.id;
            });
  return out;
}

Status TraceRecorder::FlushToFile(const std::string& path) {
  const uint64_t dropped_events = dropped();
  const std::vector<TraceEvent> events = Drain();
  std::string out = StrFormat(
      "{\"schema_version\": %d, \"type\": \"ivr.trace\", "
      "\"events\": %zu, \"dropped\": %llu}\n",
      kTraceSchemaVersion, events.size(),
      static_cast<unsigned long long>(dropped_events));
  for (const TraceEvent& event : events) {
    out += StrFormat(
        "{\"name\": \"%s\", \"ts\": %lld, \"dur\": %lld, \"id\": %llu, "
        "\"parent\": %llu, \"tid\": %u",
        JsonEscape(event.name).c_str(),
        static_cast<long long>(event.start_us),
        static_cast<long long>(event.duration_us),
        static_cast<unsigned long long>(event.id),
        static_cast<unsigned long long>(event.parent), event.tid);
    if (!event.annotations.empty()) {
      out += ", \"args\": {";
      for (size_t i = 0; i < event.annotations.size(); ++i) {
        if (i > 0) out += ", ";
        out += StrFormat("\"%s\": \"%s\"",
                         JsonEscape(event.annotations[i].first).c_str(),
                         JsonEscape(event.annotations[i].second).c_str());
      }
      out += "}";
    }
    out += "}\n";
  }
  return WriteFileAtomic(path, out);
}

uint64_t TraceRecorder::CurrentParent() {
  return t_span_depth == 0 ? 0 : t_span_stack[t_span_depth - 1];
}

void TraceRecorder::PushSpan(uint64_t id) {
  if (t_span_depth <
      sizeof(t_span_stack) / sizeof(t_span_stack[0])) {
    t_span_stack[t_span_depth] = id;
  }
  ++t_span_depth;
}

void TraceRecorder::PopSpan() {
  if (t_span_depth > 0) --t_span_depth;
}

}  // namespace obs
}  // namespace ivr
