#include "ivr/obs/report.h"

#include <cstdio>

#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"
#include "ivr/obs/metrics.h"
#include "ivr/obs/trace.h"

namespace ivr {
namespace obs {
namespace {

std::string U64(uint64_t v) {
  return StrFormat("%llu", static_cast<unsigned long long>(v));
}

std::string I64(int64_t v) {
  return StrFormat("%lld", static_cast<long long>(v));
}

}  // namespace

std::string StatsJson() {
  const RegistrySnapshot snap = Registry::Global().TakeSnapshot();
  const std::vector<FaultInjector::SiteStats> faults =
      FaultInjector::Global().PerSiteStats();

  std::string out;
  out += StrFormat("{\n  \"schema_version\": %d,\n", kStatsSchemaVersion);

  out += "  \"counters\": {";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat("    \"%s\": %s",
                     JsonEscape(snap.counters[i].first).c_str(),
                     U64(snap.counters[i].second).c_str());
  }
  out += snap.counters.empty() ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat("    \"%s\": %s",
                     JsonEscape(snap.gauges[i].first).c_str(),
                     I64(snap.gauges[i].second).c_str());
  }
  out += snap.gauges.empty() ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    const HistogramSnapshot& h = snap.histograms[i].second;
    out += StrFormat(
        "    \"%s\": {\"count\": %s, \"sum\": %s, \"max\": %s, "
        "\"p50\": %s, \"p90\": %s, \"p99\": %s, \"buckets\": [",
        JsonEscape(snap.histograms[i].first).c_str(), U64(h.count).c_str(),
        I64(h.sum).c_str(), I64(h.max).c_str(),
        I64(h.Quantile(0.50)).c_str(), I64(h.Quantile(0.90)).c_str(),
        I64(h.Quantile(0.99)).c_str());
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += U64(h.buckets[b]);
    }
    out += "]}";
  }
  out += snap.histograms.empty() ? "},\n" : "\n  },\n";

  out += "  \"faults\": {";
  for (size_t i = 0; i < faults.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat("    \"%s\": {\"calls\": %s, \"injected\": %s}",
                     JsonEscape(faults[i].site).c_str(),
                     U64(faults[i].calls).c_str(),
                     U64(faults[i].injected).c_str());
  }
  out += faults.empty() ? "},\n" : "\n  },\n";

  // Derived view of the result cache: every "cache."-prefixed counter and
  // gauge with the prefix stripped, grouped so cache behaviour can be read
  // off one object. Empty (but present) when no cache was attached —
  // an addition, so the schema version stays at 1.
  out += "  \"cache\": {";
  constexpr const char kCachePrefix[] = "cache.";
  constexpr size_t kCachePrefixLen = sizeof(kCachePrefix) - 1;
  size_t cache_keys = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind(kCachePrefix, 0) != 0) continue;
    out += cache_keys == 0 ? "\n" : ",\n";
    out += StrFormat("    \"%s\": %s",
                     JsonEscape(name.substr(kCachePrefixLen)).c_str(),
                     U64(value).c_str());
    ++cache_keys;
  }
  for (const auto& [name, value] : snap.gauges) {
    if (name.rfind(kCachePrefix, 0) != 0) continue;
    out += cache_keys == 0 ? "\n" : ",\n";
    out += StrFormat("    \"%s\": %s",
                     JsonEscape(name.substr(kCachePrefixLen)).c_str(),
                     I64(value).c_str());
    ++cache_keys;
  }
  out += cache_keys == 0 ? "}\n" : "\n  }\n";

  out += "}\n";
  return out;
}

Status WriteStatsJson(const std::string& path) {
  return WriteFileAtomic(path, StatsJson());
}

std::string StatsSummary() {
  const RegistrySnapshot snap = Registry::Global().TakeSnapshot();
  std::string out = "-- observability summary --\n";
  size_t printed = 0;
  for (const auto& [name, value] : snap.counters) {
    if (value == 0) continue;
    out += StrFormat("  %-36s %s\n", name.c_str(), U64(value).c_str());
    ++printed;
  }
  for (const auto& [name, value] : snap.gauges) {
    out += StrFormat("  %-36s %s\n", name.c_str(), I64(value).c_str());
    ++printed;
  }
  for (const auto& [name, h] : snap.histograms) {
    if (h.count == 0) continue;
    out += StrFormat(
        "  %-36s count=%s p50<=%sus p95<=%sus max=%sus\n", name.c_str(),
        U64(h.count).c_str(), I64(h.Quantile(0.50)).c_str(),
        I64(h.Quantile(0.95)).c_str(), I64(h.max).c_str());
    ++printed;
  }
  if (printed == 0) out += "  (no activity recorded)\n";
  return out;
}

Status ConfigureObsFromArgs(const ArgParser& args) {
  if (args.Has("trace")) {
    if (args.GetString("trace").empty()) {
      return Status::InvalidArgument("--trace requires an output path");
    }
    TraceRecorder::Global().Enable();
  }
  return Status::OK();
}

Status WriteObsOutputsFromArgs(const ArgParser& args) {
  Status first = Status::OK();
  if (args.Has("stats-json")) {
    const std::string path = args.GetString("stats-json");
    if (path.empty()) {
      first = Status::InvalidArgument("--stats-json requires an output path");
    } else {
      first = WriteStatsJson(path);
    }
  }
  if (args.Has("trace")) {
    const Status trace_status =
        TraceRecorder::Global().FlushToFile(args.GetString("trace"));
    if (first.ok()) first = trace_status;
  }
  return first;
}

int FinishToolWithObs(const ArgParser& args, int rc) {
  const Status status = WriteObsOutputsFromArgs(args);
  if (!status.ok()) {
    std::fprintf(stderr, "obs output failed: %s\n",
                 status.ToString().c_str());
    if (rc == 0) rc = 1;
  }
  return rc;
}

}  // namespace obs
}  // namespace ivr
