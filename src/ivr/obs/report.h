#ifndef IVR_OBS_REPORT_H_
#define IVR_OBS_REPORT_H_

#include <string>

#include "ivr/core/args.h"
#include "ivr/core/status.h"

namespace ivr {
namespace obs {

/// Version of the --stats-json document layout. Bump when a key is
/// renamed, removed, or its meaning changes; additions are backwards
/// compatible and do not bump it.
inline constexpr int kStatsSchemaVersion = 1;

/// The machine-readable stats snapshot: every registered counter, gauge
/// and histogram (sorted by name) plus the fault injector's per-site
/// fire tallies, as deterministic pretty-printed JSON:
///
///   {
///     "schema_version": 1,
///     "counters":   {"name": <uint>, ...},
///     "gauges":     {"name": <int>, ...},
///     "histograms": {"name": {"count": n, "sum": s, "max": m,
///                             "p50": q, "p90": q, "p99": q,
///                             "buckets": [<uint> x 40]}, ...},
///     "faults":     {"site": {"calls": n, "injected": m}, ...},
///     "cache":      {"hits": n, "misses": n, ...}  // cache.* metrics,
///                                                  // prefix stripped
///   }
///
/// Byte-for-byte reproducible whenever the recorded values are (fixed
/// workload + fake clock), for any thread count — the property
/// stats_golden_test pins.
std::string StatsJson();

/// Writes StatsJson() atomically.
Status WriteStatsJson(const std::string& path);

/// Human-readable summary: non-zero counters, all gauges, and non-empty
/// histograms with count/p50/p95/max. Multi-line, trailing newline; what
/// ivr_serve_sim and ivr_eval print on stderr at exit.
std::string StatsSummary();

/// Tool glue, start of main: enables tracing when --trace is present.
/// (Metrics are always on unless compiled out with IVR_OBS_OFF.)
Status ConfigureObsFromArgs(const ArgParser& args);

/// Tool glue, end of main: writes --stats-json and flushes --trace when
/// the flags are present. Returns the first failure; no-op otherwise.
Status WriteObsOutputsFromArgs(const ArgParser& args);

/// Convenience exit wrapper: WriteObsOutputsFromArgs, reporting any
/// failure on stderr. Returns `rc`, or 1 when outputs failed and `rc`
/// was 0 (an explicitly requested snapshot that cannot be written is an
/// error, not a shrug).
int FinishToolWithObs(const ArgParser& args, int rc);

}  // namespace obs
}  // namespace ivr

#endif  // IVR_OBS_REPORT_H_
