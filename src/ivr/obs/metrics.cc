#include "ivr/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

namespace ivr {
namespace obs {
namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<ClockFn> g_clock{&SteadyNowUs};

}  // namespace

int64_t NowUs() { return g_clock.load(std::memory_order_relaxed)(); }

void SetClockForTest(ClockFn fn) {
  g_clock.store(fn != nullptr ? fn : &SteadyNowUs,
                std::memory_order_relaxed);
}

size_t LatencyHistogram::BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  const size_t width =
      static_cast<size_t>(std::bit_width(static_cast<uint64_t>(value)));
  return std::min(width, kNumBuckets - 1);
}

int64_t LatencyHistogram::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= 63) return INT64_MAX;
  return static_cast<int64_t>((uint64_t{1} << i) - 1);
}

int64_t LatencyHistogram::BucketLowerBound(size_t i) {
  if (i == 0) return 0;
  return static_cast<int64_t>(uint64_t{1} << (i - 1));
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  uint64_t merged = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    buckets_[i].fetch_add(n, std::memory_order_relaxed);
    merged += n;
  }
  count_.fetch_add(merged, std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const int64_t other_max = other.max_.load(std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (other_max > prev &&
         !max_.compare_exchange_weak(prev, other_max,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void LatencyHistogram::Reset() {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

int64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the 1-based rank is ceil(q * count), clamped into
  // [1, count]. Flooring here would systematically report one value too
  // low whenever q*count is fractional (p50 of 7 values must be the 4th,
  // not the 3rd).
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return LatencyHistogram::BucketUpperBound(i);
  }
  return max;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<LatencyHistogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

void Registry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

RegistrySnapshot Registry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snap;
}

}  // namespace obs
}  // namespace ivr
