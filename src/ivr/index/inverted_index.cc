#include "ivr/index/inverted_index.h"

#include <map>

namespace ivr {

Status InvertedIndex::IndexText(DocId doc, std::string_view text) {
  return IndexTerms(doc, analyzer_.Analyze(text));
}

Status InvertedIndex::IndexTerms(DocId doc,
                                 const std::vector<std::string>& terms) {
  if (doc != doc_lengths_.size()) {
    return Status::FailedPrecondition(
        "documents must be indexed in dense ascending DocId order");
  }
  // Aggregate within-document term frequencies first so each posting list
  // receives a single Add per document.
  std::map<TermId, uint32_t> tf;
  for (const std::string& term : terms) {
    const TermId id = vocabulary_.GetOrAdd(term);
    ++tf[id];
  }
  if (vocabulary_.size() > postings_.size()) {
    postings_.resize(vocabulary_.size());
  }
  for (const auto& [id, count] : tf) {
    postings_[id].Add(doc, count);
  }
  doc_lengths_.push_back(static_cast<uint32_t>(terms.size()));
  total_term_count_ += terms.size();
  return Status::OK();
}

double InvertedIndex::average_document_length() const {
  if (doc_lengths_.empty()) return 0.0;
  return static_cast<double>(total_term_count_) /
         static_cast<double>(doc_lengths_.size());
}

const PostingList* InvertedIndex::Lookup(std::string_view raw_term) const {
  const std::string analyzed = analyzer_.AnalyzeToken(raw_term);
  if (analyzed.empty()) return nullptr;
  return LookupAnalyzed(analyzed);
}

const PostingList* InvertedIndex::LookupAnalyzed(
    std::string_view term) const {
  const TermId id = vocabulary_.Lookup(term);
  if (id == kInvalidTermId) return nullptr;
  return LookupId(id);
}

const PostingList* InvertedIndex::LookupId(TermId id) const {
  if (id >= postings_.size()) return nullptr;
  return &postings_[id];
}

size_t InvertedIndex::DocumentFrequency(std::string_view term) const {
  const PostingList* pl = LookupAnalyzed(term);
  return pl == nullptr ? 0 : pl->document_frequency();
}

}  // namespace ivr
