#include "ivr/index/posting_list.h"

#include <algorithm>

namespace ivr {

void PostingList::Add(DocId doc, uint32_t count) {
  if (count == 0) return;
  collection_frequency_ += count;
  if (!postings_.empty() && postings_.back().doc == doc) {
    postings_.back().tf += count;
    return;
  }
  postings_.push_back(Posting{doc, count});
}

const Posting* PostingList::Find(DocId doc) const {
  auto it = std::lower_bound(
      postings_.begin(), postings_.end(), doc,
      [](const Posting& p, DocId d) { return p.doc < d; });
  if (it == postings_.end() || it->doc != doc) {
    return nullptr;
  }
  return &*it;
}

}  // namespace ivr
