#include "ivr/index/document_store.h"

#include <utility>

namespace ivr {

Result<DocId> DocumentStore::Add(Document doc) {
  if (doc.external_id.empty()) {
    return Status::InvalidArgument("document external_id must not be empty");
  }
  if (by_external_id_.count(doc.external_id) > 0) {
    return Status::AlreadyExists("duplicate external_id: " + doc.external_id);
  }
  const DocId id = static_cast<DocId>(docs_.size());
  doc.id = id;
  by_external_id_.emplace(doc.external_id, id);
  docs_.push_back(std::move(doc));
  return id;
}

Result<const Document*> DocumentStore::Get(DocId id) const {
  if (id >= docs_.size()) {
    return Status::OutOfRange("DocId out of range");
  }
  return &docs_[id];
}

Result<DocId> DocumentStore::LookupExternal(
    std::string_view external_id) const {
  auto it = by_external_id_.find(std::string(external_id));
  if (it == by_external_id_.end()) {
    return Status::NotFound("no document with external_id: " +
                            std::string(external_id));
  }
  return it->second;
}

}  // namespace ivr
