#ifndef IVR_INDEX_DOCUMENT_STORE_H_
#define IVR_INDEX_DOCUMENT_STORE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/index/document.h"

namespace ivr {

/// Owning, append-only store of documents with dense DocIds and an
/// external-id lookup. Mirrors the "document table" every IR engine keeps
/// next to its inverted index.
class DocumentStore {
 public:
  DocumentStore() = default;

  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;
  DocumentStore(DocumentStore&&) = default;
  DocumentStore& operator=(DocumentStore&&) = default;

  /// Adds a document (id field is overwritten with the assigned DocId).
  /// Fails with AlreadyExists if the external id is taken and
  /// InvalidArgument if it is empty.
  Result<DocId> Add(Document doc);

  /// Returns the document for `id` or OutOfRange.
  Result<const Document*> Get(DocId id) const;

  /// Returns the DocId for an external id or NotFound.
  Result<DocId> LookupExternal(std::string_view external_id) const;

  size_t size() const { return docs_.size(); }
  bool empty() const { return docs_.empty(); }

  /// Direct access for iteration; index == DocId.
  const std::vector<Document>& documents() const { return docs_; }

 private:
  std::vector<Document> docs_;
  std::unordered_map<std::string, DocId> by_external_id_;
};

}  // namespace ivr

#endif  // IVR_INDEX_DOCUMENT_STORE_H_
