#ifndef IVR_INDEX_SCORE_ACCUMULATOR_H_
#define IVR_INDEX_SCORE_ACCUMULATOR_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ivr/index/document.h"

namespace ivr {

/// Flat-array score accumulator for term-at-a-time retrieval. One slot per
/// document, plus an epoch stamp per slot so Reset() is O(1): a slot whose
/// stamp is stale reads as "untouched" without ever clearing the array.
/// The buffers are reused across queries, which is what makes batched
/// sweeps allocation-free in steady state — keep one accumulator per
/// thread and Reset() it between queries.
class ScoreAccumulator {
 public:
  /// Prepares for a new query over `num_documents` documents. Grows the
  /// buffers if the index grew; never shrinks.
  void Reset(size_t num_documents) {
    if (epochs_.size() < num_documents) {
      epochs_.resize(num_documents, 0);
      scores_.resize(num_documents, 0.0);
    }
    touched_.clear();
    if (++epoch_ == 0) {
      // uint32 wrap-around (once per 4G queries): clear stamps so no stale
      // slot can alias the new epoch.
      std::fill(epochs_.begin(), epochs_.end(), 0u);
      epoch_ = 1;
    }
  }

  /// Adds `delta` to the document's score. First touch in this epoch
  /// registers the document as a candidate.
  void Add(DocId doc, double delta) {
    if (epochs_[doc] != epoch_) {
      epochs_[doc] = epoch_;
      scores_[doc] = delta;
      touched_.push_back(doc);
    } else {
      scores_[doc] += delta;
    }
  }

  /// Score accumulated for `doc` this epoch (0 when untouched).
  double score(DocId doc) const {
    return doc < epochs_.size() && epochs_[doc] == epoch_ ? scores_[doc]
                                                          : 0.0;
  }

  /// Documents touched this epoch, in first-touch order.
  const std::vector<DocId>& touched() const { return touched_; }

 private:
  std::vector<double> scores_;
  std::vector<uint32_t> epochs_;
  std::vector<DocId> touched_;
  uint32_t epoch_ = 0;
};

}  // namespace ivr

#endif  // IVR_INDEX_SCORE_ACCUMULATOR_H_
