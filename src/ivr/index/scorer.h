#ifndef IVR_INDEX_SCORER_H_
#define IVR_INDEX_SCORER_H_

#include <memory>
#include <string>

#include "ivr/index/inverted_index.h"

namespace ivr {

/// A term-at-a-time scoring function: given collection statistics and one
/// (term, document) observation, produce the document's partial score for
/// that query term. Scores are additive across query terms.
class Scorer {
 public:
  virtual ~Scorer() = default;

  /// Partial score contribution of a term occurring `tf` times in a
  /// document of length `doc_len`, where the term occurs in `df` documents
  /// with total collection frequency `cf`. `query_tf` is the term's
  /// frequency in the query.
  virtual double Score(const InvertedIndex& index, uint32_t tf,
                       uint32_t doc_len, size_t df, uint64_t cf,
                       uint32_t query_tf) const = 0;

  /// Human-readable name for reports ("bm25", "tfidf", "lm-dirichlet").
  virtual std::string name() const = 0;
};

/// Okapi BM25. Standard parameters k1 (term-frequency saturation) and b
/// (length normalisation).
class Bm25Scorer : public Scorer {
 public:
  explicit Bm25Scorer(double k1 = 1.2, double b = 0.75) : k1_(k1), b_(b) {}
  double Score(const InvertedIndex& index, uint32_t tf, uint32_t doc_len,
               size_t df, uint64_t cf, uint32_t query_tf) const override;
  std::string name() const override { return "bm25"; }

  double k1() const { return k1_; }
  double b() const { return b_; }

 private:
  double k1_;
  double b_;
};

/// Classic log TF * IDF with cosine-free length normalisation (divides by
/// document length).
class TfIdfScorer : public Scorer {
 public:
  double Score(const InvertedIndex& index, uint32_t tf, uint32_t doc_len,
               size_t df, uint64_t cf, uint32_t query_tf) const override;
  std::string name() const override { return "tfidf"; }
};

/// Query-likelihood language model with Dirichlet smoothing, expressed as
/// an additive positive score (shifted log-likelihood ratio so that it is
/// comparable across documents and safe to accumulate term-at-a-time).
class DirichletLmScorer : public Scorer {
 public:
  explicit DirichletLmScorer(double mu = 2000.0) : mu_(mu) {}
  double Score(const InvertedIndex& index, uint32_t tf, uint32_t doc_len,
               size_t df, uint64_t cf, uint32_t query_tf) const override;
  std::string name() const override { return "lm-dirichlet"; }

  double mu() const { return mu_; }

 private:
  double mu_;
};

/// Factory by name ("bm25" | "tfidf" | "lm"), nullptr for unknown names.
std::unique_ptr<Scorer> MakeScorer(const std::string& name);

}  // namespace ivr

#endif  // IVR_INDEX_SCORER_H_
