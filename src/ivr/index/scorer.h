#ifndef IVR_INDEX_SCORER_H_
#define IVR_INDEX_SCORER_H_

#include <memory>
#include <string>

#include "ivr/index/inverted_index.h"

namespace ivr {

/// Per-query-term scoring state, computed once per (term, query) by
/// Scorer::Prepare and consumed for every posting of the term by
/// Scorer::ScorePosting. Everything that depends only on collection
/// statistics and the query (IDF, length-normalisation coefficients,
/// query-term saturation) lives here, so the per-posting hot loop is free
/// of log/division recomputation.
struct PreparedTerm {
  // Collection statistics, kept for the generic fallback path (a custom
  // Scorer that overrides neither Prepare nor ScorePosting still works).
  size_t df = 0;
  uint64_t cf = 0;
  uint32_t query_tf = 1;
  // Scorer-specific constants; meaning documented at each Prepare
  // override.
  double c0 = 0.0;
  double c1 = 0.0;
  double c2 = 0.0;
};

/// A term-at-a-time scoring function: given collection statistics and one
/// (term, document) observation, produce the document's partial score for
/// that query term. Scores are additive across query terms.
class Scorer {
 public:
  virtual ~Scorer() = default;

  /// Partial score contribution of a term occurring `tf` times in a
  /// document of length `doc_len`, where the term occurs in `df` documents
  /// with total collection frequency `cf`. `query_tf` is the term's
  /// frequency in the query.
  virtual double Score(const CollectionStats& stats, uint32_t tf,
                       uint32_t doc_len, size_t df, uint64_t cf,
                       uint32_t query_tf) const = 0;

  /// Precomputes the per-term constants used by ScorePosting. The default
  /// implementation just stashes the statistics and defers to Score().
  virtual PreparedTerm Prepare(const CollectionStats& stats, size_t df,
                               uint64_t cf, uint32_t query_tf) const;

  /// Scores one posting using a prepared term context. Must agree with
  /// Score() on ranking order; the hot path (Searcher) only calls this.
  virtual double ScorePosting(const CollectionStats& stats,
                              const PreparedTerm& term, uint32_t tf,
                              uint32_t doc_len) const;

  /// Human-readable name for reports ("bm25", "tfidf", "lm-dirichlet").
  virtual std::string name() const = 0;
};

/// Okapi BM25. Standard parameters k1 (term-frequency saturation) and b
/// (length normalisation); k3 saturates repeated query terms (the Okapi
/// third component ((k3+1)*qtf)/(k3+qtf)), so a term typed twice counts
/// less than twice — not linearly, which double-counts.
class Bm25Scorer : public Scorer {
 public:
  explicit Bm25Scorer(double k1 = 1.2, double b = 0.75, double k3 = 8.0)
      : k1_(k1), b_(b), k3_(k3) {}
  double Score(const CollectionStats& stats, uint32_t tf, uint32_t doc_len,
               size_t df, uint64_t cf, uint32_t query_tf) const override;
  PreparedTerm Prepare(const CollectionStats& stats, size_t df, uint64_t cf,
                       uint32_t query_tf) const override;
  double ScorePosting(const CollectionStats& stats, const PreparedTerm& term,
                      uint32_t tf, uint32_t doc_len) const override;
  std::string name() const override { return "bm25"; }

  double k1() const { return k1_; }
  double b() const { return b_; }
  double k3() const { return k3_; }

 private:
  double k1_;
  double b_;
  double k3_;
};

/// Classic log TF * IDF with cosine-free length normalisation (divides by
/// document length).
class TfIdfScorer : public Scorer {
 public:
  double Score(const CollectionStats& stats, uint32_t tf, uint32_t doc_len,
               size_t df, uint64_t cf, uint32_t query_tf) const override;
  PreparedTerm Prepare(const CollectionStats& stats, size_t df, uint64_t cf,
                       uint32_t query_tf) const override;
  double ScorePosting(const CollectionStats& stats, const PreparedTerm& term,
                      uint32_t tf, uint32_t doc_len) const override;
  std::string name() const override { return "tfidf"; }
};

/// Query-likelihood language model with Dirichlet smoothing, expressed as
/// an additive positive score (shifted log-likelihood ratio so that it is
/// comparable across documents and safe to accumulate term-at-a-time).
class DirichletLmScorer : public Scorer {
 public:
  explicit DirichletLmScorer(double mu = 2000.0) : mu_(mu) {}
  double Score(const CollectionStats& stats, uint32_t tf, uint32_t doc_len,
               size_t df, uint64_t cf, uint32_t query_tf) const override;
  PreparedTerm Prepare(const CollectionStats& stats, size_t df, uint64_t cf,
                       uint32_t query_tf) const override;
  double ScorePosting(const CollectionStats& stats, const PreparedTerm& term,
                      uint32_t tf, uint32_t doc_len) const override;
  std::string name() const override { return "lm-dirichlet"; }

  double mu() const { return mu_; }

 private:
  double mu_;
};

/// Factory by name ("bm25" | "tfidf" | "lm"), nullptr for unknown names.
std::unique_ptr<Scorer> MakeScorer(const std::string& name);

}  // namespace ivr

#endif  // IVR_INDEX_SCORER_H_
