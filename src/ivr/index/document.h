#ifndef IVR_INDEX_DOCUMENT_H_
#define IVR_INDEX_DOCUMENT_H_

#include <cstdint>
#include <map>
#include <string>

namespace ivr {

/// Dense identifier of a document inside one DocumentStore / index.
using DocId = uint32_t;
constexpr DocId kInvalidDocId = static_cast<DocId>(-1);

/// A retrievable text unit. In the video framework a document corresponds
/// to one shot (its ASR transcript plus metadata), but the index layer is
/// agnostic to that.
struct Document {
  /// Assigned by the DocumentStore on insertion.
  DocId id = kInvalidDocId;
  /// Application-level key, e.g. "video12/shot3". Unique per store.
  std::string external_id;
  /// Main body text (for shots: the ASR transcript).
  std::string text;
  /// Named auxiliary fields ("title", "metadata", ...), indexed together
  /// with the body but kept separate for display.
  std::map<std::string, std::string> fields;
};

}  // namespace ivr

#endif  // IVR_INDEX_DOCUMENT_H_
