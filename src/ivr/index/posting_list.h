#ifndef IVR_INDEX_POSTING_LIST_H_
#define IVR_INDEX_POSTING_LIST_H_

#include <cstdint>
#include <vector>

#include "ivr/index/document.h"

namespace ivr {

/// One (document, term-frequency) entry in a posting list.
struct Posting {
  DocId doc = kInvalidDocId;
  uint32_t tf = 0;

  friend bool operator==(const Posting& a, const Posting& b) {
    return a.doc == b.doc && a.tf == b.tf;
  }
};

/// Postings for one term, kept sorted by ascending DocId. Documents are
/// appended in id order during indexing; Add() tolerates repeated calls for
/// the same (latest) document by accumulating the term frequency.
class PostingList {
 public:
  PostingList() = default;

  /// Records `count` occurrences of the term in `doc`. Requires doc ids to
  /// arrive in non-decreasing order (the index builder guarantees this).
  void Add(DocId doc, uint32_t count = 1);

  /// Number of documents containing the term.
  size_t document_frequency() const { return postings_.size(); }
  /// Total occurrences of the term across the collection.
  uint64_t collection_frequency() const { return collection_frequency_; }

  const std::vector<Posting>& postings() const { return postings_; }

  /// Binary-searches for a document; returns nullptr if absent.
  const Posting* Find(DocId doc) const;

 private:
  std::vector<Posting> postings_;
  uint64_t collection_frequency_ = 0;
};

}  // namespace ivr

#endif  // IVR_INDEX_POSTING_LIST_H_
