#ifndef IVR_INDEX_INVERTED_INDEX_H_
#define IVR_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/index/document.h"
#include "ivr/index/posting_list.h"
#include "ivr/text/analyzer.h"
#include "ivr/text/vocabulary.h"

namespace ivr {

/// Collection-wide statistics the scorers depend on. For a segmented
/// collection these are exact integer sums over the segments, so a scorer
/// prepared from the summed stats is bit-identical to one prepared from a
/// monolithic index over the same documents.
struct CollectionStats {
  size_t num_documents = 0;
  uint64_t total_term_count = 0;

  /// Average document length in terms (0 when empty). Must match
  /// InvertedIndex::average_document_length() exactly: one double division
  /// of the exact integer sums.
  double average_document_length() const {
    if (num_documents == 0) return 0.0;
    return static_cast<double>(total_term_count) /
           static_cast<double>(num_documents);
  }

  CollectionStats& operator+=(const CollectionStats& other) {
    num_documents += other.num_documents;
    total_term_count += other.total_term_count;
    return *this;
  }
};

/// In-memory inverted index over analysed text. Documents must be added in
/// ascending DocId order (AddDocument assigns ids itself when driven via
/// text). The index keeps collection statistics (document lengths, average
/// length, collection size) needed by the scorers.
class InvertedIndex {
 public:
  explicit InvertedIndex(Analyzer analyzer = Analyzer())
      : analyzer_(std::move(analyzer)) {}

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  /// Analyses `text` and indexes it as document `doc`. Ids must be added in
  /// strictly increasing order starting from 0; FailedPrecondition
  /// otherwise.
  Status IndexText(DocId doc, std::string_view text);

  /// Indexes pre-analysed terms (used when the caller already ran the
  /// analyzer, e.g. to index multiple fields with different boosts).
  Status IndexTerms(DocId doc, const std::vector<std::string>& terms);

  /// Number of indexed documents.
  size_t num_documents() const { return doc_lengths_.size(); }
  /// Number of distinct terms.
  size_t num_terms() const { return vocabulary_.size(); }
  /// Total number of term occurrences in the collection.
  uint64_t total_term_count() const { return total_term_count_; }
  /// Average document length in terms (0 when empty).
  double average_document_length() const;
  /// The scorer-relevant statistics of this index alone.
  CollectionStats stats() const {
    return CollectionStats{doc_lengths_.size(), total_term_count_};
  }
  /// Length (in indexed terms) of one document.
  uint32_t document_length(DocId doc) const {
    return doc < doc_lengths_.size() ? doc_lengths_[doc] : 0;
  }

  const Analyzer& analyzer() const { return analyzer_; }
  const Vocabulary& vocabulary() const { return vocabulary_; }

  /// Returns the posting list for a raw (un-analysed) term, applying the
  /// analyzer first; nullptr if the term is filtered out or unseen.
  const PostingList* Lookup(std::string_view raw_term) const;
  /// Returns the posting list for an already-analysed term.
  const PostingList* LookupAnalyzed(std::string_view term) const;
  /// Returns the posting list by TermId.
  const PostingList* LookupId(TermId id) const;

  /// Document frequency of an analysed term (0 if unseen).
  size_t DocumentFrequency(std::string_view term) const;

 private:
  Analyzer analyzer_;
  Vocabulary vocabulary_;
  std::vector<PostingList> postings_;   // indexed by TermId
  std::vector<uint32_t> doc_lengths_;   // indexed by DocId
  uint64_t total_term_count_ = 0;
};

}  // namespace ivr

#endif  // IVR_INDEX_INVERTED_INDEX_H_
