#include "ivr/index/searcher.h"

#include <algorithm>

namespace ivr {

TermQuery Searcher::ParseQuery(std::string_view text) const {
  TermQuery query;
  for (const std::string& term : index_.analyzer().Analyze(text)) {
    query.weights[term] += 1.0;
  }
  return query;
}

std::vector<SearchHit> Searcher::Search(const TermQuery& query,
                                        size_t k) const {
  std::unordered_map<DocId, double> accum;
  for (const auto& [term, weight] : query.weights) {
    if (weight == 0.0) continue;
    const PostingList* pl = index_.LookupAnalyzed(term);
    if (pl == nullptr) continue;
    const size_t df = pl->document_frequency();
    const uint64_t cf = pl->collection_frequency();
    for (const Posting& p : pl->postings()) {
      const double partial = scorer_.Score(
          index_, p.tf, index_.document_length(p.doc), df, cf, /*query_tf=*/1);
      accum[p.doc] += weight * partial;
    }
  }
  std::vector<SearchHit> hits;
  hits.reserve(accum.size());
  for (const auto& [doc, score] : accum) {
    hits.push_back(SearchHit{doc, score});
  }
  auto better = [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  };
  if (hits.size() > k) {
    std::partial_sort(hits.begin(), hits.begin() + static_cast<long>(k),
                      hits.end(), better);
    hits.resize(k);
  } else {
    std::sort(hits.begin(), hits.end(), better);
  }
  return hits;
}

std::vector<SearchHit> Searcher::SearchText(std::string_view text,
                                            size_t k) const {
  return Search(ParseQuery(text), k);
}

double Searcher::ScoreDocument(const TermQuery& query, DocId doc) const {
  double score = 0.0;
  for (const auto& [term, weight] : query.weights) {
    if (weight == 0.0) continue;
    const PostingList* pl = index_.LookupAnalyzed(term);
    if (pl == nullptr) continue;
    const Posting* p = pl->Find(doc);
    if (p == nullptr) continue;
    score += weight * scorer_.Score(index_, p->tf,
                                    index_.document_length(doc),
                                    pl->document_frequency(),
                                    pl->collection_frequency(),
                                    /*query_tf=*/1);
  }
  return score;
}

}  // namespace ivr
