#include "ivr/index/searcher.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "ivr/core/thread_pool.h"
#include "ivr/obs/metrics.h"

namespace ivr {
namespace {

/// `a` ranks strictly before `b`.
inline bool Better(const SearchHit& a, const SearchHit& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

/// Query terms in lexicographic order so that score accumulation order —
/// and therefore floating-point results — never depends on hash-map
/// iteration order.
std::vector<std::pair<const std::string*, double>> OrderedTerms(
    const TermQuery& query) {
  std::vector<std::pair<const std::string*, double>> terms;
  terms.reserve(query.weights.size());
  for (const auto& [term, weight] : query.weights) {
    if (weight == 0.0) continue;
    terms.emplace_back(&term, weight);
  }
  std::sort(terms.begin(), terms.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  return terms;
}

/// Selects the top k of the accumulator's candidates with a bounded
/// min-heap (the heap's top is the worst kept hit), then emits them
/// best-first. Equivalent to sorting all candidates with Better() and
/// truncating, at O(candidates * log k).
std::vector<SearchHit> SelectTopK(const ScoreAccumulator& accum, size_t k) {
  std::vector<SearchHit> heap;
  if (k == 0) return heap;
  heap.reserve(std::min(k, accum.touched().size()));
  // With Better() as the comparator, std::*_heap keeps the WORST kept hit
  // at heap.front().
  for (DocId doc : accum.touched()) {
    const SearchHit hit{doc, accum.score(doc)};
    if (heap.size() < k) {
      heap.push_back(hit);
      std::push_heap(heap.begin(), heap.end(), Better);
    } else if (Better(hit, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), Better);
      heap.back() = hit;
      std::push_heap(heap.begin(), heap.end(), Better);
    }
  }
  // sort_heap orders ascending w.r.t. the comparator, which for Better()
  // means best-first — exactly the output order.
  std::sort_heap(heap.begin(), heap.end(), Better);
  return heap;
}

}  // namespace

Searcher::Searcher(std::vector<IndexSegment> segments, const Scorer& scorer)
    : segments_(std::move(segments)), scorer_(scorer) {
  assert(!segments_.empty());
  for (const IndexSegment& segment : segments_) {
    assert(segment.index != nullptr);
    assert(segment.doc_offset ==
           stats_.num_documents);  // contiguous, ascending
    stats_ += segment.index->stats();
  }
}

TermQuery Searcher::ParseQuery(std::string_view text) const {
  TermQuery query;
  for (const std::string& term :
       segments_.front().index->analyzer().Analyze(text)) {
    query.weights[term] = 1.0;
    query.counts[term] += 1;
  }
  return query;
}

std::vector<SearchHit> Searcher::Search(const TermQuery& query,
                                        size_t k) const {
  return Search(query, k, &scratch_);
}

std::vector<SearchHit> Searcher::Search(const TermQuery& query, size_t k,
                                        ScoreAccumulator* accum) const {
#ifndef IVR_OBS_OFF
  // Searchers are constructed per query, so the registry pointers live in
  // function-local statics: one mutexed lookup per process, a guard-bit
  // load afterwards. Postings are tallied locally and published with a
  // single relaxed add per query.
  struct CachedMetrics {
    obs::Counter* queries =
        obs::Registry::Global().GetCounter("searcher.queries");
    obs::Counter* postings_scanned =
        obs::Registry::Global().GetCounter("searcher.postings_scanned");
    obs::Counter* candidates_scored =
        obs::Registry::Global().GetCounter("searcher.candidates_scored");
  };
  static const CachedMetrics metrics;
  uint64_t postings_scanned = 0;
#endif
  accum->Reset(stats_.num_documents);
  // Per-segment posting lists for the current term, resolved once before
  // scoring so df/cf can be summed exactly as a monolithic index would
  // count them.
  std::vector<const PostingList*> lists(segments_.size());
  for (const auto& [term, weight] : OrderedTerms(query)) {
    size_t df = 0;
    uint64_t cf = 0;
    bool any = false;
    for (size_t s = 0; s < segments_.size(); ++s) {
      const PostingList* pl = segments_[s].index->LookupAnalyzed(*term);
      lists[s] = pl;
      if (pl == nullptr) continue;
      any = true;
      df += pl->document_frequency();
      cf += pl->collection_frequency();
    }
    if (!any) continue;
    const PreparedTerm prepared =
        scorer_.Prepare(stats_, df, cf, query.QueryTf(*term));
    // Segment order is ascending doc_offset, so the global accumulation
    // order per term equals the monolithic posting list's document order.
    for (size_t s = 0; s < segments_.size(); ++s) {
      const PostingList* pl = lists[s];
      if (pl == nullptr) continue;
      const InvertedIndex& index = *segments_[s].index;
      const DocId offset = segments_[s].doc_offset;
#ifndef IVR_OBS_OFF
      postings_scanned += pl->postings().size();
#endif
      for (const Posting& p : pl->postings()) {
        const double partial = scorer_.ScorePosting(
            stats_, prepared, p.tf, index.document_length(p.doc));
        accum->Add(offset + p.doc, weight * partial);
      }
    }
  }
#ifndef IVR_OBS_OFF
  metrics.queries->Inc();
  metrics.postings_scanned->Inc(postings_scanned);
  metrics.candidates_scored->Inc(accum->touched().size());
#endif
  return SelectTopK(*accum, k);
}

std::vector<std::vector<SearchHit>> Searcher::BatchSearch(
    const std::vector<TermQuery>& queries, size_t k, size_t threads) const {
  if (threads == 0) threads = ThreadPool::DefaultThreadCount();
  std::vector<std::vector<SearchHit>> results(queries.size());
  // One scratch accumulator per worker; results merge by query index, so
  // the output order (and every score) is independent of scheduling.
  std::vector<ScoreAccumulator> accums(std::max<size_t>(1, threads));
  ParallelFor(queries.size(), threads,
              [this, &queries, k, &results, &accums](size_t i,
                                                     size_t worker) {
                results[i] = Search(queries[i], k, &accums[worker]);
              });
  return results;
}

std::vector<SearchHit> Searcher::SearchText(std::string_view text,
                                            size_t k) const {
  return Search(ParseQuery(text), k);
}

double Searcher::ScoreDocument(const TermQuery& query, DocId doc) const {
  // Locate the segment containing `doc`: the last segment whose offset is
  // <= doc (segments are ordered by ascending offset).
  size_t s = segments_.size();
  while (s > 0 && segments_[s - 1].doc_offset > doc) --s;
  if (s == 0) return 0.0;
  const InvertedIndex& index = *segments_[s - 1].index;
  const DocId local = doc - segments_[s - 1].doc_offset;
  if (local >= index.num_documents()) return 0.0;
  double score = 0.0;
  for (const auto& [term, weight] : OrderedTerms(query)) {
    size_t df = 0;
    uint64_t cf = 0;
    const Posting* posting = nullptr;
    for (const IndexSegment& segment : segments_) {
      const PostingList* pl = segment.index->LookupAnalyzed(*term);
      if (pl == nullptr) continue;
      df += pl->document_frequency();
      cf += pl->collection_frequency();
      if (segment.index == &index) posting = pl->Find(local);
    }
    if (posting == nullptr) continue;
    const PreparedTerm prepared =
        scorer_.Prepare(stats_, df, cf, query.QueryTf(*term));
    score += weight * scorer_.ScorePosting(stats_, prepared, posting->tf,
                                           index.document_length(local));
  }
  return score;
}

}  // namespace ivr
