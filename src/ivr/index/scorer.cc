#include "ivr/index/scorer.h"

#include <cmath>

namespace ivr {

PreparedTerm Scorer::Prepare(const CollectionStats& /*stats*/, size_t df,
                             uint64_t cf, uint32_t query_tf) const {
  PreparedTerm term;
  term.df = df;
  term.cf = cf;
  term.query_tf = query_tf;
  return term;
}

double Scorer::ScorePosting(const CollectionStats& stats,
                            const PreparedTerm& term, uint32_t tf,
                            uint32_t doc_len) const {
  return Score(stats, tf, doc_len, term.df, term.cf, term.query_tf);
}

double Bm25Scorer::Score(const CollectionStats& stats, uint32_t tf,
                         uint32_t doc_len, size_t df, uint64_t cf,
                         uint32_t query_tf) const {
  return ScorePosting(stats, Prepare(stats, df, cf, query_tf), tf, doc_len);
}

PreparedTerm Bm25Scorer::Prepare(const CollectionStats& stats, size_t df,
                                 uint64_t cf, uint32_t query_tf) const {
  // c0 = qtf_saturation * idf * (k1+1); c1 + c2*doc_len reproduces the
  // document-length norm k1*(1 - b + b*doc_len/avgdl) without touching
  // avgdl (or any log) per posting.
  PreparedTerm term;
  term.df = df;
  term.cf = cf;
  term.query_tf = query_tf;
  if (df == 0 || query_tf == 0) return term;  // c0 stays 0 -> score 0
  const double n = static_cast<double>(stats.num_documents);
  const double dfd = static_cast<double>(df);
  // Robertson–Sparck-Jones IDF with +1 inside the log to keep it positive
  // for very common terms (the Lucene variant).
  const double idf = std::log(1.0 + (n - dfd + 0.5) / (dfd + 0.5));
  // Okapi third component: repeated query terms saturate instead of
  // scaling the partial linearly.
  const double qtf = static_cast<double>(query_tf);
  const double qtf_component = (qtf * (k3_ + 1.0)) / (k3_ + qtf);
  term.c0 = qtf_component * idf * (k1_ + 1.0);
  const double avgdl = stats.average_document_length();
  if (avgdl > 0.0) {
    term.c1 = k1_ * (1.0 - b_);
    term.c2 = k1_ * b_ / avgdl;
  } else {
    term.c1 = k1_;
    term.c2 = 0.0;
  }
  return term;
}

double Bm25Scorer::ScorePosting(const CollectionStats& /*stats*/,
                                const PreparedTerm& term, uint32_t tf,
                                uint32_t doc_len) const {
  if (tf == 0 || term.c0 == 0.0) return 0.0;
  const double tfd = static_cast<double>(tf);
  return term.c0 * tfd /
         (tfd + term.c1 + term.c2 * static_cast<double>(doc_len));
}

double TfIdfScorer::Score(const CollectionStats& stats, uint32_t tf,
                          uint32_t doc_len, size_t df, uint64_t cf,
                          uint32_t query_tf) const {
  return ScorePosting(stats, Prepare(stats, df, cf, query_tf), tf, doc_len);
}

PreparedTerm TfIdfScorer::Prepare(const CollectionStats& stats, size_t df,
                                  uint64_t cf, uint32_t query_tf) const {
  // c0 = query_tf * idf (0 disables the term, including the idf==0 case
  // of a term present in every document).
  PreparedTerm term;
  term.df = df;
  term.cf = cf;
  term.query_tf = query_tf;
  if (df == 0) return term;
  const double n = static_cast<double>(stats.num_documents);
  term.c0 =
      static_cast<double>(query_tf) * std::log(n / static_cast<double>(df));
  return term;
}

double TfIdfScorer::ScorePosting(const CollectionStats& /*stats*/,
                                 const PreparedTerm& term, uint32_t tf,
                                 uint32_t doc_len) const {
  if (tf == 0 || term.c0 == 0.0) return 0.0;
  const double ltf = 1.0 + std::log(static_cast<double>(tf));
  const double norm =
      doc_len > 0 ? std::sqrt(static_cast<double>(doc_len)) : 1.0;
  return term.c0 * ltf / norm;
}

double DirichletLmScorer::Score(const CollectionStats& stats, uint32_t tf,
                                uint32_t doc_len, size_t df, uint64_t cf,
                                uint32_t query_tf) const {
  return ScorePosting(stats, Prepare(stats, df, cf, query_tf), tf, doc_len);
}

PreparedTerm DirichletLmScorer::Prepare(const CollectionStats& stats,
                                        size_t df, uint64_t cf,
                                        uint32_t query_tf) const {
  // c0 = mu * p_collection (> 0 when the term is scorable), c1 = qtf.
  PreparedTerm term;
  term.df = df;
  term.cf = cf;
  term.query_tf = query_tf;
  const double collection_size =
      static_cast<double>(stats.total_term_count);
  if (collection_size <= 0.0 || cf == 0) return term;
  term.c0 = mu_ * (static_cast<double>(cf) / collection_size);
  term.c1 = static_cast<double>(query_tf);
  return term;
}

double DirichletLmScorer::ScorePosting(const CollectionStats& /*stats*/,
                                       const PreparedTerm& term, uint32_t tf,
                                       uint32_t doc_len) const {
  if (term.c0 <= 0.0) return 0.0;
  // log[ (tf + mu * p_c) / (|d| + mu) ] - log[ mu * p_c / (|d| + mu) ]
  // = log(1 + tf / (mu * p_c)); the document-length dependent part that
  // does not cancel per-term is added once per matched term.
  const double ratio = 1.0 + static_cast<double>(tf) / term.c0;
  const double len_part =
      std::log(mu_ / (static_cast<double>(doc_len) + mu_));
  // len_part is <= 0 and shared across terms of the same document; adding
  // it per matched query term mirrors the standard query-likelihood
  // decomposition restricted to matching terms (Zhai & Lafferty).
  return term.c1 * (std::log(ratio) + len_part) +
         term.c1 * 10.0;  // shift to keep scores > 0
}

std::unique_ptr<Scorer> MakeScorer(const std::string& name) {
  if (name == "bm25") return std::make_unique<Bm25Scorer>();
  if (name == "tfidf") return std::make_unique<TfIdfScorer>();
  if (name == "lm" || name == "lm-dirichlet") {
    return std::make_unique<DirichletLmScorer>();
  }
  return nullptr;
}

}  // namespace ivr
