#include "ivr/index/scorer.h"

#include <cmath>

namespace ivr {

double Bm25Scorer::Score(const InvertedIndex& index, uint32_t tf,
                         uint32_t doc_len, size_t df, uint64_t /*cf*/,
                         uint32_t query_tf) const {
  if (tf == 0 || df == 0) return 0.0;
  const double n = static_cast<double>(index.num_documents());
  const double dfd = static_cast<double>(df);
  // Robertson–Sparck-Jones IDF with +1 inside the log to keep it positive
  // for very common terms (the Lucene variant).
  const double idf = std::log(1.0 + (n - dfd + 0.5) / (dfd + 0.5));
  const double avgdl = index.average_document_length();
  const double norm =
      k1_ * (1.0 - b_ + b_ * (avgdl > 0.0 ? doc_len / avgdl : 1.0));
  const double tf_component = (tf * (k1_ + 1.0)) / (tf + norm);
  return static_cast<double>(query_tf) * idf * tf_component;
}

double TfIdfScorer::Score(const InvertedIndex& index, uint32_t tf,
                          uint32_t doc_len, size_t df, uint64_t /*cf*/,
                          uint32_t query_tf) const {
  if (tf == 0 || df == 0) return 0.0;
  const double n = static_cast<double>(index.num_documents());
  const double idf = std::log(n / static_cast<double>(df));
  const double ltf = 1.0 + std::log(static_cast<double>(tf));
  const double norm = doc_len > 0 ? std::sqrt(static_cast<double>(doc_len))
                                  : 1.0;
  return static_cast<double>(query_tf) * idf * ltf / norm;
}

double DirichletLmScorer::Score(const InvertedIndex& index, uint32_t tf,
                                uint32_t doc_len, size_t /*df*/, uint64_t cf,
                                uint32_t query_tf) const {
  const double collection_size =
      static_cast<double>(index.total_term_count());
  if (collection_size <= 0.0 || cf == 0) return 0.0;
  const double p_collection = static_cast<double>(cf) / collection_size;
  // log[ (tf + mu * p_c) / (|d| + mu) ] - log[ mu * p_c / (|d| + mu) ]
  // = log(1 + tf / (mu * p_c)); the document-length dependent part that
  // does not cancel per-term is added once per matched term.
  const double ratio = 1.0 + static_cast<double>(tf) / (mu_ * p_collection);
  const double len_part =
      std::log(mu_ / (static_cast<double>(doc_len) + mu_));
  // len_part is <= 0 and shared across terms of the same document; adding
  // it per matched query term mirrors the standard query-likelihood
  // decomposition restricted to matching terms (Zhai & Lafferty).
  return static_cast<double>(query_tf) * (std::log(ratio) + len_part) +
         static_cast<double>(query_tf) * 10.0;  // shift to keep scores > 0
}

std::unique_ptr<Scorer> MakeScorer(const std::string& name) {
  if (name == "bm25") return std::make_unique<Bm25Scorer>();
  if (name == "tfidf") return std::make_unique<TfIdfScorer>();
  if (name == "lm" || name == "lm-dirichlet") {
    return std::make_unique<DirichletLmScorer>();
  }
  return nullptr;
}

}  // namespace ivr
