#ifndef IVR_INDEX_SEARCHER_H_
#define IVR_INDEX_SEARCHER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/index/document.h"
#include "ivr/index/inverted_index.h"
#include "ivr/index/score_accumulator.h"
#include "ivr/index/scorer.h"

namespace ivr {

/// One search hit.
struct SearchHit {
  DocId doc = kInvalidDocId;
  double score = 0.0;

  friend bool operator==(const SearchHit& a, const SearchHit& b) {
    return a.doc == b.doc && a.score == b.score;
  }
};

/// A weighted bag-of-terms query in analysed term space. Produced from raw
/// text via Searcher::ParseQuery or built directly by feedback components
/// (Rocchio emits weighted terms).
struct TermQuery {
  /// Analysed term -> linear boost. Multiplies the term's partial score.
  std::unordered_map<std::string, double> weights;

  /// Analysed term -> repetition count in the raw query text (query tf).
  /// Terms absent here count once. Kept separate from `weights` because
  /// query-term repetition saturates inside the scorer (BM25's third
  /// component) rather than scaling the partial linearly, while feedback
  /// boosts stay linear.
  std::unordered_map<std::string, uint32_t> counts;

  /// Query-term frequency of `term` (1 when untracked).
  uint32_t QueryTf(const std::string& term) const {
    auto it = counts.find(term);
    return it == counts.end() ? 1u : it->second;
  }

  bool empty() const { return weights.empty(); }
};

/// Term-at-a-time top-k retrieval over an InvertedIndex.
///
/// The hot path accumulates scores into a flat per-document array
/// (ScoreAccumulator) and selects the top k with a bounded min-heap, so a
/// query costs O(postings + candidates*log k) with no hashing and no
/// full-materialised hit list. Query terms are processed in lexicographic
/// order, making scores independent of hash-map iteration order — the
/// property BatchSearch relies on to be bit-identical to sequential
/// execution regardless of thread count.
class Searcher {
 public:
  /// Both references must outlive the searcher.
  Searcher(const InvertedIndex& index, const Scorer& scorer)
      : index_(index), scorer_(scorer) {}

  /// Analyses raw text into a TermQuery (duplicate terms accumulate
  /// query-term frequency in `counts`; every weight is 1).
  TermQuery ParseQuery(std::string_view text) const;

  /// Scores all matching documents and returns the top `k` by descending
  /// score (ties broken by ascending DocId for determinism). An empty query
  /// yields an empty result. Reuses an internal scratch accumulator, so a
  /// single Searcher must not run this overload from multiple threads —
  /// concurrent callers pass their own accumulator below.
  std::vector<SearchHit> Search(const TermQuery& query, size_t k) const;

  /// Same, accumulating into caller-owned scratch (one per thread).
  std::vector<SearchHit> Search(const TermQuery& query, size_t k,
                                ScoreAccumulator* accum) const;

  /// Runs every query and returns the rankings in input order, fanned out
  /// over up to `threads` workers (0 = hardware concurrency) with one
  /// scratch accumulator per worker. Results are bit-identical to calling
  /// Search() on each query sequentially, for any thread count.
  std::vector<std::vector<SearchHit>> BatchSearch(
      const std::vector<TermQuery>& queries, size_t k,
      size_t threads = 0) const;

  /// Convenience: parse + search.
  std::vector<SearchHit> SearchText(std::string_view text, size_t k) const;

  /// Scores a single document against a query (0 when nothing matches);
  /// used by rerankers that need absolute scores for arbitrary documents.
  double ScoreDocument(const TermQuery& query, DocId doc) const;

 private:
  const InvertedIndex& index_;
  const Scorer& scorer_;
  mutable ScoreAccumulator scratch_;
};

}  // namespace ivr

#endif  // IVR_INDEX_SEARCHER_H_
