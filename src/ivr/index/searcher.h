#ifndef IVR_INDEX_SEARCHER_H_
#define IVR_INDEX_SEARCHER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/index/document.h"
#include "ivr/index/inverted_index.h"
#include "ivr/index/scorer.h"

namespace ivr {

/// One search hit.
struct SearchHit {
  DocId doc = kInvalidDocId;
  double score = 0.0;

  friend bool operator==(const SearchHit& a, const SearchHit& b) {
    return a.doc == b.doc && a.score == b.score;
  }
};

/// A weighted bag-of-terms query in analysed term space. Produced from raw
/// text via Searcher::ParseQuery or built directly by feedback components
/// (Rocchio emits weighted terms).
struct TermQuery {
  /// Analysed term -> weight (a raw text query uses its term frequencies).
  std::unordered_map<std::string, double> weights;

  bool empty() const { return weights.empty(); }
};

/// Term-at-a-time top-k retrieval over an InvertedIndex.
class Searcher {
 public:
  /// Both references must outlive the searcher.
  Searcher(const InvertedIndex& index, const Scorer& scorer)
      : index_(index), scorer_(scorer) {}

  /// Analyses raw text into a TermQuery (duplicate terms accumulate
  /// weight).
  TermQuery ParseQuery(std::string_view text) const;

  /// Scores all matching documents and returns the top `k` by descending
  /// score (ties broken by ascending DocId for determinism). An empty query
  /// yields an empty result.
  std::vector<SearchHit> Search(const TermQuery& query, size_t k) const;

  /// Convenience: parse + search.
  std::vector<SearchHit> SearchText(std::string_view text, size_t k) const;

  /// Scores a single document against a query (0 when nothing matches);
  /// used by rerankers that need absolute scores for arbitrary documents.
  double ScoreDocument(const TermQuery& query, DocId doc) const;

 private:
  const InvertedIndex& index_;
  const Scorer& scorer_;
};

}  // namespace ivr

#endif  // IVR_INDEX_SEARCHER_H_
