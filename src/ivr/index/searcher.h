#ifndef IVR_INDEX_SEARCHER_H_
#define IVR_INDEX_SEARCHER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/index/document.h"
#include "ivr/index/inverted_index.h"
#include "ivr/index/score_accumulator.h"
#include "ivr/index/scorer.h"

namespace ivr {

/// One search hit.
struct SearchHit {
  DocId doc = kInvalidDocId;
  double score = 0.0;

  friend bool operator==(const SearchHit& a, const SearchHit& b) {
    return a.doc == b.doc && a.score == b.score;
  }
};

/// A weighted bag-of-terms query in analysed term space. Produced from raw
/// text via Searcher::ParseQuery or built directly by feedback components
/// (Rocchio emits weighted terms).
struct TermQuery {
  /// Analysed term -> linear boost. Multiplies the term's partial score.
  std::unordered_map<std::string, double> weights;

  /// Analysed term -> repetition count in the raw query text (query tf).
  /// Terms absent here count once. Kept separate from `weights` because
  /// query-term repetition saturates inside the scorer (BM25's third
  /// component) rather than scaling the partial linearly, while feedback
  /// boosts stay linear.
  std::unordered_map<std::string, uint32_t> counts;

  /// Query-term frequency of `term` (1 when untracked).
  uint32_t QueryTf(const std::string& term) const {
    auto it = counts.find(term);
    return it == counts.end() ? 1u : it->second;
  }

  bool empty() const { return weights.empty(); }
};

/// One immutable index segment of a segmented collection: the segment's
/// inverted index plus the global DocId of its first document. Global ids
/// are `doc_offset + local id`; segments must be supplied in ascending
/// offset order and tile the global id space contiguously.
struct IndexSegment {
  const InvertedIndex* index = nullptr;
  DocId doc_offset = 0;
};

/// Term-at-a-time top-k retrieval over one or more InvertedIndex segments.
///
/// The hot path accumulates scores into a flat per-document array
/// (ScoreAccumulator) and selects the top k with a bounded min-heap, so a
/// query costs O(postings + candidates*log k) with no hashing and no
/// full-materialised hit list. Query terms are processed in lexicographic
/// order, making scores independent of hash-map iteration order — the
/// property BatchSearch relies on to be bit-identical to sequential
/// execution regardless of thread count.
///
/// Segmented search is bit-identical to a monolithic index over the
/// concatenated documents: scorers are prepared once per term from the
/// summed collection statistics (exact integer sums), and each segment's
/// postings are visited in segment order — exactly the document order of
/// the monolithic posting list, since global ids are offset + local id.
class Searcher {
 public:
  /// Single-index convenience: one segment at offset 0. The references
  /// must outlive the searcher.
  Searcher(const InvertedIndex& index, const Scorer& scorer)
      : Searcher(std::vector<IndexSegment>{{&index, 0}}, scorer) {}

  /// Multi-segment search. `segments` must be non-empty, ordered by
  /// ascending doc_offset, and contiguous (each offset equals the previous
  /// offset plus the previous segment's num_documents()). All indexes must
  /// share the same analyzer configuration and outlive the searcher.
  Searcher(std::vector<IndexSegment> segments, const Scorer& scorer);

  /// Analyses raw text into a TermQuery (duplicate terms accumulate
  /// query-term frequency in `counts`; every weight is 1).
  TermQuery ParseQuery(std::string_view text) const;

  /// Scores all matching documents and returns the top `k` by descending
  /// score (ties broken by ascending DocId for determinism). An empty query
  /// yields an empty result. Reuses an internal scratch accumulator, so a
  /// single Searcher must not run this overload from multiple threads —
  /// concurrent callers pass their own accumulator below.
  std::vector<SearchHit> Search(const TermQuery& query, size_t k) const;

  /// Same, accumulating into caller-owned scratch (one per thread).
  std::vector<SearchHit> Search(const TermQuery& query, size_t k,
                                ScoreAccumulator* accum) const;

  /// Runs every query and returns the rankings in input order, fanned out
  /// over up to `threads` workers (0 = hardware concurrency) with one
  /// scratch accumulator per worker. Results are bit-identical to calling
  /// Search() on each query sequentially, for any thread count.
  std::vector<std::vector<SearchHit>> BatchSearch(
      const std::vector<TermQuery>& queries, size_t k,
      size_t threads = 0) const;

  /// Convenience: parse + search.
  std::vector<SearchHit> SearchText(std::string_view text, size_t k) const;

  /// Scores a single document (global id) against a query (0 when nothing
  /// matches); used by rerankers that need absolute scores for arbitrary
  /// documents.
  double ScoreDocument(const TermQuery& query, DocId doc) const;

  /// Summed statistics across all segments.
  const CollectionStats& stats() const { return stats_; }

 private:
  std::vector<IndexSegment> segments_;
  CollectionStats stats_;
  const Scorer& scorer_;
  mutable ScoreAccumulator scratch_;
};

}  // namespace ivr

#endif  // IVR_INDEX_SEARCHER_H_
