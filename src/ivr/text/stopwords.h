#ifndef IVR_TEXT_STOPWORDS_H_
#define IVR_TEXT_STOPWORDS_H_

#include <string_view>
#include <unordered_set>

namespace ivr {

/// Returns the built-in English stopword list (a superset of the classic
/// van Rijsbergen / SMART short list). The set is lower-case, unstemmed.
const std::unordered_set<std::string_view>& EnglishStopwords();

/// True if `token` (already lower-case) is a stopword.
bool IsStopword(std::string_view token);

}  // namespace ivr

#endif  // IVR_TEXT_STOPWORDS_H_
