#ifndef IVR_TEXT_TOKENIZER_H_
#define IVR_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace ivr {

/// Splits raw text into lower-case alphanumeric tokens. Apostrophes inside
/// words are dropped ("don't" -> "dont"); every other non-alphanumeric
/// character is a separator. Purely ASCII: bytes >= 0x80 are separators,
/// which is sufficient for the synthetic collections this library builds.
std::vector<std::string> Tokenize(std::string_view text);

/// True if `token` consists only of digits.
bool IsNumericToken(std::string_view token);

}  // namespace ivr

#endif  // IVR_TEXT_TOKENIZER_H_
