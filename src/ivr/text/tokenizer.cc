#include "ivr/text/tokenizer.h"

#include <cctype>

namespace ivr {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : text) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (c < 0x80 && std::isalnum(c)) {
      current.push_back(
          static_cast<char>(std::tolower(c)));
    } else if (ch == '\'' && !current.empty()) {
      // Drop intra-word apostrophes so "don't" tokenises as "dont".
      continue;
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) {
    tokens.push_back(std::move(current));
  }
  return tokens;
}

bool IsNumericToken(std::string_view token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace ivr
