#ifndef IVR_TEXT_VOCABULARY_H_
#define IVR_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ivr {

/// Dense integer id assigned to each distinct term.
using TermId = uint32_t;
constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

/// Bidirectional term <-> id dictionary. Ids are assigned densely in
/// insertion order, which lets downstream structures use vectors keyed by
/// TermId.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id for `term`, inserting it if new.
  TermId GetOrAdd(std::string_view term);

  /// Returns the id for `term` or kInvalidTermId if absent.
  TermId Lookup(std::string_view term) const;

  /// Returns the term for a valid id; must be < size().
  const std::string& term(TermId id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

 private:
  std::unordered_map<std::string, TermId> ids_;
  std::vector<std::string> terms_;
};

}  // namespace ivr

#endif  // IVR_TEXT_VOCABULARY_H_
