#ifndef IVR_TEXT_ANALYZER_H_
#define IVR_TEXT_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace ivr {

/// Options controlling the analysis pipeline (tokenize -> stopword filter
/// -> stem). Defaults match standard TREC-style text retrieval practice.
struct AnalyzerOptions {
  bool remove_stopwords = true;
  bool stem = true;
  /// Tokens shorter than this (after stemming) are dropped.
  size_t min_token_length = 1;
  /// Drop tokens that are purely numeric.
  bool drop_numeric = false;
};

/// Turns raw text into index/query terms. Stateless and cheap to copy;
/// the same analyzer instance must be used on both the indexing and the
/// query side so that terms agree.
class Analyzer {
 public:
  Analyzer() = default;
  explicit Analyzer(AnalyzerOptions options) : options_(options) {}

  const AnalyzerOptions& options() const { return options_; }

  /// Full pipeline over a text: tokenize, filter, stem.
  std::vector<std::string> Analyze(std::string_view text) const;

  /// Pipeline over a single already-tokenised word; returns empty string if
  /// the token is filtered out.
  std::string AnalyzeToken(std::string_view token) const;

 private:
  AnalyzerOptions options_;
};

}  // namespace ivr

#endif  // IVR_TEXT_ANALYZER_H_
