#include "ivr/text/analyzer.h"

#include "ivr/text/porter_stemmer.h"
#include "ivr/text/stopwords.h"
#include "ivr/text/tokenizer.h"

namespace ivr {

std::vector<std::string> Analyzer::Analyze(std::string_view text) const {
  std::vector<std::string> out;
  for (const std::string& token : Tokenize(text)) {
    std::string term = AnalyzeToken(token);
    if (!term.empty()) {
      out.push_back(std::move(term));
    }
  }
  return out;
}

std::string Analyzer::AnalyzeToken(std::string_view token) const {
  if (token.empty()) return std::string();
  if (options_.drop_numeric && IsNumericToken(token)) return std::string();
  if (options_.remove_stopwords && IsStopword(token)) return std::string();
  std::string term =
      options_.stem ? PorterStem(token) : std::string(token);
  if (term.size() < options_.min_token_length) return std::string();
  return term;
}

}  // namespace ivr
