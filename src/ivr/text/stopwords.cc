#include "ivr/text/stopwords.h"

namespace ivr {

const std::unordered_set<std::string_view>& EnglishStopwords() {
  // Function-local static reference so the set is built once and never
  // destroyed (avoids static-destruction-order hazards).
  static const auto& kStopwords = *new std::unordered_set<std::string_view>{
      "a",      "about",  "above",   "after",   "again",   "against",
      "all",    "am",     "an",      "and",     "any",     "are",
      "arent",  "as",     "at",      "be",      "because", "been",
      "before", "being",  "below",   "between", "both",    "but",
      "by",     "cant",   "cannot",  "could",   "couldnt", "did",
      "didnt",  "do",     "does",    "doesnt",  "doing",   "dont",
      "down",   "during", "each",    "few",     "for",     "from",
      "further", "had",   "hadnt",   "has",     "hasnt",   "have",
      "havent", "having", "he",      "hed",     "hell",    "hes",
      "her",    "here",   "heres",   "hers",    "herself", "him",
      "himself", "his",   "how",     "hows",    "i",       "id",
      "ill",    "im",     "ive",     "if",      "in",      "into",
      "is",     "isnt",   "it",      "its",     "itself",  "lets",
      "me",     "more",   "most",    "mustnt",  "my",      "myself",
      "no",     "nor",    "not",     "of",      "off",     "on",
      "once",   "only",   "or",      "other",   "ought",   "our",
      "ours",   "ourselves", "out",  "over",    "own",     "same",
      "shant",  "she",    "shed",    "shell",   "shes",    "should",
      "shouldnt", "so",   "some",    "such",    "than",    "that",
      "thats",  "the",    "their",   "theirs",  "them",    "themselves",
      "then",   "there",  "theres",  "these",   "they",    "theyd",
      "theyll", "theyre", "theyve",  "this",    "those",   "through",
      "to",     "too",    "under",   "until",   "up",      "very",
      "was",    "wasnt",  "we",      "wed",     "well",    "were",
      "weve",   "werent", "what",    "whats",   "when",    "whens",
      "where",  "wheres", "which",   "while",   "who",     "whos",
      "whom",   "why",    "whys",    "with",    "wont",    "would",
      "wouldnt", "you",   "youd",    "youll",   "youre",   "youve",
      "your",   "yours",  "yourself", "yourselves",
  };
  return kStopwords;
}

bool IsStopword(std::string_view token) {
  return EnglishStopwords().count(token) > 0;
}

}  // namespace ivr
