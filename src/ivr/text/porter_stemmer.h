#ifndef IVR_TEXT_PORTER_STEMMER_H_
#define IVR_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace ivr {

/// Stems a lower-case English word using the classic Porter (1980)
/// algorithm (steps 1a–5b). Words shorter than three characters are
/// returned unchanged, matching the reference implementation.
std::string PorterStem(std::string_view word);

}  // namespace ivr

#endif  // IVR_TEXT_PORTER_STEMMER_H_
