#include "ivr/text/porter_stemmer.h"

namespace ivr {
namespace {

// Implementation of the Porter (1980) stemming algorithm. The helper class
// mirrors the structure of the reference implementation: `b_` holds the
// word, `k_` is the index of its last character, and `j_` marks the end of
// the stem while a suffix is under consideration.
class Stemmer {
 public:
  explicit Stemmer(std::string_view word) : b_(word) {
    k_ = static_cast<int>(b_.size()) - 1;
  }

  std::string Stem() {
    if (k_ <= 1) return b_;  // Words of length <= 2 are left alone.
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    b_.resize(static_cast<size_t>(k_ + 1));
    return b_;
  }

 private:
  // True if b_[i] is a consonant.
  bool IsConsonant(int i) const {
    switch (b_[static_cast<size_t>(i)]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure of the stem b_[0..j_]: the number of VC sequences.
  int Measure() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j_) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  // True if the stem b_[0..j_] contains a vowel.
  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  // True if b_[i-1..i] is a double consonant.
  bool DoubleConsonant(int i) const {
    if (i < 1) return false;
    if (b_[static_cast<size_t>(i)] != b_[static_cast<size_t>(i - 1)]) {
      return false;
    }
    return IsConsonant(i);
  }

  // True if b_[i-2..i] is consonant-vowel-consonant and the final consonant
  // is not w, x or y; used to restore an 'e' (e.g. hop(e) -> hope).
  bool CvcEndsAt(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) ||
        !IsConsonant(i - 2)) {
      return false;
    }
    const char c = b_[static_cast<size_t>(i)];
    return c != 'w' && c != 'x' && c != 'y';
  }

  // True if b_[0..k_] ends with suffix `s`; sets j_ to the stem end.
  bool Ends(std::string_view s) {
    const int len = static_cast<int>(s.size());
    if (len > k_ + 1) return false;
    if (b_.compare(static_cast<size_t>(k_ - len + 1), static_cast<size_t>(len),
                   s) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  // Replaces the matched suffix with `s`.
  void SetTo(std::string_view s) {
    b_.resize(static_cast<size_t>(j_ + 1));
    b_.append(s);
    k_ = static_cast<int>(b_.size()) - 1;
  }

  void ReplaceIfMeasurePositive(std::string_view s) {
    if (Measure() > 0) SetTo(s);
  }

  // Step 1a: plurals. Step 1b: -ed / -ing.
  void Step1ab() {
    if (b_[static_cast<size_t>(k_)] == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (k_ >= 1 && b_[static_cast<size_t>(k_ - 1)] != 's') {
        --k_;
      }
    }
    b_.resize(static_cast<size_t>(k_ + 1));
    if (Ends("eed")) {
      if (Measure() > 0) --k_;
      b_.resize(static_cast<size_t>(k_ + 1));
      return;
    }
    if ((Ends("ed") || Ends("ing")) && VowelInStem()) {
      k_ = j_;
      b_.resize(static_cast<size_t>(k_ + 1));
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        const char c = b_[static_cast<size_t>(k_)];
        if (c != 'l' && c != 's' && c != 'z') {
          --k_;
          b_.resize(static_cast<size_t>(k_ + 1));
        }
      } else if (Measure() == 1 && CvcEndsAt(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  // Step 1c: y -> i when there is another vowel in the stem.
  void Step1c() {
    if (Ends("y") && VowelInStem()) {
      b_[static_cast<size_t>(k_)] = 'i';
    }
  }

  // Step 2: double suffixes -> single ones, when measure > 0.
  void Step2() {
    if (k_ < 2) return;
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (Ends("ational")) { ReplaceIfMeasurePositive("ate"); return; }
        if (Ends("tional")) { ReplaceIfMeasurePositive("tion"); return; }
        break;
      case 'c':
        if (Ends("enci")) { ReplaceIfMeasurePositive("ence"); return; }
        if (Ends("anci")) { ReplaceIfMeasurePositive("ance"); return; }
        break;
      case 'e':
        if (Ends("izer")) { ReplaceIfMeasurePositive("ize"); return; }
        break;
      case 'l':
        if (Ends("bli")) { ReplaceIfMeasurePositive("ble"); return; }
        if (Ends("alli")) { ReplaceIfMeasurePositive("al"); return; }
        if (Ends("entli")) { ReplaceIfMeasurePositive("ent"); return; }
        if (Ends("eli")) { ReplaceIfMeasurePositive("e"); return; }
        if (Ends("ousli")) { ReplaceIfMeasurePositive("ous"); return; }
        break;
      case 'o':
        if (Ends("ization")) { ReplaceIfMeasurePositive("ize"); return; }
        if (Ends("ation")) { ReplaceIfMeasurePositive("ate"); return; }
        if (Ends("ator")) { ReplaceIfMeasurePositive("ate"); return; }
        break;
      case 's':
        if (Ends("alism")) { ReplaceIfMeasurePositive("al"); return; }
        if (Ends("iveness")) { ReplaceIfMeasurePositive("ive"); return; }
        if (Ends("fulness")) { ReplaceIfMeasurePositive("ful"); return; }
        if (Ends("ousness")) { ReplaceIfMeasurePositive("ous"); return; }
        break;
      case 't':
        if (Ends("aliti")) { ReplaceIfMeasurePositive("al"); return; }
        if (Ends("iviti")) { ReplaceIfMeasurePositive("ive"); return; }
        if (Ends("biliti")) { ReplaceIfMeasurePositive("ble"); return; }
        break;
      case 'g':
        if (Ends("logi")) { ReplaceIfMeasurePositive("log"); return; }
        break;
      default:
        break;
    }
  }

  // Step 3: -ic-, -full, -ness etc.
  void Step3() {
    switch (b_[static_cast<size_t>(k_)]) {
      case 'e':
        if (Ends("icate")) { ReplaceIfMeasurePositive("ic"); return; }
        if (Ends("ative")) { ReplaceIfMeasurePositive(""); return; }
        if (Ends("alize")) { ReplaceIfMeasurePositive("al"); return; }
        break;
      case 'i':
        if (Ends("iciti")) { ReplaceIfMeasurePositive("ic"); return; }
        break;
      case 'l':
        if (Ends("ical")) { ReplaceIfMeasurePositive("ic"); return; }
        if (Ends("ful")) { ReplaceIfMeasurePositive(""); return; }
        break;
      case 's':
        if (Ends("ness")) { ReplaceIfMeasurePositive(""); return; }
        break;
      default:
        break;
    }
  }

  // Step 4: removes -ant, -ence etc. when measure > 1.
  void Step4() {
    if (k_ < 1) return;
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (Ends("al")) break;
        return;
      case 'c':
        if (Ends("ance") || Ends("ence")) break;
        return;
      case 'e':
        if (Ends("er")) break;
        return;
      case 'i':
        if (Ends("ic")) break;
        return;
      case 'l':
        if (Ends("able") || Ends("ible")) break;
        return;
      case 'n':
        if (Ends("ant") || Ends("ement") || Ends("ment") || Ends("ent")) {
          break;
        }
        return;
      case 'o':
        if (Ends("ion") && j_ >= 0 &&
            (b_[static_cast<size_t>(j_)] == 's' ||
             b_[static_cast<size_t>(j_)] == 't')) {
          break;
        }
        if (Ends("ou")) break;
        return;
      case 's':
        if (Ends("ism")) break;
        return;
      case 't':
        if (Ends("ate") || Ends("iti")) break;
        return;
      case 'u':
        if (Ends("ous")) break;
        return;
      case 'v':
        if (Ends("ive")) break;
        return;
      case 'z':
        if (Ends("ize")) break;
        return;
      default:
        return;
    }
    if (Measure() > 1) {
      k_ = j_;
      b_.resize(static_cast<size_t>(k_ + 1));
    }
  }

  // Step 5: removes final -e and maps -ll -> -l under measure conditions.
  void Step5() {
    j_ = k_;
    if (b_[static_cast<size_t>(k_)] == 'e') {
      const int a = Measure();
      if (a > 1 || (a == 1 && !CvcEndsAt(k_ - 1))) {
        --k_;
        b_.resize(static_cast<size_t>(k_ + 1));
      }
    }
    if (b_[static_cast<size_t>(k_)] == 'l' && DoubleConsonant(k_)) {
      j_ = k_;
      if (Measure() > 1) {
        --k_;
        b_.resize(static_cast<size_t>(k_ + 1));
      }
    }
  }

  std::string b_;
  int k_ = -1;
  int j_ = 0;
};

}  // namespace

std::string PorterStem(std::string_view word) {
  return Stemmer(word).Stem();
}

}  // namespace ivr
