#include "ivr/net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "ivr/core/string_util.h"

namespace ivr {
namespace net {

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError(StrFormat("epoll_create1: %s",
                                     std::strerror(errno)));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return Status::IOError(StrFormat("eventfd: %s", std::strerror(errno)));
  }
  struct epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = EPOLLIN;
  event.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) != 0) {
    return Status::IOError(StrFormat("epoll_ctl(wakeup): %s",
                                     std::strerror(errno)));
  }
  return Status::OK();
}

Status EventLoop::Add(int fd, uint32_t events, FdCallback callback) {
  struct epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    return Status::IOError(StrFormat("epoll_ctl(add fd %d): %s", fd,
                                     std::strerror(errno)));
  }
  callbacks_[fd] = std::move(callback);
  return Status::OK();
}

Status EventLoop::Mod(int fd, uint32_t events) {
  struct epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
    return Status::IOError(StrFormat("epoll_ctl(mod fd %d): %s", fd,
                                     std::strerror(errno)));
  }
  return Status::OK();
}

void EventLoop::Del(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::Run(int timeout_ms) {
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable epoll failure: stop serving, don't spin
    }
    bool woken = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        woken = true;
        continue;
      }
      // The callback may Del() other fds in this batch (e.g. close a
      // sibling connection); look each one up at dispatch time.
      auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;
      it->second(events[i].events);
    }
    if (woken && wake_handler_) wake_handler_();
    if (idle_handler_) idle_handler_();
  }
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Wakeup();
}

void EventLoop::Wakeup() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

}  // namespace net
}  // namespace ivr
