#include "ivr/net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "ivr/core/string_util.h"

namespace ivr {
namespace net {
namespace {

/// Offset just past the header terminator, or npos if not buffered yet.
size_t FindHeaderEnd(const std::string& buffer) {
  const size_t crlf = buffer.find("\r\n\r\n");
  const size_t lf = buffer.find("\n\n");
  if (crlf == std::string::npos && lf == std::string::npos) {
    return std::string::npos;
  }
  if (crlf == std::string::npos) return lf + 2;
  if (lf == std::string::npos) return crlf + 4;
  return crlf < lf ? crlf + 4 : lf + 2;
}

}  // namespace

const std::string* HttpClientResponse::FindHeader(
    std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

HttpClient::~HttpClient() { Close(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      timeout_ms_(other.timeout_ms_),
      fd_(other.fd_),
      leftover_(std::move(other.leftover_)) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    Close();
    host_ = std::move(other.host_);
    port_ = other.port_;
    timeout_ms_ = other.timeout_ms_;
    fd_ = other.fd_;
    leftover_ = std::move(other.leftover_);
    other.fd_ = -1;
  }
  return *this;
}

Status HttpClient::Connect(const std::string& host, int port,
                           int timeout_ms) {
  Close();
  host_ = host;
  port_ = port;
  timeout_ms_ = timeout_ms;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  if (timeout_ms > 0) {
    struct timeval tv;
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host literal: " + host);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status failed = Status::IOError(StrFormat(
        "connect %s:%d: %s", host.c_str(), port, std::strerror(errno)));
    ::close(fd);
    return failed;
  }
  fd_ = fd;
  leftover_.clear();
  return Status::OK();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  leftover_.clear();
}

Status HttpClient::Reconnect() { return Connect(host_, port_, timeout_ms_); }

Status HttpClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("send: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<HttpClientResponse> HttpClient::ReadResponse() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string buffer = std::move(leftover_);
  leftover_.clear();

  size_t header_end = FindHeaderEnd(buffer);
  char chunk[4096];
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IOError(buffer.empty()
                                 ? "connection closed before response"
                                 : "connection closed mid-headers");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("recv: %s", std::strerror(errno)));
    }
    buffer.append(chunk, static_cast<size_t>(n));
    header_end = FindHeaderEnd(buffer);
  }

  HttpClientResponse response;
  size_t line_start = 0;
  size_t content_length = 0;
  bool close_after = false;
  bool first_line = true;
  while (line_start < header_end) {
    size_t line_end = buffer.find('\n', line_start);
    std::string line = buffer.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;
    if (first_line) {
      first_line = false;
      // "HTTP/1.1 200 OK"
      const size_t sp = line.find(' ');
      if (sp == std::string::npos || !StartsWith(line, "HTTP/")) {
        return Status::Corruption("malformed status line: " + line);
      }
      const Result<int64_t> status = ParseInt(line.substr(sp + 1, 3));
      if (!status.ok() || *status < 100 || *status > 599) {
        return Status::Corruption("malformed status line: " + line);
      }
      response.status = static_cast<int>(*status);
      continue;
    }
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::Corruption("malformed response header: " + line);
    }
    std::string name = ToLower(line.substr(0, colon));
    std::string value(Trim(line.substr(colon + 1)));
    if (name == "content-length") {
      const Result<int64_t> parsed = ParseInt(value);
      if (!parsed.ok() || *parsed < 0) {
        return Status::Corruption("bad content-length: " + value);
      }
      content_length = static_cast<size_t>(*parsed);
    } else if (name == "connection" &&
               ToLower(value).find("close") != std::string::npos) {
      close_after = true;
    }
    response.headers.emplace_back(std::move(name), std::move(value));
  }

  std::string body = buffer.substr(header_end);
  while (body.size() < content_length) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Status::IOError("connection closed mid-body");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("recv: %s", std::strerror(errno)));
    }
    body.append(chunk, static_cast<size_t>(n));
  }
  leftover_ = body.substr(content_length);
  body.resize(content_length);
  response.body = std::move(body);
  if (close_after) Close();
  return response;
}

Result<HttpClientResponse> HttpClient::Request(const std::string& method,
                                               const std::string& path,
                                               const std::string& body) {
  const std::string wire = StrFormat(
      "%s %s HTTP/1.1\r\nHost: %s:%d\r\nContent-Length: %zu\r\n"
      "Connection: keep-alive\r\n\r\n",
      method.c_str(), path.c_str(), host_.c_str(), port_,
      body.size()) + body;
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (fd_ < 0) {
      IVR_RETURN_IF_ERROR(Reconnect());
    }
    const Status sent = SendRaw(wire);
    if (!sent.ok()) {
      // A keep-alive connection the server already closed: retry once on
      // a fresh connection. Second failure is real.
      Close();
      if (attempt == 0) continue;
      return sent;
    }
    Result<HttpClientResponse> response = ReadResponse();
    if (response.ok()) return response;
    Close();
    if (attempt == 0) continue;
    return response.status();
  }
  return Status::Internal("unreachable");
}

Result<HttpClientResponse> HttpClient::Get(const std::string& path) {
  return Request("GET", path, "");
}

Result<HttpClientResponse> HttpClient::Post(const std::string& path,
                                            const std::string& body) {
  return Request("POST", path, body);
}

}  // namespace net
}  // namespace ivr
