#ifndef IVR_NET_JSON_H_
#define IVR_NET_JSON_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ivr/core/result.h"

namespace ivr {
namespace net {

/// A parsed JSON document node. The HTTP endpoints exchange small JSON
/// bodies (session ids, queries, events), so this is a deliberately small
/// recursive-descent reader: numbers are doubles, objects preserve member
/// order, and the parser is bounded (depth limit, strict trailing-garbage
/// check) because its inputs arrive off the network.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one complete JSON document; InvalidArgument on syntax errors,
  /// trailing garbage, or nesting deeper than `max_depth`.
  static Result<JsonValue> Parse(std::string_view text,
                                 size_t max_depth = 32);

  JsonValue() = default;  // null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; only meaningful when the kind matches (they return
  /// the zero value otherwise — use the kind predicates or the checked
  /// object getters below).
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Checked object getters, the request-decoding workhorses:
  /// InvalidArgument names the missing/mistyped key so the HTTP 400 body
  /// tells the client exactly what was wrong.
  Result<std::string> GetString(std::string_view key) const;
  Result<double> GetNumber(std::string_view key) const;
  /// Like the checked getters but absent keys yield `fallback`.
  Result<double> GetNumberOr(std::string_view key, double fallback) const;
  Result<std::string> GetStringOr(std::string_view key,
                                  std::string_view fallback) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                              // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;    // kObject
};

/// `s` as a JSON string literal, quotes included ("ab\"c" -> "\"ab\\\"c\"").
std::string JsonQuote(std::string_view s);

}  // namespace net
}  // namespace ivr

#endif  // IVR_NET_JSON_H_
