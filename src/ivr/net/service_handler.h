#ifndef IVR_NET_SERVICE_HANDLER_H_
#define IVR_NET_SERVICE_HANDLER_H_

#include <string>

#include "ivr/net/http_parser.h"
#include "ivr/net/http_server.h"
#include "ivr/obs/metrics.h"
#include "ivr/service/session_manager.h"

namespace ivr {
namespace net {

/// The JSON API over a SessionManager — the piece ivr_httpd mounts as the
/// HttpServer handler. Thread-safe: it holds no mutable state of its own
/// and the manager is itself sharded/thread-safe, so workers can call
/// Handle() concurrently.
///
/// Endpoints (v1):
///   POST /v1/session/open   {"session_id","user_id"}
///   POST /v1/search         {"session_id","query":{"text","concepts"},"k"}
///   POST /v1/feedback       {"session_id","event":{"type","shot",...}}
///   POST /v1/session/close  {"session_id"}
///   GET  /healthz           manager Health() as JSON
///   GET  /statsz            live obs::StatsJson() (schema_version 1)
///
/// Bit-identical serving: /v1/search serializes every score with %.17g,
/// which round-trips an IEEE double exactly through strtod — the HTTP
/// equivalence test diffs these rankings byte-for-byte against direct
/// SessionManager calls.
///
/// Status -> HTTP: NotFound 404, AlreadyExists 409, InvalidArgument 400
/// (including every JSON decode error), anything else 500.
class ServiceHandler {
 public:
  /// `manager` must outlive the handler.
  explicit ServiceHandler(SessionManager* manager);

  HttpResponse Handle(const HttpRequest& request);

 private:
  HttpResponse HandleOpen(const HttpRequest& request);
  HttpResponse HandleSearch(const HttpRequest& request);
  HttpResponse HandleFeedback(const HttpRequest& request);
  HttpResponse HandleClose(const HttpRequest& request);
  HttpResponse HandleHealthz();
  HttpResponse HandleStatsz();

  SessionManager* manager_;

  /// Per-endpoint latency histograms, resolved once.
  struct Metrics {
    obs::LatencyHistogram* open_us;
    obs::LatencyHistogram* search_us;
    obs::LatencyHistogram* feedback_us;
    obs::LatencyHistogram* close_us;
    obs::LatencyHistogram* healthz_us;
    obs::LatencyHistogram* statsz_us;
  };
  Metrics metrics_;
};

}  // namespace net
}  // namespace ivr

#endif  // IVR_NET_SERVICE_HANDLER_H_
