#include "ivr/net/json.h"

#include <cctype>
#include <cstdint>

#include "ivr/core/string_util.h"

namespace ivr {
namespace net {
namespace {

bool IsJsonWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Appends the UTF-8 encoding of `cp` (any code point < 0x110000).
void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else {
    out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  }
}

/// True iff `token` matches the RFC 8259 number grammar:
/// -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
bool IsRfc8259Number(const std::string& token) {
  const char* p = token.c_str();
  if (*p == '-') ++p;
  if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
  if (*p == '0') {
    ++p;  // a leading zero stands alone: "0", "0.5", but never "01"
  } else {
    while (std::isdigit(static_cast<unsigned char>(*p))) ++p;
  }
  if (*p == '.') {
    ++p;
    if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
    while (std::isdigit(static_cast<unsigned char>(*p))) ++p;
  }
  if (*p == 'e' || *p == 'E') {
    ++p;
    if (*p == '+' || *p == '-') ++p;
    if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
    while (std::isdigit(static_cast<unsigned char>(*p))) ++p;
  }
  return *p == '\0';
}

}  // namespace

/// Recursive-descent parser over a string_view; position-based so error
/// messages can carry the offset.
class JsonParser {
 public:
  JsonParser(std::string_view text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> Run() {
    JsonValue root;
    IVR_ASSIGN_OR_RETURN(root, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing garbage after JSON document");
    }
    return root;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at byte %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && IsJsonWhitespace(text_[pos_])) ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(size_t depth) {
    if (depth > max_depth_) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    JsonValue v;
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        IVR_ASSIGN_OR_RETURN(v.string_, ParseString());
        v.kind_ = JsonValue::Kind::kString;
        return v;
      }
      case 't':
        if (!ConsumeLiteral("true")) return Error("bad literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!ConsumeLiteral("false")) return Error("bad literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!ConsumeLiteral("null")) return Error("bad literal");
        return v;
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(size_t depth) {
    ++pos_;  // '{'
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return v;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      IVR_ASSIGN_OR_RETURN(key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue member;
      IVR_ASSIGN_OR_RETURN(member, ParseValue(depth + 1));
      v.members_.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(size_t depth) {
    ++pos_;  // '['
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return v;
    while (true) {
      JsonValue item;
      IVR_ASSIGN_OR_RETURN(item, ParseValue(depth + 1));
      v.items_.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (size_t i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control byte in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // '\\'
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          IVR_ASSIGN_OR_RETURN(cp, ParseHex4());
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (!ConsumeLiteral("\\u")) {
              return Error("lone high surrogate");
            }
            uint32_t low = 0;
            IVR_ASSIGN_OR_RETURN(low, ParseHex4());
            if (low < 0xdc00 || low > 0xdfff) {
              return Error("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            return Error("lone low surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    (void)Consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    // RFC 8259 grammar, checked in full: -?(0|[1-9][0-9]*)(\.[0-9]+)?
    // ([eE][+-]?[0-9]+)? — notably "01", "+1", ".5", "1." and "1e" are
    // all malformed even though strtod would happily take most of them.
    if (!IsRfc8259Number(token)) return Error("malformed number: " + token);
    Result<double> parsed = ParseDouble(token);
    if (!parsed.ok()) return Error("malformed number: " + token);
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = *parsed;
    return v;
  }

  std::string_view text_;
  size_t max_depth_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text, size_t max_depth) {
  return JsonParser(text, max_depth).Run();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<std::string> JsonValue::GetString(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument(
        StrFormat("missing required string field \"%.*s\"",
                  static_cast<int>(key.size()), key.data()));
  }
  if (!v->is_string()) {
    return Status::InvalidArgument(
        StrFormat("field \"%.*s\" must be a string",
                  static_cast<int>(key.size()), key.data()));
  }
  return v->string_value();
}

Result<double> JsonValue::GetNumber(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument(
        StrFormat("missing required number field \"%.*s\"",
                  static_cast<int>(key.size()), key.data()));
  }
  if (!v->is_number()) {
    return Status::InvalidArgument(
        StrFormat("field \"%.*s\" must be a number",
                  static_cast<int>(key.size()), key.data()));
  }
  return v->number_value();
}

Result<double> JsonValue::GetNumberOr(std::string_view key,
                                      double fallback) const {
  if (Find(key) == nullptr) return fallback;
  return GetNumber(key);
}

Result<std::string> JsonValue::GetStringOr(std::string_view key,
                                           std::string_view fallback) const {
  if (Find(key) == nullptr) return std::string(fallback);
  return GetString(key);
}

std::string JsonQuote(std::string_view s) {
  return "\"" + JsonEscape(s) + "\"";
}

}  // namespace net
}  // namespace ivr
