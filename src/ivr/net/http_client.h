#ifndef IVR_NET_HTTP_CLIENT_H_
#define IVR_NET_HTTP_CLIENT_H_

#include <string>
#include <utility>
#include <vector>

#include "ivr/core/result.h"

namespace ivr {
namespace net {

/// One parsed HTTP response as a client sees it.
struct HttpClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // lower-cased
  std::string body;

  const std::string* FindHeader(std::string_view name) const;
};

/// A small blocking HTTP/1.1 client over one keep-alive connection —
/// the test-side counterpart of HttpServer, and what ivr_http_client
/// drives concurrently (one HttpClient per thread; an instance is NOT
/// thread-safe). Requests carry Content-Length, responses are read to
/// their exact Content-Length, and a server-side close between requests
/// is healed by one transparent reconnect.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;

  /// Connects to host:port (host is a dotted IPv4 literal, e.g.
  /// "127.0.0.1"). `timeout_ms` bounds every subsequent send/recv; 0
  /// means no timeout.
  Status Connect(const std::string& host, int port, int timeout_ms = 10000);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// The raw connected socket, for tests that want to write torn or
  /// otherwise pathological bytes directly. -1 when not connected.
  int fd() const { return fd_; }

  Result<HttpClientResponse> Get(const std::string& path);
  Result<HttpClientResponse> Post(const std::string& path,
                                  const std::string& body);

  /// Sends raw bytes as-is (chaos tests: slow-loris, truncated requests).
  Status SendRaw(std::string_view bytes);
  /// Reads one full response off the socket (after SendRaw).
  Result<HttpClientResponse> ReadResponse();

 private:
  Result<HttpClientResponse> Request(const std::string& method,
                                     const std::string& path,
                                     const std::string& body);
  Status Reconnect();

  std::string host_;
  int port_ = 0;
  int timeout_ms_ = 0;
  int fd_ = -1;
  /// Bytes read past the previous response (keep-alive pipelining slack).
  std::string leftover_;
};

}  // namespace net
}  // namespace ivr

#endif  // IVR_NET_HTTP_CLIENT_H_
