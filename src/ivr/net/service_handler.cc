#include "ivr/net/service_handler.h"

#include <cmath>
#include <utility>

#include "ivr/core/string_util.h"
#include "ivr/feedback/events.h"
#include "ivr/net/json.h"
#include "ivr/obs/report.h"
#include "ivr/retrieval/health.h"

namespace ivr {
namespace net {
namespace {

HttpResponse JsonError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = StrFormat("{\"error\": %s}\n", JsonQuote(message).c_str());
  return response;
}

/// The one Status -> HTTP mapping every endpoint shares.
HttpResponse FromStatus(const Status& status) {
  if (status.IsNotFound()) return JsonError(404, status.ToString());
  if (status.IsAlreadyExists()) return JsonError(409, status.ToString());
  if (status.IsInvalidArgument()) return JsonError(400, status.ToString());
  return JsonError(500, status.ToString());
}

HttpResponse JsonOk(std::string body) {
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

/// Rejects non-integral or out-of-range JSON numbers instead of silently
/// truncating them (a shot id of 3.7 is a client bug, not shot 3).
Result<int64_t> AsInt(double value, std::string_view what) {
  if (!std::isfinite(value) || value != std::floor(value) ||
      value < -9.0e15 || value > 9.0e15) {
    return Status::InvalidArgument(StrFormat(
        "\"%.*s\" must be an integer", static_cast<int>(what.size()),
        what.data()));
  }
  return static_cast<int64_t>(value);
}

Result<Query> DecodeQuery(const JsonValue& body) {
  Query query;
  const JsonValue* node = body.Find("query");
  if (node == nullptr) {
    return Status::InvalidArgument("missing object member \"query\"");
  }
  if (!node->is_object()) {
    return Status::InvalidArgument("\"query\" must be an object");
  }
  IVR_ASSIGN_OR_RETURN(query.text, node->GetStringOr("text", ""));
  const JsonValue* concepts = node->Find("concepts");
  if (concepts != nullptr) {
    if (!concepts->is_array()) {
      return Status::InvalidArgument("\"query.concepts\" must be an array");
    }
    for (const JsonValue& item : concepts->items()) {
      if (!item.is_number()) {
        return Status::InvalidArgument(
            "\"query.concepts\" entries must be numbers");
      }
      IVR_ASSIGN_OR_RETURN(const int64_t id,
                           AsInt(item.number_value(), "query.concepts"));
      if (id < 0) {
        return Status::InvalidArgument(
            "\"query.concepts\" entries must be >= 0");
      }
      query.concepts.push_back(static_cast<ConceptId>(id));
    }
  }
  if (!query.HasText() && !query.HasConcepts()) {
    return Status::InvalidArgument(
        "\"query\" needs text and/or concepts (visual examples are not "
        "exposed over HTTP v1)");
  }
  return query;
}

Result<InteractionEvent> DecodeEvent(const JsonValue& body,
                                     const std::string& session_id) {
  const JsonValue* node = body.Find("event");
  if (node == nullptr || !node->is_object()) {
    return Status::InvalidArgument("missing object member \"event\"");
  }
  IVR_ASSIGN_OR_RETURN(const std::string type_name,
                       node->GetString("type"));
  InteractionEvent event;
  IVR_ASSIGN_OR_RETURN(event.type, EventTypeFromName(type_name));
  event.session_id = session_id;
  IVR_ASSIGN_OR_RETURN(event.user_id, node->GetStringOr("user_id", ""));
  IVR_ASSIGN_OR_RETURN(event.text, node->GetStringOr("text", ""));
  IVR_ASSIGN_OR_RETURN(const double time_ms, node->GetNumberOr("time", 0));
  IVR_ASSIGN_OR_RETURN(const int64_t time_int, AsInt(time_ms, "event.time"));
  event.time = static_cast<TimeMs>(time_int);
  IVR_ASSIGN_OR_RETURN(const double topic, node->GetNumberOr("topic", 0));
  IVR_ASSIGN_OR_RETURN(const int64_t topic_int, AsInt(topic, "event.topic"));
  event.topic = static_cast<SearchTopicId>(topic_int);
  IVR_ASSIGN_OR_RETURN(event.value, node->GetNumberOr("value", 0.0));
  const JsonValue* shot = node->Find("shot");
  if (shot != nullptr) {
    if (!shot->is_number()) {
      return Status::InvalidArgument("\"event.shot\" must be a number");
    }
    IVR_ASSIGN_OR_RETURN(const int64_t id,
                         AsInt(shot->number_value(), "event.shot"));
    if (id < 0 || id > static_cast<int64_t>(kInvalidShotId)) {
      return Status::InvalidArgument("\"event.shot\" out of range");
    }
    event.shot = static_cast<ShotId>(id);
  }
  return event;
}

Result<JsonValue> ParseBody(const HttpRequest& request) {
  if (request.body.empty()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  IVR_ASSIGN_OR_RETURN(JsonValue body, JsonValue::Parse(request.body));
  if (!body.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  return body;
}

}  // namespace

ServiceHandler::ServiceHandler(SessionManager* manager)
    : manager_(manager) {
  obs::Registry& registry = obs::Registry::Global();
  metrics_.open_us = registry.GetHistogram("http.endpoint.open_us");
  metrics_.search_us = registry.GetHistogram("http.endpoint.search_us");
  metrics_.feedback_us = registry.GetHistogram("http.endpoint.feedback_us");
  metrics_.close_us = registry.GetHistogram("http.endpoint.close_us");
  metrics_.healthz_us = registry.GetHistogram("http.endpoint.healthz_us");
  metrics_.statsz_us = registry.GetHistogram("http.endpoint.statsz_us");
}

HttpResponse ServiceHandler::Handle(const HttpRequest& request) {
  const bool is_get = request.method == "GET";
  const bool is_post = request.method == "POST";
  const obs::Stopwatch timer;
  if (request.path == "/healthz") {
    if (!is_get) return JsonError(405, "use GET /healthz");
    HttpResponse response = HandleHealthz();
    metrics_.healthz_us->Record(timer.ElapsedUs());
    return response;
  }
  if (request.path == "/statsz") {
    if (!is_get) return JsonError(405, "use GET /statsz");
    HttpResponse response = HandleStatsz();
    metrics_.statsz_us->Record(timer.ElapsedUs());
    return response;
  }
  if (request.path == "/v1/session/open") {
    if (!is_post) return JsonError(405, "use POST /v1/session/open");
    HttpResponse response = HandleOpen(request);
    metrics_.open_us->Record(timer.ElapsedUs());
    return response;
  }
  if (request.path == "/v1/search") {
    if (!is_post) return JsonError(405, "use POST /v1/search");
    HttpResponse response = HandleSearch(request);
    metrics_.search_us->Record(timer.ElapsedUs());
    return response;
  }
  if (request.path == "/v1/feedback") {
    if (!is_post) return JsonError(405, "use POST /v1/feedback");
    HttpResponse response = HandleFeedback(request);
    metrics_.feedback_us->Record(timer.ElapsedUs());
    return response;
  }
  if (request.path == "/v1/session/close") {
    if (!is_post) return JsonError(405, "use POST /v1/session/close");
    HttpResponse response = HandleClose(request);
    metrics_.close_us->Record(timer.ElapsedUs());
    return response;
  }
  return JsonError(404, StrFormat("no endpoint %s", request.path.c_str()));
}

HttpResponse ServiceHandler::HandleOpen(const HttpRequest& request) {
  const Result<JsonValue> body = ParseBody(request);
  if (!body.ok()) return FromStatus(body.status());
  const Result<std::string> session_id = body->GetString("session_id");
  if (!session_id.ok()) return FromStatus(session_id.status());
  const Result<std::string> user_id = body->GetStringOr("user_id", "");
  if (!user_id.ok()) return FromStatus(user_id.status());
  if (session_id->empty()) {
    return JsonError(400, "\"session_id\" must be non-empty");
  }
  const Status opened = manager_->BeginSession(*session_id, *user_id);
  if (!opened.ok()) return FromStatus(opened);
  return JsonOk(StrFormat("{\"session_id\": %s, \"user_id\": %s}\n",
                          JsonQuote(*session_id).c_str(),
                          JsonQuote(*user_id).c_str()));
}

HttpResponse ServiceHandler::HandleSearch(const HttpRequest& request) {
  const Result<JsonValue> body = ParseBody(request);
  if (!body.ok()) return FromStatus(body.status());
  const Result<std::string> session_id = body->GetString("session_id");
  if (!session_id.ok()) return FromStatus(session_id.status());
  const Result<Query> query = DecodeQuery(*body);
  if (!query.ok()) return FromStatus(query.status());
  const Result<double> k_raw = body->GetNumberOr("k", 10);
  if (!k_raw.ok()) return FromStatus(k_raw.status());
  const Result<int64_t> k = AsInt(*k_raw, "k");
  if (!k.ok()) return FromStatus(k.status());
  if (*k <= 0 || *k > 10000) {
    return JsonError(400, "\"k\" must be in [1, 10000]");
  }
  const Result<ResultList> results =
      manager_->Search(*session_id, *query, static_cast<size_t>(*k));
  if (!results.ok()) return FromStatus(results.status());

  std::string body_out = StrFormat("{\"session_id\": %s, \"k\": %lld, "
                                   "\"results\": [",
                                   JsonQuote(*session_id).c_str(),
                                   static_cast<long long>(*k));
  for (size_t i = 0; i < results->size(); ++i) {
    const RankedShot& entry = results->at(i);
    // %.17g round-trips an IEEE double exactly: the bit-equality the
    // http_equivalence test asserts is decided right here.
    body_out += StrFormat("%s{\"shot\": %u, \"score\": %.17g}",
                          i == 0 ? "" : ", ",
                          static_cast<unsigned>(entry.shot), entry.score);
  }
  body_out += "]}\n";
  return JsonOk(std::move(body_out));
}

HttpResponse ServiceHandler::HandleFeedback(const HttpRequest& request) {
  const Result<JsonValue> body = ParseBody(request);
  if (!body.ok()) return FromStatus(body.status());
  const Result<std::string> session_id = body->GetString("session_id");
  if (!session_id.ok()) return FromStatus(session_id.status());
  const Result<InteractionEvent> event = DecodeEvent(*body, *session_id);
  if (!event.ok()) return FromStatus(event.status());
  const Status observed = manager_->ObserveEvent(*session_id, *event);
  if (!observed.ok()) return FromStatus(observed);
  return JsonOk(StrFormat("{\"session_id\": %s, \"recorded\": true}\n",
                          JsonQuote(*session_id).c_str()));
}

HttpResponse ServiceHandler::HandleClose(const HttpRequest& request) {
  const Result<JsonValue> body = ParseBody(request);
  if (!body.ok()) return FromStatus(body.status());
  const Result<std::string> session_id = body->GetString("session_id");
  if (!session_id.ok()) return FromStatus(session_id.status());
  const Status closed = manager_->EndSession(*session_id);
  if (!closed.ok()) return FromStatus(closed);
  return JsonOk(StrFormat("{\"session_id\": %s, \"closed\": true}\n",
                          JsonQuote(*session_id).c_str()));
}

HttpResponse ServiceHandler::HandleHealthz() {
  const HealthReport health = manager_->Health();
  return JsonOk(StrFormat(
      "{\"ok\": %s, \"degraded\": %s, \"sessions_active\": %llu, "
      "\"degraded_queries\": %llu, \"faults_injected\": %llu, "
      "\"session_persist_failures\": %llu}\n",
      health.degraded() ? "false" : "true",
      health.degraded() ? "true" : "false",
      static_cast<unsigned long long>(health.sessions_active),
      static_cast<unsigned long long>(health.degraded_queries),
      static_cast<unsigned long long>(health.faults_injected),
      static_cast<unsigned long long>(health.session_persist_failures)));
}

HttpResponse ServiceHandler::HandleStatsz() {
  return JsonOk(obs::StatsJson());
}

}  // namespace net
}  // namespace ivr
