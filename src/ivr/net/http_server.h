#ifndef IVR_NET_HTTP_SERVER_H_
#define IVR_NET_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ivr/core/status.h"
#include "ivr/net/event_loop.h"
#include "ivr/net/http_parser.h"
#include "ivr/obs/metrics.h"

namespace ivr {
namespace net {

/// What a handler returns; the server adds the status line, Content-Length
/// and Connection headers when serializing.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Force Connection: close regardless of what the request asked for.
  bool close = false;
};

/// Standard reason phrase for the status codes the stack emits.
std::string_view HttpReasonPhrase(int status);

/// Serializes a full HTTP/1.1 response message (used by the server and by
/// tests asserting on wire bytes).
std::string SerializeResponse(const HttpResponse& response,
                              bool keep_alive);

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks; read the result from port().
  int port = 0;
  /// Handler worker threads. Request handling (SessionManager calls, JSON
  /// codec work) runs here, never on the event loop.
  size_t num_workers = 2;
  /// Accepted connections beyond this are closed immediately.
  size_t max_connections = 1024;
  /// Connections idle longer than this are closed by the loop's sweep;
  /// 0 disables the sweep (tests drive their own pacing).
  int64_t idle_timeout_ms = 0;
  HttpParserLimits limits;
};

/// Monitoring counters, readable from any thread while the server runs.
/// These are per-server (the obs registry mirrors them process-wide).
struct HttpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t requests = 0;
  uint64_t responses_2xx = 0;
  uint64_t responses_4xx = 0;
  uint64_t responses_5xx = 0;
  uint64_t parse_errors = 0;
  uint64_t accept_faults = 0;
  uint64_t read_faults = 0;
  uint64_t write_faults = 0;
  uint64_t idle_closed = 0;
  uint64_t overload_closed = 0;
  /// Requests still in flight when a Drain() deadline expired.
  uint64_t requests_abandoned = 0;
};

/// The epoll front-end: one non-blocking event-loop thread owns the
/// listener and every connection (accept, incremental parse, response
/// write, keep-alive turnaround), and a small worker pool runs the
/// handler for each complete request. The two sides meet at exactly one
/// seam: workers post serialized responses into a mutexed mailbox and
/// Wakeup() the loop, which matches them back to connections by
/// (id, generation) — a connection that died while its request was in
/// flight simply drops the response, so workers never touch socket state
/// and the loop never blocks on a handler.
///
/// Fault sites (chaos tier): "net.accept" closes a just-accepted
/// connection, "net.read" turns a readable socket into a connection
/// error, "net.write" kills a connection mid-response (the client sees a
/// torn response; the server carries on). All three degrade one
/// connection, never the process.
class HttpServer {
 public:
  /// `handler` runs on worker threads, possibly concurrently; it must be
  /// thread-safe (ServiceHandler over a SessionManager is).
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(HttpServerOptions options, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the loop + worker threads.
  Status Start();

  /// Drains workers and tears every connection down. Idempotent; also run
  /// by the destructor.
  void Stop();

  /// Graceful shutdown: stops accepting new connections and new requests
  /// (the listener is deregistered on the loop thread; idle keep-alive
  /// connections are shed), lets every already-dispatched request finish —
  /// handler execution AND the full response flush — then Stop()s. Returns
  /// true when everything in flight completed within `timeout_ms`; false
  /// when the deadline forced abandonment (the count lands in
  /// stats().requests_abandoned). Safe to call from any thread except the
  /// loop thread.
  bool Drain(int64_t timeout_ms);

  /// The bound TCP port (the ephemeral choice when options.port was 0).
  /// Valid after Start().
  int port() const { return port_; }

  HttpServerStats stats() const;

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    HttpParser parser;
    /// True while a worker owns the current request.
    bool handling = false;
    std::string outbuf;
    size_t out_pos = 0;
    bool close_after_write = false;
    bool keep_alive = true;
    /// True while this connection holds an in_flight_ slot: set at
    /// dispatch, released when the response is fully flushed (or the slot
    /// transfers straight to a pipelined follow-up), or when the
    /// connection dies.
    bool counted_in_flight = false;
    int64_t last_active_us = 0;
  };

  struct CompletedResponse {
    uint64_t conn_id = 0;
    std::string bytes;
    bool close_after = false;
    int status = 0;
  };

  struct Job {
    uint64_t conn_id = 0;
    HttpRequest request;
  };

  void LoopThread();
  void WorkerThread();
  void OnListenerReady(uint32_t events);
  void OnConnectionReady(Connection* conn, uint32_t events);
  void ReadFromConnection(Connection* conn);
  void WriteToConnection(Connection* conn);
  /// Queues `response` bytes on the loop thread and arms EPOLLOUT.
  void StartResponse(Connection* conn, std::string bytes, bool close_after,
                     int status);
  void DispatchRequest(Connection* conn);
  /// After a response fully flushed: keep-alive turnaround or close.
  void FinishResponse(Connection* conn);
  void CloseConnection(uint64_t conn_id);
  /// Gives back `conn`'s in_flight_ slot, if it holds one.
  void ReleaseInFlight(Connection* conn);
  void DrainMailbox();
  void SweepIdle();
  void CountResponse(int status);

  HttpServerOptions options_;
  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  EventLoop loop_;
  std::thread loop_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  /// Dispatched requests whose response has not fully flushed yet.
  std::atomic<uint64_t> in_flight_{0};
  /// Loop-thread only: the drain wake already deregistered the listener.
  bool listener_removed_ = false;

  /// Owned by the loop thread exclusively.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;

  /// Worker pool: jobs in, serialized responses out (the mailbox).
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<Job> jobs_;
  bool workers_stop_ = false;
  std::vector<std::thread> workers_;

  std::mutex mailbox_mu_;
  std::vector<CompletedResponse> mailbox_;

  struct AtomicStats {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_active{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> responses_2xx{0};
    std::atomic<uint64_t> responses_4xx{0};
    std::atomic<uint64_t> responses_5xx{0};
    std::atomic<uint64_t> parse_errors{0};
    std::atomic<uint64_t> accept_faults{0};
    std::atomic<uint64_t> read_faults{0};
    std::atomic<uint64_t> write_faults{0};
    std::atomic<uint64_t> idle_closed{0};
    std::atomic<uint64_t> overload_closed{0};
    std::atomic<uint64_t> requests_abandoned{0};
  };
  AtomicStats stats_;

  /// Obs registry mirrors, resolved once at construction.
  struct Metrics {
    obs::Counter* connections_accepted;
    obs::Counter* requests;
    obs::Counter* responses_2xx;
    obs::Counter* responses_4xx;
    obs::Counter* responses_5xx;
    obs::Counter* parse_errors;
    obs::Counter* accept_faults;
    obs::Counter* read_faults;
    obs::Counter* write_faults;
    obs::Counter* requests_abandoned;
    obs::Gauge* connections_active;
    obs::LatencyHistogram* request_us;
  };
  Metrics metrics_;
};

}  // namespace net
}  // namespace ivr

#endif  // IVR_NET_HTTP_SERVER_H_
