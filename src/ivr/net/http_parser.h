#ifndef IVR_NET_HTTP_PARSER_H_
#define IVR_NET_HTTP_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ivr {
namespace net {

/// One parsed HTTP/1.x request. Header names are lower-cased at parse
/// time (HTTP headers are case-insensitive); values keep their bytes with
/// surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;        // "GET", "POST", ... (token, upper-case only)
  std::string target;        // raw request target ("/v1/search?x=1")
  std::string path;          // target up to '?'
  std::string query;         // target after '?' ("" when absent)
  int minor_version = 1;     // HTTP/1.<minor>
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Whether the connection should stay open after the response
  /// (HTTP/1.1 default, overridden by Connection: close / keep-alive).
  bool keep_alive = true;

  /// First header named `name` (lower-case); nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
};

/// Hard bounds on a request, enforced *while* parsing so an attacker
/// cannot buffer-balloon the server with an endless header section.
struct HttpParserLimits {
  size_t max_request_line_bytes = 8 * 1024;
  /// Cumulative cap on the header section (request line included).
  size_t max_header_bytes = 16 * 1024;
  size_t max_headers = 100;
  size_t max_body_bytes = 1024 * 1024;
};

/// Incremental HTTP/1.0/1.1 request parser: feed it whatever bytes the
/// socket produced (a byte at a time is fine — the slow-loris case) and it
/// advances a request-line -> header-at-a-time -> body state machine.
/// Malformed or over-limit input parks the parser in kError with the HTTP
/// status the server should answer before closing:
///
///   400 syntax errors           413 body over max_body_bytes
///   431 header section too big  501 Transfer-Encoding (chunked bodies
///   505 not HTTP/1.x                are rejected, never half-consumed)
///
/// Keep-alive: after a request completes, Reset() re-arms the machine and
/// re-parses any pipelined bytes already buffered.
class HttpParser {
 public:
  enum class State { kRequestLine, kHeaders, kBody, kComplete, kError };

  explicit HttpParser(HttpParserLimits limits = {});

  /// Appends bytes and advances as far as possible. No-op in kComplete /
  /// kError (bytes stay buffered for the next Reset).
  void Feed(std::string_view data);

  State state() const { return state_; }
  bool done() const { return state_ == State::kComplete; }
  bool failed() const { return state_ == State::kError; }

  /// The response status for a kError parse (400/413/431/501/505).
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  /// The parsed request; valid only in kComplete.
  const HttpRequest& request() const { return request_; }
  HttpRequest TakeRequest() { return std::move(request_); }

  /// Starts the next request of a keep-alive connection: clears request
  /// state, keeps unconsumed buffered bytes, and immediately parses them
  /// (a pipelined request can complete without another Feed).
  void Reset();

  /// Bytes buffered but not yet consumed (tests; idle-close heuristics).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  void Advance();
  /// Extracts the next line (up to CRLF or LF) from the buffer; false when
  /// no complete line is buffered yet. `limit` caps the line length.
  bool NextLine(size_t limit, std::string* line, bool* over_limit);
  void ParseRequestLine(const std::string& line);
  void ParseHeaderLine(const std::string& line);
  void FinishHeaders();
  void Fail(int status, std::string reason);
  void CompactBuffer();

  HttpParserLimits limits_;
  State state_ = State::kRequestLine;
  std::string buffer_;
  size_t consumed_ = 0;       // bytes of buffer_ already parsed
  size_t header_bytes_ = 0;   // request line + headers consumed so far
  size_t content_length_ = 0;
  int error_status_ = 0;
  std::string error_reason_;
  HttpRequest request_;
};

}  // namespace net
}  // namespace ivr

#endif  // IVR_NET_HTTP_PARSER_H_
