#include "ivr/net/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "ivr/core/fault_injection.h"
#include "ivr/core/string_util.h"

namespace ivr {
namespace net {
namespace {

int64_t MonotonicUs() {
  // Deliberately NOT obs::NowUs(): tests freeze the obs clock for
  // bit-reproducible stats, which must not also freeze idle sweeps.
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 505:
      return "HTTP Version Not Supported";
    default:
      return status < 400 ? "OK" : "Error";
  }
}

std::string SerializeResponse(const HttpResponse& response,
                              bool keep_alive) {
  const std::string_view reason = HttpReasonPhrase(response.status);
  std::string out = StrFormat(
      "HTTP/1.1 %d %.*s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: %s\r\n\r\n",
      response.status, static_cast<int>(reason.size()), reason.data(),
      response.content_type.c_str(), response.body.size(),
      keep_alive ? "keep-alive" : "close");
  out += response.body;
  return out;
}

HttpServer::HttpServer(HttpServerOptions options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  obs::Registry& registry = obs::Registry::Global();
  metrics_.connections_accepted =
      registry.GetCounter("http.connections_accepted");
  metrics_.requests = registry.GetCounter("http.requests");
  metrics_.responses_2xx = registry.GetCounter("http.responses_2xx");
  metrics_.responses_4xx = registry.GetCounter("http.responses_4xx");
  metrics_.responses_5xx = registry.GetCounter("http.responses_5xx");
  metrics_.parse_errors = registry.GetCounter("http.parse_errors");
  metrics_.accept_faults = registry.GetCounter("http.accept_faults");
  metrics_.read_faults = registry.GetCounter("http.read_faults");
  metrics_.write_faults = registry.GetCounter("http.write_faults");
  metrics_.requests_abandoned =
      registry.GetCounter("http.requests_abandoned");
  metrics_.connections_active =
      registry.GetGauge("http.connections_active");
  metrics_.request_us = registry.GetHistogram("http.request_us");
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (started_.load()) {
    return Status::FailedPrecondition("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError(StrFormat("bind %s:%d: %s",
                                     options_.bind_address.c_str(),
                                     options_.port, std::strerror(errno)));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::IOError(StrFormat("listen: %s", std::strerror(errno)));
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Status::IOError(StrFormat("getsockname: %s",
                                     std::strerror(errno)));
  }
  port_ = ntohs(bound.sin_port);

  IVR_RETURN_IF_ERROR(loop_.Init());
  IVR_RETURN_IF_ERROR(loop_.Add(listen_fd_, EPOLLIN,
                                [this](uint32_t events) {
                                  OnListenerReady(events);
                                }));
  loop_.SetWakeHandler([this] { DrainMailbox(); });
  if (options_.idle_timeout_ms > 0) {
    loop_.SetIdleHandler([this] { SweepIdle(); });
  }

  const size_t num_workers = std::max<size_t>(1, options_.num_workers);
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerThread(); });
  }
  const int timeout_ms =
      options_.idle_timeout_ms > 0
          ? static_cast<int>(
                std::min<int64_t>(options_.idle_timeout_ms, 500))
          : -1;
  loop_thread_ = std::thread([this, timeout_ms] { loop_.Run(timeout_ms); });
  started_.store(true);
  return Status::OK();
}

bool HttpServer::Drain(int64_t timeout_ms) {
  if (!started_.load()) return true;
  draining_.store(true, std::memory_order_release);
  loop_.Wakeup();  // the wake handler deregisters the listener
  const int64_t deadline_us =
      MonotonicUs() + std::max<int64_t>(0, timeout_ms) * 1000;
  while (in_flight_.load(std::memory_order_acquire) > 0 &&
         MonotonicUs() < deadline_us) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const uint64_t abandoned = in_flight_.load(std::memory_order_acquire);
  if (abandoned > 0) {
    stats_.requests_abandoned.fetch_add(abandoned,
                                        std::memory_order_relaxed);
    metrics_.requests_abandoned->Inc(abandoned);
  }
  Stop();
  return abandoned == 0;
}

void HttpServer::Stop() {
  if (!started_.load()) return;
  if (stopping_.exchange(true)) return;  // another Stop owns teardown
  loop_.Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    workers_stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Loop and workers are gone; the loop-owned state is now ours to free.
  for (auto& [id, conn] : connections_) {
    (void)id;
    ::close(conn->fd);
    metrics_.connections_active->Add(-1);
  }
  stats_.connections_active.store(0, std::memory_order_relaxed);
  connections_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_.store(false);
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats out;
  out.connections_accepted =
      stats_.connections_accepted.load(std::memory_order_relaxed);
  out.connections_active =
      stats_.connections_active.load(std::memory_order_relaxed);
  out.requests = stats_.requests.load(std::memory_order_relaxed);
  out.responses_2xx = stats_.responses_2xx.load(std::memory_order_relaxed);
  out.responses_4xx = stats_.responses_4xx.load(std::memory_order_relaxed);
  out.responses_5xx = stats_.responses_5xx.load(std::memory_order_relaxed);
  out.parse_errors = stats_.parse_errors.load(std::memory_order_relaxed);
  out.accept_faults = stats_.accept_faults.load(std::memory_order_relaxed);
  out.read_faults = stats_.read_faults.load(std::memory_order_relaxed);
  out.write_faults = stats_.write_faults.load(std::memory_order_relaxed);
  out.idle_closed = stats_.idle_closed.load(std::memory_order_relaxed);
  out.overload_closed =
      stats_.overload_closed.load(std::memory_order_relaxed);
  out.requests_abandoned =
      stats_.requests_abandoned.load(std::memory_order_relaxed);
  return out;
}

void HttpServer::OnListenerReady(uint32_t events) {
  if ((events & EPOLLIN) == 0) return;
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; epoll will re-arm us
    }
    if (FaultInjector::Global().ShouldFail("net.accept")) {
      stats_.accept_faults.fetch_add(1, std::memory_order_relaxed);
      metrics_.accept_faults->Inc();
      ::close(fd);
      continue;
    }
    if (connections_.size() >= options_.max_connections) {
      stats_.overload_closed.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));

    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->parser = HttpParser(options_.limits);
    conn->last_active_us = MonotonicUs();
    Connection* raw = conn.get();
    const uint64_t id = conn->id;
    connections_[id] = std::move(conn);
    const Status added =
        loop_.Add(fd, EPOLLIN | EPOLLRDHUP, [this, raw](uint32_t ev) {
          OnConnectionReady(raw, ev);
        });
    if (!added.ok()) {
      connections_.erase(id);
      ::close(fd);
      continue;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_active.fetch_add(1, std::memory_order_relaxed);
    metrics_.connections_accepted->Inc();
    metrics_.connections_active->Add(1);
  }
}

void HttpServer::OnConnectionReady(Connection* conn, uint32_t events) {
  conn->last_active_us = MonotonicUs();
  const uint64_t id = conn->id;
  if (events & EPOLLOUT) {
    WriteToConnection(conn);
    if (connections_.count(id) == 0) return;  // write path closed it
  }
  if (events & EPOLLIN) {
    ReadFromConnection(conn);
    if (connections_.count(id) == 0) return;
  }
  if (events & (EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
    // Abrupt client disconnect (or half-close): everything readable was
    // drained above; whatever response might be in flight has nowhere to
    // go. Tear the connection down.
    CloseConnection(id);
  }
}

void HttpServer::ReadFromConnection(Connection* conn) {
  char chunk[4096];
  while (true) {
    if (FaultInjector::Global().ShouldFail("net.read")) {
      stats_.read_faults.fetch_add(1, std::memory_order_relaxed);
      metrics_.read_faults->Inc();
      CloseConnection(conn->id);
      return;
    }
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      CloseConnection(conn->id);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(conn->id);
      return;
    }
    // While a worker owns the current request the parser sits in
    // kComplete and Feed only buffers — the bytes wait for Reset().
    conn->parser.Feed(std::string_view(chunk, static_cast<size_t>(n)));
  }
  if (conn->handling) return;
  if (conn->parser.failed()) {
    stats_.parse_errors.fetch_add(1, std::memory_order_relaxed);
    metrics_.parse_errors->Inc();
    HttpResponse error;
    error.status = conn->parser.error_status();
    error.body = StrFormat("{\"error\": \"%s\"}\n",
                           JsonEscape(conn->parser.error_reason()).c_str());
    StartResponse(conn, SerializeResponse(error, /*keep_alive=*/false),
                  /*close_after=*/true, error.status);
    return;
  }
  if (conn->parser.done()) DispatchRequest(conn);
}

void HttpServer::DispatchRequest(Connection* conn) {
  conn->handling = true;
  if (!conn->counted_in_flight) {
    conn->counted_in_flight = true;
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
  }
  conn->keep_alive = conn->parser.request().keep_alive;
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  metrics_.requests->Inc();
  // Stop reading while the request is in flight; EPOLLRDHUP still tells
  // us about a client that went away mid-handling.
  (void)loop_.Mod(conn->fd, EPOLLRDHUP);
  Job job;
  job.conn_id = conn->id;
  job.request = conn->parser.TakeRequest();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    jobs_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void HttpServer::WorkerThread() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [this] {
        return workers_stop_ || !jobs_.empty();
      });
      if (workers_stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    const obs::Stopwatch timer;
    const HttpResponse response = handler_(job.request);
    metrics_.request_us->Record(timer.ElapsedUs());
    const bool keep_alive = job.request.keep_alive && !response.close;
    CompletedResponse done;
    done.conn_id = job.conn_id;
    done.bytes = SerializeResponse(response, keep_alive);
    done.close_after = !keep_alive;
    done.status = response.status;
    {
      std::lock_guard<std::mutex> lock(mailbox_mu_);
      mailbox_.push_back(std::move(done));
    }
    loop_.Wakeup();
  }
}

void HttpServer::ReleaseInFlight(Connection* conn) {
  if (!conn->counted_in_flight) return;
  conn->counted_in_flight = false;
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

void HttpServer::DrainMailbox() {
  if (draining_.load(std::memory_order_acquire) && !listener_removed_) {
    // The drain wake: stop accepting, and shed every idle connection —
    // idle ones can only ever bring NEW requests, so closing them bounds
    // the drain by work already dispatched or mid-write.
    listener_removed_ = true;
    loop_.Del(listen_fd_);
    std::vector<uint64_t> idle;
    for (const auto& [id, conn] : connections_) {
      if (!conn->handling && conn->outbuf.empty()) idle.push_back(id);
    }
    for (uint64_t id : idle) CloseConnection(id);
  }
  std::vector<CompletedResponse> batch;
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    batch.swap(mailbox_);
  }
  for (CompletedResponse& done : batch) {
    auto it = connections_.find(done.conn_id);
    if (it == connections_.end()) continue;  // died while handling
    StartResponse(it->second.get(), std::move(done.bytes),
                  done.close_after, done.status);
  }
}

void HttpServer::CountResponse(int status) {
  if (status >= 500) {
    stats_.responses_5xx.fetch_add(1, std::memory_order_relaxed);
    metrics_.responses_5xx->Inc();
  } else if (status >= 400) {
    stats_.responses_4xx.fetch_add(1, std::memory_order_relaxed);
    metrics_.responses_4xx->Inc();
  } else {
    stats_.responses_2xx.fetch_add(1, std::memory_order_relaxed);
    metrics_.responses_2xx->Inc();
  }
}

void HttpServer::StartResponse(Connection* conn, std::string bytes,
                               bool close_after, int status) {
  conn->handling = false;
  conn->outbuf = std::move(bytes);
  conn->out_pos = 0;
  conn->close_after_write = close_after;
  conn->last_active_us = MonotonicUs();
  CountResponse(status);
  (void)loop_.Mod(conn->fd, EPOLLOUT | EPOLLRDHUP);
  WriteToConnection(conn);
}

void HttpServer::WriteToConnection(Connection* conn) {
  while (conn->out_pos < conn->outbuf.size()) {
    if (FaultInjector::Global().ShouldFail("net.write")) {
      // A mid-response write fault: the client gets a torn response and a
      // closed socket; the server sheds exactly this one connection.
      stats_.write_faults.fetch_add(1, std::memory_order_relaxed);
      metrics_.write_faults->Inc();
      CloseConnection(conn->id);
      return;
    }
    const ssize_t n =
        ::send(conn->fd, conn->outbuf.data() + conn->out_pos,
               conn->outbuf.size() - conn->out_pos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // EPOLLOUT armed
      if (errno == EINTR) continue;
      CloseConnection(conn->id);
      return;
    }
    conn->out_pos += static_cast<size_t>(n);
  }
  if (conn->out_pos >= conn->outbuf.size() && !conn->outbuf.empty()) {
    FinishResponse(conn);
  }
}

void HttpServer::FinishResponse(Connection* conn) {
  conn->outbuf.clear();
  conn->out_pos = 0;
  if (conn->close_after_write) {
    CloseConnection(conn->id);  // releases the in-flight slot
    return;
  }
  conn->parser.Reset();
  if (conn->parser.failed()) {
    ReleaseInFlight(conn);
    stats_.parse_errors.fetch_add(1, std::memory_order_relaxed);
    metrics_.parse_errors->Inc();
    HttpResponse error;
    error.status = conn->parser.error_status();
    error.body = StrFormat("{\"error\": \"%s\"}\n",
                           JsonEscape(conn->parser.error_reason()).c_str());
    StartResponse(conn, SerializeResponse(error, /*keep_alive=*/false),
                  /*close_after=*/true, error.status);
    return;
  }
  if (conn->parser.done()) {
    // A pipelined request was already buffered; serve it without waiting
    // for more socket readability. The in-flight slot transfers straight
    // to it (its bytes were accepted, so a drain must cover it too).
    DispatchRequest(conn);
    return;
  }
  ReleaseInFlight(conn);
  if (draining_.load(std::memory_order_acquire)) {
    // No new requests during a drain: close instead of keep-alive
    // turnaround.
    CloseConnection(conn->id);
    return;
  }
  (void)loop_.Mod(conn->fd, EPOLLIN | EPOLLRDHUP);
}

void HttpServer::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  // A dying connection can't be abandoned-in-flight: its request has
  // nowhere to respond to any more.
  ReleaseInFlight(it->second.get());
  loop_.Del(it->second->fd);
  ::close(it->second->fd);
  connections_.erase(it);
  stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  metrics_.connections_active->Add(-1);
}

void HttpServer::SweepIdle() {
  if (options_.idle_timeout_ms <= 0) return;
  const int64_t now_us = MonotonicUs();
  const int64_t limit_us = options_.idle_timeout_ms * 1000;
  std::vector<uint64_t> victims;
  for (const auto& [id, conn] : connections_) {
    if (conn->handling) continue;  // a worker owes this one a response
    if (now_us - conn->last_active_us > limit_us) victims.push_back(id);
  }
  for (uint64_t id : victims) {
    stats_.idle_closed.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(id);
  }
}

}  // namespace net
}  // namespace ivr
