#ifndef IVR_NET_EVENT_LOOP_H_
#define IVR_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "ivr/core/status.h"

namespace ivr {
namespace net {

/// A thin epoll wrapper: non-blocking fds register a callback, Run()
/// dispatches readiness events until Stop(). Single-threaded by design —
/// every method except Stop()/Wakeup() must be called from the thread
/// running Run() (or before Run() starts). Other threads communicate with
/// the loop exclusively through Wakeup(), which makes the loop invoke the
/// wake handler on its own thread; that is the ONLY cross-thread seam, so
/// fd lifecycle and callback state need no locks.
class EventLoop {
 public:
  /// Called with the epoll event mask (EPOLLIN | EPOLLOUT | ...).
  using FdCallback = std::function<void(uint32_t events)>;

  EventLoop() = default;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and the wakeup eventfd.
  Status Init();

  /// Registers `fd` (must already be non-blocking) for `events`.
  Status Add(int fd, uint32_t events, FdCallback callback);
  Status Mod(int fd, uint32_t events);
  /// Unregisters `fd`; does not close it.
  void Del(int fd);

  /// Installed handler runs on the loop thread after every Wakeup().
  void SetWakeHandler(std::function<void()> handler) {
    wake_handler_ = std::move(handler);
  }
  /// Runs on the loop thread every `timeout_ms` of idleness (and after
  /// each dispatch batch) when a timeout is configured via Run().
  void SetIdleHandler(std::function<void()> handler) {
    idle_handler_ = std::move(handler);
  }

  /// Dispatches until Stop(). `timeout_ms` < 0 blocks indefinitely;
  /// otherwise epoll_wait wakes at least that often to run the idle
  /// handler (connection idle sweeps).
  void Run(int timeout_ms = -1);

  /// Thread-safe: ask Run() to return after the current dispatch batch.
  void Stop();

  /// Thread-safe: force an epoll_wait wakeup (and the wake handler).
  void Wakeup();

  bool initialized() const { return epoll_fd_ >= 0; }

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::unordered_map<int, FdCallback> callbacks_;
  std::function<void()> wake_handler_;
  std::function<void()> idle_handler_;
};

}  // namespace net
}  // namespace ivr

#endif  // IVR_NET_EVENT_LOOP_H_
