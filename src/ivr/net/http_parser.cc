#include "ivr/net/http_parser.h"

#include <algorithm>
#include <cctype>

#include "ivr/core/string_util.h"

namespace ivr {
namespace net {
namespace {

bool IsTokenChar(char c) {
  // RFC 7230 token characters, restricted to what request methods and
  // header names actually use.
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!':
    case '#':
    case '$':
    case '%':
    case '&':
    case '\'':
    case '*':
    case '+':
    case '-':
    case '.':
    case '^':
    case '_':
    case '`':
    case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

HttpParser::HttpParser(HttpParserLimits limits) : limits_(limits) {}

void HttpParser::Feed(std::string_view data) {
  buffer_.append(data.data(), data.size());
  Advance();
}

void HttpParser::Reset() {
  CompactBuffer();
  state_ = State::kRequestLine;
  header_bytes_ = 0;
  content_length_ = 0;
  error_status_ = 0;
  error_reason_.clear();
  request_ = HttpRequest();
  Advance();
}

void HttpParser::Fail(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
}

void HttpParser::CompactBuffer() {
  if (consumed_ > 0) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

bool HttpParser::NextLine(size_t limit, std::string* line,
                          bool* over_limit) {
  *over_limit = false;
  const size_t nl = buffer_.find('\n', consumed_);
  if (nl == std::string::npos) {
    // No complete line yet; an endless lineless stream must still hit the
    // cap rather than buffer forever.
    if (buffer_.size() - consumed_ > limit) *over_limit = true;
    return false;
  }
  if (nl - consumed_ > limit) {
    *over_limit = true;
    return false;
  }
  size_t end = nl;
  if (end > consumed_ && buffer_[end - 1] == '\r') --end;
  line->assign(buffer_, consumed_, end - consumed_);
  header_bytes_ += nl + 1 - consumed_;
  consumed_ = nl + 1;
  return true;
}

void HttpParser::ParseRequestLine(const std::string& line) {
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    Fail(400, "malformed request line");
    return;
  }
  const std::string method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (method.empty() || method.size() > 16) {
    Fail(400, "bad method");
    return;
  }
  for (char c : method) {
    if (!IsTokenChar(c) || std::islower(static_cast<unsigned char>(c))) {
      Fail(400, "bad method");
      return;
    }
  }
  if (target.empty() || target[0] != '/' ||
      target.find_first_of(" \t") != std::string::npos) {
    Fail(400, "bad request target");
    return;
  }
  if (version == "HTTP/1.1") {
    request_.minor_version = 1;
  } else if (version == "HTTP/1.0") {
    request_.minor_version = 0;
  } else if (StartsWith(version, "HTTP/")) {
    Fail(505, "HTTP version not supported");
    return;
  } else {
    Fail(400, "malformed request line");
    return;
  }
  request_.method = method;
  request_.target = target;
  const size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    request_.path = target;
  } else {
    request_.path = target.substr(0, qmark);
    request_.query = target.substr(qmark + 1);
  }
  request_.keep_alive = request_.minor_version >= 1;
  state_ = State::kHeaders;
}

void HttpParser::ParseHeaderLine(const std::string& line) {
  if (line.empty()) {
    FinishHeaders();
    return;
  }
  if (line[0] == ' ' || line[0] == '\t') {
    // Obsolete line folding: deprecated by RFC 7230 and a classic
    // request-smuggling vector; refuse it.
    Fail(400, "folded header");
    return;
  }
  const size_t colon = line.find(':');
  if (colon == std::string::npos || colon == 0) {
    Fail(400, "malformed header line");
    return;
  }
  std::string name = line.substr(0, colon);
  for (char c : name) {
    if (!IsTokenChar(c)) {
      Fail(400, "bad header name");
      return;
    }
  }
  if (request_.headers.size() >= limits_.max_headers) {
    Fail(431, "too many headers");
    return;
  }
  request_.headers.emplace_back(ToLower(name),
                                std::string(Trim(line.substr(colon + 1))));
}

void HttpParser::FinishHeaders() {
  if (request_.FindHeader("transfer-encoding") != nullptr) {
    // Chunked (or any transfer coding) is rejected outright rather than
    // half-drained: a body the parser cannot delimit exactly is a
    // connection it cannot safely keep.
    Fail(501, "transfer-encoding not supported");
    return;
  }
  const std::string* connection = request_.FindHeader("connection");
  if (connection != nullptr) {
    const std::string value = ToLower(*connection);
    if (value.find("close") != std::string::npos) {
      request_.keep_alive = false;
    } else if (value.find("keep-alive") != std::string::npos) {
      request_.keep_alive = true;
    }
  }
  const std::string* length = request_.FindHeader("content-length");
  if (length == nullptr) {
    content_length_ = 0;
    state_ = State::kComplete;
    return;
  }
  if (length->empty() ||
      length->find_first_not_of("0123456789") != std::string::npos ||
      length->size() > 12) {
    Fail(400, "bad content-length");
    return;
  }
  const Result<int64_t> parsed = ParseInt(*length);
  if (!parsed.ok() || *parsed < 0) {
    Fail(400, "bad content-length");
    return;
  }
  content_length_ = static_cast<size_t>(*parsed);
  if (content_length_ > limits_.max_body_bytes) {
    Fail(413, "body too large");
    return;
  }
  state_ = content_length_ == 0 ? State::kComplete : State::kBody;
}

void HttpParser::Advance() {
  while (true) {
    switch (state_) {
      case State::kRequestLine: {
        std::string line;
        bool over = false;
        if (!NextLine(limits_.max_request_line_bytes, &line, &over)) {
          if (over) Fail(431, "request line too long");
          return;
        }
        if (line.empty() && header_bytes_ <= 2) {
          // Tolerate one stray blank line before the request (RFC 7230
          // robustness note), common from clients that end the previous
          // body with an extra CRLF.
          continue;
        }
        ParseRequestLine(line);
        break;
      }
      case State::kHeaders: {
        if (header_bytes_ > limits_.max_header_bytes) {
          Fail(431, "header section too large");
          return;
        }
        std::string line;
        bool over = false;
        const size_t remaining =
            limits_.max_header_bytes > header_bytes_
                ? limits_.max_header_bytes - header_bytes_
                : 0;
        if (!NextLine(remaining, &line, &over)) {
          if (over) Fail(431, "header section too large");
          return;
        }
        ParseHeaderLine(line);
        break;
      }
      case State::kBody: {
        const size_t available = buffer_.size() - consumed_;
        const size_t needed = content_length_ - request_.body.size();
        const size_t take = std::min(available, needed);
        request_.body.append(buffer_, consumed_, take);
        consumed_ += take;
        if (request_.body.size() == content_length_) {
          state_ = State::kComplete;
        }
        return;
      }
      case State::kComplete:
      case State::kError:
        return;
    }
  }
}

}  // namespace net
}  // namespace ivr
