#include "ivr/profile/profile_reranker.h"

#include <algorithm>

#include "ivr/retrieval/fusion.h"

namespace ivr {

ResultList RerankWithProfile(const ResultList& results,
                             const UserProfile& profile,
                             const VideoCollection& collection,
                             const ProfileRerankOptions& options) {
  return RerankWithProfile(
      results, profile,
      [&collection](ShotId id) -> const Shot* {
        Result<const Shot*> s = collection.shot(id);
        return s.ok() ? *s : nullptr;
      },
      options);
}

ResultList RerankWithProfile(const ResultList& results,
                             const UserProfile& profile,
                             const ShotLookup& lookup,
                             const ProfileRerankOptions& options) {
  const double lambda = std::clamp(options.lambda, 0.0, 1.0);
  if (lambda == 0.0 || results.empty()) return results;
  const ResultList normalized = MinMaxNormalize(results);
  std::vector<RankedShot> items;
  items.reserve(normalized.size());
  for (const RankedShot& r : normalized.items()) {
    double affinity = 0.0;
    const Shot* shot = lookup ? lookup(r.shot) : nullptr;
    if (shot != nullptr) {
      affinity = profile.ShotAffinity(*shot);
    }
    items.push_back(
        RankedShot{r.shot, (1.0 - lambda) * r.score + lambda * affinity});
  }
  return ResultList(std::move(items));
}

}  // namespace ivr
