#ifndef IVR_PROFILE_PROFILE_STORE_H_
#define IVR_PROFILE_PROFILE_STORE_H_

#include <map>
#include <string>
#include <string_view>

#include "ivr/core/result.h"
#include "ivr/profile/user_profile.h"

namespace ivr {

/// Registry of user profiles, as a service's account database would hold.
/// Ordered by user id for deterministic iteration/serialisation.
class ProfileStore {
 public:
  ProfileStore() = default;

  /// Adds a profile; AlreadyExists if the user id is taken.
  Status Add(UserProfile profile);

  /// Looks up a profile; NotFound when absent.
  Result<const UserProfile*> Get(std::string_view user_id) const;

  /// Mutable lookup, creating an empty profile on first access (the
  /// "register on first use" flow).
  UserProfile* GetOrCreate(std::string_view user_id);

  bool Contains(std::string_view user_id) const;
  size_t size() const { return profiles_.size(); }

  const std::map<std::string, UserProfile>& profiles() const {
    return profiles_;
  }

  /// Newline-separated profile lines (see UserProfile::Serialize).
  std::string Serialize() const;
  static Result<ProfileStore> Deserialize(const std::string& text);

  /// Lenient variant of Deserialize for salvage: skips lines that fail to
  /// parse (or duplicate an earlier user id) instead of failing, counting
  /// them in *dropped when non-null.
  static ProfileStore DeserializeLenient(const std::string& text,
                                         size_t* dropped = nullptr);

  /// Crash-safe persistence: the serialized store is wrapped in a CRC32C
  /// envelope (format "profiles") and written atomically, so a crash
  /// mid-save can never corrupt the accumulated profiles. Load verifies
  /// the checksum (kCorruption on mismatch) and accepts bare legacy files.
  /// Fault site: "profile.load".
  Status Save(const std::string& path) const;
  static Result<ProfileStore> Load(const std::string& path);

 private:
  std::map<std::string, UserProfile> profiles_;
};

}  // namespace ivr

#endif  // IVR_PROFILE_PROFILE_STORE_H_
