#ifndef IVR_PROFILE_USER_PROFILE_H_
#define IVR_PROFILE_USER_PROFILE_H_

#include <string>
#include <unordered_map>

#include "ivr/core/result.h"
#include "ivr/video/types.h"

namespace ivr {

/// Self-declared registration data, the kind of static personal
/// information the paper's Section 2.1 discusses users entering when they
/// sign up for a service.
struct Demographics {
  std::string occupation;
  std::string region;
  int age = 0;
};

/// A static user profile: demographics plus weighted topic interests
/// ("interested in football" -> high weight on the sports topic). Static
/// here means the profile only changes across sessions (registration,
/// occasional reinforcement), never within one — the within-session signal
/// is implicit feedback's job.
class UserProfile {
 public:
  UserProfile() = default;
  explicit UserProfile(std::string user_id)
      : user_id_(std::move(user_id)) {}

  const std::string& user_id() const { return user_id_; }

  Demographics& demographics() { return demographics_; }
  const Demographics& demographics() const { return demographics_; }

  /// Sets the declared interest weight for a topic (clamped to >= 0).
  void SetInterest(TopicLabel topic, double weight);

  /// Declared interest in a topic, 0 when unknown.
  double Interest(TopicLabel topic) const;

  const std::unordered_map<TopicLabel, double>& interests() const {
    return interests_;
  }

  /// Rescales interests to sum 1 (no-op when all-zero).
  void Normalize();

  /// Cross-session learning: adds evidence mass to a topic.
  void Reinforce(TopicLabel topic, double amount);

  /// Cross-session forgetting: multiplies every interest by `factor`
  /// (clamped to [0,1]).
  void Decay(double factor);

  /// Profile affinity of a shot in [0,1]: the normalised interest mass on
  /// the concepts the shot carries (primary topic counts fully, secondary
  /// concepts half).
  double ShotAffinity(const Shot& shot) const;

  /// One-line TSV serialisation: user<TAB>topic:weight,... .
  std::string Serialize() const;
  static Result<UserProfile> Deserialize(const std::string& line);

 private:
  std::string user_id_;
  Demographics demographics_;
  std::unordered_map<TopicLabel, double> interests_;
};

}  // namespace ivr

#endif  // IVR_PROFILE_USER_PROFILE_H_
