#ifndef IVR_PROFILE_PROFILE_RERANKER_H_
#define IVR_PROFILE_PROFILE_RERANKER_H_

#include "ivr/profile/user_profile.h"
#include "ivr/retrieval/result_list.h"
#include "ivr/video/collection.h"

namespace ivr {

struct ProfileRerankOptions {
  /// Interpolation weight of the profile affinity: 0 leaves the list
  /// untouched, 1 ranks purely by declared interests. The paper's example
  /// ("football fan queries 'goal'") corresponds to a moderate lambda.
  double lambda = 0.3;
};

/// Re-ranks a retrieval result by interpolating the (min-max normalised)
/// retrieval score with the user's profile affinity for each shot:
///   score' = (1 - lambda) * norm(score) + lambda * affinity(shot).
/// Shots outside the collection keep their normalised score.
ResultList RerankWithProfile(const ResultList& results,
                             const UserProfile& profile,
                             const VideoCollection& collection,
                             const ProfileRerankOptions& options =
                                 ProfileRerankOptions());

/// Same, resolving shots through a lookup (shots it cannot resolve keep
/// their normalised score); what segmented engines use.
ResultList RerankWithProfile(const ResultList& results,
                             const UserProfile& profile,
                             const ShotLookup& lookup,
                             const ProfileRerankOptions& options =
                                 ProfileRerankOptions());

}  // namespace ivr

#endif  // IVR_PROFILE_PROFILE_RERANKER_H_
