#include "ivr/profile/profile_store.h"

#include <utility>

#include "ivr/core/checksum.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"

namespace ivr {
namespace {

constexpr std::string_view kEnvelopeFormat = "profiles";

}  // namespace

Status ProfileStore::Add(UserProfile profile) {
  const std::string id = profile.user_id();
  if (id.empty()) {
    return Status::InvalidArgument("profile user id must not be empty");
  }
  auto [it, inserted] = profiles_.emplace(id, std::move(profile));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("profile exists for user: " + id);
  }
  return Status::OK();
}

Result<const UserProfile*> ProfileStore::Get(std::string_view user_id) const {
  auto it = profiles_.find(std::string(user_id));
  if (it == profiles_.end()) {
    return Status::NotFound("no profile for user: " + std::string(user_id));
  }
  return &it->second;
}

UserProfile* ProfileStore::GetOrCreate(std::string_view user_id) {
  auto it = profiles_.find(std::string(user_id));
  if (it == profiles_.end()) {
    it = profiles_
             .emplace(std::string(user_id),
                      UserProfile(std::string(user_id)))
             .first;
  }
  return &it->second;
}

bool ProfileStore::Contains(std::string_view user_id) const {
  return profiles_.count(std::string(user_id)) > 0;
}

std::string ProfileStore::Serialize() const {
  std::string out;
  for (const auto& [id, profile] : profiles_) {
    (void)id;
    out += profile.Serialize();
    out += "\n";
  }
  return out;
}

Result<ProfileStore> ProfileStore::Deserialize(const std::string& text) {
  ProfileStore store;
  for (const std::string& line : Split(text, '\n')) {
    if (Trim(line).empty()) continue;
    IVR_ASSIGN_OR_RETURN(UserProfile profile,
                         UserProfile::Deserialize(line));
    IVR_RETURN_IF_ERROR(store.Add(std::move(profile)));
  }
  return store;
}

ProfileStore ProfileStore::DeserializeLenient(const std::string& text,
                                              size_t* dropped) {
  ProfileStore store;
  size_t bad = 0;
  for (const std::string& line : Split(text, '\n')) {
    if (Trim(line).empty()) continue;
    Result<UserProfile> profile = UserProfile::Deserialize(line);
    if (!profile.ok() || !store.Add(std::move(profile).value()).ok()) {
      ++bad;
    }
  }
  if (dropped != nullptr) *dropped = bad;
  return store;
}

Status ProfileStore::Save(const std::string& path) const {
  return WriteFileAtomic(path, WrapEnvelope(kEnvelopeFormat, Serialize()));
}

Result<ProfileStore> ProfileStore::Load(const std::string& path) {
  IVR_RETURN_IF_ERROR(FaultInjector::Global().MaybeFail("profile.load"));
  IVR_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  if (LooksEnveloped(text)) {
    IVR_ASSIGN_OR_RETURN(text, UnwrapEnvelope(kEnvelopeFormat, text));
  }
  return Deserialize(text);
}

}  // namespace ivr
