#include "ivr/profile/user_profile.h"

#include <algorithm>

#include "ivr/core/string_util.h"

namespace ivr {

void UserProfile::SetInterest(TopicLabel topic, double weight) {
  if (weight <= 0.0) {
    interests_.erase(topic);
    return;
  }
  interests_[topic] = weight;
}

double UserProfile::Interest(TopicLabel topic) const {
  auto it = interests_.find(topic);
  return it == interests_.end() ? 0.0 : it->second;
}

void UserProfile::Normalize() {
  double total = 0.0;
  for (const auto& [topic, w] : interests_) {
    (void)topic;
    total += w;
  }
  if (total <= 0.0) return;
  for (auto& [topic, w] : interests_) {
    (void)topic;
    w /= total;
  }
}

void UserProfile::Reinforce(TopicLabel topic, double amount) {
  if (amount <= 0.0) return;
  interests_[topic] += amount;
}

void UserProfile::Decay(double factor) {
  factor = std::clamp(factor, 0.0, 1.0);
  for (auto it = interests_.begin(); it != interests_.end();) {
    it->second *= factor;
    if (it->second <= 1e-12) {
      it = interests_.erase(it);
    } else {
      ++it;
    }
  }
}

double UserProfile::ShotAffinity(const Shot& shot) const {
  double total = 0.0;
  for (const auto& [topic, w] : interests_) {
    (void)topic;
    total += w;
  }
  if (total <= 0.0) return 0.0;
  double affinity = Interest(shot.primary_topic);
  for (size_t c = 0; c < shot.concepts.size(); ++c) {
    if (shot.concepts[c] && static_cast<TopicLabel>(c) != shot.primary_topic) {
      affinity += 0.5 * Interest(static_cast<TopicLabel>(c));
    }
  }
  return std::min(affinity / total, 1.0);
}

std::string UserProfile::Serialize() const {
  // Sort topics for stable output.
  std::vector<std::pair<TopicLabel, double>> sorted(interests_.begin(),
                                                    interests_.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::string> parts;
  parts.reserve(sorted.size());
  for (const auto& [topic, w] : sorted) {
    parts.push_back(StrFormat("%u:%.17g", topic, w));
  }
  return user_id_ + "\t" + Join(parts, ",");
}

Result<UserProfile> UserProfile::Deserialize(const std::string& line) {
  const std::vector<std::string> cols = Split(line, '\t');
  if (cols.empty() || cols[0].empty()) {
    return Status::Corruption("profile line must start with a user id");
  }
  UserProfile profile(cols[0]);
  if (cols.size() >= 2 && !Trim(cols[1]).empty()) {
    for (const std::string& part : Split(cols[1], ',')) {
      const std::vector<std::string> kv = Split(part, ':');
      if (kv.size() != 2) {
        return Status::Corruption("bad interest entry: " + part);
      }
      IVR_ASSIGN_OR_RETURN(int64_t topic, ParseInt(kv[0]));
      IVR_ASSIGN_OR_RETURN(double weight, ParseDouble(kv[1]));
      if (topic < 0) {
        return Status::Corruption("negative topic id: " + part);
      }
      profile.SetInterest(static_cast<TopicLabel>(topic), weight);
    }
  }
  return profile;
}

}  // namespace ivr
