#ifndef IVR_IFACE_TV_H_
#define IVR_IFACE_TV_H_

#include <string>

#include "ivr/iface/interface.h"

namespace ivr {

/// The interactive-TV environment: a remote control in a lean-back
/// setting. Text entry via multi-tap is punishingly slow (so users avoid
/// keywords, as the paper predicts), tooltips and metadata panels do not
/// exist, only four results fit on screen — but the coloured selection
/// keys make explicit relevance judgements a single cheap button press.
class TvInterface : public SearchInterface {
 public:
  using SearchInterface::SearchInterface;

  std::string name() const override { return "tv"; }

  InterfaceCapabilities capabilities() const override {
    InterfaceCapabilities caps;
    caps.text_query = true;  // possible, just expensive
    caps.visual_example = true;
    caps.tooltip = false;
    caps.seek = true;
    caps.metadata_highlight = false;
    caps.explicit_judgment = true;
    caps.results_per_page = 4;
    return caps;
  }

  ActionCosts costs() const override { return TvActionCosts(); }
};

}  // namespace ivr

#endif  // IVR_IFACE_TV_H_
