#ifndef IVR_IFACE_DESKTOP_H_
#define IVR_IFACE_DESKTOP_H_

#include <string>

#include "ivr/iface/interface.h"

namespace ivr {

/// The desktop-PC environment: keyboard and mouse, the full action
/// vocabulary, ten results per page. "From today's point of view, this
/// environment offers the highest amount of possible implicit relevance
/// feedback" (paper, Section 3).
class DesktopInterface : public SearchInterface {
 public:
  using SearchInterface::SearchInterface;

  std::string name() const override { return "desktop"; }

  InterfaceCapabilities capabilities() const override {
    InterfaceCapabilities caps;
    caps.text_query = true;
    caps.visual_example = true;
    caps.tooltip = true;
    caps.seek = true;
    caps.metadata_highlight = true;
    caps.explicit_judgment = true;
    caps.results_per_page = 10;
    return caps;
  }

  ActionCosts costs() const override { return DesktopActionCosts(); }
};

}  // namespace ivr

#endif  // IVR_IFACE_DESKTOP_H_
