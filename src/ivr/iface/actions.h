#ifndef IVR_IFACE_ACTIONS_H_
#define IVR_IFACE_ACTIONS_H_

#include <string_view>

#include "ivr/core/clock.h"

namespace ivr {

/// The atomic things a user can do with a retrieval interface. Each
/// environment prices these differently — the core mechanism by which the
/// desktop and TV interfaces induce different behaviour (paper Section 3).
enum class ActionKind {
  kTypeQueryChar = 0,   ///< one character of text entry
  kSubmitQuery,         ///< pressing enter / OK
  kNextPage,
  kPrevPage,
  kHoverTooltip,        ///< moving the pointer onto a keyframe
  kClickKeyframe,
  kSeek,
  kHighlightMetadata,
  kMarkRelevance,       ///< explicit judgement key
  kVisualExample,       ///< issuing a query-by-example
};

std::string_view ActionKindName(ActionKind kind);

/// Time costs per action, in milliseconds. Playback cost is the played
/// duration itself and is not listed here.
struct ActionCosts {
  TimeMs type_query_char = 150;
  TimeMs submit_query = 500;
  TimeMs next_page = 900;
  TimeMs prev_page = 900;
  TimeMs hover_tooltip = 300;  ///< plus the hover duration itself
  TimeMs click_keyframe = 700;
  TimeMs seek = 600;
  TimeMs highlight_metadata = 1100;
  TimeMs mark_relevance = 1400;
  TimeMs visual_example = 1200;

  TimeMs Cost(ActionKind kind) const;
};

/// Desktop PC: keyboard and mouse — fast text entry, cheap pointing.
ActionCosts DesktopActionCosts();

/// Interactive TV with a remote control: multi-tap text entry is slow,
/// paging is a button press, and the coloured keys make explicit
/// judgements cheap (the paper's observation that the selection keys
/// "provide a method to give explicit relevance feedback").
ActionCosts TvActionCosts();

}  // namespace ivr

#endif  // IVR_IFACE_ACTIONS_H_
