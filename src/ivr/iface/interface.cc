#include "ivr/iface/interface.h"

#include <algorithm>

#include "ivr/obs/metrics.h"

namespace ivr {

namespace {
constexpr size_t kBackendK = 200;  // depth requested from the backend
}  // namespace

SearchInterface::SearchInterface(SearchBackend* backend,
                                 const VideoCollection& collection,
                                 Config config, SessionLog* log,
                                 SimulatedClock* clock)
    : backend_(backend),
      collection_(&collection),
      config_(std::move(config)),
      log_(log),
      clock_(clock) {}

Status SearchInterface::CheckLive() const {
  if (ended_) {
    return Status::FailedPrecondition("session has ended");
  }
  return Status::OK();
}

void SearchInterface::Charge(ActionKind kind) {
#ifndef IVR_OBS_OFF
  // Every user action funnels through here, so this is the one place the
  // per-ActionKind counters live. Interfaces are per-session objects;
  // function-local statics keep the registry lookup to once per process.
  static constexpr size_t kNumActionKinds =
      static_cast<size_t>(ActionKind::kVisualExample) + 1;
  struct CachedMetrics {
    obs::Counter* actions[kNumActionKinds];
    CachedMetrics() {
      for (size_t i = 0; i < kNumActionKinds; ++i) {
        actions[i] = obs::Registry::Global().GetCounter(
            "iface.actions." +
            std::string(ActionKindName(static_cast<ActionKind>(i))));
      }
    }
  };
  static const CachedMetrics metrics;
  const size_t index = static_cast<size_t>(kind);
  if (index < kNumActionKinds) metrics.actions[index]->Inc();
#endif
  clock_->Advance(costs().Cost(kind));
}

void SearchInterface::Emit(EventType type, ShotId shot, double value,
                           const std::string& text) {
  InteractionEvent ev;
  ev.time = clock_->Now();
  ev.session_id = config_.session_id;
  ev.user_id = config_.user_id;
  ev.topic = config_.topic;
  ev.type = type;
  ev.shot = shot;
  ev.value = value;
  ev.text = text;
  if (log_ != nullptr) log_->Append(ev);
  backend_->ObserveEvent(ev);
}

void SearchInterface::ShowResults(const Query& query) {
  results_ = backend_->Search(query, kBackendK);
  has_results_ = true;
  page_ = 0;
  open_shot_ = kInvalidShotId;
  ++queries_issued_;
  DisplayCurrentPage();
}

void SearchInterface::DisplayCurrentPage() {
  for (ShotId shot : VisibleShots()) {
    const std::optional<size_t> rank = results_.RankOf(shot);
    Emit(EventType::kResultDisplayed, shot,
         static_cast<double>(rank.value_or(0)), "");
  }
}

Status SearchInterface::SubmitQuery(const std::string& text) {
  IVR_RETURN_IF_ERROR(CheckLive());
  if (!capabilities().text_query) {
    return Status::Unimplemented(name() + " cannot enter text queries");
  }
  if (text.empty()) {
    return Status::InvalidArgument("query text must not be empty");
  }
  clock_->Advance(static_cast<TimeMs>(text.size()) *
                  costs().Cost(ActionKind::kTypeQueryChar));
  Charge(ActionKind::kSubmitQuery);
  Emit(EventType::kQuerySubmit, kInvalidShotId, 0.0, text);
  Query query;
  query.text = text;
  ShowResults(query);
  return Status::OK();
}

Status SearchInterface::SubmitVisualExample(ShotId shot) {
  IVR_RETURN_IF_ERROR(CheckLive());
  if (!capabilities().visual_example) {
    return Status::Unimplemented(name() + " cannot query by example");
  }
  if (!IsVisible(shot) && shot != open_shot_) {
    return Status::FailedPrecondition(
        "visual example must be a visible or open shot");
  }
  IVR_ASSIGN_OR_RETURN(const Shot* s, collection_->shot(shot));
  Charge(ActionKind::kVisualExample);
  Emit(EventType::kVisualExample, shot, 0.0, "");
  Query query;
  query.examples.push_back(s->keyframe);
  ShowResults(query);
  return Status::OK();
}

size_t SearchInterface::NumPages() const {
  const size_t per_page = capabilities().results_per_page;
  if (per_page == 0 || results_.empty()) return 0;
  return (results_.size() + per_page - 1) / per_page;
}

Status SearchInterface::NextPage() {
  IVR_RETURN_IF_ERROR(CheckLive());
  if (!has_results_) {
    return Status::FailedPrecondition("no results to browse");
  }
  if (page_ + 1 >= NumPages()) {
    return Status::OutOfRange("already on the last page");
  }
  ++page_;
  Charge(ActionKind::kNextPage);
  Emit(EventType::kBrowseNextPage, kInvalidShotId,
       static_cast<double>(page_), "");
  DisplayCurrentPage();
  return Status::OK();
}

Status SearchInterface::PrevPage() {
  IVR_RETURN_IF_ERROR(CheckLive());
  if (!has_results_) {
    return Status::FailedPrecondition("no results to browse");
  }
  if (page_ == 0) {
    return Status::OutOfRange("already on the first page");
  }
  --page_;
  Charge(ActionKind::kPrevPage);
  Emit(EventType::kBrowsePrevPage, kInvalidShotId,
       static_cast<double>(page_), "");
  DisplayCurrentPage();
  return Status::OK();
}

std::vector<ShotId> SearchInterface::VisibleShots() const {
  std::vector<ShotId> out;
  if (!has_results_) return out;
  const size_t per_page = capabilities().results_per_page;
  const size_t begin = page_ * per_page;
  const size_t end = std::min(begin + per_page, results_.size());
  for (size_t i = begin; i < end; ++i) {
    out.push_back(results_.at(i).shot);
  }
  return out;
}

bool SearchInterface::IsVisible(ShotId shot) const {
  for (ShotId s : VisibleShots()) {
    if (s == shot) return true;
  }
  return false;
}

Status SearchInterface::HoverTooltip(ShotId shot, TimeMs duration_ms) {
  IVR_RETURN_IF_ERROR(CheckLive());
  if (!capabilities().tooltip) {
    return Status::Unimplemented(name() + " has no tooltips");
  }
  if (!IsVisible(shot)) {
    return Status::FailedPrecondition("can only hover visible shots");
  }
  Charge(ActionKind::kHoverTooltip);
  clock_->Advance(std::max<TimeMs>(0, duration_ms));
  Emit(EventType::kTooltipHover, shot,
       static_cast<double>(std::max<TimeMs>(0, duration_ms)), "");
  return Status::OK();
}

Status SearchInterface::ClickKeyframe(ShotId shot) {
  IVR_RETURN_IF_ERROR(CheckLive());
  if (!IsVisible(shot)) {
    return Status::FailedPrecondition("can only click visible shots");
  }
  Charge(ActionKind::kClickKeyframe);
  open_shot_ = shot;
  Emit(EventType::kClickKeyframe, shot, 0.0, "");
  return Status::OK();
}

Status SearchInterface::Play(double fraction) {
  IVR_RETURN_IF_ERROR(CheckLive());
  if (open_shot_ == kInvalidShotId) {
    return Status::FailedPrecondition("no shot is open for playback");
  }
  IVR_ASSIGN_OR_RETURN(const Shot* s, collection_->shot(open_shot_));
  fraction = std::clamp(fraction, 0.0, 1.0);
  const TimeMs played =
      static_cast<TimeMs>(fraction * static_cast<double>(s->duration_ms));
  Emit(EventType::kPlayStart, open_shot_, 0.0, "");
  clock_->Advance(played);
  Emit(EventType::kPlayStop, open_shot_, static_cast<double>(played), "");
  return Status::OK();
}

Status SearchInterface::Seek(TimeMs offset_ms) {
  IVR_RETURN_IF_ERROR(CheckLive());
  if (!capabilities().seek) {
    return Status::Unimplemented(name() + " cannot seek");
  }
  if (open_shot_ == kInvalidShotId) {
    return Status::FailedPrecondition("no shot is open for seeking");
  }
  IVR_ASSIGN_OR_RETURN(const Shot* s, collection_->shot(open_shot_));
  offset_ms = std::clamp<TimeMs>(offset_ms, 0, s->duration_ms);
  Charge(ActionKind::kSeek);
  Emit(EventType::kSeek, open_shot_, static_cast<double>(offset_ms), "");
  return Status::OK();
}

Status SearchInterface::HighlightMetadata(ShotId shot) {
  IVR_RETURN_IF_ERROR(CheckLive());
  if (!capabilities().metadata_highlight) {
    return Status::Unimplemented(name() + " has no metadata panel");
  }
  if (!IsVisible(shot) && shot != open_shot_) {
    return Status::FailedPrecondition(
        "can only inspect visible or open shots");
  }
  Charge(ActionKind::kHighlightMetadata);
  Emit(EventType::kHighlightMetadata, shot, 0.0, "");
  return Status::OK();
}

Status SearchInterface::MarkRelevance(ShotId shot, bool relevant) {
  IVR_RETURN_IF_ERROR(CheckLive());
  if (!capabilities().explicit_judgment) {
    return Status::Unimplemented(name() + " has no judgement keys");
  }
  if (!IsVisible(shot) && shot != open_shot_) {
    return Status::FailedPrecondition(
        "can only judge visible or open shots");
  }
  Charge(ActionKind::kMarkRelevance);
  Emit(relevant ? EventType::kMarkRelevant : EventType::kMarkNotRelevant,
       shot, 0.0, "");
  return Status::OK();
}

Status SearchInterface::EndSession() {
  IVR_RETURN_IF_ERROR(CheckLive());
  ended_ = true;
  Emit(EventType::kSessionEnd, kInvalidShotId, 0.0, "");
  return Status::OK();
}

}  // namespace ivr
