#ifndef IVR_IFACE_SESSION_LOG_H_
#define IVR_IFACE_SESSION_LOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/feedback/events.h"

namespace ivr {

/// The interaction logfile — the artefact the paper's methodology analyses
/// ("to monitor the users' interactions and to analyse the resulting
/// logfiles"). Append-only in memory with a lossless TSV text format, so
/// logs can be persisted, diffed, and replayed.
///
/// Line format (tab-separated):
///   time  session  user  topic  event  shot  value  text
/// with "-" for absent shot ids; tabs/newlines inside `text` are replaced
/// by spaces on write.
class SessionLog {
 public:
  SessionLog() = default;

  void Append(InteractionEvent event);

  const std::vector<InteractionEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Events belonging to one session id, in log order.
  std::vector<InteractionEvent> EventsForSession(
      std::string_view session_id) const;

  /// Distinct session ids in first-seen order.
  std::vector<std::string> SessionIds() const;

  /// Number of events of a given type.
  size_t CountType(EventType type) const;

  std::string Serialize() const;
  static Result<SessionLog> Parse(const std::string& text);

  /// Lenient variant of Parse for salvage: skips lines that fail to parse
  /// instead of failing, counting them in *dropped when non-null. Order
  /// of the surviving events is preserved.
  static SessionLog ParseLenient(const std::string& text,
                                 size_t* dropped = nullptr);

  /// Crash-safe persistence: the serialized log is wrapped in a CRC32C
  /// envelope (format "sessionlog") and written atomically. Load verifies
  /// the checksum (kCorruption on mismatch), accepts bare legacy TSV
  /// logs, and accepts the chunked journals SessionLogWriter appends (a
  /// whole-file Save is simply a one-chunk journal). Fault site:
  /// "sessionlog.load".
  Status Save(const std::string& path) const;
  static Result<SessionLog> Load(const std::string& path);

  /// Salvage loader: accepts the same layouts as Load but keeps every
  /// complete checksummed chunk before the first torn or corrupt one (the
  /// crash-mid-append case) and skips unparseable lines, counting them in
  /// *dropped_chunks / *dropped_lines when non-null. Fails only when the
  /// file cannot be read at all.
  static Result<SessionLog> LoadSalvage(const std::string& path,
                                        size_t* dropped_chunks = nullptr,
                                        size_t* dropped_lines = nullptr);

  static std::string EventToLine(const InteractionEvent& event);
  static Result<InteractionEvent> LineToEvent(std::string_view line);

 private:
  std::vector<InteractionEvent> events_;
};

/// Incremental, crash-safe session-log persistence: an append-only journal
/// of checksummed envelope chunks, one fsynced chunk per Append call, so
/// persisting a live session costs O(new events) instead of O(session) —
/// what the SessionManager's eviction path relies on. A crash can tear at
/// most the chunk being appended; every chunk already fsynced survives and
/// SessionLog::Load / LoadSalvage recover them.
class SessionLogWriter {
 public:
  SessionLogWriter() = default;
  /// Closes (best-effort) if still open.
  ~SessionLogWriter();

  SessionLogWriter(const SessionLogWriter&) = delete;
  SessionLogWriter& operator=(const SessionLogWriter&) = delete;

  /// Opens `path` for appending, creating it when missing. Reopening an
  /// existing journal continues it. Fault site: "sessionlog.append".
  Status Open(const std::string& path);

  /// Appends `events` as one checksummed chunk and fsyncs. No-op for an
  /// empty batch. Fault site: "sessionlog.append".
  Status Append(const std::vector<InteractionEvent>& events);
  Status Append(const InteractionEvent& event);

  Status Close();
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace ivr

#endif  // IVR_IFACE_SESSION_LOG_H_
