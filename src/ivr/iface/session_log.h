#ifndef IVR_IFACE_SESSION_LOG_H_
#define IVR_IFACE_SESSION_LOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/feedback/events.h"

namespace ivr {

/// The interaction logfile — the artefact the paper's methodology analyses
/// ("to monitor the users' interactions and to analyse the resulting
/// logfiles"). Append-only in memory with a lossless TSV text format, so
/// logs can be persisted, diffed, and replayed.
///
/// Line format (tab-separated):
///   time  session  user  topic  event  shot  value  text
/// with "-" for absent shot ids; tabs/newlines inside `text` are replaced
/// by spaces on write.
class SessionLog {
 public:
  SessionLog() = default;

  void Append(InteractionEvent event);

  const std::vector<InteractionEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Events belonging to one session id, in log order.
  std::vector<InteractionEvent> EventsForSession(
      std::string_view session_id) const;

  /// Distinct session ids in first-seen order.
  std::vector<std::string> SessionIds() const;

  /// Number of events of a given type.
  size_t CountType(EventType type) const;

  std::string Serialize() const;
  static Result<SessionLog> Parse(const std::string& text);

  /// Lenient variant of Parse for salvage: skips lines that fail to parse
  /// instead of failing, counting them in *dropped when non-null. Order
  /// of the surviving events is preserved.
  static SessionLog ParseLenient(const std::string& text,
                                 size_t* dropped = nullptr);

  /// Crash-safe persistence: the serialized log is wrapped in a CRC32C
  /// envelope (format "sessionlog") and written atomically. Load verifies
  /// the checksum (kCorruption on mismatch) and accepts bare legacy TSV
  /// logs. Fault site: "sessionlog.load".
  Status Save(const std::string& path) const;
  static Result<SessionLog> Load(const std::string& path);

  static std::string EventToLine(const InteractionEvent& event);
  static Result<InteractionEvent> LineToEvent(std::string_view line);

 private:
  std::vector<InteractionEvent> events_;
};

}  // namespace ivr

#endif  // IVR_IFACE_SESSION_LOG_H_
