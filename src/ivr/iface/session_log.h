#ifndef IVR_IFACE_SESSION_LOG_H_
#define IVR_IFACE_SESSION_LOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/feedback/events.h"

namespace ivr {

/// The interaction logfile — the artefact the paper's methodology analyses
/// ("to monitor the users' interactions and to analyse the resulting
/// logfiles"). Append-only in memory with a lossless TSV text format, so
/// logs can be persisted, diffed, and replayed.
///
/// Line format (tab-separated):
///   time  session  user  topic  event  shot  value  text
/// with "-" for absent shot ids; tabs/newlines inside `text` are replaced
/// by spaces on write.
class SessionLog {
 public:
  SessionLog() = default;

  void Append(InteractionEvent event);

  const std::vector<InteractionEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Events belonging to one session id, in log order.
  std::vector<InteractionEvent> EventsForSession(
      std::string_view session_id) const;

  /// Distinct session ids in first-seen order.
  std::vector<std::string> SessionIds() const;

  /// Number of events of a given type.
  size_t CountType(EventType type) const;

  std::string Serialize() const;
  static Result<SessionLog> Parse(const std::string& text);

  static std::string EventToLine(const InteractionEvent& event);
  static Result<InteractionEvent> LineToEvent(std::string_view line);

 private:
  std::vector<InteractionEvent> events_;
};

}  // namespace ivr

#endif  // IVR_IFACE_SESSION_LOG_H_
