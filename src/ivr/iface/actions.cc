#include "ivr/iface/actions.h"

namespace ivr {

std::string_view ActionKindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kTypeQueryChar:
      return "type_query_char";
    case ActionKind::kSubmitQuery:
      return "submit_query";
    case ActionKind::kNextPage:
      return "next_page";
    case ActionKind::kPrevPage:
      return "prev_page";
    case ActionKind::kHoverTooltip:
      return "hover_tooltip";
    case ActionKind::kClickKeyframe:
      return "click_keyframe";
    case ActionKind::kSeek:
      return "seek";
    case ActionKind::kHighlightMetadata:
      return "highlight_metadata";
    case ActionKind::kMarkRelevance:
      return "mark_relevance";
    case ActionKind::kVisualExample:
      return "visual_example";
  }
  return "unknown";
}

TimeMs ActionCosts::Cost(ActionKind kind) const {
  switch (kind) {
    case ActionKind::kTypeQueryChar:
      return type_query_char;
    case ActionKind::kSubmitQuery:
      return submit_query;
    case ActionKind::kNextPage:
      return next_page;
    case ActionKind::kPrevPage:
      return prev_page;
    case ActionKind::kHoverTooltip:
      return hover_tooltip;
    case ActionKind::kClickKeyframe:
      return click_keyframe;
    case ActionKind::kSeek:
      return seek;
    case ActionKind::kHighlightMetadata:
      return highlight_metadata;
    case ActionKind::kMarkRelevance:
      return mark_relevance;
    case ActionKind::kVisualExample:
      return visual_example;
  }
  return 0;
}

ActionCosts DesktopActionCosts() {
  // The defaults in the struct describe the desktop environment.
  return ActionCosts{};
}

ActionCosts TvActionCosts() {
  ActionCosts costs;
  costs.type_query_char = 1800;  // multi-tap on numeric keys
  costs.submit_query = 700;
  costs.next_page = 500;         // one button press
  costs.prev_page = 500;
  costs.hover_tooltip = 0;       // unsupported; capability is off
  costs.click_keyframe = 900;    // navigate highlight + OK
  costs.seek = 1200;             // fast-forward key
  costs.highlight_metadata = 0;  // unsupported; capability is off
  costs.mark_relevance = 400;    // dedicated coloured key
  costs.visual_example = 800;    // "more like this" key
  return costs;
}

}  // namespace ivr
