#ifndef IVR_IFACE_INTERFACE_H_
#define IVR_IFACE_INTERFACE_H_

#include <string>
#include <vector>

#include "ivr/core/clock.h"
#include "ivr/core/result.h"
#include "ivr/feedback/backend.h"
#include "ivr/iface/actions.h"
#include "ivr/iface/session_log.h"
#include "ivr/retrieval/result_list.h"
#include "ivr/video/collection.h"

namespace ivr {

/// What an environment's interface can and cannot do.
struct InterfaceCapabilities {
  bool text_query = true;
  bool visual_example = true;
  bool tooltip = true;
  bool seek = true;
  bool metadata_highlight = true;
  bool explicit_judgment = true;
  size_t results_per_page = 10;
};

/// A headless retrieval interface: the state machine of a search UI
/// without its pixels. Every user action
///   * is validated against the interface state (you can only click what
///     is on screen, only play what you opened),
///   * advances the simulated clock by the environment's action cost,
///   * appends structured events to the session log, and
///   * is forwarded to the backend so adaptive systems can react.
/// Desktop and TV subclasses differ in capabilities and costs only — the
/// interaction contract is shared, which is what makes cross-environment
/// indicator comparisons (experiment E5) meaningful.
class SearchInterface {
 public:
  struct Config {
    std::string session_id;
    std::string user_id;
    SearchTopicId topic = 0;
  };

  /// All pointers/references must outlive the interface. `log` may be
  /// nullptr (events are then only forwarded to the backend).
  SearchInterface(SearchBackend* backend, const VideoCollection& collection,
                  Config config, SessionLog* log, SimulatedClock* clock);
  virtual ~SearchInterface() = default;

  SearchInterface(const SearchInterface&) = delete;
  SearchInterface& operator=(const SearchInterface&) = delete;

  virtual std::string name() const = 0;
  virtual InterfaceCapabilities capabilities() const = 0;
  virtual ActionCosts costs() const = 0;

  // --- user actions ---

  /// Types and submits a text query; costs per-character typing time plus
  /// submission. Unimplemented when the environment cannot enter text.
  Status SubmitQuery(const std::string& text);

  /// Issues a query-by-example using a visible shot's keyframe ("find
  /// more like this").
  Status SubmitVisualExample(ShotId shot);

  Status NextPage();
  Status PrevPage();

  /// Hovers a visible keyframe for `duration_ms`.
  Status HoverTooltip(ShotId shot, TimeMs duration_ms);

  /// Clicks a visible keyframe, opening the shot.
  Status ClickKeyframe(ShotId shot);

  /// Plays the currently open shot for `fraction` of its duration
  /// (clamped to [0,1]); logs play_start/play_stop and costs the played
  /// time.
  Status Play(double fraction);

  /// Slider jump inside the open shot to `offset_ms`.
  Status Seek(TimeMs offset_ms);

  /// Expands the metadata panel of a visible or open shot.
  Status HighlightMetadata(ShotId shot);

  /// Explicit judgement of a visible or open shot.
  Status MarkRelevance(ShotId shot, bool relevant);

  /// Ends the session (logs session_end). Further actions fail.
  Status EndSession();

  // --- state inspection ---

  /// True once a query has produced results.
  bool HasResults() const { return has_results_; }
  const ResultList& results() const { return results_; }
  size_t page() const { return page_; }
  size_t NumPages() const;
  /// Shots on the current page, in rank order.
  std::vector<ShotId> VisibleShots() const;
  bool IsVisible(ShotId shot) const;
  /// The shot opened by the last click, kInvalidShotId when none.
  ShotId open_shot() const { return open_shot_; }
  bool session_ended() const { return ended_; }

  TimeMs Now() const { return clock_->Now(); }
  const Config& config() const { return config_; }
  /// Number of result-returning queries issued so far.
  size_t queries_issued() const { return queries_issued_; }

 protected:
  const VideoCollection& collection() const { return *collection_; }

 private:
  Status CheckLive() const;
  void Charge(ActionKind kind);
  void Emit(EventType type, ShotId shot, double value,
            const std::string& text);
  /// Runs the query against the backend and displays page 0.
  void ShowResults(const Query& query);
  void DisplayCurrentPage();

  SearchBackend* backend_;
  const VideoCollection* collection_;
  Config config_;
  SessionLog* log_;
  SimulatedClock* clock_;

  ResultList results_;
  bool has_results_ = false;
  size_t page_ = 0;
  ShotId open_shot_ = kInvalidShotId;
  bool ended_ = false;
  size_t queries_issued_ = 0;
};

}  // namespace ivr

#endif  // IVR_IFACE_INTERFACE_H_
