#include "ivr/iface/tv.h"

// TvInterface is fully defined in the header; this file anchors the
// vtable so the type has a single home translation unit.
namespace ivr {}  // namespace ivr
