#include "ivr/iface/session_log.h"

#include <utility>

#include "ivr/core/checksum.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"

namespace ivr {
namespace {

constexpr std::string_view kEnvelopeFormat = "sessionlog";

std::string Sanitize(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace

void SessionLog::Append(InteractionEvent event) {
  events_.push_back(std::move(event));
}

std::vector<InteractionEvent> SessionLog::EventsForSession(
    std::string_view session_id) const {
  std::vector<InteractionEvent> out;
  for (const InteractionEvent& ev : events_) {
    if (ev.session_id == session_id) out.push_back(ev);
  }
  return out;
}

std::vector<std::string> SessionLog::SessionIds() const {
  std::vector<std::string> out;
  for (const InteractionEvent& ev : events_) {
    bool seen = false;
    for (const std::string& id : out) {
      if (id == ev.session_id) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(ev.session_id);
  }
  return out;
}

size_t SessionLog::CountType(EventType type) const {
  size_t n = 0;
  for (const InteractionEvent& ev : events_) {
    if (ev.type == type) ++n;
  }
  return n;
}

std::string SessionLog::Serialize() const {
  std::string out;
  for (const InteractionEvent& ev : events_) {
    out += EventToLine(ev);
    out += "\n";
  }
  return out;
}

Result<SessionLog> SessionLog::Parse(const std::string& text) {
  SessionLog log;
  for (const std::string& line : Split(text, '\n')) {
    if (Trim(line).empty()) continue;
    IVR_ASSIGN_OR_RETURN(InteractionEvent ev, LineToEvent(line));
    log.Append(std::move(ev));
  }
  return log;
}

SessionLog SessionLog::ParseLenient(const std::string& text,
                                    size_t* dropped) {
  SessionLog log;
  size_t bad = 0;
  for (const std::string& line : Split(text, '\n')) {
    if (Trim(line).empty()) continue;
    Result<InteractionEvent> ev = LineToEvent(line);
    if (ev.ok()) {
      log.Append(std::move(ev).value());
    } else {
      ++bad;
    }
  }
  if (dropped != nullptr) *dropped = bad;
  return log;
}

Status SessionLog::Save(const std::string& path) const {
  return WriteFileAtomic(path, WrapEnvelope(kEnvelopeFormat, Serialize()));
}

Result<SessionLog> SessionLog::Load(const std::string& path) {
  IVR_RETURN_IF_ERROR(FaultInjector::Global().MaybeFail("sessionlog.load"));
  IVR_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  if (LooksEnveloped(text)) {
    IVR_ASSIGN_OR_RETURN(text, UnwrapEnvelope(kEnvelopeFormat, text));
  }
  return Parse(text);
}

std::string SessionLog::EventToLine(const InteractionEvent& event) {
  const std::string shot = event.shot == kInvalidShotId
                               ? std::string("-")
                               : StrFormat("%u", event.shot);
  return StrFormat("%lld\t%s\t%s\t%u\t%s\t%s\t%.17g\t%s",
                   static_cast<long long>(event.time),
                   Sanitize(event.session_id).c_str(),
                   Sanitize(event.user_id).c_str(), event.topic,
                   std::string(EventTypeName(event.type)).c_str(),
                   shot.c_str(), event.value,
                   Sanitize(event.text).c_str());
}

Result<InteractionEvent> SessionLog::LineToEvent(std::string_view line) {
  const std::vector<std::string> cols = Split(line, '\t');
  if (cols.size() != 8) {
    return Status::Corruption(
        StrFormat("log line must have 8 tab-separated columns, got %zu",
                  cols.size()));
  }
  InteractionEvent ev;
  IVR_ASSIGN_OR_RETURN(int64_t time, ParseInt(cols[0]));
  ev.time = time;
  ev.session_id = cols[1];
  ev.user_id = cols[2];
  IVR_ASSIGN_OR_RETURN(int64_t topic, ParseInt(cols[3]));
  if (topic < 0) return Status::Corruption("negative topic id");
  ev.topic = static_cast<SearchTopicId>(topic);
  IVR_ASSIGN_OR_RETURN(ev.type, EventTypeFromName(cols[4]));
  if (cols[5] == "-") {
    ev.shot = kInvalidShotId;
  } else {
    IVR_ASSIGN_OR_RETURN(int64_t shot, ParseInt(cols[5]));
    if (shot < 0) return Status::Corruption("negative shot id");
    ev.shot = static_cast<ShotId>(shot);
  }
  IVR_ASSIGN_OR_RETURN(ev.value, ParseDouble(cols[6]));
  ev.text = cols[7];
  return ev;
}

}  // namespace ivr
