#include "ivr/iface/session_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "ivr/core/checksum.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"

namespace ivr {
namespace {

constexpr std::string_view kEnvelopeFormat = "sessionlog";

/// Concatenates the TSV payloads of every envelope chunk in `text`. A
/// whole-file Save is a one-chunk journal, so this also covers it. When
/// `dropped_chunks` is null any bad chunk fails the whole walk (strict
/// Load); otherwise the walk stops at the first bad chunk, counts it and
/// the unread remainder as one drop, and returns the complete prefix.
Result<std::string> UnchunkJournal(std::string_view text,
                                   size_t* dropped_chunks) {
  std::string tsv;
  size_t offset = 0;
  while (offset < text.size()) {
    size_t consumed = 0;
    Result<std::string> payload =
        UnwrapEnvelopePrefix(kEnvelopeFormat, text.substr(offset),
                             &consumed);
    if (!payload.ok()) {
      if (dropped_chunks == nullptr) return payload.status();
      ++*dropped_chunks;
      break;
    }
    tsv += *payload;
    offset += consumed;
  }
  return tsv;
}

std::string Sanitize(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace

void SessionLog::Append(InteractionEvent event) {
  events_.push_back(std::move(event));
}

std::vector<InteractionEvent> SessionLog::EventsForSession(
    std::string_view session_id) const {
  std::vector<InteractionEvent> out;
  for (const InteractionEvent& ev : events_) {
    if (ev.session_id == session_id) out.push_back(ev);
  }
  return out;
}

std::vector<std::string> SessionLog::SessionIds() const {
  std::vector<std::string> out;
  for (const InteractionEvent& ev : events_) {
    bool seen = false;
    for (const std::string& id : out) {
      if (id == ev.session_id) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(ev.session_id);
  }
  return out;
}

size_t SessionLog::CountType(EventType type) const {
  size_t n = 0;
  for (const InteractionEvent& ev : events_) {
    if (ev.type == type) ++n;
  }
  return n;
}

std::string SessionLog::Serialize() const {
  std::string out;
  for (const InteractionEvent& ev : events_) {
    out += EventToLine(ev);
    out += "\n";
  }
  return out;
}

Result<SessionLog> SessionLog::Parse(const std::string& text) {
  SessionLog log;
  for (const std::string& line : Split(text, '\n')) {
    if (Trim(line).empty()) continue;
    IVR_ASSIGN_OR_RETURN(InteractionEvent ev, LineToEvent(line));
    log.Append(std::move(ev));
  }
  return log;
}

SessionLog SessionLog::ParseLenient(const std::string& text,
                                    size_t* dropped) {
  SessionLog log;
  size_t bad = 0;
  for (const std::string& line : Split(text, '\n')) {
    if (Trim(line).empty()) continue;
    Result<InteractionEvent> ev = LineToEvent(line);
    if (ev.ok()) {
      log.Append(std::move(ev).value());
    } else {
      ++bad;
    }
  }
  if (dropped != nullptr) *dropped = bad;
  return log;
}

Status SessionLog::Save(const std::string& path) const {
  return WriteFileAtomic(path, WrapEnvelope(kEnvelopeFormat, Serialize()));
}

Result<SessionLog> SessionLog::Load(const std::string& path) {
  IVR_RETURN_IF_ERROR(FaultInjector::Global().MaybeFail("sessionlog.load"));
  IVR_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  if (LooksEnveloped(text)) {
    IVR_ASSIGN_OR_RETURN(text,
                         UnchunkJournal(text, /*dropped_chunks=*/nullptr));
  }
  return Parse(text);
}

Result<SessionLog> SessionLog::LoadSalvage(const std::string& path,
                                           size_t* dropped_chunks,
                                           size_t* dropped_lines) {
  IVR_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  size_t bad_chunks = 0;
  if (LooksEnveloped(text)) {
    // Cannot fail with a non-null drop counter.
    text = UnchunkJournal(text, &bad_chunks).value();
  }
  if (dropped_chunks != nullptr) *dropped_chunks = bad_chunks;
  return ParseLenient(text, dropped_lines);
}

std::string SessionLog::EventToLine(const InteractionEvent& event) {
  const std::string shot = event.shot == kInvalidShotId
                               ? std::string("-")
                               : StrFormat("%u", event.shot);
  return StrFormat("%lld\t%s\t%s\t%u\t%s\t%s\t%.17g\t%s",
                   static_cast<long long>(event.time),
                   Sanitize(event.session_id).c_str(),
                   Sanitize(event.user_id).c_str(), event.topic,
                   std::string(EventTypeName(event.type)).c_str(),
                   shot.c_str(), event.value,
                   Sanitize(event.text).c_str());
}

Result<InteractionEvent> SessionLog::LineToEvent(std::string_view line) {
  const std::vector<std::string> cols = Split(line, '\t');
  if (cols.size() != 8) {
    return Status::Corruption(
        StrFormat("log line must have 8 tab-separated columns, got %zu",
                  cols.size()));
  }
  InteractionEvent ev;
  IVR_ASSIGN_OR_RETURN(int64_t time, ParseInt(cols[0]));
  ev.time = time;
  ev.session_id = cols[1];
  ev.user_id = cols[2];
  IVR_ASSIGN_OR_RETURN(int64_t topic, ParseInt(cols[3]));
  if (topic < 0) return Status::Corruption("negative topic id");
  ev.topic = static_cast<SearchTopicId>(topic);
  IVR_ASSIGN_OR_RETURN(ev.type, EventTypeFromName(cols[4]));
  if (cols[5] == "-") {
    ev.shot = kInvalidShotId;
  } else {
    IVR_ASSIGN_OR_RETURN(int64_t shot, ParseInt(cols[5]));
    if (shot < 0) return Status::Corruption("negative shot id");
    ev.shot = static_cast<ShotId>(shot);
  }
  IVR_ASSIGN_OR_RETURN(ev.value, ParseDouble(cols[6]));
  ev.text = cols[7];
  return ev;
}

// --- SessionLogWriter ---

SessionLogWriter::~SessionLogWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status SessionLogWriter::Open(const std::string& path) {
  if (fd_ >= 0) {
    return Status::FailedPrecondition("writer already open on " + path_);
  }
  IVR_RETURN_IF_ERROR(
      FaultInjector::Global().MaybeFail("sessionlog.append"));
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + " for appending: " +
                           std::strerror(errno));
  }
  fd_ = fd;
  path_ = path;
  return Status::OK();
}

Status SessionLogWriter::Append(
    const std::vector<InteractionEvent>& events) {
  if (fd_ < 0) return Status::FailedPrecondition("writer is not open");
  if (events.empty()) return Status::OK();
  IVR_RETURN_IF_ERROR(
      FaultInjector::Global().MaybeFail("sessionlog.append"));
  std::string tsv;
  for (const InteractionEvent& ev : events) {
    tsv += SessionLog::EventToLine(ev);
    tsv += "\n";
  }
  const std::string chunk = WrapEnvelope(kEnvelopeFormat, tsv);
  size_t offset = 0;
  while (offset < chunk.size()) {
    const ssize_t written =
        ::write(fd_, chunk.data() + offset, chunk.size() - offset);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("append failed for " + path_ + ": " +
                             std::strerror(errno));
    }
    offset += static_cast<size_t>(written);
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status SessionLogWriter::Append(const InteractionEvent& event) {
  return Append(std::vector<InteractionEvent>{event});
}

Status SessionLogWriter::Close() {
  if (fd_ < 0) return Status::OK();
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) {
    return Status::IOError("close failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace ivr
