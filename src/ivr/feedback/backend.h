#ifndef IVR_FEEDBACK_BACKEND_H_
#define IVR_FEEDBACK_BACKEND_H_

#include <string>

#include "ivr/feedback/events.h"
#include "ivr/retrieval/engine.h"
#include "ivr/retrieval/result_list.h"

namespace ivr {

/// What an interface talks to: something that answers queries and may
/// observe the interaction stream. A plain engine ignores the stream; an
/// AdaptiveEngine uses it to personalise subsequent results. This is the
/// seam experiments E3/E4/E7 swap systems through.
class SearchBackend {
 public:
  virtual ~SearchBackend() = default;

  /// Answers a query. Non-const because adaptive backends consult and
  /// update per-session state.
  virtual ResultList Search(const Query& query, size_t k) = 0;

  /// Receives every interaction event the interface logs. Default: ignore.
  virtual void ObserveEvent(const InteractionEvent& event) { (void)event; }

  /// Resets any per-session adaptation state. Default: nothing.
  virtual void BeginSession() {}

  /// Degraded-mode report for this backend (see health.h). Default: an
  /// all-healthy report; engine-backed implementations forward their
  /// engine's counters.
  virtual HealthReport Health() const { return HealthReport(); }

  virtual std::string name() const = 0;
};

/// The non-adaptive baseline: forwards to a RetrievalEngine verbatim.
class StaticBackend : public SearchBackend {
 public:
  /// The engine must outlive the backend.
  explicit StaticBackend(const RetrievalEngine& engine) : engine_(&engine) {}

  ResultList Search(const Query& query, size_t k) override {
    return engine_->Search(query, k);
  }
  HealthReport Health() const override { return engine_->Health(); }
  std::string name() const override { return "static-" +
                                             engine_->options().scorer; }

 private:
  const RetrievalEngine* engine_;
};

}  // namespace ivr

#endif  // IVR_FEEDBACK_BACKEND_H_
