#include "ivr/feedback/weighting.h"

#include <algorithm>
#include <cmath>

#include "ivr/core/rng.h"

namespace ivr {
namespace {

double Squash(double x) { return x / (1.0 + x); }

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

std::array<double, kNumIndicatorFeatures> IndicatorFeatures(
    const ShotIndicators& s) {
  return {
      s.clicks > 0 ? 1.0 : 0.0,
      s.play_fraction,
      Squash(static_cast<double>(s.play_count)),
      s.play_fraction >= 0.9 ? 1.0 : 0.0,
      Squash(static_cast<double>(s.seeks)),
      Squash(static_cast<double>(s.metadata_highlights)),
      Squash(s.tooltip_ms / 1000.0),
      Squash(s.dwell_ms / 1000.0),
      s.used_as_example > 0 ? 1.0 : 0.0,
      s.browsed_past ? 1.0 : 0.0,
      static_cast<double>(s.explicit_judgment),
  };
}

const std::array<std::string, kNumIndicatorFeatures>&
IndicatorFeatureNames() {
  static const auto& kNames =
      *new std::array<std::string, kNumIndicatorFeatures>{
          "clicked",        "play_fraction", "play_count",
          "completed_play", "seeks",         "metadata",
          "tooltip_s",      "dwell_s",       "used_as_example",
          "browsed_past",   "explicit",
      };
  return kNames;
}

double BinaryWeighting::Score(const ShotIndicators& s) const {
  if (s.explicit_judgment < 0) return -1.0;
  return s.HasActiveInteraction() ? 1.0 : 0.0;
}

double UniformWeighting::Score(const ShotIndicators& s) const {
  double score = 0.0;
  if (s.clicks > 0) score += 1.0;
  if (s.play_count > 0) score += 1.0;
  if (s.seeks > 0) score += 1.0;
  if (s.metadata_highlights > 0) score += 1.0;
  if (s.tooltip_hovers > 0) score += 1.0;
  if (s.used_as_example > 0) score += 1.0;
  if (s.explicit_judgment > 0) score += 1.0;
  if (s.explicit_judgment < 0) score -= 1.0;
  if (s.browsed_past) score -= 1.0;
  return score;
}

double LinearWeighting::Score(const ShotIndicators& s) const {
  double score = 0.0;
  if (s.clicks > 0) score += weights_.click;
  score += weights_.play_fraction * s.play_fraction;
  if (s.play_fraction >= 0.9) score += weights_.play_completion_bonus;
  score += weights_.seek * Squash(static_cast<double>(s.seeks));
  score +=
      weights_.metadata * Squash(static_cast<double>(s.metadata_highlights));
  score += weights_.tooltip_per_second * (s.tooltip_ms / 1000.0);
  score += weights_.dwell_per_second * (s.dwell_ms / 1000.0);
  if (s.used_as_example > 0) score += weights_.used_as_example;
  if (s.browsed_past) score += weights_.browse_past;
  if (s.explicit_judgment > 0) score += weights_.explicit_positive;
  if (s.explicit_judgment < 0) score += weights_.explicit_negative;
  return score;
}

LearnedWeighting::LearnedWeighting() { weights_.fill(0.0); }

double LearnedWeighting::Train(
    const std::vector<LabeledIndicators>& examples,
    const TrainOptions& options) {
  weights_.fill(0.0);
  bias_ = 0.0;
  if (examples.empty()) return 0.0;

  Rng rng(options.shuffle_seed);
  std::vector<size_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  double loss = 0.0;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    loss = 0.0;
    for (size_t idx : order) {
      const auto x = IndicatorFeatures(examples[idx].indicators);
      const double y = examples[idx].relevant ? 1.0 : 0.0;
      double z = bias_;
      for (size_t j = 0; j < x.size(); ++j) {
        z += weights_[j] * x[j];
      }
      const double p = Sigmoid(z);
      const double g = p - y;  // d(logloss)/dz
      for (size_t j = 0; j < x.size(); ++j) {
        weights_[j] -= options.learning_rate *
                       (g * x[j] + options.l2 * weights_[j]);
      }
      bias_ -= options.learning_rate * g;
      const double clamped = std::clamp(examples[idx].relevant ? p : 1 - p,
                                        1e-12, 1.0);
      loss -= std::log(clamped);
    }
    loss /= static_cast<double>(examples.size());
  }
  return loss;
}

double LearnedWeighting::Probability(const ShotIndicators& s) const {
  const auto x = IndicatorFeatures(s);
  double z = bias_;
  for (size_t j = 0; j < x.size(); ++j) {
    z += weights_[j] * x[j];
  }
  return Sigmoid(z);
}

double LearnedWeighting::Score(const ShotIndicators& s) const {
  return 2.0 * Probability(s) - 1.0;
}

std::unique_ptr<WeightingScheme> MakeWeightingScheme(
    const std::string& name) {
  if (name == "binary") return std::make_unique<BinaryWeighting>();
  if (name == "uniform") return std::make_unique<UniformWeighting>();
  if (name == "linear") return std::make_unique<LinearWeighting>();
  return nullptr;
}

}  // namespace ivr
