#ifndef IVR_FEEDBACK_WEIGHTING_H_
#define IVR_FEEDBACK_WEIGHTING_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "ivr/feedback/indicators.h"

namespace ivr {

/// Number of numeric features extracted from a ShotIndicators record for
/// the learned scheme (and for indicator analyses).
constexpr size_t kNumIndicatorFeatures = 11;

/// Feature vector: [clicked, play_fraction, play_count, completed_play,
/// seeks, metadata, tooltip_s, dwell_s, used_as_example, browsed_past,
/// explicit_judgment].
/// Counts are lightly squashed (x / (1 + x)) so single outlier sessions
/// cannot dominate a linear model.
std::array<double, kNumIndicatorFeatures> IndicatorFeatures(
    const ShotIndicators& s);

/// Names for reports, index-aligned with IndicatorFeatures.
const std::array<std::string, kNumIndicatorFeatures>&
IndicatorFeatureNames();

/// A weighting scheme turns a shot's implicit indicators into a signed
/// relevance score: > 0 is evidence the user found the shot relevant,
/// < 0 evidence of the opposite, magnitude is confidence. This is the
/// paper's research question 2 ("how do these features have to be
/// weighted") as an interface.
class WeightingScheme {
 public:
  virtual ~WeightingScheme() = default;
  virtual double Score(const ShotIndicators& s) const = 0;
  virtual std::string name() const = 0;
};

/// Binary: 1 if the user actively touched the shot at all (unless they
/// explicitly marked it non-relevant, which gives -1), else 0. The
/// crudest possible interpretation of implicit feedback.
class BinaryWeighting : public WeightingScheme {
 public:
  double Score(const ShotIndicators& s) const override;
  std::string name() const override { return "binary"; }
};

/// Uniform: each indicator type present contributes +1 (browse-past -1);
/// all indicators are treated as equally informative.
class UniformWeighting : public WeightingScheme {
 public:
  double Score(const ShotIndicators& s) const override;
  std::string name() const override { return "uniform"; }
};

/// Hand-tuned per-indicator weights; defaults encode the intuition the
/// paper cites from [9]: playing (especially to completion) and clicking
/// are strong, browsing weak, explicit judgements strongest.
struct IndicatorWeights {
  double click = 1.0;
  double play_fraction = 2.0;       ///< scaled by fraction played
  double play_completion_bonus = 1.0;  ///< extra when >= 90% played
  double seek = 0.3;
  double metadata = 0.8;
  double tooltip_per_second = 0.05;
  double dwell_per_second = 0.02;
  double used_as_example = 2.0;
  double browse_past = -0.3;
  double explicit_positive = 3.0;
  double explicit_negative = -5.0;
};

class LinearWeighting : public WeightingScheme {
 public:
  LinearWeighting() = default;
  explicit LinearWeighting(IndicatorWeights weights,
                           std::string name = "linear")
      : weights_(weights), name_(std::move(name)) {}

  double Score(const ShotIndicators& s) const override;
  std::string name() const override { return name_; }

  const IndicatorWeights& weights() const { return weights_; }

 private:
  IndicatorWeights weights_;
  std::string name_ = "linear";
};

/// One labelled training example for the learned scheme.
struct LabeledIndicators {
  ShotIndicators indicators;
  bool relevant = false;
};

/// Logistic regression over IndicatorFeatures, trained by mini-batch-free
/// SGD with L2 regularisation. Score is mapped to [-1, 1] via
/// 2 * sigma(w.x + b) - 1 so it plugs into the same signed-evidence
/// contract as the other schemes. This is the "learned from past logs"
/// scheme of experiment E3.
class LearnedWeighting : public WeightingScheme {
 public:
  struct TrainOptions {
    size_t epochs = 50;
    double learning_rate = 0.1;
    double l2 = 1e-4;
    uint64_t shuffle_seed = 7;
  };

  LearnedWeighting();

  /// Trains from scratch; returns the final training log-loss.
  double Train(const std::vector<LabeledIndicators>& examples,
               const TrainOptions& options);
  double Train(const std::vector<LabeledIndicators>& examples) {
    return Train(examples, TrainOptions());
  }

  double Score(const ShotIndicators& s) const override;
  std::string name() const override { return "learned"; }

  /// P(relevant | indicators) under the trained model.
  double Probability(const ShotIndicators& s) const;

  const std::array<double, kNumIndicatorFeatures>& weights() const {
    return weights_;
  }
  double bias() const { return bias_; }

 private:
  std::array<double, kNumIndicatorFeatures> weights_;
  double bias_ = 0.0;
};

/// Factory: "binary" | "uniform" | "linear"; nullptr for unknown (the
/// learned scheme needs training data, so it is constructed directly).
std::unique_ptr<WeightingScheme> MakeWeightingScheme(
    const std::string& name);

}  // namespace ivr

#endif  // IVR_FEEDBACK_WEIGHTING_H_
