#ifndef IVR_FEEDBACK_ESTIMATOR_H_
#define IVR_FEEDBACK_ESTIMATOR_H_

#include <vector>

#include "ivr/feedback/events.h"
#include "ivr/feedback/indicators.h"
#include "ivr/feedback/ostensive.h"
#include "ivr/feedback/weighting.h"
#include "ivr/video/collection.h"

namespace ivr {

/// Signed relevance evidence for one shot, as inferred from implicit
/// feedback: weight > 0 "the user seems to find this relevant", < 0 the
/// opposite. This is the bridge between raw interaction logs and the
/// adaptation machinery (Rocchio expansion, reranking, profiles).
struct RelevanceEvidence {
  ShotId shot = kInvalidShotId;
  double weight = 0.0;
};

/// Combines a weighting scheme with the ostensive recency model to turn a
/// session's event stream into weighted evidence.
class ImplicitRelevanceEstimator {
 public:
  struct Options {
    /// Apply ostensive decay by the recency of each shot's last
    /// interaction (relative to the newest event in the stream).
    bool use_ostensive = false;
    TimeMs ostensive_half_life_ms = 2 * kMillisPerMinute;
    /// Evidence with |weight| below this is dropped.
    double min_abs_weight = 1e-6;
  };

  /// The scheme must outlive the estimator.
  explicit ImplicitRelevanceEstimator(const WeightingScheme& scheme)
      : scheme_(&scheme) {}
  ImplicitRelevanceEstimator(const WeightingScheme& scheme, Options options)
      : scheme_(&scheme), options_(options) {}

  /// Estimates evidence from raw events. The collection (nullable)
  /// supplies shot durations for play-fraction computation.
  std::vector<RelevanceEvidence> Estimate(
      const std::vector<InteractionEvent>& events,
      const VideoCollection* collection) const;

  /// Same, resolving shots through a lookup (empty function to skip
  /// durations); what segmented engines use.
  std::vector<RelevanceEvidence> Estimate(
      const std::vector<InteractionEvent>& events,
      const ShotLookup& lookup) const;

  /// Same, starting from already-aggregated indicators (ostensive decay
  /// uses each record's last_interaction; `now` anchors the decay).
  std::vector<RelevanceEvidence> EstimateFromIndicators(
      const std::map<ShotId, ShotIndicators>& indicators, TimeMs now) const;

  const Options& options() const { return options_; }
  const WeightingScheme& scheme() const { return *scheme_; }

 private:
  const WeightingScheme* scheme_;
  Options options_;
};

}  // namespace ivr

#endif  // IVR_FEEDBACK_ESTIMATOR_H_
