#include "ivr/feedback/indicators.h"

#include <algorithm>

namespace ivr {
namespace {

ShotIndicators& Entry(std::map<ShotId, ShotIndicators>* map, ShotId shot) {
  ShotIndicators& e = (*map)[shot];
  if (e.shot == kInvalidShotId) e.shot = shot;
  return e;
}

void Touch(ShotIndicators* e, TimeMs t) {
  if (e->first_interaction < 0) e->first_interaction = t;
  e->last_interaction = std::max(e->last_interaction, t);
}

}  // namespace

std::map<ShotId, ShotIndicators> AggregateIndicators(
    std::vector<InteractionEvent> events,
    const VideoCollection* collection) {
  ShotLookup lookup;
  if (collection != nullptr) {
    lookup = [collection](ShotId id) -> const Shot* {
      Result<const Shot*> s = collection->shot(id);
      return s.ok() ? *s : nullptr;
    };
  }
  return AggregateIndicators(std::move(events), lookup);
}

std::map<ShotId, ShotIndicators> AggregateIndicators(
    std::vector<InteractionEvent> events, const ShotLookup& lookup) {
  SortEvents(&events);
  std::map<ShotId, ShotIndicators> out;

  // Dwell tracking: the shot currently "open" (last clicked) and when.
  ShotId open_shot = kInvalidShotId;
  TimeMs open_since = 0;

  auto close_dwell = [&](TimeMs now) {
    if (open_shot == kInvalidShotId) return;
    ShotIndicators& e = Entry(&out, open_shot);
    e.dwell_ms += static_cast<double>(std::max<TimeMs>(0, now - open_since));
    open_shot = kInvalidShotId;
  };

  for (const InteractionEvent& ev : events) {
    switch (ev.type) {
      case EventType::kResultDisplayed: {
        ShotIndicators& e = Entry(&out, ev.shot);
        ++e.displays;
        const int rank = static_cast<int>(ev.value);
        if (e.best_rank < 0 || rank < e.best_rank) e.best_rank = rank;
        break;
      }
      case EventType::kTooltipHover: {
        ShotIndicators& e = Entry(&out, ev.shot);
        ++e.tooltip_hovers;
        e.tooltip_ms += std::max(0.0, ev.value);
        Touch(&e, ev.time);
        break;
      }
      case EventType::kClickKeyframe: {
        if (ev.shot != open_shot) close_dwell(ev.time);
        ShotIndicators& e = Entry(&out, ev.shot);
        ++e.clicks;
        Touch(&e, ev.time);
        open_shot = ev.shot;
        open_since = ev.time;
        break;
      }
      case EventType::kPlayStart: {
        ShotIndicators& e = Entry(&out, ev.shot);
        ++e.play_count;
        Touch(&e, ev.time);
        break;
      }
      case EventType::kPlayStop: {
        ShotIndicators& e = Entry(&out, ev.shot);
        e.play_time_ms += std::max(0.0, ev.value);
        Touch(&e, ev.time);
        break;
      }
      case EventType::kSeek: {
        ShotIndicators& e = Entry(&out, ev.shot);
        ++e.seeks;
        Touch(&e, ev.time);
        break;
      }
      case EventType::kHighlightMetadata: {
        ShotIndicators& e = Entry(&out, ev.shot);
        ++e.metadata_highlights;
        Touch(&e, ev.time);
        break;
      }
      case EventType::kMarkRelevant:
      case EventType::kMarkNotRelevant: {
        ShotIndicators& e = Entry(&out, ev.shot);
        e.explicit_judgment = ev.type == EventType::kMarkRelevant ? 1 : -1;
        Touch(&e, ev.time);
        break;
      }
      case EventType::kVisualExample: {
        // Both a navigation (new results replace the old) and strong
        // positive evidence for the example shot itself.
        close_dwell(ev.time);
        ShotIndicators& e = Entry(&out, ev.shot);
        ++e.used_as_example;
        Touch(&e, ev.time);
        break;
      }
      case EventType::kQuerySubmit:
      case EventType::kBrowseNextPage:
      case EventType::kBrowsePrevPage:
      case EventType::kSessionEnd:
        // Navigation away from whatever was open ends its dwell window.
        close_dwell(ev.time);
        break;
    }
  }
  if (!events.empty()) {
    close_dwell(events.back().time);
  }

  for (auto& [shot, e] : out) {
    (void)shot;
    e.browsed_past = e.displays > 0 && !e.HasActiveInteraction();
    if (lookup) {
      const Shot* s = lookup(e.shot);
      if (s != nullptr && s->duration_ms > 0) {
        e.play_fraction = std::min(
            1.0, e.play_time_ms / static_cast<double>(s->duration_ms));
      }
    }
  }
  return out;
}

}  // namespace ivr
