#include "ivr/feedback/estimator.h"

#include <algorithm>
#include <cmath>

namespace ivr {

std::vector<RelevanceEvidence> ImplicitRelevanceEstimator::Estimate(
    const std::vector<InteractionEvent>& events,
    const VideoCollection* collection) const {
  TimeMs now = 0;
  for (const InteractionEvent& ev : events) {
    now = std::max(now, ev.time);
  }
  return EstimateFromIndicators(AggregateIndicators(events, collection),
                                now);
}

std::vector<RelevanceEvidence> ImplicitRelevanceEstimator::Estimate(
    const std::vector<InteractionEvent>& events,
    const ShotLookup& lookup) const {
  TimeMs now = 0;
  for (const InteractionEvent& ev : events) {
    now = std::max(now, ev.time);
  }
  return EstimateFromIndicators(AggregateIndicators(events, lookup), now);
}

std::vector<RelevanceEvidence>
ImplicitRelevanceEstimator::EstimateFromIndicators(
    const std::map<ShotId, ShotIndicators>& indicators, TimeMs now) const {
  const OstensiveModel ostensive(options_.ostensive_half_life_ms);
  std::vector<RelevanceEvidence> out;
  for (const auto& [shot, ind] : indicators) {
    double weight = scheme_->Score(ind);
    if (options_.use_ostensive && ind.last_interaction >= 0) {
      weight *= ostensive.Weight(ind.last_interaction, now);
    }
    if (std::fabs(weight) < options_.min_abs_weight) continue;
    out.push_back(RelevanceEvidence{shot, weight});
  }
  return out;
}

}  // namespace ivr
