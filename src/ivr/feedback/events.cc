#include "ivr/feedback/events.h"

#include <algorithm>

namespace ivr {
namespace {

struct NameEntry {
  EventType type;
  std::string_view name;
};

constexpr NameEntry kNames[] = {
    {EventType::kQuerySubmit, "query_submit"},
    {EventType::kVisualExample, "visual_example"},
    {EventType::kResultDisplayed, "result_displayed"},
    {EventType::kBrowseNextPage, "browse_next_page"},
    {EventType::kBrowsePrevPage, "browse_prev_page"},
    {EventType::kTooltipHover, "tooltip_hover"},
    {EventType::kClickKeyframe, "click_keyframe"},
    {EventType::kPlayStart, "play_start"},
    {EventType::kPlayStop, "play_stop"},
    {EventType::kSeek, "seek"},
    {EventType::kHighlightMetadata, "highlight_metadata"},
    {EventType::kMarkRelevant, "mark_relevant"},
    {EventType::kMarkNotRelevant, "mark_not_relevant"},
    {EventType::kSessionEnd, "session_end"},
};

}  // namespace

std::string_view EventTypeName(EventType type) {
  for (const NameEntry& entry : kNames) {
    if (entry.type == type) return entry.name;
  }
  return "unknown";
}

Result<EventType> EventTypeFromName(std::string_view name) {
  for (const NameEntry& entry : kNames) {
    if (entry.name == name) return entry.type;
  }
  return Status::InvalidArgument("unknown event type: " + std::string(name));
}

bool EventHasShot(EventType type) {
  switch (type) {
    case EventType::kVisualExample:
    case EventType::kResultDisplayed:
    case EventType::kTooltipHover:
    case EventType::kClickKeyframe:
    case EventType::kPlayStart:
    case EventType::kPlayStop:
    case EventType::kSeek:
    case EventType::kHighlightMetadata:
    case EventType::kMarkRelevant:
    case EventType::kMarkNotRelevant:
      return true;
    case EventType::kQuerySubmit:
    case EventType::kBrowseNextPage:
    case EventType::kBrowsePrevPage:
    case EventType::kSessionEnd:
      return false;
  }
  return false;
}

bool EventTimeLess(const InteractionEvent& a, const InteractionEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  return static_cast<int>(a.type) < static_cast<int>(b.type);
}

void SortEvents(std::vector<InteractionEvent>* events) {
  std::stable_sort(events->begin(), events->end(), EventTimeLess);
}

}  // namespace ivr
