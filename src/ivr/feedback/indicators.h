#ifndef IVR_FEEDBACK_INDICATORS_H_
#define IVR_FEEDBACK_INDICATORS_H_

#include <map>
#include <vector>

#include "ivr/feedback/events.h"
#include "ivr/video/collection.h"

namespace ivr {

/// Per-shot aggregation of one session's interactions — the "implicit
/// indicator vector" whose components the paper asks to weigh.
struct ShotIndicators {
  ShotId shot = kInvalidShotId;

  /// Times the shot was shown in a result page, and its best (lowest) rank.
  int displays = 0;
  int best_rank = -1;

  int clicks = 0;               ///< keyframe clicks
  int play_count = 0;           ///< playbacks started
  double play_time_ms = 0.0;    ///< total milliseconds played
  /// play_time / duration in [0,1] (0 when the duration is unknown).
  double play_fraction = 0.0;
  int seeks = 0;                ///< slider jumps while playing
  int metadata_highlights = 0;  ///< metadata panel expansions
  int tooltip_hovers = 0;
  double tooltip_ms = 0.0;
  /// Times the user issued "find more like this" with this shot as the
  /// example — a deliberate act and one of the strongest implicit
  /// signals an interface offers.
  int used_as_example = 0;

  /// Displayed but never touched while the user browsed on — weak negative
  /// evidence.
  bool browsed_past = false;

  /// Explicit judgement: +1 marked relevant, -1 marked not relevant,
  /// 0 unjudged (the latest mark wins).
  int explicit_judgment = 0;

  /// Dwell: time between the first click on the shot and the next action
  /// on a different target (the "display time" of Kelly & Belkin).
  double dwell_ms = 0.0;

  TimeMs first_interaction = -1;
  TimeMs last_interaction = -1;

  /// True if any active (non-display) interaction happened.
  bool HasActiveInteraction() const {
    return clicks > 0 || play_count > 0 || seeks > 0 ||
           metadata_highlights > 0 || tooltip_hovers > 0 ||
           used_as_example > 0 || explicit_judgment != 0;
  }
};

/// Aggregates a (chronologically sortable) event stream into per-shot
/// indicators. The collection pointer, when given, supplies shot durations
/// so play_fraction can be computed; pass nullptr to skip that.
///
/// Ordered map so iteration order (and everything derived from it) is
/// deterministic.
std::map<ShotId, ShotIndicators> AggregateIndicators(
    std::vector<InteractionEvent> events, const VideoCollection* collection);

/// Same, resolving shots through a lookup (empty function to skip
/// durations). Segmented engines hand their FindShot here.
std::map<ShotId, ShotIndicators> AggregateIndicators(
    std::vector<InteractionEvent> events, const ShotLookup& lookup);

}  // namespace ivr

#endif  // IVR_FEEDBACK_INDICATORS_H_
