#include "ivr/feedback/ostensive.h"

#include <algorithm>
#include <cmath>

namespace ivr {

double OstensiveModel::Weight(TimeMs event_time, TimeMs now) const {
  if (!enabled()) return 1.0;
  const TimeMs age = now - event_time;
  if (age <= 0) return 1.0;
  return std::pow(
      0.5, static_cast<double>(age) / static_cast<double>(half_life_ms_));
}

double OstensiveModel::WeightByRank(size_t age_rank, double decay_per_step) {
  decay_per_step = std::clamp(decay_per_step, 0.0, 1.0);
  return std::pow(decay_per_step, static_cast<double>(age_rank));
}

}  // namespace ivr
