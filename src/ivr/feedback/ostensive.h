#ifndef IVR_FEEDBACK_OSTENSIVE_H_
#define IVR_FEEDBACK_OSTENSIVE_H_

#include <cstddef>

#include "ivr/core/clock.h"

namespace ivr {

/// The ostensive model of developing information needs (Campbell & van
/// Rijsbergen [3]): evidence gathered recently reflects the user's current
/// interest better than older evidence, because the need drifts within a
/// session. This class converts evidence age into a multiplicative weight.
class OstensiveModel {
 public:
  /// `half_life_ms`: age at which evidence weight halves. Must be > 0;
  /// values <= 0 disable decay (weight 1 everywhere).
  explicit OstensiveModel(TimeMs half_life_ms = 2 * kMillisPerMinute)
      : half_life_ms_(half_life_ms) {}

  /// Weight in (0, 1] of evidence observed at `event_time` as of `now`.
  /// Future events (event_time > now) get weight 1.
  double Weight(TimeMs event_time, TimeMs now) const;

  /// Rank-based variant: weight of the k-th most recent piece of evidence
  /// (k = 0 is the newest) with per-step decay factor derived from the
  /// half-life interpretation: 0.5^k when treating each step as one
  /// half-life; here parameterised directly.
  static double WeightByRank(size_t age_rank, double decay_per_step);

  TimeMs half_life_ms() const { return half_life_ms_; }
  bool enabled() const { return half_life_ms_ > 0; }

 private:
  TimeMs half_life_ms_;
};

}  // namespace ivr

#endif  // IVR_FEEDBACK_OSTENSIVE_H_
