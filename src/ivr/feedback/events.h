#ifndef IVR_FEEDBACK_EVENTS_H_
#define IVR_FEEDBACK_EVENTS_H_

#include <string>
#include <string_view>
#include <vector>

#include "ivr/core/clock.h"
#include "ivr/core/result.h"
#include "ivr/video/qrels.h"
#include "ivr/video/types.h"

namespace ivr {

/// The interaction vocabulary shared by every interface. The implicit
/// indicators are exactly those Hopfgartner & Jose [9] identified across
/// state-of-the-art video retrieval tools: clicking a keyframe to start
/// playback, browsing through the result list, sliding (seeking) through a
/// video, highlighting additional metadata, and playing a video for some
/// amount of time — plus the explicit relevance keys the TV environment
/// emphasises.
enum class EventType {
  kQuerySubmit = 0,     ///< text query issued; `text` holds the query
  kVisualExample,       ///< query-by-example issued; `shot` is the example
  kResultDisplayed,     ///< a shot became visible; `value` = 0-based rank
  kBrowseNextPage,      ///< user paged forward; `value` = new page
  kBrowsePrevPage,      ///< user paged back; `value` = new page
  kTooltipHover,        ///< hovered a keyframe; `value` = hover ms
  kClickKeyframe,       ///< clicked a keyframe to open/play the shot
  kPlayStart,           ///< playback began
  kPlayStop,            ///< playback ended; `value` = played ms
  kSeek,                ///< slider jump inside the shot; `value` = offset ms
  kHighlightMetadata,   ///< expanded the metadata/transcript panel
  kMarkRelevant,        ///< explicit positive judgement
  kMarkNotRelevant,     ///< explicit negative judgement
  kSessionEnd,          ///< session closed
};

/// Stable lower-snake name used in logfiles ("click_keyframe").
std::string_view EventTypeName(EventType type);
Result<EventType> EventTypeFromName(std::string_view name);

/// True for event types that reference a shot.
bool EventHasShot(EventType type);

/// One record of a user interaction, the unit every feedback component
/// consumes. Produced live by interfaces and recovered from logfiles.
struct InteractionEvent {
  TimeMs time = 0;
  std::string session_id;
  std::string user_id;
  /// The search task the user is working on (0 if free browsing).
  SearchTopicId topic = 0;
  EventType type = EventType::kSessionEnd;
  /// Subject shot, kInvalidShotId when not applicable.
  ShotId shot = kInvalidShotId;
  /// Type-specific scalar (rank, milliseconds, page, ...).
  double value = 0.0;
  /// Type-specific text (the query string).
  std::string text;
};

/// Chronological comparison (stable across equal timestamps by type).
bool EventTimeLess(const InteractionEvent& a, const InteractionEvent& b);

/// Sorts events chronologically in place.
void SortEvents(std::vector<InteractionEvent>* events);

}  // namespace ivr

#endif  // IVR_FEEDBACK_EVENTS_H_
