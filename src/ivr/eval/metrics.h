#ifndef IVR_EVAL_METRICS_H_
#define IVR_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "ivr/retrieval/result_list.h"
#include "ivr/video/qrels.h"

namespace ivr {

/// trec_eval-style effectiveness measures over a ranked list and graded
/// judgements. All binary measures treat grade >= min_grade as relevant.
/// Topics with no relevant shots yield 0 for every measure (trec_eval
/// convention when averaging).

double AveragePrecision(const ResultList& run, const Qrels& qrels,
                        SearchTopicId topic, int min_grade = 1);

double PrecisionAtK(const ResultList& run, const Qrels& qrels,
                    SearchTopicId topic, size_t k, int min_grade = 1);

double RecallAtK(const ResultList& run, const Qrels& qrels,
                 SearchTopicId topic, size_t k, int min_grade = 1);

/// Graded nDCG with the standard log2 discount and gain = grade.
double NdcgAtK(const ResultList& run, const Qrels& qrels,
               SearchTopicId topic, size_t k);

/// Buckley & Voorhees bpref (robust to incomplete judgements). With our
/// exhaustive synthetic qrels every unjudged shot counts as judged
/// non-relevant.
double Bpref(const ResultList& run, const Qrels& qrels, SearchTopicId topic,
             int min_grade = 1);

/// Reciprocal rank of the first relevant result (0 when none retrieved).
double ReciprocalRank(const ResultList& run, const Qrels& qrels,
                      SearchTopicId topic, int min_grade = 1);

/// The per-topic scorecard experiments report.
struct TopicMetrics {
  SearchTopicId topic = 0;
  size_t num_relevant = 0;
  size_t num_retrieved = 0;
  double ap = 0.0;
  double p5 = 0.0;
  double p10 = 0.0;
  double p20 = 0.0;
  double recall100 = 0.0;
  double ndcg10 = 0.0;
  double bpref = 0.0;
  double rr = 0.0;
};

TopicMetrics ComputeTopicMetrics(const ResultList& run, const Qrels& qrels,
                                 SearchTopicId topic, int min_grade = 1);

/// Arithmetic mean over topics (MAP etc.). Empty input -> all zeros.
TopicMetrics MeanMetrics(const std::vector<TopicMetrics>& per_topic);

}  // namespace ivr

#endif  // IVR_EVAL_METRICS_H_
