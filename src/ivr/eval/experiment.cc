#include "ivr/eval/experiment.h"

#include <algorithm>
#include <cctype>

#include "ivr/core/string_util.h"
#include "ivr/core/thread_pool.h"
#include "ivr/obs/metrics.h"

namespace ivr {

std::vector<double> SystemEvaluation::ApVector() const {
  std::vector<double> out;
  out.reserve(per_topic.size());
  for (const TopicMetrics& m : per_topic) {
    out.push_back(m.ap);
  }
  return out;
}

SystemEvaluation EvaluateSystem(const SystemRun& run, const Qrels& qrels,
                                const std::vector<SearchTopicId>& topics,
                                int min_grade, size_t threads) {
  // Shared across every EvaluateSystem call in the process; resolved once.
  struct CachedMetrics {
    obs::Counter* systems;
    obs::Counter* topics_scored;
    obs::LatencyHistogram* system_us;
    CachedMetrics() {
      obs::Registry& registry = obs::Registry::Global();
      systems = registry.GetCounter("eval.systems");
      topics_scored = registry.GetCounter("eval.topics_scored");
      system_us = registry.GetHistogram("eval.system_us");
    }
  };
  static const CachedMetrics metrics;
  const obs::Stopwatch total;

  SystemEvaluation eval;
  eval.system = run.system;
  eval.per_topic.resize(topics.size());
  const ResultList empty;
  // Each worker writes its topic's slot, so per_topic keeps the caller's
  // topic order whatever the scheduling.
  ParallelFor(topics.size(), threads,
              [&](size_t i, size_t /*worker*/) {
                auto it = run.runs.find(topics[i]);
                const ResultList& list =
                    it == run.runs.end() ? empty : it->second;
                eval.per_topic[i] =
                    ComputeTopicMetrics(list, qrels, topics[i], min_grade);
              });
  eval.mean = MeanMetrics(eval.per_topic);
  metrics.systems->Inc();
  metrics.topics_scored->Inc(topics.size());
  metrics.system_us->Record(total.ElapsedUs());
  return eval;
}

namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (char c : cell) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != '%' && c != 'e' && c != 'E' &&
        c != 'x' && c != 'n' && c != '/' && c != 'a') {
      return false;
    }
  }
  return std::isdigit(static_cast<unsigned char>(cell[0])) ||
         cell[0] == '-' || cell[0] == '+' || cell[0] == '.' ||
         cell == "n/a";
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      const std::string& cell = row[c];
      const size_t pad = widths[c] - cell.size();
      if (LooksNumeric(cell)) {
        line += std::string(pad, ' ') + cell;
      } else {
        line += cell + std::string(pad, ' ');
      }
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string FormatMetric(double value) { return StrFormat("%.4f", value); }

std::string FormatRelativeChange(double value, double baseline) {
  if (baseline == 0.0) return "n/a";
  const double pct = 100.0 * (value - baseline) / baseline;
  return StrFormat("%+.1f%%", pct);
}

}  // namespace ivr
