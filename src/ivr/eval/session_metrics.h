#ifndef IVR_EVAL_SESSION_METRICS_H_
#define IVR_EVAL_SESSION_METRICS_H_

#include <vector>

#include "ivr/core/clock.h"
#include "ivr/feedback/events.h"
#include "ivr/video/qrels.h"

namespace ivr {

/// User-effort measures over one session's interaction log — the paper's
/// success criterion is exactly this: an adaptive model should
/// "significantly reduce the number of steps the user has to perform
/// before he retrieves satisfying search results". Unlike rank-based
/// metrics these are computed from what the user actually did.
struct SessionEffortMetrics {
  /// User actions (everything except result_displayed and session_end).
  size_t total_actions = 0;
  /// Actions performed before the first playback of a truly relevant
  /// shot; equals total_actions when none happened.
  size_t actions_to_first_relevant = 0;
  /// Wall-clock time to that first relevant playback; -1 when none.
  TimeMs time_to_first_relevant_ms = -1;
  /// Distinct truly relevant shots the user played at all.
  size_t relevant_played = 0;
  /// Distinct non-relevant shots the user played (wasted watching).
  size_t nonrelevant_played = 0;
  /// Session wall-clock length.
  TimeMs session_ms = 0;

  /// Relevant shots found per minute of session time (0 for an empty
  /// session).
  double RelevantPerMinute() const;
  /// Fraction of played shots that were relevant (precision of effort).
  double PlayPrecision() const;
};

/// Computes effort metrics for one session's events against the truth.
/// Events need not be pre-sorted. `topic` is the task the session worked
/// on (usually events.front().topic).
SessionEffortMetrics ComputeSessionEffort(
    const std::vector<InteractionEvent>& events, const Qrels& qrels,
    SearchTopicId topic, int min_grade = 1);

/// Arithmetic mean over sessions (time_to_first averages only over
/// sessions that found something; -1 when none did).
SessionEffortMetrics MeanSessionEffort(
    const std::vector<SessionEffortMetrics>& sessions);

}  // namespace ivr

#endif  // IVR_EVAL_SESSION_METRICS_H_
