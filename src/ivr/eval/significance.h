#ifndef IVR_EVAL_SIGNIFICANCE_H_
#define IVR_EVAL_SIGNIFICANCE_H_

#include <vector>

#include "ivr/core/result.h"

namespace ivr {

/// Outcome of a paired significance test between two systems' per-topic
/// scores.
struct PairedTestResult {
  double statistic = 0.0;  ///< t (t-test) or z (Wilcoxon approximation)
  double p_value = 1.0;    ///< two-sided
  size_t n = 0;            ///< effective sample size (non-zero differences
                           ///< for Wilcoxon)
};

/// Two-sided paired Student t-test. Requires equally sized inputs with at
/// least two entries; InvalidArgument otherwise. A zero-variance
/// difference vector yields p = 1 when the mean difference is 0 and p = 0
/// otherwise (deterministic dominance).
Result<PairedTestResult> PairedTTest(const std::vector<double>& a,
                                     const std::vector<double>& b);

/// Two-sided Wilcoxon signed-rank test with normal approximation and tie
/// correction. Requires equally sized inputs; pairs with zero difference
/// are dropped (p = 1 when none remain).
Result<PairedTestResult> WilcoxonSignedRank(const std::vector<double>& a,
                                            const std::vector<double>& b);

/// Kendall rank-correlation tau-a between two score vectors (used to
/// compare system rankings produced by simulation vs replay, E9).
/// Equal-length inputs required; returns 0 for fewer than 2 items.
Result<double> KendallTau(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Fisher randomization (sign-flip permutation) test — the
/// distribution-free paired test preferred in IR evaluation (Smucker et
/// al.): the two-sided p-value is the fraction of random sign
/// assignments of the per-topic differences whose |mean| reaches the
/// observed |mean|. Deterministic in `seed`; `rounds` Monte-Carlo
/// samples (the observed assignment is always included, so p >= 1/(rounds+1)).
Result<PairedTestResult> RandomizationTest(const std::vector<double>& a,
                                           const std::vector<double>& b,
                                           size_t rounds = 10000,
                                           uint64_t seed = 1);

/// Student-t two-sided p-value for statistic `t` with `df` degrees of
/// freedom (regularised incomplete beta). Exposed for tests.
double StudentTTwoSidedPValue(double t, double df);

/// Standard normal two-sided p-value for statistic `z`.
double NormalTwoSidedPValue(double z);

}  // namespace ivr

#endif  // IVR_EVAL_SIGNIFICANCE_H_
