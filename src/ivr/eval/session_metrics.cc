#include "ivr/eval/session_metrics.h"

#include <set>

namespace ivr {

double SessionEffortMetrics::RelevantPerMinute() const {
  if (session_ms <= 0) return 0.0;
  return static_cast<double>(relevant_played) /
         (static_cast<double>(session_ms) /
          static_cast<double>(kMillisPerMinute));
}

double SessionEffortMetrics::PlayPrecision() const {
  const size_t total = relevant_played + nonrelevant_played;
  if (total == 0) return 0.0;
  return static_cast<double>(relevant_played) /
         static_cast<double>(total);
}

SessionEffortMetrics ComputeSessionEffort(
    const std::vector<InteractionEvent>& events, const Qrels& qrels,
    SearchTopicId topic, int min_grade) {
  std::vector<InteractionEvent> sorted = events;
  SortEvents(&sorted);

  SessionEffortMetrics m;
  if (sorted.empty()) return m;
  const TimeMs start = sorted.front().time;
  m.session_ms = sorted.back().time - start;

  std::set<ShotId> relevant_seen;
  std::set<ShotId> nonrelevant_seen;
  bool found_first = false;
  for (const InteractionEvent& ev : sorted) {
    const bool is_action = ev.type != EventType::kResultDisplayed &&
                           ev.type != EventType::kSessionEnd;
    if (is_action) {
      ++m.total_actions;
      if (!found_first) ++m.actions_to_first_relevant;
    }
    if (ev.type == EventType::kPlayStart) {
      if (qrels.IsRelevant(topic, ev.shot, min_grade)) {
        relevant_seen.insert(ev.shot);
        if (!found_first) {
          found_first = true;
          m.time_to_first_relevant_ms = ev.time - start;
        }
      } else {
        nonrelevant_seen.insert(ev.shot);
      }
    }
  }
  m.relevant_played = relevant_seen.size();
  m.nonrelevant_played = nonrelevant_seen.size();
  if (!found_first) {
    m.actions_to_first_relevant = m.total_actions;
  }
  return m;
}

SessionEffortMetrics MeanSessionEffort(
    const std::vector<SessionEffortMetrics>& sessions) {
  SessionEffortMetrics mean;
  if (sessions.empty()) return mean;
  size_t with_first = 0;
  TimeMs first_total = 0;
  for (const SessionEffortMetrics& s : sessions) {
    mean.total_actions += s.total_actions;
    mean.actions_to_first_relevant += s.actions_to_first_relevant;
    mean.relevant_played += s.relevant_played;
    mean.nonrelevant_played += s.nonrelevant_played;
    mean.session_ms += s.session_ms;
    if (s.time_to_first_relevant_ms >= 0) {
      ++with_first;
      first_total += s.time_to_first_relevant_ms;
    }
  }
  const size_t n = sessions.size();
  mean.total_actions /= n;
  mean.actions_to_first_relevant /= n;
  mean.relevant_played /= n;
  mean.nonrelevant_played /= n;
  mean.session_ms /= static_cast<TimeMs>(n);
  mean.time_to_first_relevant_ms =
      with_first > 0 ? first_total / static_cast<TimeMs>(with_first) : -1;
  return mean;
}

}  // namespace ivr
