#ifndef IVR_EVAL_TREC_RUN_H_
#define IVR_EVAL_TREC_RUN_H_

#include <map>
#include <string>

#include "ivr/core/result.h"
#include "ivr/retrieval/result_list.h"
#include "ivr/video/qrels.h"

namespace ivr {

/// Classic 6-column TREC run format:
///   <topic> Q0 shot<id> <rank> <score> <tag>
/// so runs written by the CLI tools can be evaluated by ivr_eval or by
/// external trec_eval-compatible tooling.
std::string RunsToTrecFormat(
    const std::map<SearchTopicId, ResultList>& runs,
    const std::string& tag);

/// Parses the format above; rank columns are ignored (order is recovered
/// from the scores), the tag is returned via `tag_out` when non-null.
Result<std::map<SearchTopicId, ResultList>> RunsFromTrecFormat(
    const std::string& text, std::string* tag_out = nullptr);

}  // namespace ivr

#endif  // IVR_EVAL_TREC_RUN_H_
