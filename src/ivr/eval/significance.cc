#include "ivr/eval/significance.h"

#include <algorithm>
#include <cmath>

#include "ivr/core/rng.h"

namespace ivr {
namespace {

// Regularised incomplete beta function I_x(a, b) via the continued
// fraction expansion (Numerical Recipes' betacf/betai structure).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 200;
  constexpr double kEpsilon = 3e-12;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_beta = std::lgamma(a + b) - std::lgamma(a) -
                         std::lgamma(b) + a * std::log(x) +
                         b * std::log(1.0 - x);
  const double front = std::exp(ln_beta);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

Status CheckPaired(const std::vector<double>& a,
                   const std::vector<double>& b, size_t min_size) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("paired vectors must have equal size");
  }
  if (a.size() < min_size) {
    return Status::InvalidArgument("too few pairs for this test");
  }
  return Status::OK();
}

}  // namespace

double StudentTTwoSidedPValue(double t, double df) {
  if (df <= 0.0) return 1.0;
  const double x = df / (df + t * t);
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

double NormalTwoSidedPValue(double z) {
  return std::erfc(std::fabs(z) / std::sqrt(2.0));
}

Result<PairedTestResult> PairedTTest(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  IVR_RETURN_IF_ERROR(CheckPaired(a, b, 2));
  const size_t n = a.size();
  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean += a[i] - b[i];
  }
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i] - mean;
    var += d * d;
  }
  var /= static_cast<double>(n - 1);

  PairedTestResult result;
  result.n = n;
  if (var <= 0.0) {
    result.statistic = mean == 0.0 ? 0.0
                                   : std::numeric_limits<double>::infinity();
    result.p_value = mean == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.statistic =
      mean / std::sqrt(var / static_cast<double>(n));
  result.p_value = StudentTTwoSidedPValue(result.statistic,
                                          static_cast<double>(n - 1));
  return result;
}

Result<PairedTestResult> WilcoxonSignedRank(const std::vector<double>& a,
                                            const std::vector<double>& b) {
  IVR_RETURN_IF_ERROR(CheckPaired(a, b, 1));
  // Non-zero differences with their absolute values.
  std::vector<std::pair<double, double>> diffs;  // (|d|, sign)
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d != 0.0) diffs.emplace_back(std::fabs(d), d > 0 ? 1.0 : -1.0);
  }
  PairedTestResult result;
  result.n = diffs.size();
  if (diffs.empty()) {
    result.p_value = 1.0;
    return result;
  }
  std::sort(diffs.begin(), diffs.end());

  // Average ranks over ties; accumulate tie correction.
  const size_t n = diffs.size();
  std::vector<double> ranks(n);
  double tie_correction = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && diffs[j + 1].first == diffs[i].first) ++j;
    const double avg_rank = (static_cast<double>(i) +
                             static_cast<double>(j)) / 2.0 + 1.0;
    const double t = static_cast<double>(j - i + 1);
    tie_correction += t * t * t - t;
    for (size_t k = i; k <= j; ++k) ranks[k] = avg_rank;
    i = j + 1;
  }

  double w_plus = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (diffs[k].second > 0) w_plus += ranks[k];
  }
  const double nd = static_cast<double>(n);
  const double mean = nd * (nd + 1.0) / 4.0;
  double var = nd * (nd + 1.0) * (2.0 * nd + 1.0) / 24.0 -
               tie_correction / 48.0;
  if (var <= 0.0) {
    result.statistic = 0.0;
    result.p_value = 1.0;
    return result;
  }
  // Continuity correction.
  double z = w_plus - mean;
  if (z > 0.5) {
    z -= 0.5;
  } else if (z < -0.5) {
    z += 0.5;
  } else {
    z = 0.0;
  }
  result.statistic = z / std::sqrt(var);
  result.p_value = NormalTwoSidedPValue(result.statistic);
  return result;
}

Result<PairedTestResult> RandomizationTest(const std::vector<double>& a,
                                           const std::vector<double>& b,
                                           size_t rounds, uint64_t seed) {
  IVR_RETURN_IF_ERROR(CheckPaired(a, b, 1));
  const size_t n = a.size();
  std::vector<double> diffs(n);
  double observed = 0.0;
  for (size_t i = 0; i < n; ++i) {
    diffs[i] = a[i] - b[i];
    observed += diffs[i];
  }
  observed = std::fabs(observed / static_cast<double>(n));

  Rng rng(seed);
  size_t at_least_as_extreme = 1;  // the observed assignment itself
  for (size_t round = 0; round < rounds; ++round) {
    double mean = 0.0;
    for (double d : diffs) {
      mean += rng.Bernoulli(0.5) ? d : -d;
    }
    if (std::fabs(mean / static_cast<double>(n)) >= observed - 1e-15) {
      ++at_least_as_extreme;
    }
  }
  PairedTestResult result;
  result.n = n;
  result.statistic = observed;
  result.p_value = static_cast<double>(at_least_as_extreme) /
                   static_cast<double>(rounds + 1);
  return result;
}

Result<double> KendallTau(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("vectors must have equal size");
  }
  const size_t n = a.size();
  if (n < 2) return 0.0;
  long long concordant = 0;
  long long discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      const double prod = da * db;
      if (prod > 0.0) {
        ++concordant;
      } else if (prod < 0.0) {
        ++discordant;
      }
    }
  }
  const double pairs = static_cast<double>(n) *
                       static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

}  // namespace ivr
