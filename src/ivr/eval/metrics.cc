#include "ivr/eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace ivr {

double AveragePrecision(const ResultList& run, const Qrels& qrels,
                        SearchTopicId topic, int min_grade) {
  const size_t total_relevant = qrels.NumRelevant(topic, min_grade);
  if (total_relevant == 0) return 0.0;
  double sum = 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < run.size(); ++i) {
    if (qrels.IsRelevant(topic, run.at(i).shot, min_grade)) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(total_relevant);
}

double PrecisionAtK(const ResultList& run, const Qrels& qrels,
                    SearchTopicId topic, size_t k, int min_grade) {
  if (k == 0) return 0.0;
  size_t hits = 0;
  const size_t depth = std::min(k, run.size());
  for (size_t i = 0; i < depth; ++i) {
    if (qrels.IsRelevant(topic, run.at(i).shot, min_grade)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double RecallAtK(const ResultList& run, const Qrels& qrels,
                 SearchTopicId topic, size_t k, int min_grade) {
  const size_t total_relevant = qrels.NumRelevant(topic, min_grade);
  if (total_relevant == 0) return 0.0;
  size_t hits = 0;
  const size_t depth = std::min(k, run.size());
  for (size_t i = 0; i < depth; ++i) {
    if (qrels.IsRelevant(topic, run.at(i).shot, min_grade)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(total_relevant);
}

double NdcgAtK(const ResultList& run, const Qrels& qrels,
               SearchTopicId topic, size_t k) {
  if (k == 0) return 0.0;
  double dcg = 0.0;
  const size_t depth = std::min(k, run.size());
  for (size_t i = 0; i < depth; ++i) {
    const int grade = qrels.Grade(topic, run.at(i).shot);
    if (grade > 0) {
      dcg += static_cast<double>(grade) /
             std::log2(static_cast<double>(i) + 2.0);
    }
  }
  // Ideal DCG: grades sorted descending.
  std::vector<int> grades;
  for (ShotId shot : qrels.RelevantShots(topic, 1)) {
    grades.push_back(qrels.Grade(topic, shot));
  }
  std::sort(grades.rbegin(), grades.rend());
  double idcg = 0.0;
  for (size_t i = 0; i < std::min(k, grades.size()); ++i) {
    idcg += static_cast<double>(grades[i]) /
            std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

double Bpref(const ResultList& run, const Qrels& qrels, SearchTopicId topic,
             int min_grade) {
  // trec_eval bpref: only JUDGED nonrelevant shots count against a
  // relevant shot ranked below them — unjudged shots are invisible (that
  // is the whole point of the measure: robustness to incomplete pools).
  // Penalty denominator is min(R, N), N = judged nonrelevant.
  const size_t r = qrels.NumRelevant(topic, min_grade);
  if (r == 0) return 0.0;
  const size_t n = qrels.NumJudged(topic) - r;
  size_t nonrelevant_seen = 0;
  double sum = 0.0;
  for (size_t i = 0; i < run.size(); ++i) {
    const ShotId shot = run.at(i).shot;
    if (qrels.IsRelevant(topic, shot, min_grade)) {
      sum += n == 0 ? 1.0
                    : 1.0 - static_cast<double>(std::min(nonrelevant_seen,
                                                         r)) /
                                static_cast<double>(std::min(r, n));
    } else if (qrels.IsJudged(topic, shot)) {
      ++nonrelevant_seen;
    }
  }
  return sum / static_cast<double>(r);
}

double ReciprocalRank(const ResultList& run, const Qrels& qrels,
                      SearchTopicId topic, int min_grade) {
  for (size_t i = 0; i < run.size(); ++i) {
    if (qrels.IsRelevant(topic, run.at(i).shot, min_grade)) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

TopicMetrics ComputeTopicMetrics(const ResultList& run, const Qrels& qrels,
                                 SearchTopicId topic, int min_grade) {
  TopicMetrics m;
  m.topic = topic;
  m.num_relevant = qrels.NumRelevant(topic, min_grade);
  m.num_retrieved = run.size();
  m.ap = AveragePrecision(run, qrels, topic, min_grade);
  m.p5 = PrecisionAtK(run, qrels, topic, 5, min_grade);
  m.p10 = PrecisionAtK(run, qrels, topic, 10, min_grade);
  m.p20 = PrecisionAtK(run, qrels, topic, 20, min_grade);
  m.recall100 = RecallAtK(run, qrels, topic, 100, min_grade);
  m.ndcg10 = NdcgAtK(run, qrels, topic, 10);
  m.bpref = Bpref(run, qrels, topic, min_grade);
  m.rr = ReciprocalRank(run, qrels, topic, min_grade);
  return m;
}

TopicMetrics MeanMetrics(const std::vector<TopicMetrics>& per_topic) {
  TopicMetrics mean;
  if (per_topic.empty()) return mean;
  for (const TopicMetrics& m : per_topic) {
    mean.num_relevant += m.num_relevant;
    mean.num_retrieved += m.num_retrieved;
    mean.ap += m.ap;
    mean.p5 += m.p5;
    mean.p10 += m.p10;
    mean.p20 += m.p20;
    mean.recall100 += m.recall100;
    mean.ndcg10 += m.ndcg10;
    mean.bpref += m.bpref;
    mean.rr += m.rr;
  }
  const double n = static_cast<double>(per_topic.size());
  mean.ap /= n;
  mean.p5 /= n;
  mean.p10 /= n;
  mean.p20 /= n;
  mean.recall100 /= n;
  mean.ndcg10 /= n;
  mean.bpref /= n;
  mean.rr /= n;
  return mean;
}

}  // namespace ivr
