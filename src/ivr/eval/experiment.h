#ifndef IVR_EVAL_EXPERIMENT_H_
#define IVR_EVAL_EXPERIMENT_H_

#include <map>
#include <string>
#include <vector>

#include "ivr/eval/metrics.h"
#include "ivr/retrieval/result_list.h"
#include "ivr/video/qrels.h"
#include "ivr/video/topics.h"

namespace ivr {

/// One system's runs over a topic set.
struct SystemRun {
  std::string system;
  std::map<SearchTopicId, ResultList> runs;
};

/// Per-system evaluation of a SystemRun against qrels: per-topic metrics
/// plus their mean. Topics in `topics` without a run count as empty runs.
struct SystemEvaluation {
  std::string system;
  std::vector<TopicMetrics> per_topic;
  TopicMetrics mean;

  /// Per-topic AP vector aligned with the topic order used at evaluation
  /// time — the input to paired significance tests.
  std::vector<double> ApVector() const;
};

/// Evaluates a run against qrels. Per-topic metrics fan out across up to
/// `threads` workers (1 = inline; 0 = hardware concurrency); the result —
/// including per_topic order — is identical for every thread count.
SystemEvaluation EvaluateSystem(const SystemRun& run, const Qrels& qrels,
                                const std::vector<SearchTopicId>& topics,
                                int min_grade = 1, size_t threads = 1);

/// Minimal fixed-width text table for benchmark/report output; renders
/// with a header rule, right-aligning numeric-looking cells.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with 4 decimals (the usual trec_eval precision).
std::string FormatMetric(double value);

/// "+31.2%" style relative-change formatting against a baseline value;
/// "n/a" when the baseline is 0.
std::string FormatRelativeChange(double value, double baseline);

}  // namespace ivr

#endif  // IVR_EVAL_EXPERIMENT_H_
