#include "ivr/eval/trec_run.h"

#include "ivr/core/string_util.h"

namespace ivr {

std::string RunsToTrecFormat(
    const std::map<SearchTopicId, ResultList>& runs,
    const std::string& tag) {
  std::string out;
  for (const auto& [topic, list] : runs) {
    for (size_t rank = 0; rank < list.size(); ++rank) {
      out += StrFormat("%u Q0 shot%u %zu %.17g %s\n", topic,
                       list.at(rank).shot, rank + 1, list.at(rank).score,
                       tag.c_str());
    }
  }
  return out;
}

Result<std::map<SearchTopicId, ResultList>> RunsFromTrecFormat(
    const std::string& text, std::string* tag_out) {
  std::map<SearchTopicId, ResultList> runs;
  for (const std::string& line : Split(text, '\n')) {
    if (Trim(line).empty()) continue;
    const std::vector<std::string> cols = SplitWhitespace(line);
    if (cols.size() != 6) {
      return Status::Corruption("run line must have 6 columns: " + line);
    }
    IVR_ASSIGN_OR_RETURN(int64_t topic, ParseInt(cols[0]));
    if (!StartsWith(cols[2], "shot")) {
      return Status::Corruption("run doc id must look like shotN: " +
                                cols[2]);
    }
    IVR_ASSIGN_OR_RETURN(int64_t shot,
                         ParseInt(std::string_view(cols[2]).substr(4)));
    IVR_ASSIGN_OR_RETURN(double score, ParseDouble(cols[4]));
    if (topic < 0 || shot < 0) {
      return Status::Corruption("negative id in run line: " + line);
    }
    runs[static_cast<SearchTopicId>(topic)].Add(
        static_cast<ShotId>(shot), score);
    if (tag_out != nullptr) *tag_out = cols[5];
  }
  return runs;
}

}  // namespace ivr
