#include "ivr/workload/spec.h"

#include <cmath>
#include <set>

#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"
#include "ivr/net/json.h"

namespace ivr {
namespace workload {
namespace {

using net::JsonValue;

Status ErrAt(const std::string& path, const std::string& message) {
  return Status::InvalidArgument(
      StrFormat("%s: %s", path.c_str(), message.c_str()));
}

/// Rejects members outside `known`, naming the first offender by path.
/// This is what turns a typo'd "ratee" into a diagnostic instead of a
/// silently ignored knob.
Status CheckKeys(const JsonValue& obj, const std::string& path,
                 std::initializer_list<std::string_view> known) {
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    bool ok = false;
    for (const std::string_view candidate : known) {
      if (key == candidate) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      std::string allowed;
      for (const std::string_view candidate : known) {
        if (!allowed.empty()) allowed += ", ";
        allowed += candidate;
      }
      return ErrAt(path + "." + key,
                   StrFormat("unknown key (known keys: %s)",
                             allowed.c_str()));
    }
  }
  return Status::OK();
}

Result<const JsonValue*> ObjectField(const JsonValue& obj,
                                     const std::string& path,
                                     const char* key) {
  const JsonValue* node = obj.Find(key);
  if (node == nullptr) return static_cast<const JsonValue*>(nullptr);
  if (!node->is_object()) {
    return ErrAt(path + "." + key, "must be an object");
  }
  return node;
}

Result<std::string> StringField(const JsonValue& obj,
                                const std::string& path, const char* key,
                                const std::string& fallback) {
  const JsonValue* node = obj.Find(key);
  if (node == nullptr) return fallback;
  if (!node->is_string()) {
    return ErrAt(path + "." + key, "must be a string");
  }
  return node->string_value();
}

Result<double> NumberField(const JsonValue& obj, const std::string& path,
                           const char* key, double fallback) {
  const JsonValue* node = obj.Find(key);
  if (node == nullptr) return fallback;
  if (!node->is_number()) {
    return ErrAt(path + "." + key, "must be a number");
  }
  const double value = node->number_value();
  if (!std::isfinite(value)) {
    return ErrAt(path + "." + key, "must be finite");
  }
  return value;
}

Result<bool> BoolField(const JsonValue& obj, const std::string& path,
                       const char* key, bool fallback) {
  const JsonValue* node = obj.Find(key);
  if (node == nullptr) return fallback;
  if (!node->is_bool()) {
    return ErrAt(path + "." + key, "must be true or false");
  }
  return node->bool_value();
}

Result<int64_t> IntField(const JsonValue& obj, const std::string& path,
                         const char* key, int64_t fallback) {
  const JsonValue* node = obj.Find(key);
  if (node == nullptr) return fallback;
  if (!node->is_number()) {
    return ErrAt(path + "." + key, "must be an integer");
  }
  const double value = node->number_value();
  if (!std::isfinite(value) || value != std::floor(value) ||
      value < -9.0e15 || value > 9.0e15) {
    return ErrAt(path + "." + key, "must be an integer");
  }
  return static_cast<int64_t>(value);
}

/// IntField constrained to [lo, hi], the workhorse for counts.
Result<int64_t> BoundedIntField(const JsonValue& obj,
                                const std::string& path, const char* key,
                                int64_t fallback, int64_t lo, int64_t hi) {
  IVR_ASSIGN_OR_RETURN(const int64_t value,
                       IntField(obj, path, key, fallback));
  if (value < lo || value > hi) {
    return ErrAt(path + "." + key,
                 StrFormat("must be in [%lld, %lld], got %lld",
                           static_cast<long long>(lo),
                           static_cast<long long>(hi),
                           static_cast<long long>(value)));
  }
  return value;
}

Status Forbid(const JsonValue& obj, const std::string& path,
              const char* key, const char* why) {
  if (obj.Find(key) != nullptr) {
    return ErrAt(path + "." + key, why);
  }
  return Status::OK();
}

Result<std::vector<SessionMixEntry>> ParseSessionMix(
    const JsonValue& node, const std::string& path) {
  if (!node.is_array()) return ErrAt(path, "must be an array");
  if (node.items().empty()) {
    return ErrAt(path, "must name at least one stereotype user");
  }
  std::vector<SessionMixEntry> mix;
  for (size_t i = 0; i < node.items().size(); ++i) {
    const std::string entry_path = StrFormat("%s[%zu]", path.c_str(), i);
    const JsonValue& entry = node.items()[i];
    if (!entry.is_object()) return ErrAt(entry_path, "must be an object");
    IVR_RETURN_IF_ERROR(CheckKeys(entry, entry_path, {"user", "weight"}));
    SessionMixEntry parsed;
    IVR_ASSIGN_OR_RETURN(parsed.user,
                         StringField(entry, entry_path, "user", ""));
    if (!UserModelByName(parsed.user).ok()) {
      return ErrAt(entry_path + ".user",
                   StrFormat("unknown stereotype \"%s\" (known: novice, "
                             "expert, couch)",
                             parsed.user.c_str()));
    }
    IVR_ASSIGN_OR_RETURN(parsed.weight,
                         NumberField(entry, entry_path, "weight", 1.0));
    if (parsed.weight <= 0.0) {
      return ErrAt(entry_path + ".weight", "must be > 0");
    }
    mix.push_back(std::move(parsed));
  }
  return mix;
}

Result<std::vector<QueryMixEntry>> ParseQueryMix(const JsonValue& node,
                                                 const std::string& path) {
  if (!node.is_array()) return ErrAt(path, "must be an array");
  if (node.items().empty()) {
    return ErrAt(path, "must name at least one query");
  }
  std::vector<QueryMixEntry> mix;
  for (size_t i = 0; i < node.items().size(); ++i) {
    const std::string entry_path = StrFormat("%s[%zu]", path.c_str(), i);
    const JsonValue& entry = node.items()[i];
    if (!entry.is_object()) return ErrAt(entry_path, "must be an object");
    IVR_RETURN_IF_ERROR(CheckKeys(entry, entry_path, {"text", "weight"}));
    QueryMixEntry parsed;
    IVR_ASSIGN_OR_RETURN(parsed.text,
                         StringField(entry, entry_path, "text", ""));
    if (parsed.text.empty()) {
      return ErrAt(entry_path + ".text", "must be a non-empty string");
    }
    IVR_ASSIGN_OR_RETURN(parsed.weight,
                         NumberField(entry, entry_path, "weight", 1.0));
    if (parsed.weight <= 0.0) {
      return ErrAt(entry_path + ".weight", "must be > 0");
    }
    mix.push_back(std::move(parsed));
  }
  return mix;
}

Result<PhaseSpec> ParsePhase(const JsonValue& node,
                             const std::string& path) {
  if (!node.is_object()) return ErrAt(path, "must be an object");
  IVR_RETURN_IF_ERROR(CheckKeys(
      node, path,
      {"name", "mode", "actors", "sessions", "session_mix", "env",
       "think_ms", "duration_ms", "rate", "k", "query_mix", "fault_spec",
       "fault_seed", "writes"}));

  PhaseSpec phase;
  IVR_ASSIGN_OR_RETURN(phase.name, StringField(node, path, "name", ""));
  if (phase.name.empty()) {
    return ErrAt(path + ".name", "must be a non-empty string");
  }

  IVR_ASSIGN_OR_RETURN(const std::string mode,
                       StringField(node, path, "mode", "closed"));
  if (mode == "closed") {
    phase.mode = PhaseMode::kClosed;
  } else if (mode == "open") {
    phase.mode = PhaseMode::kOpen;
  } else {
    return ErrAt(path + ".mode",
                 StrFormat("must be \"closed\" or \"open\", got \"%s\"",
                           mode.c_str()));
  }

  IVR_ASSIGN_OR_RETURN(const int64_t actors,
                       BoundedIntField(node, path, "actors", 1, 1, 256));
  phase.actors = static_cast<size_t>(actors);

  if (phase.mode == PhaseMode::kClosed) {
    IVR_RETURN_IF_ERROR(Forbid(node, path, "duration_ms",
                               "only open-loop phases take a duration "
                               "(closed phases end when their sessions "
                               "do)"));
    IVR_RETURN_IF_ERROR(
        Forbid(node, path, "rate", "only open-loop phases take a rate"));
    IVR_RETURN_IF_ERROR(
        Forbid(node, path, "k", "only open-loop phases take k"));
    IVR_RETURN_IF_ERROR(Forbid(node, path, "query_mix",
                               "only open-loop phases take a query mix "
                               "(closed phases draw queries from the "
                               "simulated users)"));
    if (node.Find("sessions") == nullptr) {
      return ErrAt(path + ".sessions",
                   "required for closed-loop phases");
    }
    IVR_ASSIGN_OR_RETURN(
        const int64_t sessions,
        BoundedIntField(node, path, "sessions", 0, 1, 1000000));
    phase.sessions = static_cast<size_t>(sessions);

    const JsonValue* mix = node.Find("session_mix");
    if (mix != nullptr) {
      IVR_ASSIGN_OR_RETURN(phase.session_mix,
                           ParseSessionMix(*mix, path + ".session_mix"));
    } else {
      phase.session_mix = {SessionMixEntry{}};
    }

    IVR_ASSIGN_OR_RETURN(const std::string env,
                         StringField(node, path, "env", "desktop"));
    if (env == "desktop") {
      phase.env = Environment::kDesktop;
    } else if (env == "tv") {
      phase.env = Environment::kTv;
    } else {
      return ErrAt(path + ".env",
                   StrFormat("must be \"desktop\" or \"tv\", got \"%s\"",
                             env.c_str()));
    }

    IVR_ASSIGN_OR_RETURN(
        const int64_t think,
        BoundedIntField(node, path, "think_ms", 0, 0, 60000));
    phase.think_ms = static_cast<TimeMs>(think);
  } else {
    IVR_RETURN_IF_ERROR(Forbid(node, path, "sessions",
                               "only closed-loop phases take a session "
                               "count (open phases are sized by duration "
                               "and rate)"));
    IVR_RETURN_IF_ERROR(Forbid(node, path, "session_mix",
                               "only closed-loop phases take a session "
                               "mix"));
    IVR_RETURN_IF_ERROR(Forbid(node, path, "env",
                               "only closed-loop phases take an "
                               "environment"));
    IVR_RETURN_IF_ERROR(Forbid(node, path, "think_ms",
                               "only closed-loop phases take think time "
                               "(open-loop pacing comes from the arrival "
                               "schedule)"));
    if (node.Find("duration_ms") == nullptr) {
      return ErrAt(path + ".duration_ms",
                   "required for open-loop phases");
    }
    IVR_ASSIGN_OR_RETURN(
        const int64_t duration,
        BoundedIntField(node, path, "duration_ms", 0, 1,
                        24 * kMillisPerHour));
    phase.duration_ms = static_cast<TimeMs>(duration);

    IVR_ASSIGN_OR_RETURN(phase.rate,
                         NumberField(node, path, "rate", 0.0));
    if (node.Find("rate") == nullptr) {
      return ErrAt(path + ".rate", "required for open-loop phases");
    }
    if (phase.rate <= 0.0) {
      return ErrAt(path + ".rate", "must be > 0");
    }

    IVR_ASSIGN_OR_RETURN(const int64_t k,
                         BoundedIntField(node, path, "k", 10, 1, 10000));
    phase.k = static_cast<size_t>(k);

    const JsonValue* mix = node.Find("query_mix");
    if (mix != nullptr) {
      IVR_ASSIGN_OR_RETURN(phase.query_mix,
                           ParseQueryMix(*mix, path + ".query_mix"));
    }
  }

  IVR_ASSIGN_OR_RETURN(phase.fault_spec,
                       StringField(node, path, "fault_spec", ""));
  if (node.Find("fault_spec") != nullptr && phase.fault_spec.empty()) {
    return ErrAt(path + ".fault_spec",
                 "must be a non-empty \"site:prob[,...]\" spec (omit the "
                 "key for a fault-free phase)");
  }
  IVR_ASSIGN_OR_RETURN(
      const int64_t fault_seed,
      BoundedIntField(node, path, "fault_seed", 1, 0,
                      static_cast<int64_t>(9.0e15)));
  phase.fault_seed = static_cast<uint64_t>(fault_seed);

  const Result<const JsonValue*> writes = ObjectField(node, path, "writes");
  if (!writes.ok()) return writes.status();
  if (*writes != nullptr) {
    const std::string writes_path = path + ".writes";
    IVR_RETURN_IF_ERROR(CheckKeys(**writes, writes_path,
                                  {"rate", "publish_every",
                                   "publish_rate"}));
    WritesSpec spec;
    IVR_ASSIGN_OR_RETURN(spec.rate,
                         NumberField(**writes, writes_path, "rate", 0.0));
    if ((*writes)->Find("rate") == nullptr) {
      return ErrAt(writes_path + ".rate", "required");
    }
    if (spec.rate <= 0.0) {
      return ErrAt(writes_path + ".rate", "must be > 0");
    }
    if ((*writes)->Find("publish_rate") != nullptr) {
      // Time-based publish pacing replaces count-based pacing outright;
      // allowing both would leave which one fires ambiguous.
      IVR_RETURN_IF_ERROR(Forbid(**writes, writes_path, "publish_every",
                                 "mutually exclusive with publish_rate"));
      IVR_ASSIGN_OR_RETURN(
          spec.publish_rate,
          NumberField(**writes, writes_path, "publish_rate", 0.0));
      if (spec.publish_rate <= 0.0) {
        return ErrAt(writes_path + ".publish_rate", "must be > 0");
      }
      spec.publish_every = 0;
    } else if ((*writes)->Find("publish_every") == nullptr) {
      spec.publish_every = 0;  // inherit the workload-level default
    } else {
      IVR_ASSIGN_OR_RETURN(
          const int64_t publish_every,
          BoundedIntField(**writes, writes_path, "publish_every", 1, 1,
                          1000000));
      spec.publish_every = static_cast<size_t>(publish_every);
    }
    phase.writes = spec;
  }

  return phase;
}

std::string JsonString(const std::string& s) { return net::JsonQuote(s); }

std::string Num(double v) { return StrFormat("%.17g", v); }

std::string Int(int64_t v) {
  return StrFormat("%lld", static_cast<long long>(v));
}

std::string UInt(uint64_t v) {
  return StrFormat("%llu", static_cast<unsigned long long>(v));
}

}  // namespace

std::string_view PhaseModeName(PhaseMode mode) {
  return mode == PhaseMode::kClosed ? "closed" : "open";
}

std::string_view TargetKindName(TargetKind kind) {
  return kind == TargetKind::kDirect ? "direct" : "http";
}

Result<UserModel> UserModelByName(std::string_view name) {
  if (name == "novice") return NoviceUser();
  if (name == "expert") return ExpertUser();
  if (name == "couch") return CouchViewerUser();
  return Status::InvalidArgument(
      StrFormat("unknown stereotype user \"%.*s\"",
                static_cast<int>(name.size()), name.data()));
}

bool WorkloadSpec::HasWrites() const {
  for (const PhaseSpec& phase : phases) {
    if (phase.writes.has_value()) return true;
  }
  return false;
}

bool WorkloadSpec::HasFaultPhases() const {
  for (const PhaseSpec& phase : phases) {
    if (!phase.fault_spec.empty()) return true;
  }
  return false;
}

Result<WorkloadSpec> ParseWorkload(std::string_view json) {
  IVR_ASSIGN_OR_RETURN(const JsonValue root, JsonValue::Parse(json));
  if (!root.is_object()) {
    return Status::InvalidArgument("$: workload must be a JSON object");
  }
  IVR_RETURN_IF_ERROR(CheckKeys(root, "$",
                                {"name", "seed", "target", "http", "cache",
                                 "service", "ingest", "phases"}));

  WorkloadSpec spec;
  IVR_ASSIGN_OR_RETURN(spec.name, StringField(root, "$", "name", ""));
  if (spec.name.empty()) {
    return ErrAt("$.name", "must be a non-empty string");
  }
  IVR_ASSIGN_OR_RETURN(
      const int64_t seed,
      BoundedIntField(root, "$", "seed", 1, 0,
                      static_cast<int64_t>(9.0e15)));
  spec.seed = static_cast<uint64_t>(seed);

  IVR_ASSIGN_OR_RETURN(const std::string target,
                       StringField(root, "$", "target", "direct"));
  if (target == "direct") {
    spec.target = TargetKind::kDirect;
  } else if (target == "http") {
    spec.target = TargetKind::kHttp;
  } else {
    return ErrAt("$.target",
                 StrFormat("must be \"direct\" or \"http\", got \"%s\"",
                           target.c_str()));
  }

  {
    const Result<const JsonValue*> http = ObjectField(root, "$", "http");
    if (!http.ok()) return http.status();
    if (*http != nullptr) {
      IVR_RETURN_IF_ERROR(CheckKeys(**http, "$.http", {"host", "port"}));
      IVR_ASSIGN_OR_RETURN(
          spec.http.host,
          StringField(**http, "$.http", "host", "127.0.0.1"));
      if (spec.http.host.empty()) {
        return ErrAt("$.http.host", "must be a non-empty string");
      }
      IVR_ASSIGN_OR_RETURN(
          const int64_t port,
          BoundedIntField(**http, "$.http", "port", 0, 0, 65535));
      spec.http.port = static_cast<int>(port);
    }
  }

  {
    const Result<const JsonValue*> cache = ObjectField(root, "$", "cache");
    if (!cache.ok()) return cache.status();
    if (*cache != nullptr) {
      IVR_RETURN_IF_ERROR(CheckKeys(**cache, "$.cache", {"mb", "shards"}));
      IVR_ASSIGN_OR_RETURN(
          const int64_t mb,
          BoundedIntField(**cache, "$.cache", "mb", 0, 0, 1 << 20));
      spec.cache.mb = static_cast<size_t>(mb);
      IVR_ASSIGN_OR_RETURN(
          const int64_t shards,
          BoundedIntField(**cache, "$.cache", "shards", 8, 1, 4096));
      spec.cache.shards = static_cast<size_t>(shards);
    }
  }

  {
    const Result<const JsonValue*> service =
        ObjectField(root, "$", "service");
    if (!service.ok()) return service.status();
    if (*service != nullptr) {
      IVR_RETURN_IF_ERROR(CheckKeys(**service, "$.service",
                                    {"shards", "max_sessions", "ttl_ms"}));
      IVR_ASSIGN_OR_RETURN(
          const int64_t shards,
          BoundedIntField(**service, "$.service", "shards", 8, 1, 4096));
      spec.service.shards = static_cast<size_t>(shards);
      IVR_ASSIGN_OR_RETURN(
          const int64_t max_sessions,
          BoundedIntField(**service, "$.service", "max_sessions", 0, 0,
                          100000000));
      spec.service.max_sessions = static_cast<size_t>(max_sessions);
      IVR_ASSIGN_OR_RETURN(
          const int64_t ttl,
          BoundedIntField(**service, "$.service", "ttl_ms", 0, 0,
                          24 * kMillisPerHour));
      spec.service.ttl_ms = static_cast<TimeMs>(ttl);
    }
  }

  {
    const Result<const JsonValue*> ingest =
        ObjectField(root, "$", "ingest");
    if (!ingest.ok()) return ingest.status();
    if (*ingest != nullptr) {
      IVR_RETURN_IF_ERROR(
          CheckKeys(**ingest, "$.ingest",
                    {"stream_seed", "stream_videos", "stream_topics",
                     "publish_every", "merge_after", "background_merge"}));
      IngestSpec parsed;
      IVR_ASSIGN_OR_RETURN(
          const int64_t stream_seed,
          BoundedIntField(**ingest, "$.ingest", "stream_seed", 7, 0,
                          static_cast<int64_t>(9.0e15)));
      parsed.stream_seed = static_cast<uint64_t>(stream_seed);
      IVR_ASSIGN_OR_RETURN(
          const int64_t videos,
          BoundedIntField(**ingest, "$.ingest", "stream_videos", 6, 1,
                          100000));
      parsed.stream_videos = static_cast<size_t>(videos);
      IVR_ASSIGN_OR_RETURN(
          const int64_t topics,
          BoundedIntField(**ingest, "$.ingest", "stream_topics", 6, 1,
                          10000));
      parsed.stream_topics = static_cast<size_t>(topics);
      IVR_ASSIGN_OR_RETURN(
          const int64_t publish_every,
          BoundedIntField(**ingest, "$.ingest", "publish_every", 2, 1,
                          1000000));
      parsed.publish_every = static_cast<size_t>(publish_every);
      IVR_ASSIGN_OR_RETURN(
          const int64_t merge_after,
          BoundedIntField(**ingest, "$.ingest", "merge_after", 0, 0,
                          1000000));
      parsed.merge_after = static_cast<size_t>(merge_after);
      IVR_ASSIGN_OR_RETURN(
          parsed.background_merge,
          BoolField(**ingest, "$.ingest", "background_merge", false));
      if (parsed.background_merge && parsed.merge_after == 0) {
        return ErrAt("$.ingest.background_merge",
                     "needs merge_after > 0 (the merge thread is only "
                     "woken by the auto-merge threshold)");
      }
      spec.ingest = parsed;
    }
  }

  const JsonValue* phases = root.Find("phases");
  if (phases == nullptr) {
    return ErrAt("$.phases", "required");
  }
  if (!phases->is_array() || phases->items().empty()) {
    return ErrAt("$.phases", "must be a non-empty array");
  }
  std::set<std::string> names;
  for (size_t i = 0; i < phases->items().size(); ++i) {
    const std::string path = StrFormat("$.phases[%zu]", i);
    IVR_ASSIGN_OR_RETURN(PhaseSpec phase,
                         ParsePhase(phases->items()[i], path));
    if (!names.insert(phase.name).second) {
      return ErrAt(path + ".name",
                   StrFormat("duplicate phase name \"%s\" (bounds files "
                             "key on phase names)",
                             phase.name.c_str()));
    }
    if (phase.writes.has_value()) {
      if (!spec.ingest.has_value()) {
        return ErrAt(path + ".writes",
                     "requires a workload-level \"ingest\" block (the "
                     "writer appends from its stream)");
      }
      if (spec.target != TargetKind::kDirect) {
        return ErrAt(path + ".writes",
                     "requires target \"direct\" (the HTTP v1 API has no "
                     "ingest endpoint; use ivr_httpd --ingest-stream for "
                     "server-side ingestion)");
      }
      if (phase.writes->publish_rate == 0.0 &&
          phase.writes->publish_every == 0) {
        phase.writes->publish_every = spec.ingest->publish_every;
      }
    }
    spec.phases.push_back(std::move(phase));
  }

  if (spec.target == TargetKind::kHttp && spec.ingest.has_value()) {
    return ErrAt("$.ingest",
                 "requires target \"direct\" (see ivr_httpd "
                 "--ingest-stream for server-side ingestion)");
  }

  return spec;
}

Result<WorkloadSpec> LoadWorkloadFile(const std::string& path) {
  IVR_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  Result<WorkloadSpec> spec = ParseWorkload(text);
  if (!spec.ok()) {
    return Status::InvalidArgument(StrFormat(
        "%s: %s", path.c_str(), spec.status().message().c_str()));
  }
  return spec;
}

std::string WorkloadSpec::ToJson() const {
  std::string out = "{\n";
  out += StrFormat("  \"name\": %s,\n", JsonString(name).c_str());
  out += StrFormat("  \"seed\": %s,\n", UInt(seed).c_str());
  out += StrFormat("  \"target\": \"%s\",\n",
                   std::string(TargetKindName(target)).c_str());
  if (target == TargetKind::kHttp) {
    out += StrFormat("  \"http\": {\"host\": %s, \"port\": %d},\n",
                     JsonString(http.host).c_str(), http.port);
  }
  out += StrFormat("  \"cache\": {\"mb\": %s, \"shards\": %s},\n",
                   UInt(cache.mb).c_str(), UInt(cache.shards).c_str());
  out += StrFormat(
      "  \"service\": {\"shards\": %s, \"max_sessions\": %s, "
      "\"ttl_ms\": %s},\n",
      UInt(service.shards).c_str(), UInt(service.max_sessions).c_str(),
      Int(service.ttl_ms).c_str());
  if (ingest.has_value()) {
    out += StrFormat(
        "  \"ingest\": {\"stream_seed\": %s, \"stream_videos\": %s, "
        "\"stream_topics\": %s, \"publish_every\": %s, "
        "\"merge_after\": %s, \"background_merge\": %s},\n",
        UInt(ingest->stream_seed).c_str(),
        UInt(ingest->stream_videos).c_str(),
        UInt(ingest->stream_topics).c_str(),
        UInt(ingest->publish_every).c_str(),
        UInt(ingest->merge_after).c_str(),
        ingest->background_merge ? "true" : "false");
  }
  out += "  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseSpec& phase = phases[i];
    out += "    {";
    out += StrFormat("\"name\": %s, \"mode\": \"%s\", \"actors\": %s",
                     JsonString(phase.name).c_str(),
                     std::string(PhaseModeName(phase.mode)).c_str(),
                     UInt(phase.actors).c_str());
    if (phase.mode == PhaseMode::kClosed) {
      out += StrFormat(", \"sessions\": %s", UInt(phase.sessions).c_str());
      out += ", \"session_mix\": [";
      for (size_t m = 0; m < phase.session_mix.size(); ++m) {
        if (m > 0) out += ", ";
        out += StrFormat("{\"user\": %s, \"weight\": %s}",
                         JsonString(phase.session_mix[m].user).c_str(),
                         Num(phase.session_mix[m].weight).c_str());
      }
      out += "]";
      out += StrFormat(", \"env\": \"%s\"",
                       std::string(EnvironmentName(phase.env)).c_str());
      out += StrFormat(", \"think_ms\": %s", Int(phase.think_ms).c_str());
    } else {
      out += StrFormat(", \"duration_ms\": %s, \"rate\": %s, \"k\": %s",
                       Int(phase.duration_ms).c_str(),
                       Num(phase.rate).c_str(), UInt(phase.k).c_str());
      if (!phase.query_mix.empty()) {
        out += ", \"query_mix\": [";
        for (size_t m = 0; m < phase.query_mix.size(); ++m) {
          if (m > 0) out += ", ";
          out += StrFormat("{\"text\": %s, \"weight\": %s}",
                           JsonString(phase.query_mix[m].text).c_str(),
                           Num(phase.query_mix[m].weight).c_str());
        }
        out += "]";
      }
    }
    if (!phase.fault_spec.empty()) {
      out += StrFormat(", \"fault_spec\": %s, \"fault_seed\": %s",
                       JsonString(phase.fault_spec).c_str(),
                       UInt(phase.fault_seed).c_str());
    }
    if (phase.writes.has_value()) {
      if (phase.writes->publish_rate > 0.0) {
        out += StrFormat(
            ", \"writes\": {\"rate\": %s, \"publish_rate\": %s}",
            Num(phase.writes->rate).c_str(),
            Num(phase.writes->publish_rate).c_str());
      } else {
        out += StrFormat(
            ", \"writes\": {\"rate\": %s, \"publish_every\": %s}",
            Num(phase.writes->rate).c_str(),
            UInt(phase.writes->publish_every).c_str());
      }
    }
    out += i + 1 < phases.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace workload
}  // namespace ivr
