#ifndef IVR_WORKLOAD_REPORT_H_
#define IVR_WORKLOAD_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/obs/metrics.h"
#include "ivr/workload/spec.h"

namespace ivr {
namespace workload {

/// Per-phase and whole-run results, serialized as the v1 workload report —
/// the artifact the perf canary compares against committed bounds.

/// Registered-metric activity attributable to one phase: counters as
/// end-minus-start deltas (zero deltas dropped), gauges as end-of-phase
/// levels, histograms as bucket-wise deltas with quantiles recomputed from
/// the delta buckets. The maps follow the --stats-json v1 shapes so phase
/// stats read exactly like a tool's stats file.
obs::RegistrySnapshot DiffSnapshots(const obs::RegistrySnapshot& before,
                                    const obs::RegistrySnapshot& after);

struct PhaseResult {
  std::string name;
  PhaseMode mode = PhaseMode::kClosed;
  size_t actors = 0;

  uint64_t planned_ops = 0;  ///< sessions (closed) or scheduled arrivals
  uint64_t ops = 0;          ///< completed operations
  uint64_t failures = 0;     ///< operations that returned an error
  uint64_t late_arrivals = 0;  ///< open-loop ops fired past their instant

  double duration_s = 0.0;       ///< wall-clock phase length
  double offered_rate = 0.0;     ///< spec rate (open) or 0 (closed)
  double achieved_rate = 0.0;    ///< ops / duration_s

  uint64_t appends = 0;    ///< ingest writer activity inside the phase
  uint64_t publishes = 0;
  uint64_t events = 0;            ///< interaction events (closed sessions)
  uint64_t relevant_found = 0;    ///< truly_relevant_found total (closed)

  /// Whole-operation latency measured by the orchestrator's own steady
  /// clock (never via obs primitives, which IVR_OBS_OFF compiles out — the
  /// canary bounds must hold in every build flavor).
  obs::HistogramSnapshot latency;

  /// Publish() latency per writer publish inside the phase, same
  /// build-flavor-proof clock. Empty for phases without writes — the
  /// canary's publish-latency bound reads this.
  obs::HistogramSnapshot publish_latency;

  /// Per-phase obs delta (empty maps under IVR_OBS_OFF).
  obs::RegistrySnapshot stats;
};

struct WorkloadReport {
  std::string workload;
  uint64_t seed = 0;
  TargetKind target = TargetKind::kDirect;
  std::vector<PhaseResult> phases;

  /// v1 report JSON: schema_version/type header, one object per phase
  /// (latency histogram + stats delta in --stats-json v1 shapes), totals.
  std::string ToJson() const;
};

/// Parses a bounds document and evaluates `report` against it. The format:
///
///   {"phases": {"<phase name>": {"max_failures": 0, "min_ops": 10,
///                                "max_p50_us": 20000, "max_p99_us": 150000,
///                                "min_achieved_rate": 50.0,
///                                "max_publish_p99_us": 250000}}}
///
/// Every bound key is optional; unknown keys and bounds naming phases the
/// report lacks are errors (a renamed phase must not silently stop being
/// checked). Returns the violations — empty means the canary passes.
Result<std::vector<std::string>> CheckBounds(const WorkloadReport& report,
                                             std::string_view bounds_json);

}  // namespace workload
}  // namespace ivr

#endif  // IVR_WORKLOAD_REPORT_H_
