#include "ivr/workload/report.h"

#include <cmath>
#include <map>

#include "ivr/core/string_util.h"
#include "ivr/net/json.h"

namespace ivr {
namespace workload {
namespace {

std::string U64(uint64_t v) {
  return StrFormat("%llu", static_cast<unsigned long long>(v));
}

std::string I64(int64_t v) {
  return StrFormat("%lld", static_cast<long long>(v));
}

std::string Dbl(double v) { return StrFormat("%.17g", v); }

void AppendHistogramJson(std::string& out, const obs::HistogramSnapshot& h) {
  out += StrFormat(
      "{\"count\": %s, \"sum\": %s, \"max\": %s, \"p50\": %s, "
      "\"p90\": %s, \"p99\": %s, \"buckets\": [",
      U64(h.count).c_str(), I64(h.sum).c_str(), I64(h.max).c_str(),
      I64(h.Quantile(0.50)).c_str(), I64(h.Quantile(0.90)).c_str(),
      I64(h.Quantile(0.99)).c_str());
  for (size_t b = 0; b < h.buckets.size(); ++b) {
    if (b > 0) out += ", ";
    out += U64(h.buckets[b]);
  }
  out += "]}";
}

void AppendStatsJson(std::string& out, const obs::RegistrySnapshot& snap,
                     const char* indent) {
  out += "{";
  out += StrFormat("\"counters\": {");
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("\"%s\": %s",
                     JsonEscape(snap.counters[i].first).c_str(),
                     U64(snap.counters[i].second).c_str());
  }
  out += StrFormat("},\n%s\"gauges\": {", indent);
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("\"%s\": %s", JsonEscape(snap.gauges[i].first).c_str(),
                     I64(snap.gauges[i].second).c_str());
  }
  out += StrFormat("},\n%s\"histograms\": {", indent);
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    if (i > 0) out += StrFormat(",\n%s  ", indent);
    out += StrFormat("\"%s\": ",
                     JsonEscape(snap.histograms[i].first).c_str());
    AppendHistogramJson(out, snap.histograms[i].second);
  }
  out += "}}";
}

}  // namespace

obs::RegistrySnapshot DiffSnapshots(const obs::RegistrySnapshot& before,
                                    const obs::RegistrySnapshot& after) {
  obs::RegistrySnapshot delta;

  std::map<std::string, uint64_t> counters_before(before.counters.begin(),
                                                  before.counters.end());
  for (const auto& [name, end] : after.counters) {
    const auto it = counters_before.find(name);
    const uint64_t start = it == counters_before.end() ? 0 : it->second;
    // Counters are monotonic; a smaller end value means a ResetValues()
    // raced the phase, and the full end value is the best attribution.
    const uint64_t d = end >= start ? end - start : end;
    if (d != 0) delta.counters.emplace_back(name, d);
  }

  // Gauges are levels, not totals: the end-of-phase value is the reading.
  delta.gauges = after.gauges;

  std::map<std::string, obs::HistogramSnapshot> hist_before(
      before.histograms.begin(), before.histograms.end());
  for (const auto& [name, end] : after.histograms) {
    const auto it = hist_before.find(name);
    obs::HistogramSnapshot d;
    d.buckets.assign(end.buckets.size(), 0);
    const obs::HistogramSnapshot* start =
        it == hist_before.end() ? nullptr : &it->second;
    d.count = end.count - (start ? start->count : 0);
    d.sum = end.sum - (start ? start->sum : 0);
    for (size_t b = 0; b < end.buckets.size(); ++b) {
      const uint64_t s =
          start && b < start->buckets.size() ? start->buckets[b] : 0;
      d.buckets[b] = end.buckets[b] - s;
    }
    // The true per-phase max is unrecoverable from two cumulative
    // snapshots; the upper bound of the highest touched bucket is the
    // tightest value the data supports.
    for (size_t b = d.buckets.size(); b-- > 0;) {
      if (d.buckets[b] != 0) {
        d.max = obs::LatencyHistogram::BucketUpperBound(b);
        break;
      }
    }
    if (d.count != 0) delta.histograms.emplace_back(name, std::move(d));
  }

  return delta;
}

std::string WorkloadReport::ToJson() const {
  uint64_t total_ops = 0;
  uint64_t total_failures = 0;
  uint64_t total_late = 0;
  uint64_t total_appends = 0;
  uint64_t total_publishes = 0;
  double total_duration = 0.0;
  for (const PhaseResult& phase : phases) {
    total_ops += phase.ops;
    total_failures += phase.failures;
    total_late += phase.late_arrivals;
    total_appends += phase.appends;
    total_publishes += phase.publishes;
    total_duration += phase.duration_s;
  }

  std::string out = "{\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"type\": \"ivr.workload\",\n";
  out += StrFormat("  \"workload\": \"%s\",\n",
                   JsonEscape(workload).c_str());
  out += StrFormat("  \"seed\": %s,\n", U64(seed).c_str());
  out += StrFormat("  \"target\": \"%s\",\n",
                   std::string(TargetKindName(target)).c_str());
  out += "  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& phase = phases[i];
    out += "    {\n";
    out += StrFormat("      \"name\": \"%s\",\n",
                     JsonEscape(phase.name).c_str());
    out += StrFormat("      \"mode\": \"%s\",\n",
                     std::string(PhaseModeName(phase.mode)).c_str());
    out += StrFormat("      \"actors\": %s,\n", U64(phase.actors).c_str());
    out += StrFormat("      \"planned_ops\": %s,\n",
                     U64(phase.planned_ops).c_str());
    out += StrFormat("      \"ops\": %s,\n", U64(phase.ops).c_str());
    out += StrFormat("      \"failures\": %s,\n",
                     U64(phase.failures).c_str());
    out += StrFormat("      \"late_arrivals\": %s,\n",
                     U64(phase.late_arrivals).c_str());
    out += StrFormat("      \"duration_s\": %s,\n",
                     Dbl(phase.duration_s).c_str());
    out += StrFormat("      \"offered_rate\": %s,\n",
                     Dbl(phase.offered_rate).c_str());
    out += StrFormat("      \"achieved_rate\": %s,\n",
                     Dbl(phase.achieved_rate).c_str());
    out += StrFormat("      \"appends\": %s,\n", U64(phase.appends).c_str());
    out += StrFormat("      \"publishes\": %s,\n",
                     U64(phase.publishes).c_str());
    out += StrFormat("      \"events\": %s,\n", U64(phase.events).c_str());
    out += StrFormat("      \"relevant_found\": %s,\n",
                     U64(phase.relevant_found).c_str());
    out += "      \"latency_us\": ";
    AppendHistogramJson(out, phase.latency);
    out += ",\n      \"publish_latency_us\": ";
    AppendHistogramJson(out, phase.publish_latency);
    out += ",\n      \"stats\": ";
    AppendStatsJson(out, phase.stats, "      ");
    out += "\n    }";
    out += i + 1 < phases.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"totals\": {";
  out += StrFormat("\"ops\": %s, \"failures\": %s, \"late_arrivals\": %s, ",
                   U64(total_ops).c_str(), U64(total_failures).c_str(),
                   U64(total_late).c_str());
  out += StrFormat("\"appends\": %s, \"publishes\": %s, ",
                   U64(total_appends).c_str(), U64(total_publishes).c_str());
  out += StrFormat("\"duration_s\": %s}\n", Dbl(total_duration).c_str());
  out += "}\n";
  return out;
}

namespace {

/// One phase's bound evaluation. Every key optional; order chosen so the
/// cheapest-to-understand violation (failures) reports first.
Status CheckPhaseBounds(const PhaseResult& phase,
                        const net::JsonValue& bounds,
                        const std::string& path,
                        std::vector<std::string>& violations) {
  static constexpr std::string_view kKnown[] = {
      "max_failures", "min_ops", "max_p50_us", "max_p99_us",
      "min_achieved_rate", "max_publish_p99_us"};
  for (const auto& [key, value] : bounds.members()) {
    bool known = false;
    for (const std::string_view candidate : kKnown) {
      if (key == candidate) known = true;
    }
    if (!known) {
      return Status::InvalidArgument(StrFormat(
          "%s.%s: unknown bound", path.c_str(), key.c_str()));
    }
    if (!value.is_number() || !std::isfinite(value.number_value())) {
      return Status::InvalidArgument(StrFormat(
          "%s.%s: must be a finite number", path.c_str(), key.c_str()));
    }
  }

  const auto number = [&bounds](const char* key, double fallback) {
    const net::JsonValue* node = bounds.Find(key);
    return node == nullptr ? fallback : node->number_value();
  };

  const double max_failures = number("max_failures", -1.0);
  if (max_failures >= 0.0 &&
      static_cast<double>(phase.failures) > max_failures) {
    violations.push_back(StrFormat(
        "phase \"%s\": failures %llu > max_failures %.0f",
        phase.name.c_str(), static_cast<unsigned long long>(phase.failures),
        max_failures));
  }
  const double min_ops = number("min_ops", -1.0);
  if (min_ops >= 0.0 && static_cast<double>(phase.ops) < min_ops) {
    violations.push_back(StrFormat(
        "phase \"%s\": ops %llu < min_ops %.0f", phase.name.c_str(),
        static_cast<unsigned long long>(phase.ops), min_ops));
  }
  const double max_p50 = number("max_p50_us", -1.0);
  if (max_p50 >= 0.0 &&
      static_cast<double>(phase.latency.Quantile(0.50)) > max_p50) {
    violations.push_back(StrFormat(
        "phase \"%s\": p50 %lldus > max_p50_us %.0f", phase.name.c_str(),
        static_cast<long long>(phase.latency.Quantile(0.50)), max_p50));
  }
  const double max_p99 = number("max_p99_us", -1.0);
  if (max_p99 >= 0.0 &&
      static_cast<double>(phase.latency.Quantile(0.99)) > max_p99) {
    violations.push_back(StrFormat(
        "phase \"%s\": p99 %lldus > max_p99_us %.0f", phase.name.c_str(),
        static_cast<long long>(phase.latency.Quantile(0.99)), max_p99));
  }
  const double max_publish_p99 = number("max_publish_p99_us", -1.0);
  if (max_publish_p99 >= 0.0) {
    if (phase.publish_latency.count == 0) {
      // A publish bound on a phase that never published is the same
      // never-firing-canary trap as a bound naming a missing phase.
      violations.push_back(StrFormat(
          "phase \"%s\": max_publish_p99_us bound but no publishes were "
          "measured",
          phase.name.c_str()));
    } else if (static_cast<double>(phase.publish_latency.Quantile(0.99)) >
               max_publish_p99) {
      violations.push_back(StrFormat(
          "phase \"%s\": publish p99 %lldus > max_publish_p99_us %.0f",
          phase.name.c_str(),
          static_cast<long long>(phase.publish_latency.Quantile(0.99)),
          max_publish_p99));
    }
  }
  const double min_rate = number("min_achieved_rate", -1.0);
  if (min_rate >= 0.0 && phase.achieved_rate < min_rate) {
    violations.push_back(StrFormat(
        "phase \"%s\": achieved_rate %.2f/s < min_achieved_rate %.2f/s",
        phase.name.c_str(), phase.achieved_rate, min_rate));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::string>> CheckBounds(const WorkloadReport& report,
                                             std::string_view bounds_json) {
  IVR_ASSIGN_OR_RETURN(const net::JsonValue root,
                       net::JsonValue::Parse(bounds_json));
  if (!root.is_object()) {
    return Status::InvalidArgument("$: bounds must be a JSON object");
  }
  for (const auto& [key, value] : root.members()) {
    (void)value;
    if (key != "phases") {
      return Status::InvalidArgument(
          StrFormat("$.%s: unknown key (known keys: phases)", key.c_str()));
    }
  }
  const net::JsonValue* phases = root.Find("phases");
  if (phases == nullptr || !phases->is_object()) {
    return Status::InvalidArgument("$.phases: must be an object");
  }

  std::vector<std::string> violations;
  for (const auto& [name, bounds] : phases->members()) {
    const std::string path = StrFormat("$.phases.%s", name.c_str());
    if (!bounds.is_object()) {
      return Status::InvalidArgument(path + ": must be an object");
    }
    const PhaseResult* match = nullptr;
    for (const PhaseResult& phase : report.phases) {
      if (phase.name == name) {
        match = &phase;
        break;
      }
    }
    if (match == nullptr) {
      // A bound nobody evaluates is a canary that can never fire.
      return Status::InvalidArgument(StrFormat(
          "%s: the report has no phase with this name", path.c_str()));
    }
    IVR_RETURN_IF_ERROR(CheckPhaseBounds(*match, bounds, path, violations));
  }
  return violations;
}

}  // namespace workload
}  // namespace ivr
