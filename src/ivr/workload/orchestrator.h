#ifndef IVR_WORKLOAD_ORCHESTRATOR_H_
#define IVR_WORKLOAD_ORCHESTRATOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/video/generator.h"
#include "ivr/workload/report.h"
#include "ivr/workload/spec.h"

namespace ivr {
namespace workload {

/// Runs actor threads through a declarative workload's phase sequence —
/// the genny-style Orchestrator. Every actor (and the ingest writer, and
/// the driver) meets at a barrier before a phase starts and again after it
/// ends, so no actor can enter phase N+1 while any actor is still inside
/// phase N; the driver uses the gap between barriers to re-arm faults,
/// snapshot metrics and build the per-phase report entry.

/// A cyclic barrier: `parties` threads block in Arrive() until all have
/// arrived, then all release together and the barrier re-arms for the
/// next rendezvous.
class PhaseBarrier {
 public:
  explicit PhaseBarrier(size_t parties) : parties_(parties) {}

  void Arrive();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t parties_;
  size_t waiting_ = 0;
  uint64_t generation_ = 0;
};

struct OrchestratorConfig {
  /// Base collection the workload runs over (topics/qrels drive closed
  /// sessions and the default open-loop query pool).
  GeneratedCollection collection;

  /// Segment/manifest directory; required when the spec has an "ingest"
  /// block. The live engine opens (or replays) it.
  std::string ingest_dir;

  /// Sequential reference mode: one actor per phase, no pacing, no think
  /// time — the rerun a --check compares the concurrent run against.
  bool sequential = false;

  /// Injected per-operation slowdown for open-loop ops and writer
  /// publishes, in microseconds. Counted inside the measured latency
  /// window — this is how the canary test proves its bounds (including
  /// the publish-latency bound) can actually trip.
  int64_t canary_delay_us = 0;

  /// Test hook: called by each actor right after it clears a phase's
  /// start barrier (`entering` = true) and right before it arrives at the
  /// end barrier (false). Must be thread-safe.
  std::function<void(size_t phase, size_t actor, bool entering)>
      phase_observer;
};

/// One closed session's reproducibility record.
struct SessionArtifact {
  /// Event stream + per-query rankings, byte-comparable (the
  /// ivr_serve_sim SessionSignature format).
  std::string signature;
  /// One "%u:%.17g %u:%.17g ..." line per query, for the rankings dump.
  std::vector<std::string> rankings;
};

/// Everything a run produces beyond the report: the bit-comparable
/// artifacts determinism checks diff.
struct RunArtifacts {
  WorkloadReport report;
  /// Indexed by global closed-session number (phase order).
  std::vector<SessionArtifact> sessions;
  /// open_rankings[phase_index][arrival] — ranking line of each open-loop
  /// op ("" when the op failed); empty inner vector for closed phases.
  std::vector<std::vector<std::string>> open_rankings;

  /// serve_sim-compatible rankings dump: "s<j> q<i> <shot>:<score> ..."
  /// lines for closed sessions, then "p<phase> o<arrival> ..." lines for
  /// open-loop ops. Equal files <=> equal rankings, bit for bit.
  std::string RankingsText() const;
};

/// Validates that `spec` admits a sequential determinism check: eviction
/// (max_sessions/ttl), ingest writes and fault phases all make the
/// concurrent run legitimately interleaving-dependent.
Status CheckableSpec(const WorkloadSpec& spec);

class Orchestrator {
 public:
  Orchestrator(WorkloadSpec spec, OrchestratorConfig config);

  /// Runs the whole workload: builds the engine stack (direct target) or
  /// probes the server (http target), launches the actor threads, walks
  /// them through the phases, and returns the report + artifacts.
  /// Operation-level errors degrade to counted failures; only setup
  /// errors (bad collection, unreachable server, ingest dir) fail the
  /// run.
  Result<RunArtifacts> Run();

  const WorkloadSpec& spec() const { return spec_; }

 private:
  WorkloadSpec spec_;
  OrchestratorConfig config_;
};

}  // namespace workload
}  // namespace ivr

#endif  // IVR_WORKLOAD_ORCHESTRATOR_H_
