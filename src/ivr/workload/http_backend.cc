#include "ivr/workload/http_backend.h"

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "ivr/core/string_util.h"

namespace ivr {
namespace workload {
namespace {

std::string EventJson(const InteractionEvent& event) {
  std::string out = StrFormat(
      "{\"type\": %s, \"time\": %lld, \"topic\": %u, \"value\": %.17g",
      net::JsonQuote(std::string(EventTypeName(event.type))).c_str(),
      static_cast<long long>(event.time),
      static_cast<unsigned>(event.topic), event.value);
  if (event.shot != kInvalidShotId) {
    out += StrFormat(", \"shot\": %u", static_cast<unsigned>(event.shot));
  }
  if (!event.text.empty()) {
    out += StrFormat(", \"text\": %s", net::JsonQuote(event.text).c_str());
  }
  if (!event.user_id.empty()) {
    out += StrFormat(", \"user_id\": %s",
                     net::JsonQuote(event.user_id).c_str());
  }
  out += "}";
  return out;
}

}  // namespace

HttpSessionBackend::HttpSessionBackend(net::HttpClient* client,
                                       std::string session_id,
                                       std::string user_id,
                                       TimeMs think_time_ms)
    : client_(client),
      session_id_(std::move(session_id)),
      user_id_(std::move(user_id)),
      think_time_ms_(think_time_ms) {}

HttpSessionBackend::~HttpSessionBackend() {
  if (open_) (void)EndSession();
}

void HttpSessionBackend::Pace() const {
  if (think_time_ms_ > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(think_time_ms_));
  }
}

void HttpSessionBackend::Note(const Status& status) {
  if (!status.ok() && first_error_.ok()) first_error_ = status;
}

Result<net::JsonValue> HttpSessionBackend::PostJson(
    const std::string& path, const std::string& body) {
  IVR_ASSIGN_OR_RETURN(const net::HttpClientResponse response,
                       client_->Post(path, body));
  if (response.status < 200 || response.status >= 300) {
    return Status::Internal(StrFormat("POST %s -> %d: %s", path.c_str(),
                                      response.status,
                                      response.body.c_str()));
  }
  return net::JsonValue::Parse(response.body);
}

void HttpSessionBackend::BeginSession() {
  if (open_) {
    Note(EndSession());
  }
  const Result<net::JsonValue> opened = PostJson(
      "/v1/session/open",
      StrFormat("{\"session_id\": %s, \"user_id\": %s}",
                net::JsonQuote(session_id_).c_str(),
                net::JsonQuote(user_id_).c_str()));
  Note(opened.status());
  open_ = opened.ok();
}

ResultList HttpSessionBackend::Search(const Query& query, size_t k) {
  if (!open_) BeginSession();
  Pace();
  if (!query.HasText() && !query.HasConcepts()) {
    // Visual-example-only queries do not exist in HTTP v1.
    ++degraded_queries_;
    return ResultList();
  }
  std::string body = StrFormat("{\"session_id\": %s, \"query\": {",
                               net::JsonQuote(session_id_).c_str());
  bool first = true;
  if (query.HasText()) {
    body += StrFormat("\"text\": %s", net::JsonQuote(query.text).c_str());
    first = false;
  }
  if (query.HasConcepts()) {
    if (!first) body += ", ";
    body += "\"concepts\": [";
    for (size_t i = 0; i < query.concepts.size(); ++i) {
      if (i > 0) body += ", ";
      body += StrFormat("%u", static_cast<unsigned>(query.concepts[i]));
    }
    body += "]";
  }
  body += StrFormat("}, \"k\": %llu}",
                    static_cast<unsigned long long>(k));

  const Result<net::JsonValue> response = PostJson("/v1/search", body);
  if (!response.ok()) {
    Note(response.status());
    return ResultList();
  }
  const net::JsonValue* results = response->Find("results");
  if (results == nullptr || !results->is_array()) {
    Note(Status::Internal("search response lacks a \"results\" array"));
    return ResultList();
  }
  std::vector<RankedShot> ranked;
  ranked.reserve(results->items().size());
  for (const net::JsonValue& item : results->items()) {
    const net::JsonValue* shot = item.Find("shot");
    const net::JsonValue* score = item.Find("score");
    if (shot == nullptr || !shot->is_number() || score == nullptr ||
        !score->is_number()) {
      Note(Status::Internal("malformed search result entry"));
      return ResultList();
    }
    RankedShot entry;
    entry.shot = static_cast<ShotId>(shot->number_value());
    entry.score = score->number_value();
    ranked.push_back(entry);
  }
  return ResultList(std::move(ranked));
}

void HttpSessionBackend::ObserveEvent(const InteractionEvent& event) {
  if (!open_) BeginSession();
  Pace();
  const Result<net::JsonValue> posted = PostJson(
      "/v1/feedback",
      StrFormat("{\"session_id\": %s, \"event\": %s}",
                net::JsonQuote(session_id_).c_str(),
                EventJson(event).c_str()));
  Note(posted.status());
}

Status HttpSessionBackend::EndSession() {
  open_ = false;
  const Result<net::JsonValue> closed = PostJson(
      "/v1/session/close",
      StrFormat("{\"session_id\": %s}",
                net::JsonQuote(session_id_).c_str()));
  return closed.status();
}

}  // namespace workload
}  // namespace ivr
