#ifndef IVR_WORKLOAD_SPEC_H_
#define IVR_WORKLOAD_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ivr/core/clock.h"
#include "ivr/core/result.h"
#include "ivr/sim/simulator.h"

namespace ivr {
namespace workload {

/// The declarative workload format: scenarios as data instead of bespoke
/// bench code (genny's PhaseLoop/Orchestrator design). A workload is a
/// sequence of phases separated by barriers; each phase declares its
/// pacing model, actor count and load shape, so ramp/spike/soak regimes
/// are a phase list, not a new C++ driver.
///
/// JSON layout (every key below; unknown keys are rejected with the
/// offending path):
///
///   {
///     "name": "overload",              // required
///     "seed": 1,
///     "target": "direct",              // "direct" | "http"
///     "http": {"host": "127.0.0.1", "port": 0},
///     "cache": {"mb": 16, "shards": 8},
///     "service": {"shards": 8, "max_sessions": 0, "ttl_ms": 0},
///     "ingest": {"stream_seed": 7, "stream_videos": 6,
///                "stream_topics": 6, "publish_every": 2,
///                "merge_after": 3, "background_merge": true},
///     "phases": [
///       {"name": "warm", "mode": "closed", "actors": 4, "sessions": 16,
///        "session_mix": [{"user": "novice", "weight": 3},
///                        {"user": "expert", "weight": 1}],
///        "env": "desktop", "think_ms": 0},
///       {"name": "surge", "mode": "open", "actors": 8,
///        "duration_ms": 2000, "rate": 500, "k": 10,
///        "query_mix": [{"text": "election results", "weight": 1}],
///        "writes": {"rate": 10, "publish_every": 4},   // or publish_rate
///        "fault_spec": "engine.visual:0.05", "fault_seed": 1}
///     ]
///   }
///
/// Closed-loop phases drive whole simulated-user sessions (SessionSimulator
/// over stereotype UserModels) back to back: offered load follows service
/// speed, the classic throughput shape. Open-loop phases fire one-shot
/// service operations at Poisson arrival instants regardless of
/// completion, the shape that measures latency past saturation.

enum class PhaseMode { kClosed, kOpen };
enum class TargetKind { kDirect, kHttp };

std::string_view PhaseModeName(PhaseMode mode);
std::string_view TargetKindName(TargetKind kind);

/// One weighted stereotype-user entry of a closed phase's session mix.
struct SessionMixEntry {
  std::string user = "novice";  ///< novice | expert | couch
  double weight = 1.0;
};

/// One weighted query of an open phase's query mix.
struct QueryMixEntry {
  std::string text;
  double weight = 1.0;
};

/// Ingest-writer load inside a phase (requires the workload-level
/// "ingest" block; direct target only).
struct WritesSpec {
  double rate = 1.0;         ///< appends per second (interval pacing)
  size_t publish_every = 1;  ///< Publish() after this many appends
  /// Publishes per second on their own clock, decoupled from the append
  /// count (0 = count-based publish_every pacing). Mutually exclusive
  /// with publish_every in the document.
  double publish_rate = 0.0;
};

struct PhaseSpec {
  std::string name;
  PhaseMode mode = PhaseMode::kClosed;
  size_t actors = 1;

  // Closed-loop shape.
  size_t sessions = 0;  ///< total simulated sessions (mode == kClosed)
  std::vector<SessionMixEntry> session_mix;  ///< default: novice only
  Environment env = Environment::kDesktop;
  TimeMs think_ms = 0;

  // Open-loop shape.
  TimeMs duration_ms = 0;  ///< phase length (mode == kOpen)
  double rate = 0.0;       ///< offered arrivals per second (mode == kOpen)
  size_t k = 10;           ///< results per open-loop search
  std::vector<QueryMixEntry> query_mix;  ///< default: topic titles

  // Either mode.
  std::string fault_spec;  ///< re-arms the fault injector for this phase
  uint64_t fault_seed = 1;
  std::optional<WritesSpec> writes;
};

struct HttpTargetSpec {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = must be supplied at run time (--port)
};

struct CacheSpec {
  size_t mb = 0;  ///< 0 = no result cache
  size_t shards = 8;
};

struct ServiceSpec {
  size_t shards = 8;
  size_t max_sessions = 0;
  TimeMs ttl_ms = 0;
};

/// Source of the synthetic stream the ingest writer appends from.
struct IngestSpec {
  uint64_t stream_seed = 7;
  size_t stream_videos = 6;
  size_t stream_topics = 6;
  size_t publish_every = 2;  ///< default for phases whose writes omit it

  // Merge policy, forwarded to IngestOptions: auto-compact once this
  // many segments accumulate (0 = never), on the publisher or on the
  // background merge thread.
  size_t merge_after = 0;
  bool background_merge = false;
};

struct WorkloadSpec {
  std::string name;
  uint64_t seed = 1;
  TargetKind target = TargetKind::kDirect;
  HttpTargetSpec http;
  CacheSpec cache;
  ServiceSpec service;
  std::optional<IngestSpec> ingest;
  std::vector<PhaseSpec> phases;

  /// Canonical JSON form (every field explicit). Parse(ToJson()) yields
  /// an identical spec — the round-trip property the parser test pins.
  std::string ToJson() const;

  bool HasWrites() const;
  bool HasFaultPhases() const;
};

/// Parses and validates one workload document. Every diagnostic names the
/// offending field by path ("$.phases[1].rate: must be > 0"); unknown keys
/// anywhere are errors. Never aborts — all failures are InvalidArgument.
Result<WorkloadSpec> ParseWorkload(std::string_view json);

/// ReadFileToString + ParseWorkload, prefixing diagnostics with the path.
Result<WorkloadSpec> LoadWorkloadFile(const std::string& path);

/// Maps a mix entry's user name to the stereotype model; InvalidArgument
/// for unknown names (the parser already rejects them — this is for
/// callers resolving a validated spec).
Result<UserModel> UserModelByName(std::string_view name);

}  // namespace workload
}  // namespace ivr

#endif  // IVR_WORKLOAD_SPEC_H_
