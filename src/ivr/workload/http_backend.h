#ifndef IVR_WORKLOAD_HTTP_BACKEND_H_
#define IVR_WORKLOAD_HTTP_BACKEND_H_

#include <cstdint>
#include <string>

#include "ivr/core/clock.h"
#include "ivr/core/result.h"
#include "ivr/feedback/backend.h"
#include "ivr/net/http_client.h"
#include "ivr/net/json.h"

namespace ivr {
namespace workload {

/// ManagedSessionBackend's wire twin: binds ONE service session behind the
/// SearchBackend seam, but reaches it through the v1 HTTP JSON API instead
/// of a SessionManager pointer — the seam that lets a workload switch
/// between in-process and network targets by flipping one spec field.
/// Scores survive the wire bit-exactly (%.17g emission, strtod parsing),
/// so direct and HTTP runs of the same closed-loop workload produce
/// identical rankings.
///
/// One backend = one session = one driving thread, over a caller-provided
/// HttpClient (one per actor; HttpClient is not thread-safe).
///
/// HTTP v1 has no query-by-visual-example, so queries carrying only
/// examples degrade to an empty page (counted in degraded_queries()), the
/// same decision ServiceHandler::DecodeQuery documents.
class HttpSessionBackend : public SearchBackend {
 public:
  /// `client` must be connected and outlive the backend.
  HttpSessionBackend(net::HttpClient* client, std::string session_id,
                     std::string user_id, TimeMs think_time_ms = 0);

  /// Ends the bound session if still live.
  ~HttpSessionBackend() override;

  ResultList Search(const Query& query, size_t k) override;
  void ObserveEvent(const InteractionEvent& event) override;
  void BeginSession() override;
  std::string name() const override { return "http"; }

  /// Ends the bound session explicitly.
  Status EndSession();

  const std::string& session_id() const { return session_id_; }
  /// First error any operation hit (operations degrade to empty results /
  /// dropped events, as the SearchBackend interface has no error channel).
  const Status& first_error() const { return first_error_; }
  uint64_t degraded_queries() const { return degraded_queries_; }

 private:
  void Pace() const;
  void Note(const Status& status);
  /// POSTs `body`, mapping transport errors and non-2xx statuses to a
  /// Status and returning the parsed response body otherwise.
  Result<net::JsonValue> PostJson(const std::string& path,
                                  const std::string& body);

  net::HttpClient* client_;
  std::string session_id_;
  std::string user_id_;
  TimeMs think_time_ms_ = 0;
  bool open_ = false;
  uint64_t degraded_queries_ = 0;
  Status first_error_;
};

}  // namespace workload
}  // namespace ivr

#endif  // IVR_WORKLOAD_HTTP_BACKEND_H_
