#include "ivr/workload/orchestrator.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/cache/result_cache.h"
#include "ivr/core/arrivals.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/rng.h"
#include "ivr/core/string_util.h"
#include "ivr/iface/session_log.h"
#include "ivr/ingest/live_engine.h"
#include "ivr/net/http_client.h"
#include "ivr/service/managed_backend.h"
#include "ivr/service/session_manager.h"
#include "ivr/sim/simulator.h"
#include "ivr/workload/http_backend.h"

namespace ivr {
namespace workload {
namespace {

constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ull;

int64_t NowSteadyUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t PhaseSeed(uint64_t workload_seed, size_t phase_index) {
  return workload_seed * 1000003ull + phase_index * 8191ull;
}

/// The ivr_serve_sim SessionSignature, byte for byte: event lines plus
/// every per-query ranking with full score bits.
std::string SessionSignature(const SimulatedSession& session) {
  std::string sig;
  for (const InteractionEvent& event : session.events) {
    sig += SessionLog::EventToLine(event);
    sig += "\n";
  }
  for (const ResultList& results : session.outcome.per_query_results) {
    for (const RankedShot& entry : results.items()) {
      sig += StrFormat("%u:%.17g ", entry.shot, entry.score);
    }
    sig += "\n";
  }
  return sig;
}

std::string RankingLine(const ResultList& results) {
  std::string line;
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) line += " ";
    const RankedShot& entry = results.at(i);
    line += StrFormat("%u:%.17g", entry.shot, entry.score);
  }
  return line;
}

/// Latency recording that works in EVERY build flavor: under IVR_OBS_OFF
/// the registry histograms compile Record() to a no-op, but the canary's
/// latency bounds must still be measurable — so the orchestrator keeps
/// its own mutex-guarded buckets, reusing only the (never compiled out)
/// pure bucketing function.
class LocalHistogram {
 public:
  LocalHistogram() {
    snap_.buckets.assign(obs::LatencyHistogram::kNumBuckets, 0);
  }

  void Record(int64_t value) {
    if (value < 0) value = 0;
    std::lock_guard<std::mutex> lock(mu_);
    ++snap_.count;
    snap_.sum += value;
    if (value > snap_.max) snap_.max = value;
    ++snap_.buckets[obs::LatencyHistogram::BucketIndex(value)];
  }

  obs::HistogramSnapshot Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snap_;
  }

 private:
  mutable std::mutex mu_;
  obs::HistogramSnapshot snap_;
};

/// Per-phase shared counters, reset by the driver between phases.
struct PhaseCounters {
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> late{0};
  std::atomic<uint64_t> events{0};
  std::atomic<uint64_t> relevant{0};
  std::atomic<uint64_t> appends{0};
  std::atomic<uint64_t> publishes{0};
};

/// Resolved per-phase constants actors read after the start barrier.
struct PhasePlan {
  std::vector<UserModel> users;    // closed: resolved session mix
  std::vector<double> weights;     // closed: mix weights
  uint64_t closed_base = 0;        // closed: global index of session 0
  std::vector<int64_t> schedule;   // open: Poisson arrival offsets
  std::vector<double> query_weights;  // open: query mix weights
};

}  // namespace

void PhaseBarrier::Arrive() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t generation = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != generation; });
}

std::string RunArtifacts::RankingsText() const {
  std::string out;
  for (size_t j = 0; j < sessions.size(); ++j) {
    for (size_t q = 0; q < sessions[j].rankings.size(); ++q) {
      out += StrFormat("s%zu q%zu %s\n", j, q,
                       sessions[j].rankings[q].c_str());
    }
  }
  for (size_t p = 0; p < open_rankings.size(); ++p) {
    for (size_t i = 0; i < open_rankings[p].size(); ++i) {
      out += StrFormat("p%zu o%zu %s\n", p, i,
                       open_rankings[p][i].c_str());
    }
  }
  return out;
}

Status CheckableSpec(const WorkloadSpec& spec) {
  if (spec.service.max_sessions > 0 || spec.service.ttl_ms > 0) {
    return Status::InvalidArgument(
        "--check needs an eviction-free manager: with max_sessions/ttl_ms "
        "the choice of eviction victim depends on thread interleaving");
  }
  if (spec.HasWrites()) {
    return Status::InvalidArgument(
        "--check cannot cover ingest writes: which generation an arrival "
        "is served by depends on append/publish interleaving");
  }
  if (spec.HasFaultPhases()) {
    return Status::InvalidArgument(
        "--check cannot cover fault phases: the injector's per-site "
        "decisions depend on which thread reaches a site first");
  }
  return Status::OK();
}

Orchestrator::Orchestrator(WorkloadSpec spec, OrchestratorConfig config)
    : spec_(std::move(spec)), config_(std::move(config)) {}

Result<RunArtifacts> Orchestrator::Run() {
  const size_t num_phases = spec_.phases.size();
  const bool has_writer = spec_.HasWrites();

  if (spec_.ingest.has_value() && config_.ingest_dir.empty()) {
    return Status::InvalidArgument(
        "this workload has an \"ingest\" block: pass an ingest directory");
  }
  if (spec_.target == TargetKind::kHttp && spec_.http.port <= 0) {
    return Status::InvalidArgument(
        "http target needs a port (spec $.http.port or --port)");
  }

  // --- Engine stack (direct target) or server probe (http target). ----
  std::shared_ptr<ResultCache> cache;
  if (spec_.cache.mb > 0) {
    ResultCacheOptions cache_options;
    cache_options.max_bytes = spec_.cache.mb << 20;
    cache_options.num_shards = spec_.cache.shards;
    cache = std::make_shared<ResultCache>(cache_options);
  }

  std::unique_ptr<RetrievalEngine> engine;
  std::unique_ptr<AdaptiveEngine> adaptive;
  std::unique_ptr<LiveEngine> live;
  std::unique_ptr<SessionManager> manager;
  GeneratedCollection stream;
  /// Pins one complete materialized generation for the whole run when
  /// the collection was moved into a LiveEngine (GeneratedCollection is
  /// move-only); the simulator's collection/qrels/topics references
  /// point into it.
  GeneratedCollection exported;

  if (spec_.target == TargetKind::kDirect) {
    SessionManagerOptions manager_options;
    manager_options.num_shards = spec_.service.shards;
    manager_options.max_sessions = spec_.service.max_sessions;
    manager_options.idle_ttl_ms = spec_.service.ttl_ms;
    if (spec_.ingest.has_value()) {
      IngestOptions ingest_options;
      ingest_options.dir = config_.ingest_dir;
      ingest_options.cache = cache;
      ingest_options.merge_after_segments = spec_.ingest->merge_after;
      ingest_options.background_merge = spec_.ingest->background_merge;
      IVR_ASSIGN_OR_RETURN(
          live,
          LiveEngine::Open(std::move(config_.collection), ingest_options));
      exported = live->ExportCollection();
      LiveEngine* live_ptr = live.get();
      manager = std::make_unique<SessionManager>(
          [live_ptr] { return live_ptr->Acquire()->adaptive; },
          manager_options);
      GeneratorOptions stream_options;
      stream_options.seed = spec_.ingest->stream_seed;
      stream_options.num_videos = spec_.ingest->stream_videos;
      stream_options.num_topics = spec_.ingest->stream_topics;
      IVR_ASSIGN_OR_RETURN(stream, GenerateCollection(stream_options));
    } else {
      IVR_ASSIGN_OR_RETURN(engine,
                           RetrievalEngine::Build(config_.collection.collection));
      engine->AttachCache(cache);
      adaptive = std::make_unique<AdaptiveEngine>(*engine, AdaptiveOptions(),
                                                  nullptr);
      manager = std::make_unique<SessionManager>(*adaptive, manager_options);
    }
  } else {
    net::HttpClient probe;
    IVR_RETURN_IF_ERROR(probe.Connect(spec_.http.host, spec_.http.port));
    IVR_ASSIGN_OR_RETURN(const net::HttpClientResponse health,
                         probe.Get("/healthz"));
    if (health.status != 200) {
      return Status::Internal(StrFormat(
          "server %s:%d /healthz -> %d", spec_.http.host.c_str(),
          spec_.http.port, health.status));
    }
  }

  const GeneratedCollection& base =
      live != nullptr ? exported : config_.collection;
  const SessionSimulator simulator(base.collection, base.qrels);
  const std::vector<SearchTopic>& topics = base.topics.topics;
  if (topics.empty()) {
    return Status::InvalidArgument("the collection has no topics");
  }

  // --- Phase plans (resolved once; actors only read them). -------------
  std::vector<PhasePlan> plans(num_phases);
  uint64_t total_closed = 0;
  for (size_t p = 0; p < num_phases; ++p) {
    const PhaseSpec& phase = spec_.phases[p];
    if (phase.mode == PhaseMode::kClosed) {
      plans[p].closed_base = total_closed;
      total_closed += phase.sessions;
      for (const SessionMixEntry& entry : phase.session_mix) {
        IVR_ASSIGN_OR_RETURN(UserModel user, UserModelByName(entry.user));
        plans[p].users.push_back(std::move(user));
        plans[p].weights.push_back(entry.weight);
      }
    } else {
      plans[p].schedule = PoissonScheduleUs(
          phase.rate, phase.duration_ms * 1000,
          PhaseSeed(spec_.seed, p));
      for (const QueryMixEntry& entry : phase.query_mix) {
        plans[p].query_weights.push_back(entry.weight);
      }
    }
  }

  // Vet every fault spec BEFORE the threads launch: a Configure failure
  // mid-run would strand the actors at a barrier.
  const bool manage_faults = spec_.HasFaultPhases();
  if (manage_faults) {
    for (const PhaseSpec& phase : spec_.phases) {
      if (phase.fault_spec.empty()) continue;
      IVR_RETURN_IF_ERROR(FaultInjector::Global().Configure(
          phase.fault_spec, phase.fault_seed));
    }
    FaultInjector::Global().Disable();
  }

  RunArtifacts artifacts;
  artifacts.report.workload = spec_.name;
  artifacts.report.seed = spec_.seed;
  artifacts.report.target = spec_.target;
  artifacts.sessions.resize(total_closed);
  artifacts.open_rankings.resize(num_phases);
  for (size_t p = 0; p < num_phases; ++p) {
    artifacts.open_rankings[p].assign(plans[p].schedule.size(), "");
  }

  // --- Shared run state. ----------------------------------------------
  size_t num_actors = 1;
  if (!config_.sequential) {
    for (const PhaseSpec& phase : spec_.phases) {
      if (phase.actors > num_actors) num_actors = phase.actors;
    }
  }
  PhaseBarrier barrier(num_actors + (has_writer ? 1 : 0) + 1);
  std::unique_ptr<PhaseCounters[]> counters(new PhaseCounters[num_phases]);
  std::vector<LocalHistogram> latency(num_phases);
  std::vector<LocalHistogram> publish_latency(num_phases);
  std::atomic<size_t> next_job{0};
  std::atomic<int64_t> active_readers{0};
  OpenLoopPacer pacer;
  std::mutex artifacts_mu;  // guards artifacts.sessions / open_rankings

  const auto record_session =
      [&](uint64_t global_index, const SimulatedSession& session) {
        SessionArtifact artifact;
        artifact.signature = SessionSignature(session);
        for (const ResultList& results :
             session.outcome.per_query_results) {
          artifact.rankings.push_back(RankingLine(results));
        }
        std::lock_guard<std::mutex> lock(artifacts_mu);
        artifacts.sessions[global_index] = std::move(artifact);
      };

  const auto closed_work = [&](size_t p, net::HttpClient* client) {
    const PhaseSpec& phase = spec_.phases[p];
    const PhasePlan& plan = plans[p];
    const TimeMs think = config_.sequential ? 0 : phase.think_ms;
    for (size_t j = next_job++; j < phase.sessions; j = next_job++) {
      const uint64_t global = plan.closed_base + j;
      // The mix draw depends only on the global session number, never on
      // which actor picked the job — determinism across interleavings.
      Rng mix_rng(spec_.seed ^ (kGolden * (global + 1)));
      const size_t pick = mix_rng.Categorical(plan.weights);
      const UserModel& user = plan.users[pick];

      SessionSimulator::RunConfig run_config;
      run_config.environment = phase.env;
      run_config.seed = spec_.seed + global * 131;
      run_config.session_id =
          StrFormat("serve-s%llu", static_cast<unsigned long long>(global));
      run_config.user_id =
          user.name + std::to_string(static_cast<size_t>(global % 4));

      const int64_t t0 = NowSteadyUs();
      Result<SimulatedSession> session = [&]() -> Result<SimulatedSession> {
        if (spec_.target == TargetKind::kDirect) {
          ManagedSessionBackend backend(manager.get(),
                                        run_config.session_id,
                                        run_config.user_id, think);
          Result<SimulatedSession> run =
              simulator.Run(&backend, topics[global % topics.size()], user,
                            run_config, nullptr);
          (void)backend.EndSession();
          return run;
        }
        HttpSessionBackend backend(client, run_config.session_id,
                                   run_config.user_id, think);
        Result<SimulatedSession> run =
            simulator.Run(&backend, topics[global % topics.size()], user,
                          run_config, nullptr);
        (void)backend.EndSession();
        if (run.ok() && !backend.first_error().ok()) {
          return backend.first_error();
        }
        return run;
      }();
      latency[p].Record(NowSteadyUs() - t0);

      if (session.ok()) {
        counters[p].ops.fetch_add(1, std::memory_order_relaxed);
        counters[p].events.fetch_add(session->events.size(),
                                     std::memory_order_relaxed);
        counters[p].relevant.fetch_add(
            session->outcome.truly_relevant_found,
            std::memory_order_relaxed);
        record_session(global, *session);
      } else {
        counters[p].failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  const auto open_work = [&](size_t p, net::HttpClient* client) {
    const PhaseSpec& phase = spec_.phases[p];
    const PhasePlan& plan = plans[p];
    const uint64_t phase_seed = PhaseSeed(spec_.seed, p);
    for (size_t i = next_job++; i < plan.schedule.size(); i = next_job++) {
      if (!config_.sequential) {
        const int64_t late = pacer.WaitUntil(plan.schedule[i]);
        if (late > 0) {
          counters[p].late.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Query choice is a pure function of (phase seed, arrival index):
      // identical regardless of the arrival-to-actor assignment.
      Query query;
      if (plan.query_weights.empty()) {
        query.text = topics[i % topics.size()].title;
      } else {
        Rng query_rng(phase_seed + kGolden * (i + 1));
        query.text =
            phase.query_mix[query_rng.Categorical(plan.query_weights)].text;
      }
      const std::string session_id = StrFormat(
          "op-p%zu-%llu", p, static_cast<unsigned long long>(i));

      const int64_t t0 = NowSteadyUs();
      if (config_.canary_delay_us > 0) {
        // The injected slowdown lands inside the measured window — the
        // hook the canary test uses to prove its bounds can trip.
        std::this_thread::sleep_for(
            std::chrono::microseconds(config_.canary_delay_us));
      }
      bool ok = true;
      std::string line;
      if (spec_.target == TargetKind::kDirect) {
        const Status begun = manager->BeginSession(session_id, "openloop");
        Result<ResultList> results =
            manager->Search(session_id, query, phase.k);
        (void)manager->EndSession(session_id);
        ok = begun.ok() && results.ok();
        if (ok) line = RankingLine(*results);
      } else {
        HttpSessionBackend backend(client, session_id, "openloop", 0);
        backend.BeginSession();
        const ResultList results = backend.Search(query, phase.k);
        (void)backend.EndSession();
        ok = backend.first_error().ok();
        if (ok) line = RankingLine(results);
      }
      latency[p].Record(NowSteadyUs() - t0);

      if (ok) {
        counters[p].ops.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(artifacts_mu);
        artifacts.open_rankings[p][i] = std::move(line);
      } else {
        counters[p].failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  // First actor-thread setup error (e.g. HTTP connect); checked at end.
  std::mutex setup_error_mu;
  Status setup_error;

  const auto actor_main = [&](size_t actor) {
    net::HttpClient client;
    bool connected = false;
    if (spec_.target == TargetKind::kHttp) {
      const Status status =
          client.Connect(spec_.http.host, spec_.http.port);
      connected = status.ok();
      if (!connected) {
        std::lock_guard<std::mutex> lock(setup_error_mu);
        if (setup_error.ok()) setup_error = status;
      }
    }
    for (size_t p = 0; p < num_phases; ++p) {
      barrier.Arrive();  // phase start
      if (config_.phase_observer) config_.phase_observer(p, actor, true);
      const bool working = actor < spec_.phases[p].actors ||
                           (config_.sequential && actor == 0);
      if (working) {
        if (spec_.target != TargetKind::kHttp || connected) {
          if (spec_.phases[p].mode == PhaseMode::kClosed) {
            closed_work(p, &client);
          } else {
            open_work(p, &client);
          }
        }
        active_readers.fetch_sub(1, std::memory_order_acq_rel);
      }
      if (config_.phase_observer) config_.phase_observer(p, actor, false);
      barrier.Arrive();  // phase end
    }
  };

  const auto writer_main = [&] {
    uint64_t appended_total = 0;
    for (size_t p = 0; p < num_phases; ++p) {
      barrier.Arrive();  // phase start
      const PhaseSpec& phase = spec_.phases[p];
      if (phase.writes.has_value() && live != nullptr) {
        const WritesSpec& writes = *phase.writes;
        const int64_t interval_us =
            static_cast<int64_t>(1e6 / writes.rate);
        // publish_rate > 0: publishes fire on their own deadline clock,
        // decoupled from how many appends landed in between (the shape
        // that measures publish latency at a fixed cadence).
        const int64_t publish_interval_us =
            writes.publish_rate > 0.0
                ? static_cast<int64_t>(1e6 / writes.publish_rate)
                : 0;
        const int64_t origin = NowSteadyUs();
        int64_t deadline = origin + interval_us;
        int64_t publish_deadline = origin + publish_interval_us;
        size_t since_publish = 0;
        const auto timed_publish = [&] {
          const int64_t t0 = NowSteadyUs();
          if (config_.canary_delay_us > 0) {
            // Same canary hook as the read path: the injected slowdown
            // lands inside the measured publish window.
            std::this_thread::sleep_for(
                std::chrono::microseconds(config_.canary_delay_us));
          }
          const bool ok = live->Publish().ok();
          publish_latency[p].Record(NowSteadyUs() - t0);
          if (ok) {
            counters[p].publishes.fetch_add(1, std::memory_order_relaxed);
          } else {
            counters[p].failures.fetch_add(1, std::memory_order_relaxed);
          }
          since_publish = 0;
        };
        while (active_readers.load(std::memory_order_acquire) > 0) {
          const int64_t now = NowSteadyUs();
          if (publish_interval_us > 0 && now >= publish_deadline) {
            if (since_publish > 0) timed_publish();
            publish_deadline += publish_interval_us;
            continue;
          }
          if (now < deadline) {
            int64_t nap = deadline - now;
            if (publish_interval_us > 0 && publish_deadline - now < nap) {
              nap = publish_deadline - now;
            }
            std::this_thread::sleep_for(std::chrono::microseconds(
                nap < 50000 ? (nap > 0 ? nap : 1) : 50000));
            continue;
          }
          const VideoId id = static_cast<VideoId>(
              appended_total % stream.collection.num_videos());
          ++appended_total;
          if (live->AppendVideoFrom(stream.collection, id).ok()) {
            counters[p].appends.fetch_add(1, std::memory_order_relaxed);
            ++since_publish;
          } else {
            counters[p].failures.fetch_add(1, std::memory_order_relaxed);
          }
          if (writes.publish_every > 0 &&
              since_publish >= writes.publish_every) {
            timed_publish();
          }
          deadline += interval_us;
        }
        if (since_publish > 0) timed_publish();
      }
      barrier.Arrive();  // phase end
    }
  };

  // --- Drive the phases. ----------------------------------------------
  std::vector<std::thread> pool;
  pool.reserve(num_actors + (has_writer ? 1 : 0));
  for (size_t a = 0; a < num_actors; ++a) {
    pool.emplace_back(actor_main, a);
  }
  if (has_writer) pool.emplace_back(writer_main);

  for (size_t p = 0; p < num_phases; ++p) {
    const PhaseSpec& phase = spec_.phases[p];
    if (manage_faults) {
      if (!phase.fault_spec.empty()) {
        // Pre-vetted above; a failure here would strand the barriers.
        (void)FaultInjector::Global().Configure(phase.fault_spec,
                                                phase.fault_seed);
      } else {
        FaultInjector::Global().Disable();
      }
    }
    next_job.store(0, std::memory_order_relaxed);
    const size_t working = config_.sequential
                               ? 1
                               : (phase.actors < num_actors ? phase.actors
                                                            : num_actors);
    active_readers.store(static_cast<int64_t>(working),
                         std::memory_order_release);
    if (phase.mode == PhaseMode::kOpen && !config_.sequential) {
      pacer.Start();
    }
    const obs::RegistrySnapshot before =
        obs::Registry::Global().TakeSnapshot();

    barrier.Arrive();  // release the actors into the phase
    const int64_t t0 = NowSteadyUs();
    barrier.Arrive();  // every actor is done
    const double duration_s = (NowSteadyUs() - t0) / 1e6;

    const obs::RegistrySnapshot after =
        obs::Registry::Global().TakeSnapshot();

    PhaseResult result;
    result.name = phase.name;
    result.mode = phase.mode;
    result.actors = config_.sequential ? 1 : phase.actors;
    result.planned_ops = phase.mode == PhaseMode::kClosed
                             ? phase.sessions
                             : plans[p].schedule.size();
    result.ops = counters[p].ops.load();
    result.failures = counters[p].failures.load();
    result.late_arrivals = counters[p].late.load();
    result.duration_s = duration_s;
    result.offered_rate = phase.mode == PhaseMode::kOpen ? phase.rate : 0.0;
    result.achieved_rate =
        duration_s > 0.0 ? static_cast<double>(result.ops) / duration_s
                         : 0.0;
    result.appends = counters[p].appends.load();
    result.publishes = counters[p].publishes.load();
    result.events = counters[p].events.load();
    result.relevant_found = counters[p].relevant.load();
    result.latency = latency[p].Snapshot();
    result.publish_latency = publish_latency[p].Snapshot();
    result.stats = DiffSnapshots(before, after);
    artifacts.report.phases.push_back(std::move(result));
  }
  if (manage_faults) FaultInjector::Global().Disable();

  for (std::thread& t : pool) t.join();

  if (!setup_error.ok()) return setup_error;
  return artifacts;
}

}  // namespace workload
}  // namespace ivr
