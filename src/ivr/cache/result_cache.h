#ifndef IVR_CACHE_RESULT_CACHE_H_
#define IVR_CACHE_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/obs/metrics.h"
#include "ivr/retrieval/result_list.h"

namespace ivr {

class ArgParser;

struct ResultCacheOptions {
  /// Total byte budget across all shards (entries are charged for their
  /// key bytes, their RankedShot storage and fixed bookkeeping overhead).
  size_t max_bytes = 64u << 20;
  /// Shard count; lookups on distinct shards never contend. Clamped to
  /// at least 1.
  size_t num_shards = 8;
};

/// Point-in-time counters for one cache (aggregated over shards).
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Inserts dropped because their generation was stale (invalidated
  /// mid-compute) or the value alone exceeds a shard's byte budget.
  uint64_t rejected_inserts = 0;
  /// Lookups that failed through the "cache.lookup" fault-injection site
  /// (each degraded to an uncached search; results stay correct).
  uint64_t lookup_faults = 0;
  uint64_t invalidations = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
};

/// Sharded, memory-budgeted LRU cache for base (pre-personalisation)
/// retrieval rankings. Keys are opaque canonical fingerprints built by the
/// caller (RetrievalEngine) — the cache compares them byte-for-byte, so a
/// hit can only ever return the exact ResultList that was inserted:
/// cached and uncached serving are bit-identical by construction.
///
/// Invalidation is generation-based: callers snapshot generation() before
/// computing a value and pass it to Insert(), which drops the value when
/// InvalidateAll() ran in between (collection reload / concept rebuild).
/// Session feedback never invalidates — adaptive re-ranking happens above
/// the engine, on top of the cached base ranking.
///
/// Thread safety: all methods are safe to call concurrently. Each shard
/// has its own mutex; a key's shard is fixed by a hash of its bytes (the
/// hash routes only — matching is always a full key compare).
class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = ResultCacheOptions());

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Current invalidation generation. Snapshot before computing a value
  /// that will be inserted.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Copies the cached value for `key` into `*out` and refreshes its LRU
  /// position. False on miss — or when the "cache.lookup" fault site
  /// fires, which degrades the call to a miss (the caller recomputes;
  /// served results stay correct).
  bool Lookup(const std::string& key, ResultList* out);

  /// Inserts a copy of `value`, evicting least-recently-used entries in
  /// the key's shard until it fits. Dropped (rejected_inserts) when
  /// `generation` is stale or the entry alone exceeds the shard budget.
  /// Re-inserting an existing key replaces its value.
  void Insert(const std::string& key, const ResultList& value,
              uint64_t generation);

  /// Drops every entry and bumps the generation, so in-flight computes
  /// started before the call cannot re-populate stale values.
  void InvalidateAll();

  ResultCacheStats Stats() const;

  const ResultCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    std::string key;
    ResultList value;
    size_t bytes = 0;
  };
  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    size_t bytes = 0;
  };

  Shard& ShardFor(const std::string& key);
  static size_t EntryBytes(const std::string& key, const ResultList& value);

  ResultCacheOptions options_;
  size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> generation_{0};

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> rejected_inserts_{0};
  std::atomic<uint64_t> lookup_faults_{0};
  std::atomic<uint64_t> invalidations_{0};

  /// Registry pointers resolved once at construction (obs contract).
  struct Metrics {
    obs::Counter* hits;
    obs::Counter* misses;
    obs::Counter* insertions;
    obs::Counter* evictions;
    obs::Counter* rejected_inserts;
    obs::Counter* lookup_faults;
    obs::Counter* invalidations;
    obs::Gauge* bytes;
    obs::Gauge* entries;
    obs::LatencyHistogram* lookup_us;
    obs::LatencyHistogram* insert_us;
  };
  Metrics metrics_;
};

/// Tool glue: builds a cache from `--cache-mb N` (megabytes; absent or 0
/// disables caching and returns nullptr) and optional `--cache-shards S`.
/// InvalidArgument on malformed or negative values.
Result<std::shared_ptr<ResultCache>> ResultCacheFromArgs(
    const ArgParser& args);

}  // namespace ivr

#endif  // IVR_CACHE_RESULT_CACHE_H_
