#include "ivr/cache/result_cache.h"

#include <functional>

#include "ivr/core/args.h"
#include "ivr/core/fault_injection.h"

namespace ivr {
namespace {

/// Fixed per-entry bookkeeping charge (list node, index slot, Entry
/// struct). An estimate, but a deterministic one: eviction decisions are
/// a pure function of the insert sequence, never of allocator state.
constexpr size_t kEntryOverheadBytes = 128;

}  // namespace

ResultCache::ResultCache(ResultCacheOptions options)
    : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  shard_budget_ = options_.max_bytes / options_.num_shards;
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  obs::Registry& registry = obs::Registry::Global();
  metrics_.hits = registry.GetCounter("cache.hits");
  metrics_.misses = registry.GetCounter("cache.misses");
  metrics_.insertions = registry.GetCounter("cache.insertions");
  metrics_.evictions = registry.GetCounter("cache.evictions");
  metrics_.rejected_inserts = registry.GetCounter("cache.rejected_inserts");
  metrics_.lookup_faults = registry.GetCounter("cache.lookup_faults");
  metrics_.invalidations = registry.GetCounter("cache.invalidations");
  metrics_.bytes = registry.GetGauge("cache.bytes");
  metrics_.entries = registry.GetGauge("cache.entries");
  metrics_.lookup_us = registry.GetHistogram("cache.lookup_us");
  metrics_.insert_us = registry.GetHistogram("cache.insert_us");
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  // The hash only routes to a shard; matching is a full key compare, so a
  // collision can never serve the wrong entry.
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

size_t ResultCache::EntryBytes(const std::string& key,
                               const ResultList& value) {
  return key.size() + value.MemoryBytes() + kEntryOverheadBytes;
}

bool ResultCache::Lookup(const std::string& key, ResultList* out) {
  const obs::Stopwatch watch;
  FaultInjector& faults = FaultInjector::Global();
  if (faults.enabled() && faults.ShouldFail("cache.lookup")) {
    // Degrade to an uncached search: report a miss without touching the
    // shard, so the caller recomputes and serving stays correct.
    lookup_faults_.fetch_add(1, std::memory_order_relaxed);
    metrics_.lookup_faults->Inc();
    misses_.fetch_add(1, std::memory_order_relaxed);
    metrics_.misses->Inc();
    metrics_.lookup_us->Record(watch.ElapsedUs());
    return false;
  }
  Shard& shard = ShardFor(key);
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *out = it->second->value;
      hit = true;
    }
  }
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    metrics_.hits->Inc();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    metrics_.misses->Inc();
  }
  metrics_.lookup_us->Record(watch.ElapsedUs());
  return hit;
}

void ResultCache::Insert(const std::string& key, const ResultList& value,
                         uint64_t generation) {
  const obs::Stopwatch watch;
  const size_t bytes = EntryBytes(key, value);
  if (bytes > shard_budget_) {
    rejected_inserts_.fetch_add(1, std::memory_order_relaxed);
    metrics_.rejected_inserts->Inc();
    metrics_.insert_us->Record(watch.ElapsedUs());
    return;
  }
  Shard& shard = ShardFor(key);
  uint64_t evicted = 0;
  int64_t bytes_delta = 0;
  int64_t entries_delta = 0;
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Checked under the shard lock: InvalidateAll() bumps the generation
    // before clearing shards, so a compute that started pre-invalidation
    // can never slip a stale value in after its shard was cleared.
    if (generation_.load(std::memory_order_acquire) == generation) {
      auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        bytes_delta -= static_cast<int64_t>(it->second->bytes);
        shard.bytes -= it->second->bytes;
        shard.lru.erase(it->second);
        shard.index.erase(it);
        --entries_delta;
      }
      while (!shard.lru.empty() && shard.bytes + bytes > shard_budget_) {
        const Entry& victim = shard.lru.back();
        bytes_delta -= static_cast<int64_t>(victim.bytes);
        shard.bytes -= victim.bytes;
        shard.index.erase(victim.key);
        shard.lru.pop_back();
        --entries_delta;
        ++evicted;
      }
      shard.lru.push_front(Entry{key, value, bytes});
      shard.index.emplace(key, shard.lru.begin());
      shard.bytes += bytes;
      bytes_delta += static_cast<int64_t>(bytes);
      ++entries_delta;
      inserted = true;
    }
  }
  if (inserted) {
    insertions_.fetch_add(1, std::memory_order_relaxed);
    metrics_.insertions->Inc();
    if (evicted > 0) {
      evictions_.fetch_add(evicted, std::memory_order_relaxed);
      metrics_.evictions->Inc(evicted);
    }
    metrics_.bytes->Add(bytes_delta);
    metrics_.entries->Add(entries_delta);
  } else {
    rejected_inserts_.fetch_add(1, std::memory_order_relaxed);
    metrics_.rejected_inserts->Inc();
  }
  metrics_.insert_us->Record(watch.ElapsedUs());
}

void ResultCache::InvalidateAll() {
  // Bump first: an in-flight compute that snapshotted the old generation
  // must fail its Insert even if it runs after the clear below.
  generation_.fetch_add(1, std::memory_order_acq_rel);
  int64_t bytes_delta = 0;
  int64_t entries_delta = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    bytes_delta -= static_cast<int64_t>(shard->bytes);
    entries_delta -= static_cast<int64_t>(shard->lru.size());
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  metrics_.invalidations->Inc();
  metrics_.bytes->Add(bytes_delta);
  metrics_.entries->Add(entries_delta);
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.rejected_inserts =
      rejected_inserts_.load(std::memory_order_relaxed);
  stats.lookup_faults = lookup_faults_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
  }
  return stats;
}

Result<std::shared_ptr<ResultCache>> ResultCacheFromArgs(
    const ArgParser& args) {
  IVR_ASSIGN_OR_RETURN(const int64_t mb, args.GetInt("cache-mb", 0));
  if (mb < 0) {
    return Status::InvalidArgument("--cache-mb must be >= 0");
  }
  if (mb == 0) return std::shared_ptr<ResultCache>();
  IVR_ASSIGN_OR_RETURN(const int64_t shards, args.GetInt("cache-shards", 8));
  if (shards <= 0) {
    return Status::InvalidArgument("--cache-shards must be > 0");
  }
  ResultCacheOptions options;
  options.max_bytes = static_cast<size_t>(mb) << 20;
  options.num_shards = static_cast<size_t>(shards);
  return std::make_shared<ResultCache>(options);
}

}  // namespace ivr
