#ifndef IVR_SERVICE_MANAGED_BACKEND_H_
#define IVR_SERVICE_MANAGED_BACKEND_H_

#include <cstdint>
#include <string>
#include <utility>

#include "ivr/core/clock.h"
#include "ivr/feedback/backend.h"
#include "ivr/service/session_manager.h"

namespace ivr {

/// Binds ONE session of a SessionManager behind the classic SearchBackend
/// seam, so the whole simulation stack (SessionSimulator, the interfaces,
/// every behaviour policy) can drive managed sessions unchanged. One
/// backend = one session = one driving thread; many backends over one
/// manager is the concurrent-service workload.
///
/// Follows the adapter convention for lifecycle violations: an event or
/// query before BeginSession lazily opens the session with a logged
/// warning (counted in implicit_session_opens()), whereas the manager
/// itself rejects unknown sessions (see SessionManager::ObserveEvent).
///
/// Optional think-time pacing: when `think_time_ms` > 0 every operation
/// sleeps that long first, modelling a user who reads results before
/// acting. Paced sessions spend most wall-clock time off-CPU, which is
/// what lets a multi-threaded driver multiplex many of them — the
/// genny-style open-loop workload shape.
class ManagedSessionBackend : public SearchBackend {
 public:
  /// `manager` must outlive the backend.
  ManagedSessionBackend(SessionManager* manager, std::string session_id,
                        std::string user_id, TimeMs think_time_ms = 0)
      : manager_(manager),
        session_id_(std::move(session_id)),
        user_id_(std::move(user_id)),
        think_time_ms_(think_time_ms) {}

  /// Ends the bound session if still live (ignores NotFound).
  ~ManagedSessionBackend() override;

  ResultList Search(const Query& query, size_t k) override;
  void ObserveEvent(const InteractionEvent& event) override;
  void BeginSession() override;
  HealthReport Health() const override { return manager_->Health(); }
  std::string name() const override { return "managed"; }

  /// Ends the bound session explicitly; NotFound when already gone.
  Status EndSession();

  const std::string& session_id() const { return session_id_; }
  /// First error any operation hit (operations themselves degrade to
  /// empty results / dropped events, as SearchBackend's interface has no
  /// error channel).
  const Status& first_error() const { return first_error_; }
  uint64_t implicit_session_opens() const {
    return implicit_session_opens_;
  }

 private:
  void Pace() const;
  void EnsureOpen();
  void Note(const Status& status);

  SessionManager* manager_;
  std::string session_id_;
  std::string user_id_;
  TimeMs think_time_ms_ = 0;
  bool open_ = false;
  uint64_t implicit_session_opens_ = 0;
  Status first_error_;
};

}  // namespace ivr

#endif  // IVR_SERVICE_MANAGED_BACKEND_H_
