#include "ivr/service/session_manager.h"

#include <algorithm>
#include <utility>

#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/logging.h"
#include "ivr/core/string_util.h"
#include "ivr/obs/trace.h"

namespace ivr {
namespace {

/// Session ids become journal file names; anything outside a conservative
/// character set is mapped to '_' so an id can never escape persist_dir.
std::string SanitizeForFilename(const std::string& id) {
  std::string out;
  out.reserve(id.size());
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                    c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out.push_back('_');
  return out;
}

}  // namespace

std::string SessionManagerStats::ToString() const {
  std::string out = StrFormat(
      "sessions: active=%zu begun=%llu ended=%llu evicted_idle=%llu "
      "evicted_capacity=%llu evictions_skipped=%llu persist_failures=%llu "
      "events_persisted=%llu rejected_ops=%llu",
      active, static_cast<unsigned long long>(begun),
      static_cast<unsigned long long>(ended),
      static_cast<unsigned long long>(evicted_idle),
      static_cast<unsigned long long>(evicted_capacity),
      static_cast<unsigned long long>(evictions_skipped),
      static_cast<unsigned long long>(persist_failures),
      static_cast<unsigned long long>(events_persisted),
      static_cast<unsigned long long>(rejected_ops));
  for (size_t i = 0; i < shards.size(); ++i) {
    const Shard& s = shards[i];
    if (s.begun == 0 && s.active == 0) continue;
    out += StrFormat("\n  shard %zu: active=%zu peak=%zu begun=%llu "
                     "evicted_idle=%llu evicted_capacity=%llu",
                     i, s.active, s.peak,
                     static_cast<unsigned long long>(s.begun),
                     static_cast<unsigned long long>(s.evicted_idle),
                     static_cast<unsigned long long>(s.evicted_capacity));
  }
  return out;
}

SessionManager::SessionManager(const AdaptiveEngine& engine,
                               SessionManagerOptions options)
    // Non-owning: the classic static-engine contract (engine outlives the
    // manager), expressed as a resolver with a no-op deleter.
    : SessionManager(
          [engine_ptr = &engine] {
            return std::shared_ptr<const AdaptiveEngine>(
                engine_ptr, [](const AdaptiveEngine*) {});
          },
          std::move(options)) {}

SessionManager::SessionManager(EngineResolver resolver,
                               SessionManagerOptions options)
    : resolver_(std::move(resolver)), options_(std::move(options)) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.max_sessions > 0) {
    max_per_shard_ = (options_.max_sessions + options_.num_shards - 1) /
                     options_.num_shards;
    if (max_per_shard_ == 0) max_per_shard_ = 1;
  }
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  obs::Registry& registry = obs::Registry::Global();
  metrics_.sessions_opened = registry.GetCounter("service.sessions_opened");
  metrics_.sessions_evicted =
      registry.GetCounter("service.sessions_evicted");
  metrics_.sessions_ended = registry.GetCounter("service.sessions_ended");
  metrics_.persist_failures =
      registry.GetCounter("service.persist_failures");
  metrics_.events_persisted =
      registry.GetCounter("service.events_persisted");
  metrics_.rejected_ops = registry.GetCounter("service.rejected_ops");
  metrics_.sessions_active = registry.GetGauge("service.sessions_active");
  metrics_.lru_depth = registry.GetGauge("service.lru_depth");
  metrics_.begin_session_us =
      registry.GetHistogram("service.begin_session_us");
  metrics_.persist_us = registry.GetHistogram("service.persist_us");
  metrics_.evict_us = registry.GetHistogram("service.evict_us");
  metrics_.shard_lock_wait_us =
      registry.GetHistogram("service.shard_lock_wait_us");
  if (!options_.persist_dir.empty()) {
    const Status made = MakeDirectory(options_.persist_dir);
    if (!made.ok()) {
      IVR_LOG(Warning) << "session persist dir unavailable ("
                       << made.message()
                       << "); session logs will not be persisted";
      options_.persist_dir.clear();
    }
  }
}

SessionManager::~SessionManager() {
  // Best-effort final flush: persist whatever is still resident so a
  // clean shutdown loses nothing.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::vector<std::shared_ptr<Entry>> victims;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (auto& [id, entry] : shard->sessions) victims.push_back(entry);
      shard->sessions.clear();
    }
    metrics_.sessions_active->Add(
        -static_cast<int64_t>(victims.size()));
    for (const std::shared_ptr<Entry>& entry : victims) {
      FinalizeEvicted(entry);
    }
  }
}

Status SessionManager::AddProfile(UserProfile profile) {
  std::lock_guard<std::mutex> lock(profiles_mu_);
  return profiles_.Add(std::move(profile));
}

SessionManager::Shard& SessionManager::ShardFor(
    const std::string& session_id) {
  return *shards_[std::hash<std::string>{}(session_id) % shards_.size()];
}

const SessionManager::Shard& SessionManager::ShardFor(
    const std::string& session_id) const {
  return *shards_[std::hash<std::string>{}(session_id) % shards_.size()];
}

TimeMs SessionManager::NowMs() {
  if (options_.clock) return options_.clock();
  // Default: a monotonic op counter, so "idle" means "ops elapsed without
  // touching this session" — deterministic for tests.
  return ++op_clock_;
}

void SessionManager::Touch(Entry* entry) {
  entry->last_active.store(NowMs(), std::memory_order_relaxed);
  entry->touch_seq.store(++touch_counter_, std::memory_order_relaxed);
}

std::shared_ptr<SessionManager::Entry> SessionManager::FindEntry(
    const std::string& session_id) const {
  const Shard& shard = ShardFor(session_id);
  const obs::Stopwatch wait;
  std::lock_guard<std::mutex> lock(shard.mu);
  metrics_.shard_lock_wait_us->Record(wait.ElapsedUs());
  const auto it = shard.sessions.find(session_id);
  return it == shard.sessions.end() ? nullptr : it->second;
}

void SessionManager::PersistLocked(Entry* entry) {
  if (options_.persist_dir.empty()) return;
  SessionContext& ctx = entry->ctx;
  if (ctx.events.size() <= ctx.events_persisted) return;

  const obs::Stopwatch persist_watch;
  FaultInjector& faults = FaultInjector::Global();
  if (faults.enabled() && faults.ShouldFail("service.persist")) {
    ++persist_failures_;
    metrics_.persist_failures->Inc();
    IVR_LOG(Warning) << "injected persist failure for session '"
                     << ctx.session_id << "'";
    return;
  }
  if (!entry->writer.is_open()) {
    const std::string path = options_.persist_dir + "/" +
                             SanitizeForFilename(ctx.session_id) + ".log";
    const Status opened = entry->writer.Open(path);
    if (!opened.ok()) {
      ++persist_failures_;
      metrics_.persist_failures->Inc();
      IVR_LOG(Warning) << "cannot open session journal: "
                       << opened.message();
      return;
    }
  }
  const std::vector<InteractionEvent> batch(
      ctx.events.begin() + static_cast<ptrdiff_t>(ctx.events_persisted),
      ctx.events.end());
  const Status appended = entry->writer.Append(batch);
  if (!appended.ok()) {
    ++persist_failures_;
    metrics_.persist_failures->Inc();
    IVR_LOG(Warning) << "session journal append failed: "
                     << appended.message();
    return;
  }
  ctx.events_persisted = ctx.events.size();
  events_persisted_ += batch.size();
  metrics_.events_persisted->Inc(batch.size());
  metrics_.persist_us->Record(persist_watch.ElapsedUs());
}

void SessionManager::FinalizeEvicted(const std::shared_ptr<Entry>& entry) {
  const obs::Stopwatch evict_watch;
  std::lock_guard<std::mutex> lock(entry->mu);
  if (!entry->live) return;
  entry->live = false;
  PersistLocked(entry.get());
  if (entry->writer.is_open()) {
    const Status closed = entry->writer.Close();
    if (!closed.ok()) {
      ++persist_failures_;
      metrics_.persist_failures->Inc();
      IVR_LOG(Warning) << "session journal close failed: "
                       << closed.message();
    }
  }
  metrics_.evict_us->Record(evict_watch.ElapsedUs());
}

void SessionManager::CollectVictimsLocked(
    Shard* shard, bool need_capacity_victim,
    std::vector<std::shared_ptr<Entry>>* victims) {
  FaultInjector& faults = FaultInjector::Global();
  const auto evict_allowed = [&]() {
    if (faults.enabled() && faults.ShouldFail("service.evict")) {
      ++evictions_skipped_;
      return false;
    }
    return true;
  };

  // Opportunistic TTL sweep.
  if (options_.idle_ttl_ms > 0) {
    const TimeMs now = NowMs();
    for (auto it = shard->sessions.begin(); it != shard->sessions.end();) {
      const TimeMs idle =
          now - it->second->last_active.load(std::memory_order_relaxed);
      if (idle >= options_.idle_ttl_ms) {
        if (!evict_allowed()) {
          ++it;
          continue;
        }
        victims->push_back(it->second);
        it = shard->sessions.erase(it);
        ++shard->evicted_idle;
        metrics_.sessions_evicted->Inc();
        metrics_.sessions_active->Add(-1);
      } else {
        ++it;
      }
    }
  }

  // Capacity LRU: evict the least-recently-touched session of this shard.
  if (need_capacity_victim && max_per_shard_ > 0 &&
      shard->sessions.size() >= max_per_shard_) {
    auto lru = shard->sessions.end();
    uint64_t lru_seq = 0;
    for (auto it = shard->sessions.begin(); it != shard->sessions.end();
         ++it) {
      const uint64_t seq =
          it->second->touch_seq.load(std::memory_order_relaxed);
      if (lru == shard->sessions.end() || seq < lru_seq) {
        lru = it;
        lru_seq = seq;
      }
    }
    if (lru != shard->sessions.end() && evict_allowed()) {
      victims->push_back(lru->second);
      shard->sessions.erase(lru);
      ++shard->evicted_capacity;
      metrics_.sessions_evicted->Inc();
      metrics_.sessions_active->Add(-1);
    }
  }
}

Status SessionManager::BeginSession(const std::string& session_id,
                                    const std::string& user_id) {
  obs::ScopedSpan span("service.begin_session");
  const obs::Stopwatch begin_watch;
  // Snapshot the profile up front (separate lock domain from shards).
  std::shared_ptr<const UserProfile> profile;
  {
    std::lock_guard<std::mutex> lock(profiles_mu_);
    const Result<const UserProfile*> found = profiles_.Get(user_id);
    if (found.ok()) {
      profile = std::make_shared<const UserProfile>(**found);
    }
  }
  const std::shared_ptr<const AdaptiveEngine> engine = resolver_();
  if (profile == nullptr) profile = engine->default_profile();

  auto entry = std::make_shared<Entry>();
  entry->ctx = engine->MakeContext(session_id, user_id);
  entry->ctx.profile = std::move(profile);

  std::vector<std::shared_ptr<Entry>> victims;
  Shard& shard = ShardFor(session_id);
  {
    const obs::Stopwatch wait;
    std::lock_guard<std::mutex> lock(shard.mu);
    metrics_.shard_lock_wait_us->Record(wait.ElapsedUs());
    const auto it = shard.sessions.find(session_id);
    if (it != shard.sessions.end()) {
      ++rejected_ops_;
      metrics_.rejected_ops->Inc();
      return Status::AlreadyExists("session '" + session_id +
                                   "' is already live");
    }
    CollectVictimsLocked(&shard, /*need_capacity_victim=*/true, &victims);
    shard.sessions.emplace(session_id, entry);
    ++shard.begun;
    shard.peak = std::max(shard.peak, shard.sessions.size());
    metrics_.sessions_opened->Inc();
    metrics_.sessions_active->Add(1);
    metrics_.lru_depth->Set(static_cast<int64_t>(shard.sessions.size()));
  }
  Touch(entry.get());
  // Persist evicted sessions outside every lock but the victims' own.
  for (const std::shared_ptr<Entry>& victim : victims) {
    FinalizeEvicted(victim);
  }
  metrics_.begin_session_us->Record(begin_watch.ElapsedUs());
  return Status::OK();
}

Result<ResultList> SessionManager::Search(const std::string& session_id,
                                          const Query& query, size_t k) {
  const std::shared_ptr<Entry> entry = FindEntry(session_id);
  if (entry == nullptr) {
    ++rejected_ops_;
    metrics_.rejected_ops->Inc();
    return Status::NotFound("no live session '" + session_id + "'");
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (!entry->live) {
    ++rejected_ops_;
    metrics_.rejected_ops->Inc();
    return Status::NotFound("session '" + session_id + "' was evicted");
  }
  Touch(entry.get());
  // Pin ONE generation for the whole search: the shared_ptr keeps its
  // snapshot alive even if a publish lands mid-query.
  const std::shared_ptr<const AdaptiveEngine> engine = resolver_();
  return engine->Search(&entry->ctx, query, k);
}

Status SessionManager::ObserveEvent(const std::string& session_id,
                                    const InteractionEvent& event) {
  const std::shared_ptr<Entry> entry = FindEntry(session_id);
  if (entry == nullptr) {
    ++rejected_ops_;
    metrics_.rejected_ops->Inc();
    return Status::NotFound("no live session '" + session_id + "'");
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (!entry->live) {
    ++rejected_ops_;
    metrics_.rejected_ops->Inc();
    return Status::NotFound("session '" + session_id + "' was evicted");
  }
  Touch(entry.get());
  const std::shared_ptr<const AdaptiveEngine> engine = resolver_();
  engine->ObserveEvent(&entry->ctx, event);
  if (options_.persist_every_events > 0 &&
      entry->ctx.events.size() - entry->ctx.events_persisted >=
          options_.persist_every_events) {
    PersistLocked(entry.get());
  }
  return Status::OK();
}

Status SessionManager::EndSession(const std::string& session_id) {
  std::shared_ptr<Entry> entry;
  Shard& shard = ShardFor(session_id);
  {
    const obs::Stopwatch wait;
    std::lock_guard<std::mutex> lock(shard.mu);
    metrics_.shard_lock_wait_us->Record(wait.ElapsedUs());
    const auto it = shard.sessions.find(session_id);
    if (it == shard.sessions.end()) {
      ++rejected_ops_;
      metrics_.rejected_ops->Inc();
      return Status::NotFound("no live session '" + session_id + "'");
    }
    entry = it->second;
    shard.sessions.erase(it);
  }
  ++ended_;
  metrics_.sessions_ended->Inc();
  metrics_.sessions_active->Add(-1);
  // Persistence failures are counted in health, not surfaced here: the
  // session ends either way.
  FinalizeEvicted(entry);
  return Status::OK();
}

size_t SessionManager::EvictIdleSessions() {
  if (options_.idle_ttl_ms <= 0) return 0;
  size_t evicted = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::vector<std::shared_ptr<Entry>> victims;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      CollectVictimsLocked(shard.get(), /*need_capacity_victim=*/false,
                           &victims);
    }
    for (const std::shared_ptr<Entry>& victim : victims) {
      FinalizeEvicted(victim);
    }
    evicted += victims.size();
  }
  return evicted;
}

bool SessionManager::Contains(const std::string& session_id) const {
  return FindEntry(session_id) != nullptr;
}

size_t SessionManager::num_active() const {
  size_t n = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->sessions.size();
  }
  return n;
}

SessionManagerStats SessionManager::Stats() const {
  SessionManagerStats stats;
  stats.shards.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    SessionManagerStats::Shard& out = stats.shards[i];
    out.active = shard.sessions.size();
    out.peak = shard.peak;
    out.begun = shard.begun;
    out.evicted_idle = shard.evicted_idle;
    out.evicted_capacity = shard.evicted_capacity;
    stats.active += out.active;
    stats.begun += out.begun;
    stats.evicted_idle += out.evicted_idle;
    stats.evicted_capacity += out.evicted_capacity;
  }
  stats.ended = ended_.load(std::memory_order_relaxed);
  stats.evictions_skipped =
      evictions_skipped_.load(std::memory_order_relaxed);
  stats.persist_failures = persist_failures_.load(std::memory_order_relaxed);
  stats.events_persisted = events_persisted_.load(std::memory_order_relaxed);
  stats.rejected_ops = rejected_ops_.load(std::memory_order_relaxed);
  return stats;
}

HealthReport SessionManager::Health() const {
  const std::shared_ptr<const AdaptiveEngine> engine = resolver_();
  HealthReport report = engine->engine().Health();
  const bool wants_profile = engine->options().use_profile;
  bool all_profiled = true;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::vector<std::shared_ptr<Entry>> entries;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (const auto& [id, entry] : shard->sessions) {
        entries.push_back(entry);
      }
    }
    for (const std::shared_ptr<Entry>& entry : entries) {
      std::lock_guard<std::mutex> lock(entry->mu);
      if (!entry->live) continue;
      ++report.sessions_active;
      report.feedback_skipped += entry->ctx.feedback_skipped;
      report.profile_reranks_skipped += entry->ctx.profile_reranks_skipped;
      if (entry->ctx.profile == nullptr) all_profiled = false;
    }
  }
  report.profile_available = !wants_profile || all_profiled;
  const SessionManagerStats stats = Stats();
  report.sessions_evicted = stats.evicted_idle + stats.evicted_capacity;
  report.session_persist_failures = stats.persist_failures;
  return report;
}

}  // namespace ivr
