#ifndef IVR_SERVICE_SESSION_MANAGER_H_
#define IVR_SERVICE_SESSION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/core/clock.h"
#include "ivr/core/result.h"
#include "ivr/iface/session_log.h"
#include "ivr/obs/metrics.h"
#include "ivr/profile/profile_store.h"

namespace ivr {

/// Tuning knobs for a SessionManager.
struct SessionManagerOptions {
  /// Number of lock shards the session table is split across. More shards
  /// = less contention between unrelated sessions.
  size_t num_shards = 8;

  /// Capacity cap, enforced per shard as ceil(max_sessions / num_shards):
  /// beginning a session in a full shard evicts that shard's
  /// least-recently-used session first. 0 = unlimited.
  size_t max_sessions = 0;

  /// Sessions idle longer than this are eligible for TTL eviction (swept
  /// opportunistically on BeginSession and explicitly by
  /// EvictIdleSessions). 0 = no TTL.
  TimeMs idle_ttl_ms = 0;

  /// When non-empty, ended/evicted sessions persist their interaction log
  /// to "<persist_dir>/<session_id>.log" as a crash-safe chunked journal
  /// (SessionLogWriter). Empty = no persistence.
  std::string persist_dir;

  /// When > 0, a session's log is additionally flushed to disk every time
  /// it accumulates this many unpersisted events, so even an un-ended,
  /// un-evicted session loses at most this many events to a crash.
  size_t persist_every_events = 0;

  /// Time source for idle accounting. Defaults to an internal monotonic
  /// op counter (each manager operation is one tick), which keeps tests
  /// deterministic; inject a real or simulated clock for wall-time TTLs.
  std::function<TimeMs()> clock;
};

/// Aggregate + per-shard counters, for capacity planning and tests.
struct SessionManagerStats {
  struct Shard {
    size_t active = 0;
    size_t peak = 0;
    uint64_t begun = 0;
    uint64_t evicted_idle = 0;
    uint64_t evicted_capacity = 0;
  };
  std::vector<Shard> shards;

  size_t active = 0;
  uint64_t begun = 0;
  uint64_t ended = 0;
  uint64_t evicted_idle = 0;
  uint64_t evicted_capacity = 0;
  /// Evictions skipped because the "service.evict" fault site fired; the
  /// victim stays resident (the shard may run over capacity).
  uint64_t evictions_skipped = 0;
  /// Persistence attempts that failed (fault site "service.persist", an
  /// I/O error, or a "sessionlog.append" fault inside the writer).
  uint64_t persist_failures = 0;
  /// Interaction events durably appended to session journals.
  uint64_t events_persisted = 0;
  /// Operations rejected because the session id was unknown (or, for
  /// BeginSession, already taken).
  uint64_t rejected_ops = 0;

  std::string ToString() const;
};

/// The multi-session service layer: a sharded, thread-safe table of live
/// SessionContexts driven through one shared (stateless, const)
/// AdaptiveEngine. This is the piece that turns the single-session
/// library the paper's experiments use into something shaped like the
/// deployed systems the paper studies — many users interleaving sessions
/// against one index.
///
/// Concurrency protocol:
///  - each shard has a mutex guarding only its id->entry map;
///  - each entry has its own mutex guarding the SessionContext and its
///    journal writer, so searches in different sessions never serialize
///    on a shard;
///  - lock order is shard.mu before entry.mu, and ops release the shard
///    lock before doing session work;
///  - entries are handed out as shared_ptr with a `live` flag, so a
///    session evicted between lookup and use is rejected instead of
///    resurrected (no lost updates, no use-after-evict).
///
/// Determinism: given the same per-session operation sequences, results
/// are bit-identical regardless of thread count, because all mutable
/// state is per-session and the engine is const.
class SessionManager {
 public:
  /// Resolves the engine to use for one operation. With a live
  /// (generational) index, each manager operation resolves the CURRENT
  /// generation's engine and holds the returned shared_ptr for the whole
  /// operation — a session naturally straddles publishes, each of its
  /// operations pinned to one complete generation (session state —
  /// events, evidence, profile — is engine-independent, and shot ids are
  /// stable because the live collection is append-only). The resolver
  /// must be thread-safe and never return null.
  using EngineResolver =
      std::function<std::shared_ptr<const AdaptiveEngine>()>;

  /// `engine` must outlive the manager. The engine is used exclusively
  /// through its const context-taking API.
  SessionManager(const AdaptiveEngine& engine, SessionManagerOptions options);

  /// Generational variant: every operation asks `resolver` for the
  /// engine to serve against (see EngineResolver).
  SessionManager(EngineResolver resolver, SessionManagerOptions options);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Registers a user profile the manager will snapshot into sessions of
  /// that user. AlreadyExists if the user id is taken.
  Status AddProfile(UserProfile profile);

  /// Opens a session. The user's registered profile (when present) is
  /// snapshotted into the session at this moment — later profile edits do
  /// not retroactively change a live session. AlreadyExists when the
  /// session id is live. May evict (capacity LRU within the shard, plus an
  /// opportunistic TTL sweep of the shard).
  Status BeginSession(const std::string& session_id,
                      const std::string& user_id);

  /// Answers a query within a session; NotFound when the session is not
  /// live (the manager REJECTS rather than implicitly opening — the lazy
  /// fallback is the single-session adapter's affordance, not a service's).
  Result<ResultList> Search(const std::string& session_id,
                            const Query& query, size_t k);

  /// Records an interaction event; NotFound when the session is not live.
  Status ObserveEvent(const std::string& session_id,
                      const InteractionEvent& event);

  /// Ends a session: persists its remaining events (failures are counted,
  /// not returned — the session still ends), closes its journal, removes
  /// it. NotFound when the session is not live.
  Status EndSession(const std::string& session_id);

  /// Evicts every session idle past the TTL. Returns how many. No-op
  /// (returns 0) when idle_ttl_ms is 0.
  size_t EvictIdleSessions();

  bool Contains(const std::string& session_id) const;
  size_t num_active() const;

  SessionManagerStats Stats() const;

  /// The base engine's report, with personalisation counters summed over
  /// live sessions and the manager's service counters folded in.
  HealthReport Health() const;

  const SessionManagerOptions& options() const { return options_; }

 private:
  struct Entry {
    std::mutex mu;
    SessionContext ctx;       // guarded by mu
    SessionLogWriter writer;  // guarded by mu
    /// False once ended/evicted: a holder of a stale shared_ptr must not
    /// touch the context any more.
    bool live = true;  // guarded by mu
    std::atomic<TimeMs> last_active{0};
    std::atomic<uint64_t> touch_seq{0};
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<Entry>> sessions;
    size_t peak = 0;
    uint64_t begun = 0;
    uint64_t evicted_idle = 0;
    uint64_t evicted_capacity = 0;
  };

  Shard& ShardFor(const std::string& session_id);
  const Shard& ShardFor(const std::string& session_id) const;

  TimeMs NowMs();
  void Touch(Entry* entry);

  /// Looks an entry up (shard lock held only for the lookup).
  std::shared_ptr<Entry> FindEntry(const std::string& session_id) const;

  /// Persists `entry`'s unpersisted events as one journal chunk. Requires
  /// entry->mu held. Counts failures instead of propagating them.
  void PersistLocked(Entry* entry);

  /// Finalises a removed entry: marks it dead, persists the tail, closes
  /// the journal. Must NOT be called with any shard lock held.
  void FinalizeEvicted(const std::shared_ptr<Entry>& entry);

  /// Removes TTL-expired and (if `need_capacity_victim`) the LRU entry
  /// from `shard` into `victims`. Requires shard->mu held. Honours the
  /// "service.evict" fault site by skipping (and counting) the eviction.
  void CollectVictimsLocked(
      Shard* shard, bool need_capacity_victim,
      std::vector<std::shared_ptr<Entry>>* victims);

  EngineResolver resolver_;
  SessionManagerOptions options_;
  size_t max_per_shard_ = 0;  // 0 = unlimited

  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex profiles_mu_;
  ProfileStore profiles_;

  std::atomic<uint64_t> touch_counter_{0};
  std::atomic<TimeMs> op_clock_{0};
  std::atomic<uint64_t> ended_{0};
  std::atomic<uint64_t> evictions_skipped_{0};
  std::atomic<uint64_t> persist_failures_{0};
  std::atomic<uint64_t> events_persisted_{0};
  std::atomic<uint64_t> rejected_ops_{0};

  /// Registry pointers resolved once at construction. The `sessions_active`
  /// gauge mirrors map membership exactly (inc on insert, dec on every
  /// removal path including destruction); `lru_depth` tracks the occupancy
  /// of the most recently grown shard.
  struct Metrics {
    obs::Counter* sessions_opened;
    obs::Counter* sessions_evicted;
    obs::Counter* sessions_ended;
    obs::Counter* persist_failures;
    obs::Counter* events_persisted;
    obs::Counter* rejected_ops;
    obs::Gauge* sessions_active;
    obs::Gauge* lru_depth;
    obs::LatencyHistogram* begin_session_us;
    obs::LatencyHistogram* persist_us;
    obs::LatencyHistogram* evict_us;
    obs::LatencyHistogram* shard_lock_wait_us;
  };
  Metrics metrics_;
};

}  // namespace ivr

#endif  // IVR_SERVICE_SESSION_MANAGER_H_
