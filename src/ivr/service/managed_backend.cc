#include "ivr/service/managed_backend.h"

#include <chrono>
#include <thread>

#include "ivr/core/logging.h"

namespace ivr {

ManagedSessionBackend::~ManagedSessionBackend() {
  if (open_) (void)manager_->EndSession(session_id_);
}

void ManagedSessionBackend::Pace() const {
  if (think_time_ms_ > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(think_time_ms_));
  }
}

void ManagedSessionBackend::Note(const Status& status) {
  if (!status.ok() && first_error_.ok()) first_error_ = status;
}

void ManagedSessionBackend::EnsureOpen() {
  if (open_) return;
  IVR_LOG(Warning) << "operation before BeginSession on managed session '"
                   << session_id_ << "': implicitly opening it";
  ++implicit_session_opens_;
  BeginSession();
}

void ManagedSessionBackend::BeginSession() {
  // Re-beginning an adapter session = fresh session under the same id:
  // end the old one first (the single-session BeginSession semantics).
  if (open_) {
    Note(manager_->EndSession(session_id_));
    open_ = false;
  }
  const Status begun = manager_->BeginSession(session_id_, user_id_);
  Note(begun);
  open_ = begun.ok();
}

ResultList ManagedSessionBackend::Search(const Query& query, size_t k) {
  EnsureOpen();
  Pace();
  Result<ResultList> results = manager_->Search(session_id_, query, k);
  if (!results.ok()) {
    // Evicted mid-session (capacity/TTL): degrade to an empty page; the
    // manager already counted the rejection.
    Note(results.status());
    return ResultList();
  }
  return std::move(results).value();
}

void ManagedSessionBackend::ObserveEvent(const InteractionEvent& event) {
  EnsureOpen();
  Pace();
  Note(manager_->ObserveEvent(session_id_, event));
}

Status ManagedSessionBackend::EndSession() {
  open_ = false;
  return manager_->EndSession(session_id_);
}

}  // namespace ivr
