#ifndef IVR_ADAPTIVE_SESSION_CONTEXT_H_
#define IVR_ADAPTIVE_SESSION_CONTEXT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ivr/feedback/estimator.h"
#include "ivr/feedback/events.h"
#include "ivr/feedback/weighting.h"
#include "ivr/obs/metrics.h"
#include "ivr/profile/user_profile.h"

namespace ivr {

/// All mutable state of ONE user session, extracted out of AdaptiveEngine
/// so a single immutable engine can serve any number of concurrent
/// sessions: the engine is the policy, a SessionContext is the state the
/// policy acts on. A context is a plain value — movable, persistable,
/// owned by whoever manages the session (the SessionManager in the
/// service layer, or an AdaptiveEngine's bound compatibility context for
/// the classic one-object-one-session API).
///
/// Thread-safety: a context is confined to one session and therefore to
/// one logical actor; callers that share contexts across threads (the
/// SessionManager) serialise access per context. The engine never shares
/// state between contexts, so distinct contexts never race.
struct SessionContext {
  std::string session_id;
  std::string user_id;

  /// Per-session profile snapshot; null falls back to the engine's default
  /// profile (and to no personalisation when that is null too). Shared
  /// ownership, never borrowed: an evicted and later rebuilt session can
  /// outlive the store it was created from without dangling.
  std::shared_ptr<const UserProfile> profile;

  /// Per-session indicator weighting override; null falls back to the
  /// engine's scheme. Shared ownership for the same reason as `profile`.
  std::shared_ptr<const WeightingScheme> scheme;

  /// The within-session interaction stream, in arrival order.
  std::vector<InteractionEvent> events;

  /// True between BeginSession and session teardown. ObserveEvent on a
  /// closed context is the classic silent-mutation footgun; the adapter
  /// lazily opens (with a warning), the SessionManager rejects.
  bool open = false;

  /// Degraded-mode counters for this session (folded into HealthReport).
  /// Deliberately NOT cleared by BeginSession: they describe the lifetime
  /// of the serving object, matching the pre-refactor adapter semantics.
  /// Relaxed-atomic because Health() snapshots them from monitoring
  /// threads while the session's own thread increments (the rest of the
  /// context stays single-writer per the confinement contract above).
  obs::RelaxedU64 feedback_skipped = 0;
  obs::RelaxedU64 profile_reranks_skipped = 0;

  /// How many leading entries of `events` have already been written to the
  /// session's on-disk journal. Lets eviction persistence append only the
  /// new suffix — O(new events), not O(session).
  size_t events_persisted = 0;

  /// Memoised implicit-relevance evidence: valid iff `evidence_events`
  /// equals events.size() (events are append-only within a session).
  std::vector<RelevanceEvidence> evidence_cache;
  size_t evidence_events = kEvidenceInvalid;

  static constexpr size_t kEvidenceInvalid = static_cast<size_t>(-1);

  /// Fresh-session reset: clears the interaction stream, evidence cache,
  /// and persistence watermark, keeps profile/scheme bindings and the
  /// lifetime counters, and marks the context open.
  void Reset() {
    events.clear();
    evidence_cache.clear();
    evidence_events = kEvidenceInvalid;
    events_persisted = 0;
    open = true;
  }
};

}  // namespace ivr

#endif  // IVR_ADAPTIVE_SESSION_CONTEXT_H_
