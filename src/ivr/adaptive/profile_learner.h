#ifndef IVR_ADAPTIVE_PROFILE_LEARNER_H_
#define IVR_ADAPTIVE_PROFILE_LEARNER_H_

#include <vector>

#include "ivr/feedback/estimator.h"
#include "ivr/profile/user_profile.h"
#include "ivr/video/collection.h"

namespace ivr {

/// Cross-session profile learning — the long-term half of the paper's
/// adaptive model. Within a session, implicit feedback drives immediate
/// adaptation; *between* sessions, the same evidence should update the
/// user's standing topic interests, so the profile stops being purely
/// self-declared and starts reflecting observed behaviour. The learner
/// first decays existing interests (forgetting), then adds interest mass
/// to the topics of positively-evidenced shots (reinforcement), keeping
/// the profile normalised.
class ProfileLearner {
 public:
  struct Options {
    /// Multiplicative retention applied before each update; < 1 makes old
    /// declared interests fade unless behaviour keeps confirming them.
    double retention = 0.9;
    /// Interest mass contributed per unit of positive evidence weight.
    double learning_rate = 0.1;
    /// Negative evidence subtracts at this fraction of the rate.
    double negative_scale = 0.5;
  };

  ProfileLearner() = default;
  explicit ProfileLearner(Options options) : options_(options) {}

  /// Folds one session's implicit evidence into the profile. Evidence on
  /// shots outside the collection is ignored; the profile is
  /// re-normalised afterwards.
  void UpdateFromEvidence(const std::vector<RelevanceEvidence>& evidence,
                          const VideoCollection& collection,
                          UserProfile* profile) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace ivr

#endif  // IVR_ADAPTIVE_PROFILE_LEARNER_H_
