#include "ivr/adaptive/adaptive_engine.h"

#include <utility>

#include "ivr/core/fault_injection.h"
#include "ivr/core/logging.h"
#include "ivr/obs/trace.h"
#include "ivr/profile/profile_reranker.h"
#include "ivr/retrieval/fusion.h"

namespace ivr {
namespace {

std::shared_ptr<const WeightingScheme> ResolveScheme(
    const std::string& name) {
  std::shared_ptr<const WeightingScheme> scheme = MakeWeightingScheme(name);
  if (scheme == nullptr) {
    // Unknown name: fall back to the linear default rather than failing a
    // constructor; callers can always inject explicitly.
    scheme = std::make_shared<LinearWeighting>();
  }
  return scheme;
}

}  // namespace

AdaptiveEngine::AdaptiveEngine(const RetrievalEngine& engine,
                               AdaptiveOptions options,
                               const UserProfile* profile)
    : AdaptiveEngine(engine, std::move(options),
                     profile == nullptr
                         ? std::shared_ptr<const UserProfile>()
                         : std::make_shared<const UserProfile>(*profile)) {}

AdaptiveEngine::AdaptiveEngine(const RetrievalEngine& engine,
                               AdaptiveOptions options,
                               std::shared_ptr<const UserProfile> profile)
    : engine_(&engine),
      options_(std::move(options)),
      profile_(std::move(profile)) {
  scheme_ = ResolveScheme(options_.weighting_scheme);
  obs::Registry& registry = obs::Registry::Global();
  metrics_.searches = registry.GetCounter("adaptive.searches");
  metrics_.feedback_expansions =
      registry.GetCounter("adaptive.feedback_expansions");
  metrics_.feedback_skipped =
      registry.GetCounter("adaptive.feedback_skipped");
  metrics_.profile_reranks = registry.GetCounter("adaptive.profile_reranks");
  metrics_.profile_reranks_skipped =
      registry.GetCounter("adaptive.profile_reranks_skipped");
  metrics_.implicit_session_opens =
      registry.GetCounter("adaptive.implicit_session_opens");
  metrics_.search_us = registry.GetHistogram("adaptive.search_us");
  for (size_t i = 0; i < kNumEventTypes; ++i) {
    metrics_.events[i] = registry.GetCounter(
        "adaptive.events." +
        std::string(EventTypeName(static_cast<EventType>(i))));
  }
}

void AdaptiveEngine::SetWeightingScheme(const WeightingScheme* scheme) {
  if (scheme != nullptr) {
    // Legacy non-owning injection: alias with a no-op deleter; the caller
    // guarantees the scheme outlives the engine.
    scheme_ = std::shared_ptr<const WeightingScheme>(
        scheme, [](const WeightingScheme*) {});
  }
}

void AdaptiveEngine::SetWeightingScheme(
    std::shared_ptr<const WeightingScheme> scheme) {
  if (scheme != nullptr) scheme_ = std::move(scheme);
}

SessionContext AdaptiveEngine::MakeContext(std::string session_id,
                                           std::string user_id) const {
  SessionContext ctx;
  ctx.session_id = std::move(session_id);
  ctx.user_id = std::move(user_id);
  ctx.open = true;
  return ctx;
}

void AdaptiveEngine::BeginSession(SessionContext* ctx) const {
  ctx->Reset();
}

void AdaptiveEngine::ObserveEvent(SessionContext* ctx,
                                  const InteractionEvent& event) const {
  const size_t type = static_cast<size_t>(event.type);
  if (type < kNumEventTypes) metrics_.events[type]->Inc();
  ctx->events.push_back(event);
}

std::vector<RelevanceEvidence> AdaptiveEngine::CurrentEvidence(
    const SessionContext& ctx) const {
  ImplicitRelevanceEstimator::Options opts;
  opts.use_ostensive = options_.use_ostensive;
  opts.ostensive_half_life_ms = options_.ostensive_half_life_ms;
  const ImplicitRelevanceEstimator estimator(SchemeFor(ctx), opts);
  const RetrievalEngine* engine = engine_;
  return estimator.Estimate(
      ctx.events,
      ShotLookup([engine](ShotId id) { return engine->FindShot(id); }));
}

const std::vector<RelevanceEvidence>& AdaptiveEngine::CachedEvidence(
    SessionContext* ctx) const {
  if (ctx->evidence_events != ctx->events.size()) {
    ctx->evidence_cache = CurrentEvidence(*ctx);
    ctx->evidence_events = ctx->events.size();
  }
  return ctx->evidence_cache;
}

void AdaptiveEngine::EvidenceToFeedbackDocs(
    const std::vector<RelevanceEvidence>& evidence,
    std::vector<FeedbackDoc>* positive,
    std::vector<FeedbackDoc>* negative) const {
  for (const RelevanceEvidence& e : evidence) {
    const std::string text = engine_->IndexedText(e.shot);
    if (text.empty()) continue;
    if (e.weight > 0.0) {
      positive->push_back(FeedbackDoc{text, e.weight});
    } else if (e.weight < 0.0) {
      negative->push_back(FeedbackDoc{text, -e.weight});
    }
  }
}

ResultList AdaptiveEngine::Search(SessionContext* ctx, const Query& query,
                                  size_t k) const {
  obs::ScopedSpan span("adaptive.search");
  const obs::Stopwatch total;
  metrics_.searches->Inc();
  std::vector<ResultList> lists;
  std::vector<double> weights;

  FaultInjector& faults = FaultInjector::Global();
  if (query.HasText()) {
    TermQuery terms = engine_->ParseText(query.text);
    if (options_.use_implicit) {
      // A faulted feedback backend degrades to the unexpanded query —
      // the user still gets an answer, just a non-adapted one.
      if (faults.enabled() && faults.ShouldFail("adaptive.feedback")) {
        ++ctx->feedback_skipped;
        metrics_.feedback_skipped->Inc();
      } else {
        std::vector<FeedbackDoc> positive;
        std::vector<FeedbackDoc> negative;
        EvidenceToFeedbackDocs(CachedEvidence(ctx), &positive, &negative);
        if (!positive.empty() || !negative.empty()) {
          terms = RocchioExpand(terms, positive, negative,
                                engine_->analyzer(), options_.rocchio);
          metrics_.feedback_expansions->Inc();
          span.Annotate("expanded", "true");
        }
      }
    }
    lists.push_back(engine_->SearchTerms(terms, options_.candidate_pool));
    weights.push_back(engine_->options().text_weight);
  }
  if (query.HasExamples()) {
    std::vector<ResultList> visual;
    visual.reserve(query.examples.size());
    for (const ColorHistogram& example : query.examples) {
      visual.push_back(
          engine_->SearchVisual(example, options_.candidate_pool));
    }
    lists.push_back(CombSum(visual));
    weights.push_back(engine_->options().visual_weight);
  }
  if (lists.empty()) {
    metrics_.search_us->Record(total.ElapsedUs());
    return ResultList();
  }

  ResultList fused = lists.size() == 1 ? std::move(lists.front())
                                       : WeightedLinear(lists, weights);

  const UserProfile* profile = ProfileFor(*ctx);
  if (options_.use_profile && profile != nullptr) {
    if (faults.enabled() && faults.ShouldFail("adaptive.profile")) {
      ++ctx->profile_reranks_skipped;
      metrics_.profile_reranks_skipped->Inc();
    } else {
      ProfileRerankOptions rerank;
      rerank.lambda = options_.profile_lambda;
      const RetrievalEngine* engine = engine_;
      fused = RerankWithProfile(
          fused, *profile,
          ShotLookup([engine](ShotId id) { return engine->FindShot(id); }),
          rerank);
      metrics_.profile_reranks->Inc();
    }
  }
  fused.Truncate(k);
  metrics_.search_us->Record(total.ElapsedUs());
  return fused;
}

HealthReport AdaptiveEngine::Health(const SessionContext& ctx) const {
  HealthReport report = engine_->Health();
  report.profile_available =
      !options_.use_profile || ProfileFor(ctx) != nullptr;
  report.feedback_skipped = ctx.feedback_skipped;
  report.profile_reranks_skipped = ctx.profile_reranks_skipped;
  return report;
}

// --- SearchBackend compatibility adapter ---

ResultList AdaptiveEngine::Search(const Query& query, size_t k) {
  return Search(&bound_, query, k);
}

void AdaptiveEngine::BeginSession() { BeginSession(&bound_); }

void AdaptiveEngine::ObserveEvent(const InteractionEvent& event) {
  if (!bound_.open) {
    // The pre-refactor engine silently accumulated such events into
    // whatever state was lying around. Opening explicitly keeps the event
    // (callers relied on that) but makes the lifecycle violation visible.
    IVR_LOG(Warning) << "ObserveEvent before BeginSession on '" << name()
                     << "': implicitly opening a fresh session";
    ++implicit_session_opens_;
    metrics_.implicit_session_opens->Inc();
    BeginSession(&bound_);
  }
  ObserveEvent(&bound_, event);
}

std::string AdaptiveEngine::name() const {
  std::string n = "adaptive";
  if (options_.use_implicit) {
    n += "+implicit(" + SchemeFor(bound_).name() + ")";
  }
  if (options_.use_profile) n += "+profile";
  if (options_.use_ostensive) n += "+ostensive";
  if (!options_.use_implicit && !options_.use_profile) n += "(passthrough)";
  return n;
}

}  // namespace ivr
