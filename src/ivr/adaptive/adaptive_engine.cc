#include "ivr/adaptive/adaptive_engine.h"

#include <utility>

#include "ivr/core/fault_injection.h"
#include "ivr/profile/profile_reranker.h"
#include "ivr/retrieval/fusion.h"

namespace ivr {

AdaptiveEngine::AdaptiveEngine(const RetrievalEngine& engine,
                               AdaptiveOptions options,
                               const UserProfile* profile)
    : engine_(&engine), options_(std::move(options)), profile_(profile) {
  owned_scheme_ = MakeWeightingScheme(options_.weighting_scheme);
  if (owned_scheme_ == nullptr) {
    // Unknown name: fall back to the linear default rather than failing a
    // constructor; callers can always inject explicitly.
    owned_scheme_ = std::make_unique<LinearWeighting>();
  }
  scheme_ = owned_scheme_.get();
}

void AdaptiveEngine::SetWeightingScheme(const WeightingScheme* scheme) {
  if (scheme != nullptr) scheme_ = scheme;
}

void AdaptiveEngine::BeginSession() { events_.clear(); }

void AdaptiveEngine::ObserveEvent(const InteractionEvent& event) {
  events_.push_back(event);
}

std::vector<RelevanceEvidence> AdaptiveEngine::CurrentEvidence() const {
  ImplicitRelevanceEstimator::Options opts;
  opts.use_ostensive = options_.use_ostensive;
  opts.ostensive_half_life_ms = options_.ostensive_half_life_ms;
  const ImplicitRelevanceEstimator estimator(*scheme_, opts);
  return estimator.Estimate(events_, &engine_->collection());
}

void AdaptiveEngine::EvidenceToFeedbackDocs(
    const std::vector<RelevanceEvidence>& evidence,
    std::vector<FeedbackDoc>* positive,
    std::vector<FeedbackDoc>* negative) const {
  for (const RelevanceEvidence& e : evidence) {
    const std::string text = engine_->IndexedText(e.shot);
    if (text.empty()) continue;
    if (e.weight > 0.0) {
      positive->push_back(FeedbackDoc{text, e.weight});
    } else if (e.weight < 0.0) {
      negative->push_back(FeedbackDoc{text, -e.weight});
    }
  }
}

ResultList AdaptiveEngine::Search(const Query& query, size_t k) {
  std::vector<ResultList> lists;
  std::vector<double> weights;

  FaultInjector& faults = FaultInjector::Global();
  if (query.HasText()) {
    TermQuery terms = engine_->ParseText(query.text);
    if (options_.use_implicit) {
      // A faulted feedback backend degrades to the unexpanded query —
      // the user still gets an answer, just a non-adapted one.
      if (faults.enabled() && faults.ShouldFail("adaptive.feedback")) {
        ++feedback_skipped_;
      } else {
        std::vector<FeedbackDoc> positive;
        std::vector<FeedbackDoc> negative;
        EvidenceToFeedbackDocs(CurrentEvidence(), &positive, &negative);
        if (!positive.empty() || !negative.empty()) {
          terms = RocchioExpand(terms, positive, negative,
                                engine_->analyzer(), options_.rocchio);
        }
      }
    }
    lists.push_back(engine_->SearchTerms(terms, options_.candidate_pool));
    weights.push_back(engine_->options().text_weight);
  }
  if (query.HasExamples()) {
    std::vector<ResultList> visual;
    visual.reserve(query.examples.size());
    for (const ColorHistogram& example : query.examples) {
      visual.push_back(
          engine_->SearchVisual(example, options_.candidate_pool));
    }
    lists.push_back(CombSum(visual));
    weights.push_back(engine_->options().visual_weight);
  }
  if (lists.empty()) return ResultList();

  ResultList fused = lists.size() == 1 ? std::move(lists.front())
                                       : WeightedLinear(lists, weights);

  if (options_.use_profile && profile_ != nullptr) {
    if (faults.enabled() && faults.ShouldFail("adaptive.profile")) {
      ++profile_reranks_skipped_;
    } else {
      ProfileRerankOptions rerank;
      rerank.lambda = options_.profile_lambda;
      fused = RerankWithProfile(fused, *profile_, engine_->collection(),
                                rerank);
    }
  }
  fused.Truncate(k);
  return fused;
}

HealthReport AdaptiveEngine::Health() const {
  HealthReport report = engine_->Health();
  report.profile_available = !options_.use_profile || profile_ != nullptr;
  report.feedback_skipped = feedback_skipped_;
  report.profile_reranks_skipped = profile_reranks_skipped_;
  return report;
}

std::string AdaptiveEngine::name() const {
  std::string n = "adaptive";
  if (options_.use_implicit) {
    n += "+implicit(" + scheme_->name() + ")";
  }
  if (options_.use_profile) n += "+profile";
  if (options_.use_ostensive) n += "+ostensive";
  if (!options_.use_implicit && !options_.use_profile) n += "(passthrough)";
  return n;
}

}  // namespace ivr
