#include "ivr/adaptive/recommender.h"

#include <algorithm>

#include "ivr/retrieval/rocchio.h"

namespace ivr {

std::vector<StoryRecommendation> NewsRecommender::Recommend(
    const UserProfile& profile,
    const std::vector<RelevanceEvidence>& history, size_t top_n,
    const RecommenderOptions& options) const {
  double wp = std::max(0.0, options.profile_weight);
  double wi = std::max(0.0, options.implicit_weight);
  const double total = wp + wi;
  if (total > 0.0) {
    wp /= total;
    wi /= total;
  }

  // Interest centroid from positive implicit history, expressed as a
  // weighted term query over the engine's index.
  TermQuery interest;
  if (wi > 0.0 && !history.empty()) {
    std::vector<FeedbackDoc> positive;
    for (const RelevanceEvidence& e : history) {
      if (e.weight <= 0.0) continue;
      const std::string text = engine_->IndexedText(e.shot);
      if (!text.empty()) positive.push_back(FeedbackDoc{text, e.weight});
    }
    RocchioOptions rocchio;
    rocchio.alpha = 0.0;  // no explicit query; pure interest centroid
    rocchio.beta = 1.0;
    rocchio.gamma = 0.0;
    rocchio.max_expansion_terms = 40;
    interest = RocchioExpand(TermQuery(), positive, {}, engine_->analyzer(),
                             rocchio);
  }

  // Raw per-story components.
  std::vector<StoryRecommendation> out;
  std::vector<double> implicit_raw;
  double implicit_max = 0.0;
  for (const NewsStory& story : collection_->stories()) {
    if (options.day >= 0) {
      Result<const Video*> video = collection_->video(story.video);
      if (!video.ok() || (*video)->day != options.day) continue;
    }
    // Profile affinity: mean over the story's shots.
    double affinity = 0.0;
    double content = 0.0;
    size_t counted = 0;
    for (ShotId shot_id : story.shots) {
      Result<const Shot*> shot = collection_->shot(shot_id);
      if (!shot.ok()) continue;
      affinity += profile.ShotAffinity(**shot);
      if (!interest.empty()) {
        content += engine_->ScoreShot(interest, shot_id);
      }
      ++counted;
    }
    if (counted > 0) {
      affinity /= static_cast<double>(counted);
      content /= static_cast<double>(counted);
    }
    out.push_back(StoryRecommendation{story.id, affinity});  // profile part
    implicit_raw.push_back(content);
    implicit_max = std::max(implicit_max, content);
  }

  // Normalise the implicit component to [0,1] and blend.
  for (size_t i = 0; i < out.size(); ++i) {
    const double implicit_norm =
        implicit_max > 0.0 ? implicit_raw[i] / implicit_max : 0.0;
    out[i].score = wp * out[i].score + wi * implicit_norm;
  }

  std::sort(out.begin(), out.end(),
            [](const StoryRecommendation& a, const StoryRecommendation& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.story < b.story;
            });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

}  // namespace ivr
