#include "ivr/adaptive/profile_learner.h"

#include <algorithm>

namespace ivr {

void ProfileLearner::UpdateFromEvidence(
    const std::vector<RelevanceEvidence>& evidence,
    const VideoCollection& collection, UserProfile* profile) const {
  profile->Decay(std::clamp(options_.retention, 0.0, 1.0));
  for (const RelevanceEvidence& e : evidence) {
    Result<const Shot*> shot = collection.shot(e.shot);
    if (!shot.ok()) continue;
    const TopicLabel topic = (*shot)->primary_topic;
    if (e.weight > 0.0) {
      profile->Reinforce(topic, options_.learning_rate * e.weight);
    } else if (e.weight < 0.0) {
      // Suppress, bounded below at zero via SetInterest semantics.
      const double current = profile->Interest(topic);
      const double reduced =
          current + options_.learning_rate * options_.negative_scale *
                        e.weight;  // e.weight < 0
      profile->SetInterest(topic, std::max(reduced, 0.0));
    }
  }
  profile->Normalize();
}

}  // namespace ivr
