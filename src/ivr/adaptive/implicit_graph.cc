#include "ivr/adaptive/implicit_graph.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "ivr/core/string_util.h"
#include "ivr/feedback/indicators.h"

namespace ivr {

std::string ImplicitGraph::CanonicalKey(
    const std::string& text, std::vector<std::string>* terms_out) const {
  std::vector<std::string> terms = analyzer_.Analyze(text);
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  if (terms_out != nullptr) *terms_out = terms;
  return Join(terms, " ");
}

void ImplicitGraph::AddSession(const std::vector<InteractionEvent>& events,
                               const WeightingScheme& scheme,
                               const VideoCollection* collection) {
  // Queries issued during the session.
  std::vector<std::string> queries;
  for (const InteractionEvent& ev : events) {
    if (ev.type == EventType::kQuerySubmit && !ev.text.empty()) {
      queries.push_back(ev.text);
    }
  }
  // Positive shots with their evidence weight.
  std::vector<std::pair<ShotId, double>> positives;
  for (const auto& [shot, ind] : AggregateIndicators(events, collection)) {
    const double w = scheme.Score(ind);
    if (w > 0.0) positives.emplace_back(shot, w);
  }
  if (positives.empty()) return;

  // query -> shot edges.
  for (const std::string& query : queries) {
    std::vector<std::string> terms;
    const std::string key = CanonicalKey(query, &terms);
    if (key.empty()) continue;
    QueryNode& node = query_nodes_[key];
    if (node.terms.empty()) node.terms = std::move(terms);
    for (const auto& [shot, w] : positives) {
      node.shot_edges[shot] += w;
    }
  }
  // shot <-> shot co-interaction edges (symmetric).
  for (size_t i = 0; i < positives.size(); ++i) {
    for (size_t j = 0; j < positives.size(); ++j) {
      if (i == j) continue;
      shot_edges_[positives[i].first][positives[j].first] +=
          std::min(positives[i].second, positives[j].second);
    }
  }
}

ResultList ImplicitGraph::Recommend(const std::string& query_text, size_t k,
                                    double damping) const {
  std::vector<std::string> terms;
  CanonicalKey(query_text, &terms);
  if (terms.empty()) return ResultList();
  const std::set<std::string> query_terms(terms.begin(), terms.end());

  // Hop 0: activate query nodes by Jaccard overlap of term sets.
  std::unordered_map<ShotId, double> activation;
  for (const auto& [key, node] : query_nodes_) {
    (void)key;
    size_t common = 0;
    for (const std::string& t : node.terms) {
      if (query_terms.count(t) > 0) ++common;
    }
    if (common == 0) continue;
    const size_t unioned = node.terms.size() + query_terms.size() - common;
    const double act =
        static_cast<double>(common) / static_cast<double>(unioned);
    // Hop 1: query -> shot.
    for (const auto& [shot, w] : node.shot_edges) {
      activation[shot] += act * w;
    }
  }
  // Hop 2: shot -> shot, damped, from the hop-1 activation snapshot.
  if (damping > 0.0) {
    const std::unordered_map<ShotId, double> hop1 = activation;
    for (const auto& [shot, act] : hop1) {
      auto it = shot_edges_.find(shot);
      if (it == shot_edges_.end()) continue;
      // Normalise outgoing mass so hubs do not dominate.
      double out_total = 0.0;
      for (const auto& [to, w] : it->second) {
        (void)to;
        out_total += w;
      }
      if (out_total <= 0.0) continue;
      for (const auto& [to, w] : it->second) {
        activation[to] += damping * act * (w / out_total);
      }
    }
  }

  std::vector<RankedShot> items;
  items.reserve(activation.size());
  for (const auto& [shot, act] : activation) {
    items.push_back(RankedShot{shot, act});
  }
  ResultList out(std::move(items));
  out.Truncate(k);
  return out;
}

std::vector<ImplicitGraph::QuerySuggestion> ImplicitGraph::SuggestQueries(
    const std::string& query_text, size_t k) const {
  std::vector<std::string> terms;
  const std::string self_key = CanonicalKey(query_text, &terms);
  if (terms.empty()) return {};
  const std::set<std::string> query_terms(terms.begin(), terms.end());

  // The input query's "outcome profile": the union of shot edges of the
  // nodes it overlaps with, activation-weighted.
  std::unordered_map<ShotId, double> own_shots;
  for (const auto& [key, node] : query_nodes_) {
    if (key == self_key) {
      for (const auto& [shot, w] : node.shot_edges) {
        own_shots[shot] += w;
      }
      continue;
    }
    size_t common = 0;
    for (const std::string& t : node.terms) {
      if (query_terms.count(t) > 0) ++common;
    }
    if (common == 0) continue;
    const double act =
        static_cast<double>(common) /
        static_cast<double>(node.terms.size() + query_terms.size() -
                            common);
    for (const auto& [shot, w] : node.shot_edges) {
      own_shots[shot] += act * w;
    }
  }

  auto cosine = [](const std::unordered_map<ShotId, double>& a,
                   const std::unordered_map<ShotId, double>& b) {
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    for (const auto& [shot, w] : a) {
      na += w * w;
      auto it = b.find(shot);
      if (it != b.end()) dot += w * it->second;
    }
    for (const auto& [shot, w] : b) {
      (void)shot;
      nb += w * w;
    }
    if (na <= 0.0 || nb <= 0.0) return 0.0;
    return dot / std::sqrt(na * nb);
  };

  std::vector<QuerySuggestion> out;
  for (const auto& [key, node] : query_nodes_) {
    if (key == self_key) continue;
    size_t common = 0;
    for (const std::string& t : node.terms) {
      if (query_terms.count(t) > 0) ++common;
    }
    const double jaccard =
        static_cast<double>(common) /
        static_cast<double>(node.terms.size() + query_terms.size() -
                            common);
    const double outcome = cosine(own_shots, node.shot_edges);
    const double score = 0.5 * jaccard + 0.5 * outcome;
    if (score <= 0.0) continue;
    out.push_back(QuerySuggestion{key, score});
  }
  std::sort(out.begin(), out.end(),
            [](const QuerySuggestion& a, const QuerySuggestion& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.query < b.query;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

size_t ImplicitGraph::num_shot_nodes() const {
  std::set<ShotId> shots;
  for (const auto& [key, node] : query_nodes_) {
    (void)key;
    for (const auto& [shot, w] : node.shot_edges) {
      (void)w;
      shots.insert(shot);
    }
  }
  for (const auto& [from, edges] : shot_edges_) {
    shots.insert(from);
    for (const auto& [to, w] : edges) {
      (void)w;
      shots.insert(to);
    }
  }
  return shots.size();
}

size_t ImplicitGraph::num_edges() const {
  size_t n = 0;
  for (const auto& [key, node] : query_nodes_) {
    (void)key;
    n += node.shot_edges.size();
  }
  for (const auto& [from, edges] : shot_edges_) {
    (void)from;
    n += edges.size();
  }
  return n;
}

}  // namespace ivr
