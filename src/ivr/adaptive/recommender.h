#ifndef IVR_ADAPTIVE_RECOMMENDER_H_
#define IVR_ADAPTIVE_RECOMMENDER_H_

#include <vector>

#include "ivr/feedback/estimator.h"
#include "ivr/profile/user_profile.h"
#include "ivr/retrieval/engine.h"
#include "ivr/video/collection.h"

namespace ivr {

/// A scored story suggestion.
struct StoryRecommendation {
  StoryId story = kInvalidStoryId;
  double score = 0.0;
};

struct RecommenderOptions {
  /// Mixing weights between declared (profile) and observed (implicit
  /// history) interest; normalised internally.
  double profile_weight = 0.5;
  double implicit_weight = 0.5;
  /// Only recommend stories from this broadcast day; -1 = whole archive.
  int32_t day = -1;
};

/// The paper's Section 3 scenario: "automatically identify news stories
/// which are of interest for the user and recommend them to him". Scores
/// every story by combining
///   * the static profile's affinity for the story's shots, and
///   * content similarity between the story and the shots the user's
///     implicit history marked as positively interesting (a Rocchio-style
///     interest centroid queried against the engine's index).
class NewsRecommender {
 public:
  /// Both references must outlive the recommender.
  NewsRecommender(const VideoCollection& collection,
                  const RetrievalEngine& engine)
      : collection_(&collection), engine_(&engine) {}

  /// Top-n story recommendations, descending score (ties by story id).
  /// `history` is signed implicit evidence from past sessions; pass empty
  /// when only the profile is available.
  std::vector<StoryRecommendation> Recommend(
      const UserProfile& profile,
      const std::vector<RelevanceEvidence>& history, size_t top_n,
      const RecommenderOptions& options = RecommenderOptions()) const;

 private:
  const VideoCollection* collection_;
  const RetrievalEngine* engine_;
};

}  // namespace ivr

#endif  // IVR_ADAPTIVE_RECOMMENDER_H_
