#ifndef IVR_ADAPTIVE_IMPLICIT_GRAPH_H_
#define IVR_ADAPTIVE_IMPLICIT_GRAPH_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ivr/feedback/events.h"
#include "ivr/feedback/weighting.h"
#include "ivr/retrieval/result_list.h"
#include "ivr/text/analyzer.h"
#include "ivr/video/collection.h"

namespace ivr {

/// Community-based implicit feedback (Vallet, Hopfgartner & Jose [21]):
/// a graph mined from the interaction logs of *previous* users, used "to
/// aid users in their search tasks". Nodes are normalised queries and
/// shots; edges carry accumulated positive implicit evidence:
///   query --w--> shot   when a session that issued the query went on to
///                       interact positively with the shot;
///   shot  --w--> shot   when one session interacted positively with both
///                       (co-interaction).
/// Recommendation is two-hop spreading activation from the query nodes
/// matching the new user's query.
class ImplicitGraph {
 public:
  explicit ImplicitGraph(Analyzer analyzer = Analyzer())
      : analyzer_(std::move(analyzer)) {}

  /// Mines one past session: aggregates its events with `scheme`, then
  /// connects each query issued in the session to the positively-scored
  /// shots, and positive shots to each other. The collection may be
  /// nullptr (play fractions then unavailable to the scheme).
  void AddSession(const std::vector<InteractionEvent>& events,
                  const WeightingScheme& scheme,
                  const VideoCollection* collection);

  /// Recommends shots for a fresh query by spreading activation:
  /// activation of a known query node = term-set Jaccard overlap with the
  /// new query; hop 1 activates shots via query->shot edges; hop 2 adds
  /// damped shot->shot mass. Returns the top-k activated shots.
  ResultList Recommend(const std::string& query_text, size_t k,
                       double damping = 0.5) const;

  /// A related past query with its similarity to the input.
  struct QuerySuggestion {
    std::string query;   ///< canonical form (sorted analysed terms)
    double score = 0.0;  ///< term overlap + shared-outcome similarity
  };

  /// Suggests queries other users issued for similar needs: past query
  /// nodes ranked by term-set Jaccard overlap plus the cosine overlap of
  /// their positively-evidenced shot sets with those of the matching
  /// nodes ("people who searched like you also tried..."). The input's
  /// own canonical form is excluded.
  std::vector<QuerySuggestion> SuggestQueries(
      const std::string& query_text, size_t k) const;

  size_t num_query_nodes() const { return query_nodes_.size(); }
  size_t num_shot_nodes() const;
  size_t num_edges() const;

 private:
  struct QueryNode {
    std::vector<std::string> terms;  // sorted unique analysed terms
    std::unordered_map<ShotId, double> shot_edges;
  };

  /// Canonical key of a query: sorted unique analysed terms joined by ' '.
  std::string CanonicalKey(const std::string& text,
                           std::vector<std::string>* terms_out) const;

  Analyzer analyzer_;
  std::map<std::string, QueryNode> query_nodes_;
  std::map<ShotId, std::unordered_map<ShotId, double>> shot_edges_;
};

}  // namespace ivr

#endif  // IVR_ADAPTIVE_IMPLICIT_GRAPH_H_
