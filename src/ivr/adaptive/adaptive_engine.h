#ifndef IVR_ADAPTIVE_ADAPTIVE_ENGINE_H_
#define IVR_ADAPTIVE_ADAPTIVE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ivr/adaptive/session_context.h"
#include "ivr/feedback/backend.h"
#include "ivr/obs/metrics.h"
#include "ivr/feedback/estimator.h"
#include "ivr/feedback/weighting.h"
#include "ivr/profile/user_profile.h"
#include "ivr/retrieval/rocchio.h"

namespace ivr {

/// Configuration of the adaptive video retrieval model — the combination
/// the paper proposes to study: static user profiles, implicit relevance
/// feedback, and their fusion, with optional ostensive (recency) decay.
struct AdaptiveOptions {
  /// Use within-session implicit feedback for Rocchio query expansion.
  bool use_implicit = true;
  /// Re-rank with the user's static profile.
  bool use_profile = false;
  /// Apply ostensive decay to implicit evidence (Campbell & van
  /// Rijsbergen): recent interactions outweigh old ones.
  bool use_ostensive = false;
  TimeMs ostensive_half_life_ms = 2 * kMillisPerMinute;

  /// Weighting scheme name for implicit indicators ("binary" | "uniform" |
  /// "linear"); ignored when a scheme is injected via SetWeightingScheme.
  std::string weighting_scheme = "linear";

  RocchioOptions rocchio;

  /// Profile interpolation weight when use_profile is set.
  double profile_lambda = 0.25;

  /// Candidate depth fetched from the base engine before rerank/truncate.
  size_t candidate_pool = 500;
};

/// The adaptive retrieval model: wraps a static RetrievalEngine, watches
/// the interaction stream of a session, infers graded relevance evidence
/// from it, and answers subsequent queries with feedback-expanded queries
/// re-ranked by the user's static profile. The goal, per the paper, is
/// "to significantly reduce the number of steps the user has to perform
/// before he retrieves satisfying search results".
///
/// Since the multi-session refactor the engine itself is a STATELESS
/// policy object: all mutable per-session state (events, evidence cache,
/// degraded-mode counters) lives in a SessionContext, and the context-
/// taking overloads below are const and safe to call from any number of
/// threads concurrently as long as each context is driven by one caller
/// at a time. This is what lets one engine serve every session of a
/// SessionManager over one shared index.
///
/// For compatibility the engine still implements SearchBackend by binding
/// one internal context — the classic "one object, one session" API every
/// existing experiment and tool uses.
class AdaptiveEngine : public SearchBackend {
 public:
  /// `engine` must outlive this object. `profile` may be nullptr (no
  /// profile available); when non-null it is COPIED into an owned
  /// snapshot, so the caller's profile is free to change or die — sessions
  /// can never dangle on it.
  AdaptiveEngine(const RetrievalEngine& engine, AdaptiveOptions options,
                 const UserProfile* profile);

  /// Shared-ownership variant: the engine holds a reference to `profile`
  /// for its whole lifetime (null = no profile).
  AdaptiveEngine(const RetrievalEngine& engine, AdaptiveOptions options,
                 std::shared_ptr<const UserProfile> profile);

  /// Replaces the indicator weighting scheme (e.g. with a trained
  /// LearnedWeighting). The raw-pointer overload does NOT take ownership
  /// (legacy contract: the scheme must outlive this object); prefer the
  /// shared_ptr overload, which keeps the scheme alive. Null is ignored.
  void SetWeightingScheme(const WeightingScheme* scheme);
  void SetWeightingScheme(std::shared_ptr<const WeightingScheme> scheme);

  // --- stateless per-session API (const; thread-safe across contexts) ---

  /// A fresh open context bound to this engine's defaults.
  SessionContext MakeContext(std::string session_id,
                             std::string user_id) const;

  /// Resets `ctx` to a fresh session (keeps profile/scheme bindings and
  /// lifetime counters) and marks it open.
  void BeginSession(SessionContext* ctx) const;

  /// Records one interaction event into `ctx`.
  void ObserveEvent(SessionContext* ctx,
                    const InteractionEvent& event) const;

  /// Answers a query for the session in `ctx`: implicit-feedback Rocchio
  /// expansion from the context's evidence, multimodal fusion, profile
  /// re-ranking. Mutates only `ctx` (evidence cache, degraded counters).
  ResultList Search(SessionContext* ctx, const Query& query,
                    size_t k) const;

  /// Evidence the engine would act on right now for `ctx` (uncached).
  std::vector<RelevanceEvidence> CurrentEvidence(
      const SessionContext& ctx) const;

  /// The base engine's report plus `ctx`'s personalisation counters.
  HealthReport Health(const SessionContext& ctx) const;

  // --- SearchBackend: compatibility adapter over the bound context ---
  ResultList Search(const Query& query, size_t k) override;
  /// An event observed before any BeginSession would previously mutate
  /// half-initialised state silently; now the adapter lazily opens a
  /// session with a logged warning (counted in implicit_session_opens()).
  void ObserveEvent(const InteractionEvent& event) override;
  void BeginSession() override;
  std::string name() const override;
  HealthReport Health() const override { return Health(bound_); }

  // --- introspection (used by experiments) ---
  const std::vector<InteractionEvent>& session_events() const {
    return bound_.events;
  }
  /// Evidence for the bound compatibility context.
  std::vector<RelevanceEvidence> CurrentEvidence() const {
    return CurrentEvidence(bound_);
  }
  /// The adapter's bound session context.
  const SessionContext& bound_context() const { return bound_; }
  /// Times the adapter had to lazily open a session on a stray
  /// ObserveEvent (see the override above).
  uint64_t implicit_session_opens() const {
    return implicit_session_opens_.load();
  }
  const AdaptiveOptions& options() const { return options_; }
  const RetrievalEngine& engine() const { return *engine_; }
  /// The engine-default profile snapshot (null when none).
  std::shared_ptr<const UserProfile> default_profile() const {
    return profile_;
  }

 private:
  /// Effective profile/scheme for a context: its own binding, else the
  /// engine default.
  const UserProfile* ProfileFor(const SessionContext& ctx) const {
    return ctx.profile != nullptr ? ctx.profile.get() : profile_.get();
  }
  const WeightingScheme& SchemeFor(const SessionContext& ctx) const {
    return ctx.scheme != nullptr ? *ctx.scheme : *scheme_;
  }

  /// Memoised evidence: recomputed only when `ctx` gained events.
  const std::vector<RelevanceEvidence>& CachedEvidence(
      SessionContext* ctx) const;

  /// Splits evidence into Rocchio feedback documents.
  void EvidenceToFeedbackDocs(const std::vector<RelevanceEvidence>& evidence,
                              std::vector<FeedbackDoc>* positive,
                              std::vector<FeedbackDoc>* negative) const;

  // Immutable after construction (SetWeightingScheme is a pre-session
  // configuration step, not a concurrent mutation path).
  const RetrievalEngine* engine_;
  AdaptiveOptions options_;
  std::shared_ptr<const UserProfile> profile_;
  std::shared_ptr<const WeightingScheme> scheme_;

  // Compatibility adapter state: the one context the SearchBackend
  // overrides bind. Untouched by the const context-taking API.
  SessionContext bound_;
  // Relaxed-atomic: incremented on the adapter's event path while
  // Health()/monitoring threads may read it.
  obs::RelaxedU64 implicit_session_opens_ = 0;

  /// Registry pointers resolved once at construction (one engine serves
  /// many sessions, so every session shares these).
  static constexpr size_t kNumEventTypes =
      static_cast<size_t>(EventType::kSessionEnd) + 1;
  struct Metrics {
    obs::Counter* searches;
    obs::Counter* feedback_expansions;
    obs::Counter* feedback_skipped;
    obs::Counter* profile_reranks;
    obs::Counter* profile_reranks_skipped;
    obs::Counter* implicit_session_opens;
    obs::LatencyHistogram* search_us;
    obs::Counter* events[kNumEventTypes];
  };
  Metrics metrics_;
};

}  // namespace ivr

#endif  // IVR_ADAPTIVE_ADAPTIVE_ENGINE_H_
