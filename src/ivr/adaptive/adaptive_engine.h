#ifndef IVR_ADAPTIVE_ADAPTIVE_ENGINE_H_
#define IVR_ADAPTIVE_ADAPTIVE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ivr/feedback/backend.h"
#include "ivr/feedback/estimator.h"
#include "ivr/feedback/weighting.h"
#include "ivr/profile/user_profile.h"
#include "ivr/retrieval/rocchio.h"

namespace ivr {

/// Configuration of the adaptive video retrieval model — the combination
/// the paper proposes to study: static user profiles, implicit relevance
/// feedback, and their fusion, with optional ostensive (recency) decay.
struct AdaptiveOptions {
  /// Use within-session implicit feedback for Rocchio query expansion.
  bool use_implicit = true;
  /// Re-rank with the user's static profile.
  bool use_profile = false;
  /// Apply ostensive decay to implicit evidence (Campbell & van
  /// Rijsbergen): recent interactions outweigh old ones.
  bool use_ostensive = false;
  TimeMs ostensive_half_life_ms = 2 * kMillisPerMinute;

  /// Weighting scheme name for implicit indicators ("binary" | "uniform" |
  /// "linear"); ignored when a scheme is injected via SetWeightingScheme.
  std::string weighting_scheme = "linear";

  RocchioOptions rocchio;

  /// Profile interpolation weight when use_profile is set.
  double profile_lambda = 0.25;

  /// Candidate depth fetched from the base engine before rerank/truncate.
  size_t candidate_pool = 500;
};

/// The adaptive retrieval model: wraps a static RetrievalEngine, watches
/// the interaction stream of the current session, infers graded relevance
/// evidence from it, and answers subsequent queries with feedback-expanded
/// queries re-ranked by the user's static profile. The goal, per the
/// paper, is "to significantly reduce the number of steps the user has to
/// perform before he retrieves satisfying search results".
class AdaptiveEngine : public SearchBackend {
 public:
  /// `engine` must outlive this object; `profile` may be nullptr (no
  /// profile available) and must outlive this object otherwise.
  AdaptiveEngine(const RetrievalEngine& engine, AdaptiveOptions options,
                 const UserProfile* profile);

  /// Replaces the indicator weighting scheme (e.g. with a trained
  /// LearnedWeighting). The scheme must outlive this object.
  void SetWeightingScheme(const WeightingScheme* scheme);

  // --- SearchBackend ---
  ResultList Search(const Query& query, size_t k) override;
  void ObserveEvent(const InteractionEvent& event) override;
  void BeginSession() override;
  std::string name() const override;

  /// The base engine's report plus this layer's personalisation counters:
  /// searches served without feedback expansion or profile re-ranking
  /// because that step faulted (sites "adaptive.feedback" /
  /// "adaptive.profile") — degraded to non-personalised, never failed.
  HealthReport Health() const override;

  // --- introspection (used by experiments) ---
  const std::vector<InteractionEvent>& session_events() const {
    return events_;
  }
  /// Evidence the engine would act on right now.
  std::vector<RelevanceEvidence> CurrentEvidence() const;
  const AdaptiveOptions& options() const { return options_; }
  const RetrievalEngine& engine() const { return *engine_; }

 private:
  /// Splits evidence into Rocchio feedback documents.
  void EvidenceToFeedbackDocs(const std::vector<RelevanceEvidence>& evidence,
                              std::vector<FeedbackDoc>* positive,
                              std::vector<FeedbackDoc>* negative) const;

  const RetrievalEngine* engine_;
  AdaptiveOptions options_;
  const UserProfile* profile_;
  std::unique_ptr<WeightingScheme> owned_scheme_;
  const WeightingScheme* scheme_;
  std::vector<InteractionEvent> events_;
  // Plain counters: an AdaptiveEngine is per-session single-threaded.
  uint64_t feedback_skipped_ = 0;
  uint64_t profile_reranks_skipped_ = 0;
};

}  // namespace ivr

#endif  // IVR_ADAPTIVE_ADAPTIVE_ENGINE_H_
