#include "ivr/ingest/manifest.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "ivr/core/checksum.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"

namespace ivr {
namespace {

constexpr std::string_view kManifestFormat = "manifest";

Status ValidateRecord(const ManifestRecord& record) {
  for (const std::string& name : record.segments) {
    if (name.empty() || name.find('\n') != std::string::npos ||
        name.find('/') != std::string::npos) {
      return Status::InvalidArgument("bad segment name in manifest: '" +
                                     name + "'");
    }
  }
  return Status::OK();
}

}  // namespace

std::string ManifestLog::RecordToPayload(const ManifestRecord& record) {
  std::string payload = "generation " + std::to_string(record.generation) +
                        "\nsegments " +
                        std::to_string(record.segments.size()) + "\n";
  for (const std::string& name : record.segments) {
    payload += name;
    payload += "\n";
  }
  return payload;
}

Result<ManifestRecord> ManifestLog::PayloadToRecord(
    const std::string& payload) {
  const std::vector<std::string> lines = Split(payload, '\n');
  // Split keeps the empty field after the trailing newline.
  if (lines.size() < 3) {
    return Status::Corruption("manifest record too short");
  }
  const std::vector<std::string> gen_fields = SplitWhitespace(lines[0]);
  if (gen_fields.size() != 2 || gen_fields[0] != "generation") {
    return Status::Corruption("manifest record missing generation header");
  }
  IVR_ASSIGN_OR_RETURN(const int64_t generation, ParseInt(gen_fields[1]));
  if (generation < 0) {
    return Status::Corruption("negative manifest generation");
  }
  const std::vector<std::string> seg_fields = SplitWhitespace(lines[1]);
  if (seg_fields.size() != 2 || seg_fields[0] != "segments") {
    return Status::Corruption("manifest record missing segments header");
  }
  IVR_ASSIGN_OR_RETURN(const int64_t count, ParseInt(seg_fields[1]));
  if (count < 0 || static_cast<size_t>(count) + 3 != lines.size()) {
    return Status::Corruption("manifest segment count disagrees with body");
  }
  ManifestRecord record;
  record.generation = static_cast<uint64_t>(generation);
  for (int64_t i = 0; i < count; ++i) {
    const std::string& name = lines[2 + static_cast<size_t>(i)];
    if (name.empty()) return Status::Corruption("empty manifest segment");
    record.segments.push_back(name);
  }
  return record;
}

Status ManifestLog::Append(const ManifestRecord& record) {
  IVR_RETURN_IF_ERROR(ValidateRecord(record));
  IVR_RETURN_IF_ERROR(FaultInjector::Global().MaybeFail("ingest.manifest"));
  const std::string chunk =
      WrapEnvelope(kManifestFormat, RecordToPayload(record));
  // When O_CREAT below actually creates the journal, the new directory
  // entry needs its own fsync: the record's fsync makes the bytes
  // durable, not the file's existence. Detect creation up front so the
  // directory sync can run after a fully successful append.
  const bool created = !FileExists(path_);
  const int fd = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open " + path_ + " for appending: " +
                           std::strerror(errno));
  }
  size_t offset = 0;
  while (offset < chunk.size()) {
    const ssize_t written =
        ::write(fd, chunk.data() + offset, chunk.size() - offset);
    if (written < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::IOError("append failed for " + path_ +
                                            ": " + std::strerror(errno));
      ::close(fd);
      return status;
    }
    offset += static_cast<size_t>(written);
  }
  if (::fsync(fd) != 0) {
    const Status status = Status::IOError("fsync failed for " + path_ +
                                          ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::close(fd) != 0) {
    return Status::IOError("close failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  if (created) {
    // First append ever: a crash before the directory entry is durable
    // would lose the whole journal (and with it the commit this append
    // represents) even though the chunk itself was fsynced.
    IVR_RETURN_IF_ERROR(SyncParentDirectory(path_));
  }
  return Status::OK();
}

Status ManifestLog::Rewrite(const ManifestRecord& record) {
  IVR_RETURN_IF_ERROR(ValidateRecord(record));
  IVR_RETURN_IF_ERROR(FaultInjector::Global().MaybeFail("ingest.manifest"));
  return WriteFileAtomic(
      path_, WrapEnvelope(kManifestFormat, RecordToPayload(record)));
}

Result<ManifestLoadResult> ManifestLog::Load() const {
  ManifestLoadResult result;
  if (!FileExists(path_)) return result;
  IVR_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path_));
  size_t pos = 0;
  while (pos < text.size()) {
    size_t consumed = 0;
    Result<std::string> payload = UnwrapEnvelopePrefix(
        kManifestFormat, std::string_view(text).substr(pos), &consumed);
    if (!payload.ok()) {
      // Torn or corrupt chunk. Later chunks are unreachable (chunk
      // boundaries are only known from intact headers), so the replay
      // stops here; the caller serves the last intact generation.
      result.torn_chunks += 1;
      break;
    }
    Result<ManifestRecord> record = PayloadToRecord(payload.value());
    if (!record.ok()) {
      result.torn_chunks += 1;
      break;
    }
    result.records.push_back(std::move(record).value());
    pos += consumed;
  }
  return result;
}

}  // namespace ivr
