#include "ivr/ingest/live_engine.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/logging.h"
#include "ivr/core/string_util.h"
#include "ivr/ingest/segment.h"

namespace ivr {
namespace {

/// Appends every video of `src` (with its stories and shots) to `dst`,
/// offsetting the dense ids. Because Add* assigns id = current size, the
/// remap of any id is a pure offset addition, which keeps appending
/// deterministic and order-preserving.
void AppendCollection(const VideoCollection& src, VideoCollection* dst) {
  const VideoId video_off = static_cast<VideoId>(dst->num_videos());
  const StoryId story_off = static_cast<StoryId>(dst->num_stories());
  const ShotId shot_off = static_cast<ShotId>(dst->num_shots());
  for (const Video& v : src.videos()) {
    Video copy = v;
    copy.stories.clear();
    copy.stories.reserve(v.stories.size());
    for (const StoryId s : v.stories) copy.stories.push_back(s + story_off);
    dst->AddVideo(std::move(copy));
  }
  for (const NewsStory& s : src.stories()) {
    NewsStory copy = s;
    copy.video = s.video + video_off;
    copy.shots.clear();
    copy.shots.reserve(s.shots.size());
    for (const ShotId sh : s.shots) copy.shots.push_back(sh + shot_off);
    dst->AddStory(std::move(copy));
  }
  for (const Shot& sh : src.shots()) {
    Shot copy = sh;
    copy.story = sh.story + story_off;
    copy.video = sh.video + video_off;
    dst->AddShot(std::move(copy));
  }
}

/// Copies one video of `src` into `dst` with dst-local dense ids. Every
/// copied external id (and the video name) is prefixed with `ns`: the
/// document store requires globally unique externals, and source
/// collections routinely reuse the generator's "vNNN/..." scheme, so the
/// live index namespaces each appended video by the generation it will
/// publish into. Returns the number of shots copied.
Result<size_t> CopyVideoInto(const VideoCollection& src, VideoId id,
                             const std::string& ns, VideoCollection* dst) {
  IVR_ASSIGN_OR_RETURN(const Video* video, src.video(id));
  Video vcopy = *video;
  vcopy.name = ns + video->name;
  vcopy.stories.clear();
  const VideoId new_video = dst->AddVideo(std::move(vcopy));
  size_t shots = 0;
  for (const StoryId story_id : video->stories) {
    IVR_ASSIGN_OR_RETURN(const NewsStory* story, src.story(story_id));
    NewsStory scopy = *story;
    scopy.video = new_video;
    scopy.shots.clear();
    const StoryId new_story = dst->AddStory(std::move(scopy));
    dst->mutable_video(new_video)->stories.push_back(new_story);
    for (const ShotId shot_id : story->shots) {
      IVR_ASSIGN_OR_RETURN(const Shot* shot, src.shot(shot_id));
      Shot shcopy = *shot;
      shcopy.external_id = ns + shot->external_id;
      shcopy.story = new_story;
      shcopy.video = new_video;
      const ShotId new_shot = dst->AddShot(std::move(shcopy));
      dst->mutable_story(new_story)->shots.push_back(new_shot);
      ++shots;
    }
  }
  return shots;
}

}  // namespace

std::string LiveEngine::ManifestPath(const std::string& dir) {
  return dir + "/MANIFEST";
}

std::string LiveEngine::SegmentName(uint64_t gen) {
  return StrFormat("seg-%06llu.seg", static_cast<unsigned long long>(gen));
}

LiveEngine::LiveEngine(GeneratedCollection base, IngestOptions options)
    : options_(std::move(options)),
      manifest_(ManifestPath(options_.dir)),
      base_(std::move(base)) {
  obs::Registry& reg = obs::Registry::Global();
  metrics_.shots_appended = reg.GetCounter("ingest.shots_appended");
  metrics_.publishes = reg.GetCounter("ingest.publishes");
  metrics_.publish_failures = reg.GetCounter("ingest.publish_failures");
  metrics_.merges = reg.GetCounter("ingest.merges");
  metrics_.merge_failures = reg.GetCounter("ingest.merge_failures");
  metrics_.orphan_segments_dropped =
      reg.GetCounter("ingest.orphan_segments_dropped");
  metrics_.torn_segments_dropped =
      reg.GetCounter("ingest.torn_segments_dropped");
  metrics_.torn_manifest_chunks =
      reg.GetCounter("ingest.torn_manifest_chunks");
  metrics_.generation = reg.GetGauge("ingest.generation");
  metrics_.segments = reg.GetGauge("ingest.segments");
  metrics_.pending_shots = reg.GetGauge("ingest.pending_shots");
  metrics_.live_shots = reg.GetGauge("ingest.live_shots");
  metrics_.publish_us = reg.GetHistogram("ingest.publish_us");
  metrics_.merge_us = reg.GetHistogram("ingest.merge_us");
}

LiveEngine::~LiveEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_merge_ = true;
  }
  merge_cv_.notify_all();
  if (merge_thread_.joinable()) merge_thread_.join();
}

Result<std::unique_ptr<LiveEngine>> LiveEngine::Open(GeneratedCollection base,
                                                     IngestOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("IngestOptions.dir must be set");
  }
  IVR_RETURN_IF_ERROR(MakeDirectory(options.dir));
  std::unique_ptr<LiveEngine> live(
      new LiveEngine(std::move(base), std::move(options)));
  {
    std::lock_guard<std::mutex> lock(live->mu_);
    live->ResetPendingLocked();
    IVR_RETURN_IF_ERROR(live->ReplayManifestLocked());
    IVR_ASSIGN_OR_RETURN(
        std::shared_ptr<const EngineSnapshot> snapshot,
        live->BuildSnapshotLocked(live->generation_,
                                  /*include_pending=*/false));
    live->StoreSnapshot(std::move(snapshot));
    live->UpdateGaugesLocked();
  }
  if (live->options_.background_merge) {
    live->merge_thread_ = std::thread(&LiveEngine::MergeThreadMain,
                                      live.get());
  }
  return live;
}

void LiveEngine::ResetPendingLocked() {
  pending_ = GeneratedCollection();
  pending_.collection.SetTopicNames(base_.collection.topic_names());
}

Status LiveEngine::ReplayManifestLocked() {
  IVR_ASSIGN_OR_RETURN(const ManifestLoadResult loaded, manifest_.Load());
  torn_manifest_chunks_ = loaded.torn_chunks;
  metrics_.torn_manifest_chunks->Inc(loaded.torn_chunks);
  if (loaded.torn_chunks > 0) {
    IVR_LOG(Warning) << "ingest: dropped torn manifest tail of "
                     << manifest_.path();
  }

  uint64_t max_generation = 0;
  for (const ManifestRecord& record : loaded.records) {
    max_generation = std::max(max_generation, record.generation);
  }

  // Newest fully-loadable record wins; segments that fail their checksum
  // are counted once and poison every record referencing them.
  std::unordered_map<std::string, GeneratedCollection> cache;
  std::unordered_set<std::string> bad;
  const ManifestRecord* serving = nullptr;
  for (size_t i = loaded.records.size(); i-- > 0;) {
    const ManifestRecord& record = loaded.records[i];
    bool ok = true;
    for (const std::string& name : record.segments) {
      if (bad.count(name) > 0) {
        ok = false;
        continue;
      }
      if (cache.count(name) > 0) continue;
      Result<GeneratedCollection> seg =
          LoadSegment(options_.dir + "/" + name);
      if (seg.ok()) {
        cache.emplace(name, std::move(seg).value());
      } else {
        bad.insert(name);
        ++torn_segments_dropped_;
        metrics_.torn_segments_dropped->Inc();
        IVR_LOG(Warning) << "ingest: dropped torn segment " << name << " ("
                         << seg.status().ToString() << ")";
        ok = false;
      }
    }
    if (ok) {
      serving = &record;
      break;
    }
  }

  std::unordered_set<std::string> served_names;
  if (serving != nullptr) {
    generation_ = serving->generation;
    for (const std::string& name : serving->segments) {
      served_names.insert(name);
      segments_.push_back(Segment{name, std::move(cache.at(name))});
    }
    if (serving != &loaded.records.back()) {
      IVR_LOG(Warning) << "ingest: salvage fell back to generation "
                       << generation_ << " of " << max_generation;
    }
  } else {
    generation_ = 0;
    if (!loaded.records.empty()) {
      IVR_LOG(Warning)
          << "ingest: no manifest record fully loadable; serving base only";
    }
  }
  next_generation_ = std::max(max_generation, generation_) + 1;

  // Segment files no intact record reaches are orphans (a crash between
  // segment write and manifest append leaves exactly this); they are
  // ignored, counted, and eventually overwritten by a future publish.
  IVR_ASSIGN_OR_RETURN(const std::vector<std::string> entries,
                       ListDirectory(options_.dir));
  for (const std::string& name : entries) {
    if (!EndsWith(name, ".seg")) continue;
    if (served_names.count(name) > 0 || bad.count(name) > 0) continue;
    ++orphan_segments_dropped_;
    metrics_.orphan_segments_dropped->Inc();
    IVR_LOG(Warning) << "ingest: ignoring orphan segment " << name;
  }
  return Status::OK();
}

Result<std::shared_ptr<const EngineSnapshot>> LiveEngine::BuildSnapshotLocked(
    uint64_t generation, bool include_pending) const {
  auto data = std::make_shared<GeneratedCollection>();
  data->collection.SetTopicNames(base_.collection.topic_names());
  AppendCollection(base_.collection, &data->collection);
  for (const Segment& segment : segments_) {
    AppendCollection(segment.data.collection, &data->collection);
  }
  if (include_pending) {
    AppendCollection(pending_.collection, &data->collection);
  }
  data->topics = base_.topics;
  data->qrels = base_.qrels;
  data->options = base_.options;

  IVR_ASSIGN_OR_RETURN(
      std::unique_ptr<RetrievalEngine> built,
      RetrievalEngine::Build(data->collection, options_.engine));
  built->SetCacheKeyEpoch(generation);
  if (options_.cache != nullptr) built->AttachCache(options_.cache);
  std::shared_ptr<const RetrievalEngine> engine(std::move(built));
  auto adaptive = std::make_shared<const AdaptiveEngine>(
      *engine, options_.adaptive, options_.profile);

  auto snapshot = std::make_shared<EngineSnapshot>();
  snapshot->generation = generation;
  snapshot->data = std::move(data);
  snapshot->engine = std::move(engine);
  snapshot->adaptive = std::move(adaptive);
  return std::shared_ptr<const EngineSnapshot>(std::move(snapshot));
}

Status LiveEngine::AppendVideoFrom(const VideoCollection& source,
                                   VideoId id) {
  std::lock_guard<std::mutex> lock(mu_);
  IVR_RETURN_IF_ERROR(FaultInjector::Global().MaybeFail("ingest.append"));
  // The namespace is deterministic in (target generation, ordinal within
  // the pending delta) and frozen into the segment file at publish, so
  // replayed, exported and live views of a document agree on its id.
  const std::string ns =
      StrFormat("g%llu.%zu/",
                static_cast<unsigned long long>(next_generation_),
                pending_.collection.num_videos());
  IVR_ASSIGN_OR_RETURN(const size_t shots,
                       CopyVideoInto(source, id, ns, &pending_.collection));
  shots_appended_ += shots;
  metrics_.shots_appended->Inc(shots);
  UpdateGaugesLocked();
  return Status::OK();
}

Result<uint64_t> LiveEngine::Publish() {
  obs::Stopwatch watch;
  bool trigger_merge = false;
  uint64_t published = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.collection.num_shots() == 0 &&
        pending_.collection.num_videos() == 0) {
      return generation_;  // nothing to publish
    }
    const auto fail = [this](Status status) {
      ++publish_failures_;
      metrics_.publish_failures->Inc();
      return status;
    };
    {
      const Status injected =
          FaultInjector::Global().MaybeFail("ingest.publish");
      if (!injected.ok()) return fail(injected);
    }
    const uint64_t gen = next_generation_;

    // Build the generation-G+1 stack BEFORE touching disk, so an engine
    // construction failure cannot leave the manifest ahead of memory.
    Result<std::shared_ptr<const EngineSnapshot>> snapshot =
        BuildSnapshotLocked(gen, /*include_pending=*/true);
    if (!snapshot.ok()) return fail(snapshot.status());

    // Segment file first, manifest append last: the manifest fsync is
    // the commit point. A crash in between leaves an orphan segment
    // file and generation G intact on disk.
    const std::string name = SegmentName(gen);
    {
      const Status saved =
          SaveSegment(pending_, options_.dir + "/" + name);
      if (!saved.ok()) return fail(saved);
    }
    ManifestRecord record;
    record.generation = gen;
    for (const Segment& segment : segments_) {
      record.segments.push_back(segment.name);
    }
    record.segments.push_back(name);
    {
      const Status appended = manifest_.Append(record);
      if (!appended.ok()) return fail(appended);
    }

    // Committed. Invalidate the cache before exposing the new snapshot:
    // inserts computed against generation G now carry a stale cache
    // generation and are rejected instead of straddling the publish.
    segments_.push_back(Segment{name, std::move(pending_)});
    ResetPendingLocked();
    generation_ = gen;
    next_generation_ = gen + 1;
    ++publishes_;
    metrics_.publishes->Inc();
    if (options_.cache != nullptr) options_.cache->InvalidateAll();
    StoreSnapshot(std::move(snapshot).value());
    UpdateGaugesLocked();
    published = gen;

    if (NeedsMergeLocked()) {
      if (options_.background_merge) {
        trigger_merge = true;
      } else {
        // Inline auto-merge: compaction failures degrade (more segments
        // than the policy wants) rather than failing the publish.
        const Status merged = MergeLocked();
        if (!merged.ok()) {
          IVR_LOG(Warning) << "ingest: auto-merge failed: "
                           << merged.ToString();
        }
      }
    }
  }
  if (trigger_merge) merge_cv_.notify_all();
  metrics_.publish_us->Record(watch.ElapsedUs());
  return published;
}

Status LiveEngine::Merge() {
  std::lock_guard<std::mutex> lock(mu_);
  return MergeLocked();
}

Status LiveEngine::MergeLocked() {
  if (segments_.size() < 2) return Status::OK();
  obs::Stopwatch watch;
  const auto fail = [this](Status status) {
    ++merge_failures_;
    metrics_.merge_failures->Inc();
    return status;
  };
  {
    const Status injected = FaultInjector::Global().MaybeFail("ingest.merge");
    if (!injected.ok()) return fail(injected);
  }

  GeneratedCollection merged;
  merged.collection.SetTopicNames(base_.collection.topic_names());
  for (const Segment& segment : segments_) {
    AppendCollection(segment.data.collection, &merged.collection);
  }
  // The merged name embeds the generation; at least one publish separates
  // two merges (a merge leaves a single segment), so names never clash.
  const std::string name = StrFormat(
      "seg-%06llu-m.seg", static_cast<unsigned long long>(generation_));
  {
    const Status saved = SaveSegment(merged, options_.dir + "/" + name);
    if (!saved.ok()) return fail(saved);
  }
  ManifestRecord record;
  record.generation = generation_;
  record.segments.push_back(name);
  {
    const Status rewritten = manifest_.Rewrite(record);
    if (!rewritten.ok()) return fail(rewritten);
  }

  // Committed: the rewritten manifest references only the merged file.
  // Retired segment files are deleted best-effort (a survivor is counted
  // as an orphan on the next startup).
  for (const Segment& segment : segments_) {
    if (segment.name != name) {
      (void)RemoveFile(options_.dir + "/" + segment.name);
    }
  }
  segments_.clear();
  segments_.push_back(Segment{name, std::move(merged)});
  ++merges_;
  metrics_.merges->Inc();
  metrics_.merge_us->Record(watch.ElapsedUs());
  UpdateGaugesLocked();
  return Status::OK();
}

void LiveEngine::MergeThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    merge_cv_.wait(lock,
                   [this] { return stop_merge_ || NeedsMergeLocked(); });
    if (stop_merge_) return;
    const Status merged = MergeLocked();
    if (!merged.ok()) {
      IVR_LOG(Warning) << "ingest: background merge failed: "
                       << merged.ToString();
      // Back off until the next publish re-notifies; without this a
      // persistently failing merge (fault injection) would spin.
      const uint64_t seen = publishes_;
      merge_cv_.wait(
          lock, [this, seen] { return stop_merge_ || publishes_ != seen; });
      if (stop_merge_) return;
    }
  }
}

IngestStats LiveEngine::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  IngestStats stats;
  stats.generation = generation_;
  stats.segments = segments_.size();
  stats.pending_videos = pending_.collection.num_videos();
  stats.pending_shots = pending_.collection.num_shots();
  const std::shared_ptr<const EngineSnapshot> snapshot = Acquire();
  stats.live_shots =
      snapshot != nullptr ? snapshot->data->collection.num_shots() : 0;
  stats.shots_appended = shots_appended_;
  stats.publishes = publishes_;
  stats.publish_failures = publish_failures_;
  stats.merges = merges_;
  stats.merge_failures = merge_failures_;
  stats.orphan_segments_dropped = orphan_segments_dropped_;
  stats.torn_segments_dropped = torn_segments_dropped_;
  stats.torn_manifest_chunks = torn_manifest_chunks_;
  return stats;
}

HealthReport LiveEngine::Health() const {
  const std::shared_ptr<const EngineSnapshot> snapshot = Acquire();
  HealthReport report = snapshot->engine->Health();
  std::lock_guard<std::mutex> lock(mu_);
  report.ingest_orphan_segments_dropped = orphan_segments_dropped_;
  report.ingest_torn_segments_dropped = torn_segments_dropped_;
  report.ingest_torn_manifest_chunks = torn_manifest_chunks_;
  return report;
}

void LiveEngine::UpdateGaugesLocked() const {
  metrics_.generation->Set(static_cast<int64_t>(generation_));
  metrics_.segments->Set(static_cast<int64_t>(segments_.size()));
  metrics_.pending_shots->Set(
      static_cast<int64_t>(pending_.collection.num_shots()));
  const std::shared_ptr<const EngineSnapshot> snapshot = Acquire();
  metrics_.live_shots->Set(
      snapshot != nullptr
          ? static_cast<int64_t>(snapshot->data->collection.num_shots())
          : 0);
}

}  // namespace ivr
