#include "ivr/ingest/live_engine.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/logging.h"
#include "ivr/core/string_util.h"
#include "ivr/ingest/segment.h"

namespace ivr {
namespace {

/// Appends every video of `src` (with its stories and shots) to `dst`,
/// offsetting the dense ids. Because Add* assigns id = current size, the
/// remap of any id is a pure offset addition, which keeps appending
/// deterministic and order-preserving.
void AppendCollection(const VideoCollection& src, VideoCollection* dst) {
  const VideoId video_off = static_cast<VideoId>(dst->num_videos());
  const StoryId story_off = static_cast<StoryId>(dst->num_stories());
  const ShotId shot_off = static_cast<ShotId>(dst->num_shots());
  for (const Video& v : src.videos()) {
    Video copy = v;
    copy.stories.clear();
    copy.stories.reserve(v.stories.size());
    for (const StoryId s : v.stories) copy.stories.push_back(s + story_off);
    dst->AddVideo(std::move(copy));
  }
  for (const NewsStory& s : src.stories()) {
    NewsStory copy = s;
    copy.video = s.video + video_off;
    copy.shots.clear();
    copy.shots.reserve(s.shots.size());
    for (const ShotId sh : s.shots) copy.shots.push_back(sh + shot_off);
    dst->AddStory(std::move(copy));
  }
  for (const Shot& sh : src.shots()) {
    Shot copy = sh;
    copy.story = sh.story + story_off;
    copy.video = sh.video + video_off;
    dst->AddShot(std::move(copy));
  }
}

/// Copies one video of `src` into `dst` with dst-local dense ids. Every
/// copied external id (and the video name) is prefixed with `ns`: the
/// document store requires globally unique externals, and source
/// collections routinely reuse the generator's "vNNN/..." scheme, so the
/// live index namespaces each appended video by the generation it will
/// publish into. Returns the number of shots copied.
Result<size_t> CopyVideoInto(const VideoCollection& src, VideoId id,
                             const std::string& ns, VideoCollection* dst) {
  IVR_ASSIGN_OR_RETURN(const Video* video, src.video(id));
  Video vcopy = *video;
  vcopy.name = ns + video->name;
  vcopy.stories.clear();
  const VideoId new_video = dst->AddVideo(std::move(vcopy));
  size_t shots = 0;
  for (const StoryId story_id : video->stories) {
    IVR_ASSIGN_OR_RETURN(const NewsStory* story, src.story(story_id));
    NewsStory scopy = *story;
    scopy.video = new_video;
    scopy.shots.clear();
    const StoryId new_story = dst->AddStory(std::move(scopy));
    dst->mutable_video(new_video)->stories.push_back(new_story);
    for (const ShotId shot_id : story->shots) {
      IVR_ASSIGN_OR_RETURN(const Shot* shot, src.shot(shot_id));
      Shot shcopy = *shot;
      shcopy.external_id = ns + shot->external_id;
      shcopy.story = new_story;
      shcopy.video = new_video;
      const ShotId new_shot = dst->AddShot(std::move(shcopy));
      dst->mutable_story(new_story)->shots.push_back(new_shot);
      ++shots;
    }
  }
  return shots;
}

/// A VideoCollection view that shares ownership of the enclosing
/// GeneratedCollection (aliasing constructor): what SubIndex::Build
/// keeps alive.
std::shared_ptr<const VideoCollection> CollectionView(
    const std::shared_ptr<const GeneratedCollection>& data) {
  return std::shared_ptr<const VideoCollection>(data, &data->collection);
}

}  // namespace

std::string LiveEngine::ManifestPath(const std::string& dir) {
  return dir + "/MANIFEST";
}

std::string LiveEngine::SegmentName(uint64_t gen) {
  return StrFormat("seg-%06llu.seg", static_cast<unsigned long long>(gen));
}

LiveEngine::LiveEngine(GeneratedCollection base, IngestOptions options)
    : options_(std::move(options)),
      manifest_(ManifestPath(options_.dir)),
      base_(std::make_shared<const GeneratedCollection>(std::move(base))) {
  obs::Registry& reg = obs::Registry::Global();
  metrics_.shots_appended = reg.GetCounter("ingest.shots_appended");
  metrics_.publishes = reg.GetCounter("ingest.publishes");
  metrics_.publish_failures = reg.GetCounter("ingest.publish_failures");
  metrics_.merges = reg.GetCounter("ingest.merges");
  metrics_.merge_failures = reg.GetCounter("ingest.merge_failures");
  metrics_.orphan_segments_dropped =
      reg.GetCounter("ingest.orphan_segments_dropped");
  metrics_.torn_segments_dropped =
      reg.GetCounter("ingest.torn_segments_dropped");
  metrics_.torn_manifest_chunks =
      reg.GetCounter("ingest.torn_manifest_chunks");
  metrics_.stale_temp_files_removed =
      reg.GetCounter("ingest.stale_temp_files_removed");
  metrics_.generation = reg.GetGauge("ingest.generation");
  metrics_.segments = reg.GetGauge("ingest.segments");
  metrics_.pending_shots = reg.GetGauge("ingest.pending_shots");
  metrics_.live_shots = reg.GetGauge("ingest.live_shots");
  metrics_.publish_us = reg.GetHistogram("ingest.publish_us");
  metrics_.merge_us = reg.GetHistogram("ingest.merge_us");
}

LiveEngine::~LiveEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_merge_ = true;
  }
  merge_cv_.notify_all();
  if (merge_thread_.joinable()) merge_thread_.join();
}

Result<std::unique_ptr<LiveEngine>> LiveEngine::Open(GeneratedCollection base,
                                                     IngestOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("IngestOptions.dir must be set");
  }
  IVR_RETURN_IF_ERROR(MakeDirectory(options.dir));
  std::unique_ptr<LiveEngine> live(
      new LiveEngine(std::move(base), std::move(options)));
  {
    std::lock_guard<std::mutex> lock(live->mu_);
    IVR_RETURN_IF_ERROR(live->SweepStaleTempsLocked());
    IVR_ASSIGN_OR_RETURN(
        live->base_sub_,
        SubIndex::Build(CollectionView(live->base_), live->options_.engine,
                        /*shot_key_offset=*/0));
    live->ResetPendingLocked();
    IVR_RETURN_IF_ERROR(live->ReplayManifestLocked());
    IVR_ASSIGN_OR_RETURN(
        std::shared_ptr<const EngineSnapshot> snapshot,
        live->BuildServing(live->generation_, live->ShardsLocked()));
    live->StoreSnapshot(std::move(snapshot));
    live->UpdateGaugesLocked();
  }
  if (live->options_.background_merge) {
    live->merge_thread_ = std::thread(&LiveEngine::MergeThreadMain,
                                      live.get());
  }
  return live;
}

void LiveEngine::ResetPendingLocked() {
  pending_ = GeneratedCollection();
  pending_.collection.SetTopicNames(base_->collection.topic_names());
}

void LiveEngine::RestorePendingLocked(const GeneratedCollection& delta) {
  // Appends may have landed between the freeze and this failure; the
  // restored buffer is the frozen delta followed by them, preserving
  // append order. Copying (rather than moving) keeps `delta` valid for
  // any in-flight sub-index/snapshot still aliasing its collection.
  GeneratedCollection restored;
  restored.collection.SetTopicNames(base_->collection.topic_names());
  AppendCollection(delta.collection, &restored.collection);
  AppendCollection(pending_.collection, &restored.collection);
  pending_ = std::move(restored);
}

Status LiveEngine::SweepStaleTempsLocked() {
  IVR_ASSIGN_OR_RETURN(const std::vector<std::string> entries,
                       ListDirectory(options_.dir));
  for (const std::string& name : entries) {
    if (!IsAtomicTempName(name)) continue;
    if (RemoveFile(options_.dir + "/" + name).ok()) {
      ++stale_temp_files_removed_;
      metrics_.stale_temp_files_removed->Inc();
      IVR_LOG(Warning) << "ingest: removed stale temp file " << name;
    }
  }
  return Status::OK();
}

Status LiveEngine::ReplayManifestLocked() {
  IVR_ASSIGN_OR_RETURN(const ManifestLoadResult loaded, manifest_.Load());
  torn_manifest_chunks_ = loaded.torn_chunks;
  metrics_.torn_manifest_chunks->Inc(loaded.torn_chunks);
  if (loaded.torn_chunks > 0) {
    IVR_LOG(Warning) << "ingest: dropped torn manifest tail of "
                     << manifest_.path();
  }

  uint64_t max_generation = 0;
  for (const ManifestRecord& record : loaded.records) {
    max_generation = std::max(max_generation, record.generation);
  }

  // Newest fully-loadable record wins; segments that fail their checksum
  // are counted once and poison every record referencing them.
  std::unordered_map<std::string, GeneratedCollection> cache;
  std::unordered_set<std::string> bad;
  const ManifestRecord* serving = nullptr;
  for (size_t i = loaded.records.size(); i-- > 0;) {
    const ManifestRecord& record = loaded.records[i];
    bool ok = true;
    for (const std::string& name : record.segments) {
      if (bad.count(name) > 0) {
        ok = false;
        continue;
      }
      if (cache.count(name) > 0) continue;
      Result<GeneratedCollection> seg =
          LoadSegment(options_.dir + "/" + name);
      if (seg.ok()) {
        cache.emplace(name, std::move(seg).value());
      } else {
        bad.insert(name);
        ++torn_segments_dropped_;
        metrics_.torn_segments_dropped->Inc();
        IVR_LOG(Warning) << "ingest: dropped torn segment " << name << " ("
                         << seg.status().ToString() << ")";
        ok = false;
      }
    }
    if (ok) {
      serving = &record;
      break;
    }
  }

  std::unordered_set<std::string> served_names;
  if (serving != nullptr) {
    generation_ = serving->generation;
    // Rebuild each salvaged segment's sub-index at its replay offset —
    // the same offsets publish used, because the manifest records
    // segments in publish order.
    ShotId offset = static_cast<ShotId>(base_->collection.num_shots());
    for (const std::string& name : serving->segments) {
      served_names.insert(name);
      auto data = std::make_shared<const GeneratedCollection>(
          std::move(cache.at(name)));
      IVR_ASSIGN_OR_RETURN(
          std::shared_ptr<const SubIndex> sub,
          SubIndex::Build(CollectionView(data), options_.engine, offset));
      segments_.push_back(Segment{name, data, std::move(sub), offset});
      offset += static_cast<ShotId>(data->collection.num_shots());
    }
    if (serving != &loaded.records.back()) {
      IVR_LOG(Warning) << "ingest: salvage fell back to generation "
                       << generation_ << " of " << max_generation;
    }
  } else {
    generation_ = 0;
    if (!loaded.records.empty()) {
      IVR_LOG(Warning)
          << "ingest: no manifest record fully loadable; serving base only";
    }
  }
  next_generation_ = std::max(max_generation, generation_) + 1;

  // Segment files no intact record reaches are orphans (a crash between
  // segment write and manifest append leaves exactly this); they are
  // ignored, counted, and eventually overwritten by a future publish.
  IVR_ASSIGN_OR_RETURN(const std::vector<std::string> entries,
                       ListDirectory(options_.dir));
  for (const std::string& name : entries) {
    if (!EndsWith(name, ".seg")) continue;
    if (served_names.count(name) > 0 || bad.count(name) > 0) continue;
    ++orphan_segments_dropped_;
    metrics_.orphan_segments_dropped->Inc();
    IVR_LOG(Warning) << "ingest: ignoring orphan segment " << name;
  }
  return Status::OK();
}

std::vector<std::shared_ptr<const SubIndex>> LiveEngine::ShardsLocked()
    const {
  std::vector<std::shared_ptr<const SubIndex>> shards;
  shards.reserve(segments_.size() + 1);
  shards.push_back(base_sub_);
  for (const Segment& segment : segments_) shards.push_back(segment.sub);
  return shards;
}

Result<std::shared_ptr<const EngineSnapshot>> LiveEngine::BuildServing(
    uint64_t generation,
    std::vector<std::shared_ptr<const SubIndex>> shards) const {
  IVR_ASSIGN_OR_RETURN(
      std::unique_ptr<RetrievalEngine> built,
      RetrievalEngine::BuildSegmented(std::move(shards), options_.engine));
  built->SetCacheKeyEpoch(generation);
  if (options_.cache != nullptr) built->AttachCache(options_.cache);
  std::shared_ptr<const RetrievalEngine> engine(std::move(built));
  auto adaptive = std::make_shared<const AdaptiveEngine>(
      *engine, options_.adaptive, options_.profile);

  auto snapshot = std::make_shared<EngineSnapshot>();
  snapshot->generation = generation;
  snapshot->topics =
      std::shared_ptr<const TopicSet>(base_, &base_->topics);
  snapshot->qrels = std::shared_ptr<const Qrels>(base_, &base_->qrels);
  snapshot->engine = std::move(engine);
  snapshot->adaptive = std::move(adaptive);
  return std::shared_ptr<const EngineSnapshot>(std::move(snapshot));
}

Status LiveEngine::AppendVideoFrom(const VideoCollection& source,
                                   VideoId id) {
  std::lock_guard<std::mutex> lock(mu_);
  IVR_RETURN_IF_ERROR(FaultInjector::Global().MaybeFail("ingest.append"));
  // The namespace is deterministic in (target generation, ordinal within
  // the pending delta) and frozen into the segment file at publish, so
  // replayed, exported and live views of a document agree on its id.
  const std::string ns =
      StrFormat("g%llu.%zu/",
                static_cast<unsigned long long>(next_generation_),
                pending_.collection.num_videos());
  IVR_ASSIGN_OR_RETURN(const size_t shots,
                       CopyVideoInto(source, id, ns, &pending_.collection));
  shots_appended_ += shots;
  metrics_.shots_appended->Inc(shots);
  UpdateGaugesLocked();
  return Status::OK();
}

Result<uint64_t> LiveEngine::Publish() {
  obs::Stopwatch watch;
  std::lock_guard<std::mutex> publish_lock(publish_mu_);

  // Freeze: take the pending delta and the current shard list under mu_.
  uint64_t gen = 0;
  std::shared_ptr<const GeneratedCollection> delta;
  std::vector<std::shared_ptr<const SubIndex>> shards;
  ShotId delta_offset = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.collection.num_shots() == 0 &&
        pending_.collection.num_videos() == 0) {
      return generation_;  // nothing to publish
    }
    {
      const Status injected =
          FaultInjector::Global().MaybeFail("ingest.publish");
      if (!injected.ok()) {
        ++publish_failures_;
        metrics_.publish_failures->Inc();
        return injected;
      }
    }
    // The generation id is consumed at the freeze so appends that land
    // during the build namespace themselves into the NEXT delta and can
    // never collide with the frozen one.
    gen = next_generation_++;
    delta = std::make_shared<const GeneratedCollection>(std::move(pending_));
    ResetPendingLocked();
    delta_offset = static_cast<ShotId>(base_->collection.num_shots());
    for (const Segment& segment : segments_) {
      delta_offset += static_cast<ShotId>(segment.sub->num_shots());
    }
    shards = ShardsLocked();
  }

  // Build, OUTSIDE mu_: appends and readers proceed concurrently. The
  // frozen shard list stays authoritative because only Publish/Merge
  // mutate segments_ and both hold publish_mu_. This is the step whose
  // cost scales with the delta, not the corpus: one sub-index build over
  // the delta, one segment file write, one engine assembly from
  // already-built shards.
  const auto fail = [&](Status status) -> Status {
    std::lock_guard<std::mutex> lock(mu_);
    RestorePendingLocked(*delta);
    ++publish_failures_;
    metrics_.publish_failures->Inc();
    return status;
  };

  Result<std::shared_ptr<const SubIndex>> sub =
      SubIndex::Build(CollectionView(delta), options_.engine, delta_offset);
  if (!sub.ok()) return fail(sub.status());
  shards.push_back(*sub);

  // Segment file first, manifest append last: the manifest fsync is the
  // commit point. A crash in between leaves an orphan segment file and
  // generation G intact on disk.
  const std::string name = SegmentName(gen);
  {
    const Status saved = SaveSegment(*delta, options_.dir + "/" + name);
    if (!saved.ok()) return fail(saved);
  }

  Result<std::shared_ptr<const EngineSnapshot>> snapshot =
      BuildServing(gen, std::move(shards));
  if (!snapshot.ok()) return fail(snapshot.status());

  // Commit, under mu_ again: manifest append, then the in-memory swap.
  bool inline_merge = false;
  bool trigger_merge = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ManifestRecord record;
    record.generation = gen;
    for (const Segment& segment : segments_) {
      record.segments.push_back(segment.name);
    }
    record.segments.push_back(name);
    {
      const Status appended = manifest_.Append(record);
      if (!appended.ok()) {
        RestorePendingLocked(*delta);
        ++publish_failures_;
        metrics_.publish_failures->Inc();
        return appended;
      }
    }

    // Committed. No cache invalidation: the new engine's keys carry the
    // new epoch, and readers still pinned to older generations keep
    // their warm (epoch-prefixed) entries.
    segments_.push_back(
        Segment{name, delta, std::move(sub).value(), delta_offset});
    generation_ = gen;
    ++publishes_;
    metrics_.publishes->Inc();
    StoreSnapshot(std::move(snapshot).value());
    UpdateGaugesLocked();

    if (NeedsMergeLocked()) {
      if (options_.background_merge) {
        trigger_merge = true;
      } else {
        inline_merge = true;
      }
    }
  }
  metrics_.publish_us->Record(watch.ElapsedUs());
  if (inline_merge) {
    // Inline auto-merge (still under publish_mu_): compaction failures
    // degrade (more segments than the policy wants) rather than failing
    // the publish.
    const Status merged = MergeHoldingPublishLock();
    if (!merged.ok()) {
      IVR_LOG(Warning) << "ingest: auto-merge failed: " << merged.ToString();
    }
  }
  if (trigger_merge) merge_cv_.notify_all();
  return gen;
}

Status LiveEngine::Merge() {
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  return MergeHoldingPublishLock();
}

Status LiveEngine::MergeHoldingPublishLock() {
  obs::Stopwatch watch;
  uint64_t gen = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (segments_.size() < 2) return Status::OK();
    {
      const Status injected =
          FaultInjector::Global().MaybeFail("ingest.merge");
      if (!injected.ok()) {
        ++merge_failures_;
        metrics_.merge_failures->Inc();
        return injected;
      }
    }
    gen = generation_;
  }
  const auto fail = [this](Status status) -> Status {
    std::lock_guard<std::mutex> lock(mu_);
    ++merge_failures_;
    metrics_.merge_failures->Inc();
    return status;
  };

  // Heavy work outside mu_ (concatenate + one sub-index build over the
  // compacted documents); reading segments_ here is safe under
  // publish_mu_ alone because every writer of segments_ holds both
  // locks. The compacted sub-index covers the same contiguous id range
  // at the same offset as the shards it replaces, so rankings — and the
  // cache epoch — are unchanged.
  auto merged = std::make_shared<GeneratedCollection>();
  merged->collection.SetTopicNames(base_->collection.topic_names());
  for (const Segment& segment : segments_) {
    AppendCollection(segment.data->collection, &merged->collection);
  }
  std::shared_ptr<const GeneratedCollection> merged_data = std::move(merged);
  const ShotId offset = static_cast<ShotId>(base_->collection.num_shots());
  Result<std::shared_ptr<const SubIndex>> sub =
      SubIndex::Build(CollectionView(merged_data), options_.engine, offset);
  if (!sub.ok()) return fail(sub.status());

  // The merged name embeds the generation; at least one publish separates
  // two merges (a merge leaves a single segment), so names never clash.
  const std::string name = StrFormat(
      "seg-%06llu-m.seg", static_cast<unsigned long long>(gen));
  {
    const Status saved = SaveSegment(*merged_data, options_.dir + "/" + name);
    if (!saved.ok()) return fail(saved);
  }
  ManifestRecord record;
  record.generation = gen;
  record.segments.push_back(name);

  std::vector<std::string> retired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    {
      const Status rewritten = manifest_.Rewrite(record);
      if (!rewritten.ok()) {
        ++merge_failures_;
        metrics_.merge_failures->Inc();
        return rewritten;
      }
    }
    // Committed: the rewritten manifest references only the merged file.
    // The serving snapshot is NOT swapped — its shards stay alive via
    // shared ownership; the next publish assembles from the compacted
    // list.
    for (const Segment& segment : segments_) {
      if (segment.name != name) retired.push_back(segment.name);
    }
    segments_.clear();
    segments_.push_back(
        Segment{name, merged_data, std::move(sub).value(), offset});
    ++merges_;
    metrics_.merges->Inc();
    UpdateGaugesLocked();
  }
  // Retired segment files are deleted best-effort (a survivor is counted
  // as an orphan on the next startup).
  for (const std::string& old_name : retired) {
    (void)RemoveFile(options_.dir + "/" + old_name);
  }
  metrics_.merge_us->Record(watch.ElapsedUs());
  return Status::OK();
}

void LiveEngine::MergeThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    merge_cv_.wait(lock,
                   [this] { return stop_merge_ || NeedsMergeLocked(); });
    if (stop_merge_) return;
    lock.unlock();
    const Status merged = Merge();  // publish_mu_ -> mu_ inside
    lock.lock();
    if (!merged.ok()) {
      IVR_LOG(Warning) << "ingest: background merge failed: "
                       << merged.ToString();
      // Back off until the next publish re-notifies; without this a
      // persistently failing merge (fault injection) would spin.
      const uint64_t seen = publishes_;
      merge_cv_.wait(
          lock, [this, seen] { return stop_merge_ || publishes_ != seen; });
      if (stop_merge_) return;
    }
  }
}

GeneratedCollection LiveEngine::ExportCollection() const {
  std::lock_guard<std::mutex> lock(mu_);
  GeneratedCollection out;
  out.collection.SetTopicNames(base_->collection.topic_names());
  AppendCollection(base_->collection, &out.collection);
  for (const Segment& segment : segments_) {
    AppendCollection(segment.data->collection, &out.collection);
  }
  out.topics = base_->topics;
  out.qrels = base_->qrels;
  out.options = base_->options;
  return out;
}

IngestStats LiveEngine::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  IngestStats stats;
  stats.generation = generation_;
  stats.segments = segments_.size();
  stats.pending_videos = pending_.collection.num_videos();
  stats.pending_shots = pending_.collection.num_shots();
  const std::shared_ptr<const EngineSnapshot> snapshot = Acquire();
  stats.live_shots = snapshot != nullptr ? snapshot->num_shots() : 0;
  stats.shots_appended = shots_appended_;
  stats.publishes = publishes_;
  stats.publish_failures = publish_failures_;
  stats.merges = merges_;
  stats.merge_failures = merge_failures_;
  stats.orphan_segments_dropped = orphan_segments_dropped_;
  stats.torn_segments_dropped = torn_segments_dropped_;
  stats.torn_manifest_chunks = torn_manifest_chunks_;
  stats.stale_temp_files_removed = stale_temp_files_removed_;
  return stats;
}

HealthReport LiveEngine::Health() const {
  const std::shared_ptr<const EngineSnapshot> snapshot = Acquire();
  HealthReport report = snapshot->engine->Health();
  std::lock_guard<std::mutex> lock(mu_);
  report.ingest_orphan_segments_dropped = orphan_segments_dropped_;
  report.ingest_torn_segments_dropped = torn_segments_dropped_;
  report.ingest_torn_manifest_chunks = torn_manifest_chunks_;
  report.ingest_stale_temp_files_removed = stale_temp_files_removed_;
  return report;
}

void LiveEngine::UpdateGaugesLocked() const {
  metrics_.generation->Set(static_cast<int64_t>(generation_));
  metrics_.segments->Set(static_cast<int64_t>(segments_.size()));
  metrics_.pending_shots->Set(
      static_cast<int64_t>(pending_.collection.num_shots()));
  const std::shared_ptr<const EngineSnapshot> snapshot = Acquire();
  metrics_.live_shots->Set(
      snapshot != nullptr ? static_cast<int64_t>(snapshot->num_shots()) : 0);
}

}  // namespace ivr
