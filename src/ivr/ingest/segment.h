#ifndef IVR_INGEST_SEGMENT_H_
#define IVR_INGEST_SEGMENT_H_

#include <string>

#include "ivr/core/result.h"
#include "ivr/video/generator.h"

namespace ivr {

/// An immutable on-disk index segment: a delta batch of whole videos
/// (with their stories and shots, ids dense and segment-local) frozen by
/// a publish. The payload reuses the collection text archive; the
/// envelope format tag "segment" keeps segments and full collection
/// snapshots from being silently confused. Segments are written once with
/// WriteFileAtomic and never modified — compaction writes a NEW file and
/// retires the old ones through the manifest.
///
/// Unlike collection snapshots there is no legacy/unenveloped fallback:
/// a segment that does not verify is torn, and the caller's salvage path
/// drops it (counted) rather than guessing.
Status SaveSegment(const GeneratedCollection& delta, const std::string& path);

/// Loads and verifies one segment. kCorruption on any envelope, checksum
/// or archive damage — never a partial segment.
Result<GeneratedCollection> LoadSegment(const std::string& path);

}  // namespace ivr

#endif  // IVR_INGEST_SEGMENT_H_
