#ifndef IVR_INGEST_MANIFEST_H_
#define IVR_INGEST_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ivr/core/result.h"

namespace ivr {

/// One generation of the segment set: the COMPLETE list of segment file
/// names (relative to the ingest directory) that make up the live
/// collection at `generation`, not a diff. Readers therefore never need
/// more than the last intact record to reconstruct a generation.
struct ManifestRecord {
  uint64_t generation = 0;
  std::vector<std::string> segments;
};

/// Outcome of replaying a manifest journal.
struct ManifestLoadResult {
  /// Every intact record, in file (= publish) order. Empty for a missing
  /// or empty manifest.
  std::vector<ManifestRecord> records;
  /// Torn/corrupt journal tails dropped (a crash mid-append leaves at
  /// most one; a mid-file corruption also truncates the replay there).
  size_t torn_chunks = 0;
};

/// The ingest manifest: an append-only journal of checksummed envelope
/// chunks (format "manifest"), one chunk per published generation. The
/// durability contract mirrors the session log: a chunk is appended with
/// one write and fsynced before Append returns, so after a crash the
/// journal is a prefix of intact chunks plus at most one torn tail, which
/// Load drops (counted) — the reader falls back to the last complete
/// generation, never a torn one.
///
/// Publish orders its writes segment-file-first, manifest-append-last:
/// the manifest fsync is the commit point of a generation.
class ManifestLog {
 public:
  explicit ManifestLog(std::string path) : path_(std::move(path)) {}

  /// Appends one record as a checksummed chunk and fsyncs. Fault site:
  /// "ingest.manifest".
  Status Append(const ManifestRecord& record);

  /// Replaces the whole journal with a single record, crash-safely
  /// (WriteFileAtomic) — the merge compaction path. Fault site:
  /// "ingest.manifest".
  Status Rewrite(const ManifestRecord& record);

  /// Replays the journal. A missing file is an empty (fresh) manifest,
  /// not an error; unreadable files surface as IOError.
  Result<ManifestLoadResult> Load() const;

  const std::string& path() const { return path_; }

  /// Serialization of one record (exposed for the corruption sweep).
  static std::string RecordToPayload(const ManifestRecord& record);
  static Result<ManifestRecord> PayloadToRecord(const std::string& payload);

 private:
  std::string path_;
};

}  // namespace ivr

#endif  // IVR_INGEST_MANIFEST_H_
