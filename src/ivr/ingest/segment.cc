#include "ivr/ingest/segment.h"

#include "ivr/core/checksum.h"
#include "ivr/core/file_util.h"
#include "ivr/video/serialization.h"

namespace ivr {
namespace {

constexpr std::string_view kSegmentFormat = "segment";

}  // namespace

Status SaveSegment(const GeneratedCollection& delta,
                   const std::string& path) {
  return WriteFileAtomic(
      path, WrapEnvelope(kSegmentFormat, SerializeCollection(delta)));
}

Result<GeneratedCollection> LoadSegment(const std::string& path) {
  IVR_ASSIGN_OR_RETURN(const std::string enveloped, ReadFileToString(path));
  IVR_ASSIGN_OR_RETURN(const std::string payload,
                       UnwrapEnvelope(kSegmentFormat, enveloped));
  return ParseCollection(payload);
}

}  // namespace ivr
