#ifndef IVR_INGEST_LIVE_ENGINE_H_
#define IVR_INGEST_LIVE_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/cache/result_cache.h"
#include "ivr/core/result.h"
#include "ivr/ingest/manifest.h"
#include "ivr/obs/metrics.h"
#include "ivr/retrieval/engine.h"
#include "ivr/retrieval/sub_index.h"
#include "ivr/video/generator.h"

namespace ivr {

/// Configuration of a LiveEngine.
struct IngestOptions {
  /// Directory holding the segment files and the MANIFEST journal.
  std::string dir;
  /// Options for the per-generation engines built on publish.
  EngineOptions engine;
  AdaptiveOptions adaptive;
  /// Default profile snapshotted into the per-generation AdaptiveEngines
  /// (null = none).
  std::shared_ptr<const UserProfile> profile;
  /// Shared result cache attached to every generation's engine. Each
  /// engine prefixes its cache keys with its segment-set epoch (the
  /// generation), so one cache safely spans generations: a query pinned
  /// to generation G can never hit a G+1 entry, or vice versa, and
  /// entries of still-pinned older generations stay warm across
  /// publishes (nothing is ever invalidated wholesale).
  std::shared_ptr<ResultCache> cache;
  /// Compact the on-disk segments into one once their count reaches this
  /// threshold (0 = only explicit Merge() calls compact).
  size_t merge_after_segments = 0;
  /// Run compaction on a background thread instead of inline at the end
  /// of the triggering Publish().
  bool background_merge = false;
};

/// One fully-built generation. Everything a query needs — the retrieval
/// engine over the generation's sub-index shards, the adaptive policy,
/// and the live topic/qrels views — with shared ownership, so a reader
/// that acquired the snapshot before a publish keeps a complete,
/// immutable generation alive for as long as it needs it.
struct EngineSnapshot {
  uint64_t generation = 0;
  /// The search topics and judgements of the immutable base collection
  /// (segments carry documents only), aliased into the base's lifetime.
  std::shared_ptr<const TopicSet> topics;
  std::shared_ptr<const Qrels> qrels;
  std::shared_ptr<const RetrievalEngine> engine;
  std::shared_ptr<const AdaptiveEngine> adaptive;

  size_t num_shots() const {
    return engine != nullptr ? engine->num_shots() : 0;
  }
};

/// Point-in-time ingest counters (monotonic unless noted).
struct IngestStats {
  uint64_t generation = 0;       ///< generation currently served
  size_t segments = 0;           ///< published segments (level)
  size_t pending_videos = 0;     ///< buffered, unpublished (level)
  size_t pending_shots = 0;      ///< buffered, unpublished (level)
  size_t live_shots = 0;         ///< shots in the served snapshot (level)
  uint64_t shots_appended = 0;
  uint64_t publishes = 0;
  uint64_t publish_failures = 0;
  uint64_t merges = 0;
  uint64_t merge_failures = 0;
  /// Startup salvage: segment files on disk that no intact manifest
  /// record references (e.g. a crash between segment write and manifest
  /// append), and manifest-referenced segments dropped because they were
  /// torn/corrupt (the reader fell back to an older generation).
  uint64_t orphan_segments_dropped = 0;
  uint64_t torn_segments_dropped = 0;
  /// Torn manifest journal tails dropped on replay.
  uint64_t torn_manifest_chunks = 0;
  /// Orphaned atomic-write temp files (".tmpXXXXXX") swept at startup —
  /// each one is the residue of a crash inside WriteFileAtomic, between
  /// temp creation and rename.
  uint64_t stale_temp_files_removed = 0;
};

/// The generational index: an immutable base collection plus published
/// immutable delta segments, each carrying its own immutable sub-index
/// (inverted postings, doc store, keyframes, concepts), served through
/// an atomically swapped snapshot, with new documents buffered in a
/// pending in-memory delta until the next Publish().
///
/// Per-segment sub-indexes are what make publish cost proportional to
/// the delta: a publish builds ONE sub-index over the frozen pending
/// delta and assembles the next engine from the already-built base and
/// segment shards — it never re-tokenizes or re-indexes the corpus. The
/// searcher merges top-k across shards under each modality's strict
/// total order with scorers prepared from the summed collection
/// statistics, so segmented serving is bit-identical to a monolithic
/// full rebuild (the `ivr_ingest --check` oracle).
///
/// Write path:
///  - Append buffers whole videos into the pending delta (mu_ only;
///    buffered documents are NOT searchable until published).
///  - Publish freezes the pending delta under mu_, then does the heavy
///    work — delta sub-index build, segment file write (checksummed
///    envelope + WriteFileAtomic), next-generation engine assembly —
///    OUTSIDE mu_ (appends and readers proceed concurrently), and
///    retakes mu_ only to fsync-append the manifest record (the commit
///    point) and swap the snapshot. Any failure before the manifest
///    append restores the frozen delta in front of whatever was
///    appended meanwhile, leaving generation G serving and the full
///    pending delta intact for retry.
///  - Merge compacts all published segments into one file (and their
///    sub-indexes into one shard, built outside mu_) and atomically
///    rewrites the manifest; the document set, generation, epoch and
///    serving snapshot are unchanged (crash-safe at every point: the
///    old segments stay referenced until the rewritten manifest lands).
///  - publish_mu_ serializes Publish/Merge against each other (lock
///    order publish_mu_ -> mu_), which is what keeps the shard list a
///    publish froze authoritative while it builds outside mu_.
///
/// Read path (Acquire): copies the current snapshot shared_ptr under a
/// dedicated pointer-sized lock (never held while building an index). A
/// query pins ONE snapshot for its whole lifetime, so it observes either
/// generation G or G+1 in full — never a mix — and publishes never wait
/// for readers (RCU-style: superseded generations die when their last
/// reader releases them).
///
/// Startup replays the manifest with salvage semantics: a torn journal
/// tail falls back to the last intact record, a record referencing a
/// torn/missing segment falls back to the newest fully-loadable older
/// record (counted per dropped segment), unreferenced segment files are
/// ignored as orphans (counted), and stale WriteFileAtomic temp files
/// are deleted (counted). Fault sites: "ingest.append",
/// "ingest.publish", "ingest.merge", "ingest.manifest".
class LiveEngine {
 public:
  /// Opens the ingest directory (created if missing), sweeps stale
  /// atomic-write temp files, replays the manifest, builds one sub-index
  /// per salvageable published segment, and assembles the serving
  /// snapshot over `base` plus those segments. `base` is the immutable
  /// generation-0 collection (its topics/qrels are the live ones;
  /// segments carry documents only).
  static Result<std::unique_ptr<LiveEngine>> Open(GeneratedCollection base,
                                                  IngestOptions options);

  ~LiveEngine();

  LiveEngine(const LiveEngine&) = delete;
  LiveEngine& operator=(const LiveEngine&) = delete;

  /// The current generation's snapshot; never null. The critical section
  /// is one shared_ptr copy — publishes build the next generation outside
  /// this lock, so readers never wait on index construction. Hold the
  /// returned pointer for the whole query (or session operation) — that
  /// is the torn-read-free contract.
  std::shared_ptr<const EngineSnapshot> Acquire() const {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    return snapshot_;
  }

  /// Copies video `id` of `source` (with its stories and shots) into the
  /// pending delta, remapping ids. External ids are namespaced
  /// "g<generation>.<ordinal>/<original>" so videos ingested from
  /// collections that reuse the generator's id scheme never collide with
  /// the base (or each other) in the document store. Fault site:
  /// "ingest.append".
  Status AppendVideoFrom(const VideoCollection& source, VideoId id);

  /// Publishes the pending delta as the next generation and returns its
  /// id; a no-op returning the current generation when nothing is
  /// pending. On error the pending delta is retained for retry. Fault
  /// site: "ingest.publish" (plus the file/manifest sites underneath).
  Result<uint64_t> Publish();

  /// Compacts the published segments into one (no-op below two
  /// segments). Fault site: "ingest.merge".
  Status Merge();

  IngestStats Stats() const;

  /// The served generation's engine health, with the ingest salvage
  /// counters folded in.
  HealthReport Health() const;

  const IngestOptions& options() const { return options_; }

  /// The immutable generation-0 collection (topics/qrels are the live
  /// ones for every generation). Valid for the engine's lifetime.
  const GeneratedCollection& base() const { return *base_; }

  /// Materializes base + published segments into one standalone
  /// collection — the monolithic equivalent of the serving snapshot
  /// (what --export writes and the --check oracle rebuilds from). The
  /// pending delta is not included. O(corpus) copy.
  GeneratedCollection ExportCollection() const;

  /// The manifest journal path inside `dir` (exposed for tests/tools).
  static std::string ManifestPath(const std::string& dir);
  /// The segment file name publish gives generation `gen`.
  static std::string SegmentName(uint64_t gen);

 private:
  struct Segment {
    std::string name;
    /// The delta's documents (shared with its sub-index slice).
    std::shared_ptr<const GeneratedCollection> data;
    /// The immutable per-segment sub-index, built once at publish (or
    /// replay) and reused by every subsequent generation's engine.
    std::shared_ptr<const SubIndex> sub;
    /// Global id of the segment's local shot 0.
    ShotId doc_offset = 0;
  };

  LiveEngine(GeneratedCollection base, IngestOptions options);

  /// Fresh pending delta bound to the base topic space. Requires mu_.
  void ResetPendingLocked();
  /// Puts a frozen-but-unpublished delta back in FRONT of the pending
  /// buffer (appends may have landed since the freeze). Requires mu_.
  void RestorePendingLocked(const GeneratedCollection& delta);
  /// Assembles the full serving stack for `generation` over `shards`.
  /// Touches only immutable state (base_, options_) — callable without
  /// mu_; that is the point: this is the publish-path heavy step.
  Result<std::shared_ptr<const EngineSnapshot>> BuildServing(
      uint64_t generation,
      std::vector<std::shared_ptr<const SubIndex>> shards) const;
  /// The serving shard list: base plus every published segment, in
  /// global-id order. Requires mu_ (or publish_mu_, see segments_).
  std::vector<std::shared_ptr<const SubIndex>> ShardsLocked() const;
  /// Deletes stale ".tmpXXXXXX" files a crashed WriteFileAtomic left in
  /// the ingest directory. Requires mu_ (called from Open).
  Status SweepStaleTempsLocked();
  /// Replays the manifest, loads the salvageable segments and builds
  /// their sub-indexes. Requires mu_ (called from Open before the
  /// object escapes).
  Status ReplayManifestLocked();
  bool NeedsMergeLocked() const {
    return options_.merge_after_segments > 0 &&
           segments_.size() >= options_.merge_after_segments;
  }
  /// The compaction body; requires publish_mu_ (NOT mu_ — it takes and
  /// drops mu_ around the heavy build itself).
  Status MergeHoldingPublishLock();
  void MergeThreadMain();
  void UpdateGaugesLocked() const;

  IngestOptions options_;
  ManifestLog manifest_;

  /// Serializes the structural writers (Publish/Merge) against each
  /// other so they can do their heavy work outside mu_ while the shard
  /// list they froze stays authoritative. Lock order: publish_mu_
  /// before mu_; never taken by the append/read paths.
  std::mutex publish_mu_;

  mutable std::mutex mu_;
  /// Immutable after Open (shared with every snapshot's topics/qrels
  /// aliases and with base_sub_'s slice) — readable without mu_.
  std::shared_ptr<const GeneratedCollection> base_;
  /// The base collection's sub-index, built once at Open.
  std::shared_ptr<const SubIndex> base_sub_;
  /// Written under publish_mu_ + mu_ together; readable under either
  /// (Publish/Merge read it outside mu_ while holding publish_mu_).
  std::vector<Segment> segments_;
  GeneratedCollection pending_;         // guarded by mu_
  uint64_t generation_ = 0;             // guarded by mu_
  uint64_t next_generation_ = 1;        // guarded by mu_
  uint64_t shots_appended_ = 0;         // guarded by mu_
  uint64_t publishes_ = 0;              // guarded by mu_
  uint64_t publish_failures_ = 0;       // guarded by mu_
  uint64_t merges_ = 0;                 // guarded by mu_
  uint64_t merge_failures_ = 0;         // guarded by mu_
  uint64_t orphan_segments_dropped_ = 0;   // guarded by mu_
  uint64_t torn_segments_dropped_ = 0;     // guarded by mu_
  uint64_t torn_manifest_chunks_ = 0;      // guarded by mu_
  uint64_t stale_temp_files_removed_ = 0;  // guarded by mu_

  /// Swaps in `snapshot` as the serving generation; the superseded
  /// snapshot is released outside snapshot_mu_ (its destructor may tear
  /// down a whole engine stack).
  void StoreSnapshot(std::shared_ptr<const EngineSnapshot> snapshot) {
    {
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      snapshot_.swap(snapshot);
    }
  }

  /// The RCU pivot: a pointer-sized critical section on its own mutex so
  /// Acquire() never contends with mu_. Written under mu_ + snapshot_mu_
  /// (publish commit), read under snapshot_mu_ alone.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const EngineSnapshot> snapshot_;  // guarded by snapshot_mu_

  std::condition_variable merge_cv_;
  std::thread merge_thread_;
  bool stop_merge_ = false;  // guarded by mu_

  /// Registry pointers resolved once at construction (obs contract).
  struct Metrics {
    obs::Counter* shots_appended;
    obs::Counter* publishes;
    obs::Counter* publish_failures;
    obs::Counter* merges;
    obs::Counter* merge_failures;
    obs::Counter* orphan_segments_dropped;
    obs::Counter* torn_segments_dropped;
    obs::Counter* torn_manifest_chunks;
    obs::Counter* stale_temp_files_removed;
    obs::Gauge* generation;
    obs::Gauge* segments;
    obs::Gauge* pending_shots;
    obs::Gauge* live_shots;
    obs::LatencyHistogram* publish_us;
    obs::LatencyHistogram* merge_us;
  };
  Metrics metrics_;
};

}  // namespace ivr

#endif  // IVR_INGEST_LIVE_ENGINE_H_
