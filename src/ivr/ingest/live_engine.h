#ifndef IVR_INGEST_LIVE_ENGINE_H_
#define IVR_INGEST_LIVE_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/cache/result_cache.h"
#include "ivr/core/result.h"
#include "ivr/ingest/manifest.h"
#include "ivr/obs/metrics.h"
#include "ivr/retrieval/engine.h"
#include "ivr/video/generator.h"

namespace ivr {

/// Configuration of a LiveEngine.
struct IngestOptions {
  /// Directory holding the segment files and the MANIFEST journal.
  std::string dir;
  /// Options for the per-generation engines built on publish.
  EngineOptions engine;
  AdaptiveOptions adaptive;
  /// Default profile snapshotted into the per-generation AdaptiveEngines
  /// (null = none).
  std::shared_ptr<const UserProfile> profile;
  /// Shared result cache attached to every generation's engine. Publish
  /// bumps its invalidation generation, and each engine prefixes its
  /// cache keys with its own generation epoch, so one cache safely spans
  /// generations (a query pinned to generation G can never hit a G+1
  /// entry, or vice versa).
  std::shared_ptr<ResultCache> cache;
  /// Compact the on-disk segments into one once their count reaches this
  /// threshold (0 = only explicit Merge() calls compact).
  size_t merge_after_segments = 0;
  /// Run compaction on a background thread instead of inline at the end
  /// of the triggering Publish().
  bool background_merge = false;
};

/// One fully-built generation. Everything a query needs — materialized
/// collection, retrieval engine, adaptive policy — with shared ownership,
/// so a reader that acquired the snapshot before a publish keeps a
/// complete, immutable generation alive for as long as it needs it.
struct EngineSnapshot {
  uint64_t generation = 0;
  std::shared_ptr<const GeneratedCollection> data;
  std::shared_ptr<const RetrievalEngine> engine;
  std::shared_ptr<const AdaptiveEngine> adaptive;
};

/// Point-in-time ingest counters (monotonic unless noted).
struct IngestStats {
  uint64_t generation = 0;       ///< generation currently served
  size_t segments = 0;           ///< published segments (level)
  size_t pending_videos = 0;     ///< buffered, unpublished (level)
  size_t pending_shots = 0;      ///< buffered, unpublished (level)
  size_t live_shots = 0;         ///< shots in the served snapshot (level)
  uint64_t shots_appended = 0;
  uint64_t publishes = 0;
  uint64_t publish_failures = 0;
  uint64_t merges = 0;
  uint64_t merge_failures = 0;
  /// Startup salvage: segment files on disk that no intact manifest
  /// record references (e.g. a crash between segment write and manifest
  /// append), and manifest-referenced segments dropped because they were
  /// torn/corrupt (the reader fell back to an older generation).
  uint64_t orphan_segments_dropped = 0;
  uint64_t torn_segments_dropped = 0;
  /// Torn manifest journal tails dropped on replay.
  uint64_t torn_manifest_chunks = 0;
};

/// The generational index: an immutable base collection plus published
/// immutable delta segments, served through an atomically swapped
/// snapshot, with new documents buffered in a pending in-memory delta
/// until the next Publish().
///
/// Write path (Append*/Publish/Merge, any thread, serialized on one
/// mutex):
///  - Append buffers whole videos into the pending delta; buffered
///    documents are NOT searchable until published.
///  - Publish freezes the pending delta: builds the generation-G+1
///    engine, writes the segment file (checksummed envelope +
///    WriteFileAtomic), fsync-appends the manifest record — the commit
///    point — then invalidates the result cache and swaps the snapshot.
///    Any failure before the manifest append leaves generation G serving
///    and the pending delta intact for retry.
///  - Merge compacts all published segments into one file and atomically
///    rewrites the manifest; the document set, generation and serving
///    snapshot are unchanged (crash-safe at every point: the old
///    segments stay referenced until the rewritten manifest lands).
///
/// Read path (Acquire): copies the current snapshot shared_ptr under a
/// dedicated pointer-sized lock (never held while building an index). A
/// query pins ONE snapshot for its whole lifetime, so it observes either
/// generation G or G+1 in full — never a mix — and publishes never wait
/// for readers (RCU-style: superseded generations die when their last
/// reader releases them).
///
/// Startup replays the manifest with salvage semantics: a torn journal
/// tail falls back to the last intact record, a record referencing a
/// torn/missing segment falls back to the newest fully-loadable older
/// record (counted per dropped segment), and unreferenced segment files
/// are ignored as orphans (counted). Fault sites: "ingest.append",
/// "ingest.publish", "ingest.merge", "ingest.manifest".
class LiveEngine {
 public:
  /// Opens the ingest directory (created if missing), replays the
  /// manifest, and builds the serving snapshot over `base` plus every
  /// salvageable published segment. `base` is the immutable generation-0
  /// collection (its topics/qrels are the live ones; segments carry
  /// documents only).
  static Result<std::unique_ptr<LiveEngine>> Open(GeneratedCollection base,
                                                  IngestOptions options);

  ~LiveEngine();

  LiveEngine(const LiveEngine&) = delete;
  LiveEngine& operator=(const LiveEngine&) = delete;

  /// The current generation's snapshot; never null. The critical section
  /// is one shared_ptr copy — publishes build the next generation outside
  /// this lock, so readers never wait on index construction. Hold the
  /// returned pointer for the whole query (or session operation) — that
  /// is the torn-read-free contract.
  std::shared_ptr<const EngineSnapshot> Acquire() const {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    return snapshot_;
  }

  /// Copies video `id` of `source` (with its stories and shots) into the
  /// pending delta, remapping ids. External ids are namespaced
  /// "g<generation>.<ordinal>/<original>" so videos ingested from
  /// collections that reuse the generator's id scheme never collide with
  /// the base (or each other) in the document store. Fault site:
  /// "ingest.append".
  Status AppendVideoFrom(const VideoCollection& source, VideoId id);

  /// Publishes the pending delta as the next generation and returns its
  /// id; a no-op returning the current generation when nothing is
  /// pending. On error the pending delta is retained for retry. Fault
  /// site: "ingest.publish" (plus the file/manifest sites underneath).
  Result<uint64_t> Publish();

  /// Compacts the published segments into one (no-op below two
  /// segments). Fault site: "ingest.merge".
  Status Merge();

  IngestStats Stats() const;

  /// The served generation's engine health, with the ingest salvage
  /// counters folded in.
  HealthReport Health() const;

  const IngestOptions& options() const { return options_; }

  /// The manifest journal path inside `dir` (exposed for tests/tools).
  static std::string ManifestPath(const std::string& dir);
  /// The segment file name publish gives generation `gen`.
  static std::string SegmentName(uint64_t gen);

 private:
  struct Segment {
    std::string name;
    GeneratedCollection data;
  };

  LiveEngine(GeneratedCollection base, IngestOptions options);

  /// Fresh pending delta bound to the base topic space. Requires mu_.
  void ResetPendingLocked();
  /// Materializes base + segments (+ pending when `include_pending`) and
  /// builds the full engine stack for `generation`. Requires mu_.
  Result<std::shared_ptr<const EngineSnapshot>> BuildSnapshotLocked(
      uint64_t generation, bool include_pending) const;
  /// Replays the manifest and loads the salvageable segments. Requires
  /// mu_ (called from Open before the object escapes).
  Status ReplayManifestLocked();
  bool NeedsMergeLocked() const {
    return options_.merge_after_segments > 0 &&
           segments_.size() >= options_.merge_after_segments;
  }
  Status MergeLocked();
  void MergeThreadMain();
  void UpdateGaugesLocked() const;

  IngestOptions options_;
  ManifestLog manifest_;

  mutable std::mutex mu_;
  GeneratedCollection base_;            // guarded by mu_
  std::vector<Segment> segments_;       // guarded by mu_
  GeneratedCollection pending_;         // guarded by mu_
  uint64_t generation_ = 0;             // guarded by mu_
  uint64_t next_generation_ = 1;        // guarded by mu_
  uint64_t shots_appended_ = 0;         // guarded by mu_
  uint64_t publishes_ = 0;              // guarded by mu_
  uint64_t publish_failures_ = 0;       // guarded by mu_
  uint64_t merges_ = 0;                 // guarded by mu_
  uint64_t merge_failures_ = 0;         // guarded by mu_
  uint64_t orphan_segments_dropped_ = 0;   // guarded by mu_
  uint64_t torn_segments_dropped_ = 0;     // guarded by mu_
  uint64_t torn_manifest_chunks_ = 0;      // guarded by mu_

  /// Swaps in `snapshot` as the serving generation; the superseded
  /// snapshot is released outside snapshot_mu_ (its destructor may tear
  /// down a whole engine stack).
  void StoreSnapshot(std::shared_ptr<const EngineSnapshot> snapshot) {
    {
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      snapshot_.swap(snapshot);
    }
  }

  /// The RCU pivot: a pointer-sized critical section on its own mutex so
  /// Acquire() never contends with mu_ (which publish/merge hold while
  /// building). Written under mu_ + snapshot_mu_ (publish), read under
  /// snapshot_mu_ alone.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const EngineSnapshot> snapshot_;  // guarded by snapshot_mu_

  std::condition_variable merge_cv_;
  std::thread merge_thread_;
  bool stop_merge_ = false;  // guarded by mu_

  /// Registry pointers resolved once at construction (obs contract).
  struct Metrics {
    obs::Counter* shots_appended;
    obs::Counter* publishes;
    obs::Counter* publish_failures;
    obs::Counter* merges;
    obs::Counter* merge_failures;
    obs::Counter* orphan_segments_dropped;
    obs::Counter* torn_segments_dropped;
    obs::Counter* torn_manifest_chunks;
    obs::Gauge* generation;
    obs::Gauge* segments;
    obs::Gauge* pending_shots;
    obs::Gauge* live_shots;
    obs::LatencyHistogram* publish_us;
    obs::LatencyHistogram* merge_us;
  };
  Metrics metrics_;
};

}  // namespace ivr

#endif  // IVR_INGEST_LIVE_ENGINE_H_
