#include "ivr/video/qrels.h"

#include <algorithm>

#include "ivr/core/string_util.h"

namespace ivr {

void Qrels::Set(SearchTopicId topic, ShotId shot, int grade) {
  if (grade < 0) {
    auto it = judgments_.find(topic);
    if (it != judgments_.end()) {
      it->second.erase(shot);
      if (it->second.empty()) judgments_.erase(it);
    }
    return;
  }
  // Grade 0 stays as an explicit judged-nonrelevant entry: bpref-style
  // metrics must distinguish judged-nonrelevant from never-judged.
  judgments_[topic][shot] = grade;
}

bool Qrels::IsJudged(SearchTopicId topic, ShotId shot) const {
  auto it = judgments_.find(topic);
  if (it == judgments_.end()) return false;
  return it->second.count(shot) > 0;
}

int Qrels::Grade(SearchTopicId topic, ShotId shot) const {
  auto it = judgments_.find(topic);
  if (it == judgments_.end()) return 0;
  auto jt = it->second.find(shot);
  return jt == it->second.end() ? 0 : jt->second;
}

bool Qrels::IsRelevant(SearchTopicId topic, ShotId shot,
                       int min_grade) const {
  return Grade(topic, shot) >= min_grade;
}

std::vector<ShotId> Qrels::RelevantShots(SearchTopicId topic,
                                         int min_grade) const {
  std::vector<ShotId> out;
  auto it = judgments_.find(topic);
  if (it == judgments_.end()) return out;
  for (const auto& [shot, grade] : it->second) {
    if (grade >= min_grade) out.push_back(shot);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t Qrels::NumRelevant(SearchTopicId topic, int min_grade) const {
  size_t n = 0;
  auto it = judgments_.find(topic);
  if (it == judgments_.end()) return 0;
  for (const auto& [shot, grade] : it->second) {
    (void)shot;
    if (grade >= min_grade) ++n;
  }
  return n;
}

size_t Qrels::NumJudged(SearchTopicId topic) const {
  auto it = judgments_.find(topic);
  return it == judgments_.end() ? 0 : it->second.size();
}

std::vector<SearchTopicId> Qrels::Topics() const {
  std::vector<SearchTopicId> out;
  out.reserve(judgments_.size());
  for (const auto& [topic, shots] : judgments_) {
    (void)shots;
    out.push_back(topic);
  }
  return out;
}

size_t Qrels::TotalJudgments() const {
  size_t n = 0;
  for (const auto& [topic, shots] : judgments_) {
    (void)topic;
    n += shots.size();
  }
  return n;
}

std::string Qrels::ToTrecFormat() const {
  std::string out;
  for (const auto& [topic, shots] : judgments_) {
    // Order shots for byte-stable output.
    std::vector<std::pair<ShotId, int>> sorted(shots.begin(), shots.end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [shot, grade] : sorted) {
      out += StrFormat("%u 0 shot%u %d\n", topic, shot, grade);
    }
  }
  return out;
}

Result<Qrels> Qrels::FromTrecFormat(const std::string& text) {
  Qrels qrels;
  for (const std::string& line : Split(text, '\n')) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const std::vector<std::string> cols = SplitWhitespace(trimmed);
    if (cols.size() != 4) {
      return Status::Corruption("qrels line must have 4 columns: " + line);
    }
    IVR_ASSIGN_OR_RETURN(int64_t topic, ParseInt(cols[0]));
    if (!StartsWith(cols[2], "shot")) {
      return Status::Corruption("qrels doc id must look like shotN: " +
                                cols[2]);
    }
    IVR_ASSIGN_OR_RETURN(int64_t shot,
                         ParseInt(std::string_view(cols[2]).substr(4)));
    IVR_ASSIGN_OR_RETURN(int64_t grade, ParseInt(cols[3]));
    if (topic < 0 || shot < 0) {
      return Status::Corruption("negative id in qrels: " + line);
    }
    if (grade >= 0) {
      qrels.Set(static_cast<SearchTopicId>(topic),
                static_cast<ShotId>(shot), static_cast<int>(grade));
    }
  }
  return qrels;
}

}  // namespace ivr
