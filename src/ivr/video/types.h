#ifndef IVR_VIDEO_TYPES_H_
#define IVR_VIDEO_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ivr/core/clock.h"
#include "ivr/features/concept_detector.h"
#include "ivr/features/histogram.h"

namespace ivr {

using VideoId = uint32_t;
using StoryId = uint32_t;
using ShotId = uint32_t;
constexpr ShotId kInvalidShotId = static_cast<ShotId>(-1);
constexpr StoryId kInvalidStoryId = static_cast<StoryId>(-1);
constexpr VideoId kInvalidVideoId = static_cast<VideoId>(-1);

/// A topic label in the collection's semantic space. Topics double as the
/// concept vocabulary for the simulated concept detectors.
using TopicLabel = ConceptId;

/// The smallest retrievable unit: a camera shot within a news story. This
/// is the granularity TRECVID-style search evaluates at, and the unit users
/// click, play and judge.
struct Shot {
  ShotId id = kInvalidShotId;
  StoryId story = kInvalidStoryId;
  VideoId video = kInvalidVideoId;
  /// Offset of the shot within its video and its playback length.
  TimeMs start_ms = 0;
  TimeMs duration_ms = 0;
  /// What was actually said (generator ground truth, never indexed).
  std::string true_transcript;
  /// Speech-recogniser output (indexed); degraded copy of the truth.
  std::string asr_transcript;
  /// Ground-truth concept memberships, indexed by TopicLabel.
  std::vector<bool> concepts;
  /// The dominant topic of the shot.
  TopicLabel primary_topic = 0;
  /// Representative keyframe feature.
  ColorHistogram keyframe;

  /// Stable external key, e.g. "v003/s012/k2".
  std::string external_id;
};

/// A news story: a run of consecutive shots about one subject.
struct NewsStory {
  StoryId id = kInvalidStoryId;
  VideoId video = kInvalidVideoId;
  TopicLabel topic = 0;
  /// Editorial headline (metadata shown in interfaces; also indexed).
  std::string headline;
  std::vector<ShotId> shots;
};

/// One broadcast (e.g. an evening-news episode), a sequence of stories.
struct Video {
  VideoId id = kInvalidVideoId;
  std::string name;
  /// Broadcast day index (0 = first day of the collection).
  int32_t day = 0;
  std::vector<StoryId> stories;
};

}  // namespace ivr

#endif  // IVR_VIDEO_TYPES_H_
