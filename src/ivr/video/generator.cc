#include "ivr/video/generator.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "ivr/core/rng.h"
#include "ivr/core/string_util.h"

namespace ivr {
namespace {

constexpr const char* kSyllables[] = {
    "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du", "fa", "fe",
    "fi", "fo", "fu", "ga", "ge", "gi", "go", "gu", "ka", "ke", "ki", "ko",
    "ku", "la", "le", "li", "lo", "lu", "ma", "me", "mi", "mo", "mu", "na",
    "ne", "ni", "no", "nu", "pa", "pe", "pi", "po", "pu", "ra", "re", "ri",
    "ro", "ru", "sa", "se", "si", "so", "su", "ta", "te", "ti", "to", "tu",
    "va", "ve", "vi", "vo", "vu", "za", "ze", "zi", "zo", "zu"};
constexpr size_t kNumSyllables = sizeof(kSyllables) / sizeof(kSyllables[0]);

constexpr const char* kTopicNames[] = {
    "politics", "sports",     "weather",  "finance", "health",
    "science",  "culture",    "crime",    "technology", "travel",
    "education", "environment", "military", "elections", "energy",
    "housing",  "transport",  "agriculture", "justice", "media"};
constexpr size_t kNumTopicNames = sizeof(kTopicNames) / sizeof(kTopicNames[0]);

// Index spaces for word generation: general words and per-topic words live
// in disjoint ranges so the vocabularies never collide.
constexpr uint64_t kGeneralWordBase = 0;
constexpr uint64_t kTopicWordBase = 1u << 20;
constexpr uint64_t kTopicWordStride = 1u << 12;

Status ValidateOptions(const GeneratorOptions& o) {
  if (o.num_topics == 0) {
    return Status::InvalidArgument("num_topics must be > 0");
  }
  if (o.num_videos == 0) {
    return Status::InvalidArgument("num_videos must be > 0");
  }
  if (o.topic_vocabulary_size == 0 || o.general_vocabulary_size == 0) {
    return Status::InvalidArgument("vocabulary sizes must be > 0");
  }
  if (o.topic_vocabulary_size > kTopicWordStride) {
    return Status::InvalidArgument("topic_vocabulary_size too large");
  }
  if (o.num_topics > (1u << 8)) {
    return Status::InvalidArgument("num_topics too large");
  }
  for (double p : {o.general_word_prob, o.asr_word_error_rate,
                   o.off_topic_shot_prob, o.secondary_concept_prob,
                   o.topic_word_leak_prob}) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("probabilities must be in [0,1]");
    }
  }
  if (o.stories_per_video_mean <= 0.0 || o.shots_per_story_mean <= 0.0 ||
      o.words_per_shot_mean <= 0.0) {
    return Status::InvalidArgument("per-unit means must be > 0");
  }
  if (o.min_shot_duration_ms <= 0 ||
      o.max_shot_duration_ms < o.min_shot_duration_ms) {
    return Status::InvalidArgument("invalid shot duration range");
  }
  return Status::OK();
}

// Per-topic language model: its own word table plus the shared general
// table, both Zipf-weighted.
class TopicLanguageModel {
 public:
  TopicLanguageModel(TopicLabel topic, const GeneratorOptions& o)
      : topic_(topic),
        topic_zipf_(static_cast<int64_t>(o.topic_vocabulary_size),
                    o.word_zipf_exponent),
        general_zipf_(static_cast<int64_t>(o.general_vocabulary_size),
                      o.word_zipf_exponent),
        general_word_prob_(o.general_word_prob) {}

  std::string SampleWord(Rng* rng) const {
    if (rng->Bernoulli(general_word_prob_)) {
      return SampleGeneralWord(rng);
    }
    return SampleTopicWord(rng);
  }

  std::string SampleGeneralWord(Rng* rng) const {
    return MakeSyntheticWord(
        kGeneralWordBase + static_cast<uint64_t>(general_zipf_.Sample(rng)));
  }

  std::string SampleTopicWord(Rng* rng) const {
    return TopicWord(static_cast<uint64_t>(topic_zipf_.Sample(rng)));
  }

  // The rank-k word of this topic's exclusive vocabulary.
  std::string TopicWord(uint64_t rank) const {
    return MakeSyntheticWord(kTopicWordBase +
                             static_cast<uint64_t>(topic_) *
                                 kTopicWordStride +
                             rank);
  }

 private:
  TopicLabel topic_;
  ZipfDistribution topic_zipf_;
  ZipfDistribution general_zipf_;
  double general_word_prob_;
};

// Draws one spoken word for a shot of `topic`: general language with
// probability general_word_prob, otherwise topical — and a topical word
// leaks from a random other topic's vocabulary with topic_word_leak_prob
// (shared jargon like "minister" or "record" across subjects).
std::string SampleSpokenWord(const std::vector<TopicLanguageModel>& lms,
                             TopicLabel topic, const GeneratorOptions& o,
                             Rng* rng) {
  if (rng->Bernoulli(o.general_word_prob)) {
    return lms[topic].SampleGeneralWord(rng);
  }
  TopicLabel source = topic;
  if (lms.size() > 1 && rng->Bernoulli(o.topic_word_leak_prob)) {
    TopicLabel other = static_cast<TopicLabel>(
        rng->UniformInt(0, static_cast<int64_t>(lms.size()) - 2));
    if (other >= topic) ++other;
    source = other;
  }
  return lms[source].SampleTopicWord(rng);
}

// What a misrecognition sounds like: usually a common general-language
// word, sometimes a topical word of some *other* subject (the classic
// out-of-vocabulary confusion that poisons transcript search). Never a
// word of the shot's own topic — that would leave the topical signal
// intact and make ASR noise harmless.
std::string ConfusionWord(const std::vector<TopicLanguageModel>& lms,
                          TopicLabel topic, Rng* rng) {
  if (lms.size() > 1 && rng->Bernoulli(0.2)) {
    TopicLabel other = static_cast<TopicLabel>(
        rng->UniformInt(0, static_cast<int64_t>(lms.size()) - 2));
    if (other >= topic) ++other;
    return lms[other].TopicWord(
        static_cast<uint64_t>(rng->UniformInt(0, 30)));
  }
  return MakeSyntheticWord(kGeneralWordBase +
                           static_cast<uint64_t>(rng->UniformInt(0, 200)));
}

// Applies ASR noise to the spoken words: substitution / deletion /
// insertion with the classic 60/20/20 split of the word error rate.
std::vector<std::string> DegradeTranscript(
    const std::vector<std::string>& truth, double wer,
    const std::vector<TopicLanguageModel>& lms, TopicLabel topic,
    Rng* rng) {
  std::vector<std::string> out;
  out.reserve(truth.size() + 2);
  for (const std::string& word : truth) {
    if (!rng->Bernoulli(wer)) {
      out.push_back(word);
      continue;
    }
    const double kind = rng->UniformDouble();
    if (kind < 0.6) {
      // Substitution: the recogniser hears a wrong word.
      out.push_back(ConfusionWord(lms, topic, rng));
    } else if (kind < 0.8) {
      // Deletion: the word is lost.
    } else {
      // Insertion: keep the word and add a spurious one.
      out.push_back(word);
      out.push_back(ConfusionWord(lms, topic, rng));
    }
  }
  return out;
}

}  // namespace

std::string MakeSyntheticWord(uint64_t index) {
  // Mixed-radix expansion over the syllable alphabet; always emit at least
  // three syllables so words survive stopword/short-token filters.
  std::string word;
  uint64_t v = index;
  for (int i = 0; i < 3 || v > 0; ++i) {
    word += kSyllables[v % kNumSyllables];
    v /= kNumSyllables;
    if (i > 8) break;  // never loops this far; safety bound
  }
  return word;
}

std::string DefaultTopicName(TopicLabel label) {
  if (label < kNumTopicNames) return kTopicNames[label];
  return StrFormat("topic%u", label);
}

Result<GeneratedCollection> GenerateCollection(
    const GeneratorOptions& options) {
  IVR_RETURN_IF_ERROR(ValidateOptions(options));
  Rng rng(options.seed);

  GeneratedCollection out;
  out.options = options;

  const size_t num_topics = options.num_topics;

  // Topic names.
  std::vector<std::string> names;
  names.reserve(num_topics);
  for (TopicLabel t = 0; t < num_topics; ++t) {
    names.push_back(DefaultTopicName(t));
  }
  out.collection.SetTopicNames(std::move(names));

  // Per-topic language models and visual prototypes. Every prototype is
  // blended with a shared "studio" prototype so visual separability is
  // governed by keyframe_topic_strength.
  std::vector<TopicLanguageModel> lms;
  std::vector<ColorHistogram> prototypes;
  lms.reserve(num_topics);
  prototypes.reserve(num_topics);
  const ColorHistogram studio = ColorHistogram::RandomPrototype(&rng);
  const double alpha =
      std::clamp(options.keyframe_topic_strength, 0.0, 1.0);
  for (TopicLabel t = 0; t < num_topics; ++t) {
    lms.emplace_back(t, options);
    ColorHistogram proto = ColorHistogram::RandomPrototype(&rng);
    std::vector<double> mixed(proto.size());
    for (size_t b = 0; b < proto.size(); ++b) {
      mixed[b] = alpha * proto[b] + (1.0 - alpha) * studio[b];
    }
    ColorHistogram blended(std::move(mixed));
    blended.NormalizeL1();
    prototypes.push_back(std::move(blended));
  }

  const ZipfDistribution topic_popularity(
      static_cast<int64_t>(num_topics), options.topic_popularity_exponent);

  // --- Broadcasts, stories, shots ---
  for (size_t v = 0; v < options.num_videos; ++v) {
    Video video;
    video.name = StrFormat("broadcast-day%03zu", v);
    video.day = static_cast<int32_t>(v);
    const VideoId vid = out.collection.AddVideo(video);

    const int64_t num_stories =
        std::max<int64_t>(1, rng.Poisson(options.stories_per_video_mean));
    TimeMs cursor = 0;
    for (int64_t s = 0; s < num_stories; ++s) {
      NewsStory story;
      story.video = vid;
      story.topic =
          static_cast<TopicLabel>(topic_popularity.Sample(&rng));
      // Editorial headline: topical vocabulary but NOT the literal topic
      // label — otherwise title queries would match headlines exactly and
      // retrieval would be an oracle immune to ASR noise.
      story.headline = StrFormat(
          "%s %s day %d",
          lms[story.topic]
              .TopicWord(static_cast<uint64_t>(rng.UniformInt(0, 3)))
              .c_str(),
          lms[story.topic]
              .TopicWord(1 + static_cast<uint64_t>(rng.UniformInt(0, 8)))
              .c_str(),
          video.day);
      const StoryId sid = out.collection.AddStory(story);
      out.collection.mutable_video(vid)->stories.push_back(sid);

      const int64_t num_shots =
          std::max<int64_t>(1, rng.Poisson(options.shots_per_story_mean));
      std::vector<ShotId> shot_ids;
      for (int64_t k = 0; k < num_shots; ++k) {
        Shot shot;
        shot.story = sid;
        shot.video = vid;
        shot.primary_topic = story.topic;
        if (num_topics > 1 && rng.Bernoulli(options.off_topic_shot_prob)) {
          // Off-topic insert: pick a different topic.
          TopicLabel other = static_cast<TopicLabel>(
              rng.UniformInt(0, static_cast<int64_t>(num_topics) - 2));
          if (other >= story.topic) ++other;
          shot.primary_topic = other;
        }
        shot.concepts.assign(num_topics, false);
        shot.concepts[shot.primary_topic] = true;
        if (num_topics > 1 &&
            rng.Bernoulli(options.secondary_concept_prob)) {
          TopicLabel secondary = static_cast<TopicLabel>(
              rng.UniformInt(0, static_cast<int64_t>(num_topics) - 2));
          if (secondary >= shot.primary_topic) ++secondary;
          shot.concepts[secondary] = true;
        }

        shot.start_ms = cursor;
        shot.duration_ms = rng.UniformInt(options.min_shot_duration_ms,
                                          options.max_shot_duration_ms);
        cursor += shot.duration_ms;

        // Spoken words then ASR degradation.
        const int64_t num_words =
            std::max<int64_t>(3, rng.Poisson(options.words_per_shot_mean));
        std::vector<std::string> spoken;
        spoken.reserve(static_cast<size_t>(num_words));
        for (int64_t w = 0; w < num_words; ++w) {
          spoken.push_back(
              SampleSpokenWord(lms, shot.primary_topic, options, &rng));
        }
        shot.true_transcript = Join(spoken, " ");
        shot.asr_transcript =
            Join(DegradeTranscript(spoken, options.asr_word_error_rate, lms,
                                   shot.primary_topic, &rng),
                 " ");

        shot.keyframe = prototypes[shot.primary_topic].Perturb(
            &rng, options.keyframe_noise);
        shot.external_id =
            StrFormat("v%03u/s%05u/k%lld", vid, sid,
                      static_cast<long long>(k));
        shot_ids.push_back(out.collection.AddShot(shot));
      }
      // Backfill the story's shot list (the story was added before its
      // shots existed).
      out.collection.mutable_story(sid)->shots = std::move(shot_ids);
    }
  }

  // --- Search topics + qrels ---
  const size_t num_search_topics =
      options.num_search_topics == 0
          ? num_topics
          : std::min(options.num_search_topics, num_topics);
  for (size_t i = 0; i < num_search_topics; ++i) {
    SearchTopic topic;
    topic.id = static_cast<SearchTopicId>(i + 1);  // TREC ids start at 1
    topic.target_topic = static_cast<TopicLabel>(i);

    // Titles are what users type: the subject's own high-frequency
    // vocabulary (every prefix of the title is a workable query, which
    // matters for remote-control users who type one word).
    std::vector<std::string> title_words;
    const uint64_t offset = options.topic_title_word_offset;
    for (size_t w = 0; w < options.topic_title_words; ++w) {
      title_words.push_back(
          lms[topic.target_topic].TopicWord(offset + w));
    }
    topic.title = Join(title_words, " ");

    // The description surrounds the title terms with further topical
    // vocabulary at nearby ranks — the pool reformulating users draw on.
    std::vector<std::string> desc_words = title_words;
    for (size_t w = 0; w < options.topic_description_words; ++w) {
      desc_words.push_back(lms[topic.target_topic].TopicWord(
          offset + options.topic_title_words + (w % 24)));
    }
    topic.description = Join(desc_words, " ");

    for (size_t e = 0; e < options.topic_example_keyframes; ++e) {
      topic.examples.push_back(prototypes[topic.target_topic].Perturb(
          &rng, options.keyframe_noise * 0.5));
    }

    size_t relevant = 0;
    for (const Shot& shot : out.collection.shots()) {
      if (shot.primary_topic == topic.target_topic) {
        out.qrels.Set(topic.id, shot.id, 2);
        ++relevant;
      } else if (topic.target_topic < shot.concepts.size() &&
                 shot.concepts[topic.target_topic]) {
        out.qrels.Set(topic.id, shot.id, 1);
        ++relevant;
      }
    }
    // A subject with no coverage in the collection makes no search topic
    // (TRECVID drops topics without relevant shots); rare topics can end
    // up story-less under a skewed popularity distribution.
    if (relevant == 0) {
      continue;
    }
    out.topics.topics.push_back(std::move(topic));
  }

  return out;
}

}  // namespace ivr
