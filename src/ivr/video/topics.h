#ifndef IVR_VIDEO_TOPICS_H_
#define IVR_VIDEO_TOPICS_H_

#include <string>
#include <vector>

#include "ivr/features/histogram.h"
#include "ivr/video/qrels.h"
#include "ivr/video/types.h"

namespace ivr {

/// A TRECVID-style search topic: a statement of an information need with a
/// short title (what a user would type), a longer description, and example
/// keyframes for query-by-visual-example.
struct SearchTopic {
  SearchTopicId id = 0;
  /// Short query-like phrasing, e.g. "finance market shares bank".
  std::string title;
  /// Fuller narrative; simulated users draw reformulation terms from it.
  std::string description;
  /// Visual examples (topic-typical keyframes).
  std::vector<ColorHistogram> examples;
  /// Ground-truth subject this topic asks about (used by the generator to
  /// derive qrels; retrieval systems never see it).
  TopicLabel target_topic = 0;
};

/// A topic set plus its judgements — the full "test collection" triple is
/// (VideoCollection, TopicSet, Qrels).
struct TopicSet {
  std::vector<SearchTopic> topics;

  const SearchTopic* Find(SearchTopicId id) const {
    for (const SearchTopic& t : topics) {
      if (t.id == id) return &t;
    }
    return nullptr;
  }
  size_t size() const { return topics.size(); }
};

}  // namespace ivr

#endif  // IVR_VIDEO_TOPICS_H_
