#ifndef IVR_VIDEO_COLLECTION_H_
#define IVR_VIDEO_COLLECTION_H_

#include <functional>
#include <string>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/video/types.h"

namespace ivr {

/// Resolves a ShotId to its shot, nullptr when unknown. The feedback and
/// profile layers take this instead of a whole VideoCollection so a
/// segmented engine can serve them without materializing a monolithic
/// collection.
using ShotLookup = std::function<const Shot*(ShotId)>;

/// An in-memory digital video library: broadcasts, their stories, and the
/// shots inside them, with topic metadata. Ids are dense indices into the
/// respective vectors; the builder (generator) guarantees consistency.
class VideoCollection {
 public:
  VideoCollection() = default;

  VideoCollection(const VideoCollection&) = delete;
  VideoCollection& operator=(const VideoCollection&) = delete;
  VideoCollection(VideoCollection&&) = default;
  VideoCollection& operator=(VideoCollection&&) = default;

  // --- construction (used by the generator / loaders) ---
  VideoId AddVideo(Video video);
  StoryId AddStory(NewsStory story);
  ShotId AddShot(Shot shot);
  void SetTopicNames(std::vector<std::string> names);

  // --- access ---
  size_t num_videos() const { return videos_.size(); }
  size_t num_stories() const { return stories_.size(); }
  size_t num_shots() const { return shots_.size(); }
  size_t num_topics() const { return topic_names_.size(); }

  const std::vector<Video>& videos() const { return videos_; }
  const std::vector<NewsStory>& stories() const { return stories_; }
  const std::vector<Shot>& shots() const { return shots_; }
  const std::vector<std::string>& topic_names() const { return topic_names_; }

  Result<const Video*> video(VideoId id) const;
  Result<const NewsStory*> story(StoryId id) const;
  Result<const Shot*> shot(ShotId id) const;

  /// Mutable access for builders (e.g. to backfill a story's shot list
  /// after its shots have been added). Returns nullptr on a bad id.
  NewsStory* mutable_story(StoryId id);
  Video* mutable_video(VideoId id);

  /// Name of a topic label ("politics"); "topic<k>" fallback for labels
  /// beyond the named range.
  std::string TopicName(TopicLabel label) const;

  /// The story a shot belongs to (OutOfRange on bad id).
  Result<const NewsStory*> StoryOfShot(ShotId id) const;

  /// All shot ids whose primary topic is `label`.
  std::vector<ShotId> ShotsWithPrimaryTopic(TopicLabel label) const;

  /// Collects every shot keyframe, index-aligned with shot ids (useful for
  /// building a VisualSearcher over the whole collection).
  std::vector<ColorHistogram> AllKeyframes() const;

 private:
  std::vector<Video> videos_;
  std::vector<NewsStory> stories_;
  std::vector<Shot> shots_;
  std::vector<std::string> topic_names_;
};

}  // namespace ivr

#endif  // IVR_VIDEO_COLLECTION_H_
