#ifndef IVR_VIDEO_GENERATOR_H_
#define IVR_VIDEO_GENERATOR_H_

#include <cstdint>
#include <string>

#include "ivr/core/result.h"
#include "ivr/video/collection.h"
#include "ivr/video/qrels.h"
#include "ivr/video/topics.h"

namespace ivr {

/// Parameters of the synthetic news-video test collection. The generator
/// replaces the paper's BBC One O'Clock News recordings and the TRECVID
/// collection/topics/qrels triple with a fully controllable equivalent:
/// broadcasts consist of stories about Zipf-popular topics, each story is a
/// run of shots with per-topic language-model transcripts degraded by a
/// configurable ASR word-error rate, keyframes cluster around per-topic
/// visual prototypes, and exhaustive relevance judgements fall out of the
/// ground truth.
struct GeneratorOptions {
  uint64_t seed = 42;

  /// Semantic space.
  size_t num_topics = 12;

  /// Collection size.
  size_t num_videos = 30;            ///< number of broadcasts (days)
  double stories_per_video_mean = 8.0;
  double shots_per_story_mean = 6.0;
  double words_per_shot_mean = 30.0;

  /// Language model. Each topic owns `topic_vocabulary_size` exclusive
  /// words; all topics share `general_vocabulary_size` common words. Each
  /// transcript word is general with probability `general_word_prob`,
  /// topical otherwise; within a class words follow a Zipf distribution.
  size_t topic_vocabulary_size = 120;
  size_t general_vocabulary_size = 800;
  double general_word_prob = 0.45;
  double word_zipf_exponent = 1.0;
  /// Probability that a topical word is borrowed from a *different*
  /// topic's vocabulary ("minister" shows up in both politics and
  /// finance stories). This is what makes non-relevant shots match
  /// topical queries — without it every result list would be pure.
  double topic_word_leak_prob = 0.18;

  /// Story topics are drawn with this Zipf skew (0 = uniform popularity).
  double topic_popularity_exponent = 0.7;

  /// ASR degradation: probability that a spoken word is corrupted. Of the
  /// corrupted words, 60% are substituted, 20% deleted, 20% gain an
  /// inserted extra word.
  double asr_word_error_rate = 0.15;

  /// Probability that a shot inside a story is off-topic (anchor link,
  /// weather insert, ...), taking a random other topic.
  double off_topic_shot_prob = 0.10;
  /// Probability that a shot carries a secondary concept label.
  double secondary_concept_prob = 0.15;

  /// Visual model: keyframes are a mixture of the topic prototype and a
  /// global "studio" prototype, perturbed with log-normal sigma
  /// `keyframe_noise`. `keyframe_topic_strength` in [0,1] is the topic
  /// share of the mixture — 1 gives perfectly separable visual clusters,
  /// small values approach the regime where query-by-example barely beats
  /// chance (the semantic gap for low-level features).
  double keyframe_noise = 0.35;
  double keyframe_topic_strength = 1.0;

  /// Search-topic generation. 0 means one per collection topic.
  size_t num_search_topics = 0;
  size_t topic_title_words = 3;
  /// Rank of the first title word within the target topic's vocabulary.
  /// 0 asks for the subject's most frequent words (easy, category-style
  /// topics); larger offsets give narrow, aspect-style topics whose terms
  /// appear in only part of the relevant shots — the TRECVID regime.
  size_t topic_title_word_offset = 0;
  size_t topic_description_words = 15;
  size_t topic_example_keyframes = 2;

  /// Shot timing (uniform range, milliseconds).
  TimeMs min_shot_duration_ms = 2000;
  TimeMs max_shot_duration_ms = 15000;
};

/// The full generated test collection.
struct GeneratedCollection {
  VideoCollection collection;
  TopicSet topics;
  Qrels qrels;
  GeneratorOptions options;
};

/// Generates a collection. Deterministic in `options.seed`. Fails with
/// InvalidArgument on nonsensical parameters (zero topics/videos, WER or
/// probabilities outside [0,1], inverted duration range).
Result<GeneratedCollection> GenerateCollection(
    const GeneratorOptions& options);

/// Deterministically maps an index to a pronounceable synthetic word
/// ("bakedo"). Injective for indices < 65^4.
std::string MakeSyntheticWord(uint64_t index);

/// Human-readable names for the first topics ("politics", "sports", ...),
/// falling back to "topic<k>".
std::string DefaultTopicName(TopicLabel label);

}  // namespace ivr

#endif  // IVR_VIDEO_GENERATOR_H_
