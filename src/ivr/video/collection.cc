#include "ivr/video/collection.h"

#include <utility>

#include "ivr/core/string_util.h"

namespace ivr {

VideoId VideoCollection::AddVideo(Video video) {
  const VideoId id = static_cast<VideoId>(videos_.size());
  video.id = id;
  videos_.push_back(std::move(video));
  return id;
}

StoryId VideoCollection::AddStory(NewsStory story) {
  const StoryId id = static_cast<StoryId>(stories_.size());
  story.id = id;
  stories_.push_back(std::move(story));
  return id;
}

ShotId VideoCollection::AddShot(Shot shot) {
  const ShotId id = static_cast<ShotId>(shots_.size());
  shot.id = id;
  shots_.push_back(std::move(shot));
  return id;
}

void VideoCollection::SetTopicNames(std::vector<std::string> names) {
  topic_names_ = std::move(names);
}

Result<const Video*> VideoCollection::video(VideoId id) const {
  if (id >= videos_.size()) return Status::OutOfRange("bad VideoId");
  return &videos_[id];
}

Result<const NewsStory*> VideoCollection::story(StoryId id) const {
  if (id >= stories_.size()) return Status::OutOfRange("bad StoryId");
  return &stories_[id];
}

Result<const Shot*> VideoCollection::shot(ShotId id) const {
  if (id >= shots_.size()) return Status::OutOfRange("bad ShotId");
  return &shots_[id];
}

NewsStory* VideoCollection::mutable_story(StoryId id) {
  if (id >= stories_.size()) return nullptr;
  return &stories_[id];
}

Video* VideoCollection::mutable_video(VideoId id) {
  if (id >= videos_.size()) return nullptr;
  return &videos_[id];
}

std::string VideoCollection::TopicName(TopicLabel label) const {
  if (label < topic_names_.size()) return topic_names_[label];
  return StrFormat("topic%u", label);
}

Result<const NewsStory*> VideoCollection::StoryOfShot(ShotId id) const {
  IVR_ASSIGN_OR_RETURN(const Shot* s, shot(id));
  return story(s->story);
}

std::vector<ShotId> VideoCollection::ShotsWithPrimaryTopic(
    TopicLabel label) const {
  std::vector<ShotId> out;
  for (const Shot& s : shots_) {
    if (s.primary_topic == label) out.push_back(s.id);
  }
  return out;
}

std::vector<ColorHistogram> VideoCollection::AllKeyframes() const {
  std::vector<ColorHistogram> out;
  out.reserve(shots_.size());
  for (const Shot& s : shots_) {
    out.push_back(s.keyframe);
  }
  return out;
}

}  // namespace ivr
