#include "ivr/video/topics.h"

// TopicSet is header-only today; this file anchors the translation unit so
// the build target exists and future serialisation code has a home.
namespace ivr {}  // namespace ivr
