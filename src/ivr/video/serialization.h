#ifndef IVR_VIDEO_SERIALIZATION_H_
#define IVR_VIDEO_SERIALIZATION_H_

#include <string>

#include "ivr/core/result.h"
#include "ivr/video/generator.h"

namespace ivr {

/// Text archive format for a full test collection (collection + search
/// topics + qrels), so generated corpora can be saved once and shared
/// between the CLI tools, experiments, and external scripts.
///
/// Layout (all fields tab-separated within a line):
///   ivr-collection v1
///   topics <n>            followed by n topic-name lines
///   videos <n>            id name day
///   stories <n>           id video topic headline
///   shots <n>             id story video start dur topic concepts
///                         external asr true keyframe(csv floats)
///   searchtopics <n>      id target title|desc|example-histograms
///   qrels <n>             TREC qrels lines
///
/// Free-text fields never contain tabs (the generator's vocabulary is
/// alphanumeric; loaders reject embedded tabs on write).
std::string SerializeCollection(const GeneratedCollection& generated);

/// Parses the format produced by SerializeCollection. The `options`
/// member of the result is default-initialised (the archive captures the
/// data, not the recipe).
Result<GeneratedCollection> ParseCollection(const std::string& text);

/// Convenience file wrappers.
Status SaveCollection(const GeneratedCollection& generated,
                      const std::string& path);
Result<GeneratedCollection> LoadCollection(const std::string& path);

}  // namespace ivr

#endif  // IVR_VIDEO_SERIALIZATION_H_
