#ifndef IVR_VIDEO_SERIALIZATION_H_
#define IVR_VIDEO_SERIALIZATION_H_

#include <string>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/video/generator.h"

namespace ivr {

/// Text archive format for a full test collection (collection + search
/// topics + qrels), so generated corpora can be saved once and shared
/// between the CLI tools, experiments, and external scripts.
///
/// Layout (all fields tab-separated within a line):
///   ivr-collection v1
///   topics <n>            followed by n topic-name lines
///   videos <n>            id name day
///   stories <n>           id video topic headline
///   shots <n>             id story video start dur topic concepts
///                         external asr true keyframe(csv floats)
///   searchtopics <n>      id target title|desc|example-histograms
///   qrels <n>             TREC qrels lines
///
/// Free-text fields never contain tabs (the generator's vocabulary is
/// alphanumeric; loaders reject embedded tabs on write).
std::string SerializeCollection(const GeneratedCollection& generated);

/// Parses the format produced by SerializeCollection. The `options`
/// member of the result is default-initialised (the archive captures the
/// data, not the recipe).
Result<GeneratedCollection> ParseCollection(const std::string& text);

/// Convenience file wrappers. SaveCollection writes crash-safely: the
/// serialized archive is wrapped in a CRC32C-checksummed envelope (see
/// core/checksum.h) and published with WriteFileAtomic, so a crash or
/// fault mid-save leaves either the complete old or the complete new
/// snapshot on disk, never a torn one. LoadCollection verifies the
/// checksum (kCorruption on any mismatch); bare legacy archives without
/// an envelope are still accepted, unchecked.
Status SaveCollection(const GeneratedCollection& generated,
                      const std::string& path);
Result<GeneratedCollection> LoadCollection(const std::string& path);

/// Outcome of the salvage path. `dropped_records` counts archive lines
/// (and judgements) that had to be discarded; `notes` explains the first
/// few drops in human terms.
struct CollectionRecovery {
  GeneratedCollection generated;
  size_t dropped_records = 0;
  /// True when the envelope checksum verified (salvage was run anyway,
  /// e.g. on a strict-parse failure); false for legacy or damaged files.
  bool checksum_ok = false;
  std::vector<std::string> notes;
};

/// Best-effort salvage of a damaged archive: skips unparseable records,
/// drops records whose parent record was lost (stories of a dropped
/// video, shots of a dropped story, judgements of a dropped shot) while
/// remapping the surviving dense ids, and reports what was discarded.
/// Only fails when the file cannot be read at all or nothing resembling
/// an archive is found.
Result<CollectionRecovery> RecoverCollection(const std::string& path);

/// The loader the CLI tools use: LoadCollection with retry on transient
/// IO errors; on a corruption verdict, falls back to RecoverCollection
/// and logs a warning with the number of dropped records (also written
/// to *dropped_records when non-null). Fault site: "collection.load".
Result<GeneratedCollection> LoadCollectionRobust(
    const std::string& path, size_t* dropped_records = nullptr);

}  // namespace ivr

#endif  // IVR_VIDEO_SERIALIZATION_H_
