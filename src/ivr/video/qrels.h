#ifndef IVR_VIDEO_QRELS_H_
#define IVR_VIDEO_QRELS_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/video/types.h"

namespace ivr {

/// Identifier of a search topic (an information need with judgements), as
/// in TRECVID. Distinct from TopicLabel (a collection subject label).
using SearchTopicId = uint32_t;

/// Graded relevance judgements, TREC-style. Grade 0 is an explicit
/// judged-nonrelevant entry — distinct from an unjudged shot, which is
/// what judgement-aware metrics like bpref need; the generator emits
/// 1 = partially and 2 = highly relevant.
class Qrels {
 public:
  Qrels() = default;

  /// Records a judgement. Grade 0 records judged-nonrelevant (it does NOT
  /// remove the entry); a negative grade removes any existing judgement.
  void Set(SearchTopicId topic, ShotId shot, int grade);

  /// Judged grade, 0 when unjudged or judged-nonrelevant (IsJudged tells
  /// the two apart).
  int Grade(SearchTopicId topic, ShotId shot) const;

  /// True when the pool contains any judgement for this (topic, shot),
  /// including an explicit grade-0 (nonrelevant) one.
  bool IsJudged(SearchTopicId topic, ShotId shot) const;

  /// True if the shot's grade is >= min_grade.
  bool IsRelevant(SearchTopicId topic, ShotId shot, int min_grade = 1) const;

  /// All shots with grade >= min_grade, ascending by ShotId.
  std::vector<ShotId> RelevantShots(SearchTopicId topic,
                                    int min_grade = 1) const;

  size_t NumRelevant(SearchTopicId topic, int min_grade = 1) const;

  /// Number of judged shots for a topic, whatever the grade (the judgement
  /// pool size; NumJudged - NumRelevant = judged nonrelevant).
  size_t NumJudged(SearchTopicId topic) const;

  /// Topic ids that have at least one judgement, ascending.
  std::vector<SearchTopicId> Topics() const;

  size_t TotalJudgments() const;

  /// Serialises in the classic 4-column TREC format:
  ///   <topic> 0 shot<id> <grade>
  std::string ToTrecFormat() const;

  /// Parses the format produced by ToTrecFormat(). Lines with grade 0 are
  /// kept as explicit judged-nonrelevant entries. Returns Corruption on
  /// malformed input.
  static Result<Qrels> FromTrecFormat(const std::string& text);

 private:
  // map (ordered) at the topic level for deterministic serialisation;
  // unordered within a topic for O(1) lookup on the hot path.
  std::map<SearchTopicId, std::unordered_map<ShotId, int>> judgments_;
};

}  // namespace ivr

#endif  // IVR_VIDEO_QRELS_H_
