#ifndef IVR_VIDEO_QRELS_H_
#define IVR_VIDEO_QRELS_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ivr/core/result.h"
#include "ivr/video/types.h"

namespace ivr {

/// Identifier of a search topic (an information need with judgements), as
/// in TRECVID. Distinct from TopicLabel (a collection subject label).
using SearchTopicId = uint32_t;

/// Graded relevance judgements, TREC-style. Grade 0 (or absence) means not
/// relevant; the generator emits 1 = partially and 2 = highly relevant.
class Qrels {
 public:
  Qrels() = default;

  /// Records a judgement; grade 0 removes any existing judgement.
  void Set(SearchTopicId topic, ShotId shot, int grade);

  /// Judged grade, 0 when unjudged.
  int Grade(SearchTopicId topic, ShotId shot) const;

  /// True if the shot's grade is >= min_grade.
  bool IsRelevant(SearchTopicId topic, ShotId shot, int min_grade = 1) const;

  /// All shots with grade >= min_grade, ascending by ShotId.
  std::vector<ShotId> RelevantShots(SearchTopicId topic,
                                    int min_grade = 1) const;

  size_t NumRelevant(SearchTopicId topic, int min_grade = 1) const;

  /// Topic ids that have at least one judgement, ascending.
  std::vector<SearchTopicId> Topics() const;

  size_t TotalJudgments() const;

  /// Serialises in the classic 4-column TREC format:
  ///   <topic> 0 shot<id> <grade>
  std::string ToTrecFormat() const;

  /// Parses the format produced by ToTrecFormat(). Lines with grade 0 are
  /// accepted and ignored. Returns Corruption on malformed input.
  static Result<Qrels> FromTrecFormat(const std::string& text);

 private:
  // map (ordered) at the topic level for deterministic serialisation;
  // unordered within a topic for O(1) lookup on the hot path.
  std::map<SearchTopicId, std::unordered_map<ShotId, int>> judgments_;
};

}  // namespace ivr

#endif  // IVR_VIDEO_QRELS_H_
