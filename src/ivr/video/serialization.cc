#include "ivr/video/serialization.h"

#include <map>
#include <utility>

#include "ivr/core/checksum.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"
#include "ivr/core/logging.h"
#include "ivr/core/retry.h"
#include "ivr/core/string_util.h"

namespace ivr {
namespace {

constexpr std::string_view kMagic = "ivr-collection v1";
constexpr std::string_view kEnvelopeFormat = "collection";

std::string EncodeHistogram(const ColorHistogram& h) {
  std::vector<std::string> parts;
  parts.reserve(h.size());
  for (size_t i = 0; i < h.size(); ++i) {
    parts.push_back(StrFormat("%.17g", h[i]));
  }
  return Join(parts, ",");
}

Result<ColorHistogram> DecodeHistogram(std::string_view text) {
  std::vector<double> bins;
  for (const std::string& part : Split(text, ',')) {
    IVR_ASSIGN_OR_RETURN(double v, ParseDouble(part));
    bins.push_back(v);
  }
  return ColorHistogram(std::move(bins));
}

std::string EncodeConcepts(const std::vector<bool>& concepts) {
  std::string out;
  out.reserve(concepts.size());
  for (bool b : concepts) {
    out.push_back(b ? '1' : '0');
  }
  return out;
}

// Line cursor over the archive.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : lines_(Split(text, '\n')) {}

  Result<std::string> Next() {
    if (pos_ >= lines_.size()) {
      return Status::Corruption("unexpected end of collection archive");
    }
    return lines_[pos_++];
  }

  /// Reads "keyword <count>".
  Result<size_t> Section(std::string_view keyword) {
    IVR_ASSIGN_OR_RETURN(std::string line, Next());
    const std::vector<std::string> parts = SplitWhitespace(line);
    if (parts.size() != 2 || parts[0] != keyword) {
      return Status::Corruption("expected section '" +
                                std::string(keyword) + "', got: " + line);
    }
    IVR_ASSIGN_OR_RETURN(int64_t n, ParseInt(parts[1]));
    if (n < 0) return Status::Corruption("negative section size");
    return static_cast<size_t>(n);
  }

 private:
  std::vector<std::string> lines_;
  size_t pos_ = 0;
};

Result<std::vector<std::string>> Columns(const std::string& line,
                                         size_t expected) {
  std::vector<std::string> cols = Split(line, '\t');
  if (cols.size() != expected) {
    return Status::Corruption(StrFormat(
        "expected %zu tab-separated columns, got %zu in: ", expected,
        cols.size()) + line);
  }
  return cols;
}

}  // namespace

std::string SerializeCollection(const GeneratedCollection& generated) {
  const VideoCollection& c = generated.collection;
  std::string out(kMagic);
  out += "\n";

  out += StrFormat("topics %zu\n", c.num_topics());
  for (const std::string& name : c.topic_names()) {
    out += name + "\n";
  }

  out += StrFormat("videos %zu\n", c.num_videos());
  for (const Video& v : c.videos()) {
    out += StrFormat("%u\t%s\t%d\n", v.id, v.name.c_str(), v.day);
  }

  out += StrFormat("stories %zu\n", c.num_stories());
  for (const NewsStory& s : c.stories()) {
    out += StrFormat("%u\t%u\t%u\t%s\n", s.id, s.video, s.topic,
                     s.headline.c_str());
  }

  out += StrFormat("shots %zu\n", c.num_shots());
  for (const Shot& s : c.shots()) {
    out += StrFormat(
        "%u\t%u\t%u\t%lld\t%lld\t%u\t%s\t%s\t%s\t%s\t%s\n", s.id, s.story,
        s.video, static_cast<long long>(s.start_ms),
        static_cast<long long>(s.duration_ms), s.primary_topic,
        EncodeConcepts(s.concepts).c_str(), s.external_id.c_str(),
        s.asr_transcript.c_str(), s.true_transcript.c_str(),
        EncodeHistogram(s.keyframe).c_str());
  }

  out += StrFormat("searchtopics %zu\n", generated.topics.size());
  for (const SearchTopic& t : generated.topics.topics) {
    std::vector<std::string> examples;
    for (const ColorHistogram& h : t.examples) {
      examples.push_back(EncodeHistogram(h));
    }
    out += StrFormat("%u\t%u\t%s\t%s\t%s\n", t.id, t.target_topic,
                     t.title.c_str(), t.description.c_str(),
                     Join(examples, ";").c_str());
  }

  const std::string qrels = generated.qrels.ToTrecFormat();
  const std::vector<std::string> qrel_lines = Split(qrels, '\n');
  // Split leaves one trailing empty line for a \n-terminated blob.
  const size_t num_qrels =
      qrel_lines.empty() ? 0 : qrel_lines.size() - 1;
  out += StrFormat("qrels %zu\n", num_qrels);
  out += qrels;
  return out;
}

Result<GeneratedCollection> ParseCollection(const std::string& text) {
  LineReader reader(text);
  IVR_ASSIGN_OR_RETURN(std::string magic, reader.Next());
  if (Trim(magic) != kMagic) {
    return Status::Corruption("not an ivr-collection v1 archive");
  }

  GeneratedCollection out;

  IVR_ASSIGN_OR_RETURN(size_t num_topics, reader.Section("topics"));
  std::vector<std::string> names;
  for (size_t i = 0; i < num_topics; ++i) {
    IVR_ASSIGN_OR_RETURN(std::string name, reader.Next());
    names.push_back(std::move(name));
  }
  out.collection.SetTopicNames(std::move(names));

  IVR_ASSIGN_OR_RETURN(size_t num_videos, reader.Section("videos"));
  for (size_t i = 0; i < num_videos; ++i) {
    IVR_ASSIGN_OR_RETURN(std::string line, reader.Next());
    IVR_ASSIGN_OR_RETURN(std::vector<std::string> cols, Columns(line, 3));
    Video v;
    v.name = cols[1];
    IVR_ASSIGN_OR_RETURN(int64_t day, ParseInt(cols[2]));
    v.day = static_cast<int32_t>(day);
    const VideoId id = out.collection.AddVideo(std::move(v));
    if (id != i) return Status::Corruption("non-dense video ids");
  }

  IVR_ASSIGN_OR_RETURN(size_t num_stories, reader.Section("stories"));
  for (size_t i = 0; i < num_stories; ++i) {
    IVR_ASSIGN_OR_RETURN(std::string line, reader.Next());
    IVR_ASSIGN_OR_RETURN(std::vector<std::string> cols, Columns(line, 4));
    NewsStory s;
    IVR_ASSIGN_OR_RETURN(int64_t video, ParseInt(cols[1]));
    IVR_ASSIGN_OR_RETURN(int64_t topic, ParseInt(cols[2]));
    s.video = static_cast<VideoId>(video);
    s.topic = static_cast<TopicLabel>(topic);
    s.headline = cols[3];
    const StoryId id = out.collection.AddStory(std::move(s));
    if (id != i) return Status::Corruption("non-dense story ids");
    Video* v = out.collection.mutable_video(static_cast<VideoId>(video));
    if (v == nullptr) return Status::Corruption("story with bad video id");
    v->stories.push_back(id);
  }

  IVR_ASSIGN_OR_RETURN(size_t num_shots, reader.Section("shots"));
  for (size_t i = 0; i < num_shots; ++i) {
    IVR_ASSIGN_OR_RETURN(std::string line, reader.Next());
    IVR_ASSIGN_OR_RETURN(std::vector<std::string> cols, Columns(line, 11));
    Shot s;
    IVR_ASSIGN_OR_RETURN(int64_t story, ParseInt(cols[1]));
    IVR_ASSIGN_OR_RETURN(int64_t video, ParseInt(cols[2]));
    IVR_ASSIGN_OR_RETURN(int64_t start, ParseInt(cols[3]));
    IVR_ASSIGN_OR_RETURN(int64_t duration, ParseInt(cols[4]));
    IVR_ASSIGN_OR_RETURN(int64_t topic, ParseInt(cols[5]));
    s.story = static_cast<StoryId>(story);
    s.video = static_cast<VideoId>(video);
    s.start_ms = start;
    s.duration_ms = duration;
    s.primary_topic = static_cast<TopicLabel>(topic);
    for (char bit : cols[6]) {
      if (bit != '0' && bit != '1') {
        return Status::Corruption("bad concept bitstring");
      }
      s.concepts.push_back(bit == '1');
    }
    s.external_id = cols[7];
    s.asr_transcript = cols[8];
    s.true_transcript = cols[9];
    IVR_ASSIGN_OR_RETURN(s.keyframe, DecodeHistogram(cols[10]));
    const ShotId id = out.collection.AddShot(std::move(s));
    if (id != i) return Status::Corruption("non-dense shot ids");
    NewsStory* st =
        out.collection.mutable_story(static_cast<StoryId>(story));
    if (st == nullptr) return Status::Corruption("shot with bad story id");
    st->shots.push_back(id);
  }

  IVR_ASSIGN_OR_RETURN(size_t num_search, reader.Section("searchtopics"));
  for (size_t i = 0; i < num_search; ++i) {
    IVR_ASSIGN_OR_RETURN(std::string line, reader.Next());
    IVR_ASSIGN_OR_RETURN(std::vector<std::string> cols, Columns(line, 5));
    SearchTopic t;
    IVR_ASSIGN_OR_RETURN(int64_t id, ParseInt(cols[0]));
    IVR_ASSIGN_OR_RETURN(int64_t target, ParseInt(cols[1]));
    t.id = static_cast<SearchTopicId>(id);
    t.target_topic = static_cast<TopicLabel>(target);
    t.title = cols[2];
    t.description = cols[3];
    if (!Trim(cols[4]).empty()) {
      for (const std::string& enc : Split(cols[4], ';')) {
        IVR_ASSIGN_OR_RETURN(ColorHistogram h, DecodeHistogram(enc));
        t.examples.push_back(std::move(h));
      }
    }
    out.topics.topics.push_back(std::move(t));
  }

  IVR_ASSIGN_OR_RETURN(size_t num_qrels, reader.Section("qrels"));
  std::string qrel_text;
  for (size_t i = 0; i < num_qrels; ++i) {
    IVR_ASSIGN_OR_RETURN(std::string line, reader.Next());
    qrel_text += line;
    qrel_text += "\n";
  }
  IVR_ASSIGN_OR_RETURN(out.qrels, Qrels::FromTrecFormat(qrel_text));
  return out;
}

Status SaveCollection(const GeneratedCollection& generated,
                      const std::string& path) {
  return WriteFileAtomic(
      path, WrapEnvelope(kEnvelopeFormat, SerializeCollection(generated)));
}

Result<GeneratedCollection> LoadCollection(const std::string& path) {
  IVR_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  if (LooksEnveloped(text)) {
    IVR_ASSIGN_OR_RETURN(text, UnwrapEnvelope(kEnvelopeFormat, text));
  }
  return ParseCollection(text);
}

namespace {

/// Salvage-parser state: remaps the surviving dense ids so references
/// stay consistent after records are dropped.
struct SalvageState {
  CollectionRecovery out;
  std::map<uint32_t, VideoId> video_remap;
  std::map<uint32_t, StoryId> story_remap;
  std::map<uint32_t, ShotId> shot_remap;

  void Drop(const std::string& why) {
    ++out.dropped_records;
    if (out.notes.size() < 20) out.notes.push_back(why);
  }
};

Status SalvageVideo(const std::string& line, SalvageState* s) {
  IVR_ASSIGN_OR_RETURN(std::vector<std::string> cols, Columns(line, 3));
  IVR_ASSIGN_OR_RETURN(int64_t old_id, ParseInt(cols[0]));
  Video v;
  v.name = cols[1];
  IVR_ASSIGN_OR_RETURN(int64_t day, ParseInt(cols[2]));
  v.day = static_cast<int32_t>(day);
  s->video_remap[static_cast<uint32_t>(old_id)] =
      s->out.generated.collection.AddVideo(std::move(v));
  return Status::OK();
}

Status SalvageStory(const std::string& line, SalvageState* s) {
  IVR_ASSIGN_OR_RETURN(std::vector<std::string> cols, Columns(line, 4));
  IVR_ASSIGN_OR_RETURN(int64_t old_id, ParseInt(cols[0]));
  IVR_ASSIGN_OR_RETURN(int64_t video, ParseInt(cols[1]));
  IVR_ASSIGN_OR_RETURN(int64_t topic, ParseInt(cols[2]));
  auto parent = s->video_remap.find(static_cast<uint32_t>(video));
  if (parent == s->video_remap.end()) {
    return Status::Corruption("story references missing video " +
                              cols[1]);
  }
  NewsStory story;
  story.video = parent->second;
  story.topic = static_cast<TopicLabel>(topic);
  story.headline = cols[3];
  const StoryId id = s->out.generated.collection.AddStory(std::move(story));
  s->story_remap[static_cast<uint32_t>(old_id)] = id;
  s->out.generated.collection.mutable_video(parent->second)
      ->stories.push_back(id);
  return Status::OK();
}

Status SalvageShot(const std::string& line, SalvageState* s) {
  IVR_ASSIGN_OR_RETURN(std::vector<std::string> cols, Columns(line, 11));
  IVR_ASSIGN_OR_RETURN(int64_t old_id, ParseInt(cols[0]));
  IVR_ASSIGN_OR_RETURN(int64_t story, ParseInt(cols[1]));
  IVR_ASSIGN_OR_RETURN(int64_t start, ParseInt(cols[3]));
  IVR_ASSIGN_OR_RETURN(int64_t duration, ParseInt(cols[4]));
  IVR_ASSIGN_OR_RETURN(int64_t topic, ParseInt(cols[5]));
  auto parent = s->story_remap.find(static_cast<uint32_t>(story));
  if (parent == s->story_remap.end()) {
    return Status::Corruption("shot references missing story " + cols[1]);
  }
  Shot shot;
  shot.story = parent->second;
  shot.video =
      s->out.generated.collection.story(parent->second).value()->video;
  shot.start_ms = start;
  shot.duration_ms = duration;
  shot.primary_topic = static_cast<TopicLabel>(topic);
  for (char bit : cols[6]) {
    if (bit != '0' && bit != '1') {
      return Status::Corruption("bad concept bitstring");
    }
    shot.concepts.push_back(bit == '1');
  }
  shot.external_id = cols[7];
  shot.asr_transcript = cols[8];
  shot.true_transcript = cols[9];
  IVR_ASSIGN_OR_RETURN(shot.keyframe, DecodeHistogram(cols[10]));
  const ShotId id = s->out.generated.collection.AddShot(std::move(shot));
  s->shot_remap[static_cast<uint32_t>(old_id)] = id;
  s->out.generated.collection.mutable_story(parent->second)
      ->shots.push_back(id);
  return Status::OK();
}

Status SalvageSearchTopic(const std::string& line, SalvageState* s) {
  IVR_ASSIGN_OR_RETURN(std::vector<std::string> cols, Columns(line, 5));
  SearchTopic t;
  IVR_ASSIGN_OR_RETURN(int64_t id, ParseInt(cols[0]));
  IVR_ASSIGN_OR_RETURN(int64_t target, ParseInt(cols[1]));
  t.id = static_cast<SearchTopicId>(id);
  t.target_topic = static_cast<TopicLabel>(target);
  t.title = cols[2];
  t.description = cols[3];
  if (!Trim(cols[4]).empty()) {
    for (const std::string& enc : Split(cols[4], ';')) {
      IVR_ASSIGN_OR_RETURN(ColorHistogram h, DecodeHistogram(enc));
      t.examples.push_back(std::move(h));
    }
  }
  s->out.generated.topics.topics.push_back(std::move(t));
  return Status::OK();
}

Status SalvageQrel(const std::string& line, SalvageState* s) {
  const std::vector<std::string> cols = SplitWhitespace(line);
  if (cols.size() != 4 || !StartsWith(cols[2], "shot")) {
    return Status::Corruption("bad qrels line: " + line);
  }
  IVR_ASSIGN_OR_RETURN(int64_t topic, ParseInt(cols[0]));
  IVR_ASSIGN_OR_RETURN(int64_t shot, ParseInt(cols[2].substr(4)));
  IVR_ASSIGN_OR_RETURN(int64_t grade, ParseInt(cols[3]));
  auto mapped = s->shot_remap.find(static_cast<uint32_t>(shot));
  if (mapped == s->shot_remap.end()) {
    return Status::Corruption("judgement references missing shot " +
                              cols[2]);
  }
  s->out.generated.qrels.Set(static_cast<SearchTopicId>(topic),
                             mapped->second, static_cast<int>(grade));
  return Status::OK();
}

}  // namespace

Result<CollectionRecovery> RecoverCollection(const std::string& path) {
  IVR_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));

  SalvageState state;
  if (LooksEnveloped(text)) {
    Result<std::string> payload = UnwrapEnvelope(kEnvelopeFormat, text);
    if (payload.ok()) {
      state.out.checksum_ok = true;
      text = std::move(payload).value();
    } else {
      // Damaged envelope: strip the header line and salvage the rest.
      state.Drop("envelope failed verification: " +
                 payload.status().message());
      const size_t newline = text.find('\n');
      text = newline == std::string::npos ? std::string()
                                          : text.substr(newline + 1);
    }
  } else {
    state.out.notes.push_back("legacy archive without checksum envelope");
  }

  // Section-aware line scan: a section-header line switches the record
  // parser; anything that fails to parse is dropped, not fatal.
  enum class Section {
    kNone,
    kTopics,
    kVideos,
    kStories,
    kShots,
    kSearchTopics,
    kQrels
  };
  static const std::map<std::string, Section> kSections = {
      {"topics", Section::kTopics},       {"videos", Section::kVideos},
      {"stories", Section::kStories},     {"shots", Section::kShots},
      {"searchtopics", Section::kSearchTopics},
      {"qrels", Section::kQrels}};

  Section section = Section::kNone;
  bool saw_magic = false;
  bool saw_section = false;
  std::vector<std::string> topic_names;
  for (const std::string& line : Split(text, '\n')) {
    if (Trim(line).empty()) continue;
    if (Trim(line) == kMagic) {
      saw_magic = true;
      continue;
    }
    const std::vector<std::string> parts = SplitWhitespace(line);
    if (parts.size() == 2 && kSections.count(parts[0]) > 0 &&
        ParseInt(parts[1]).ok()) {
      section = kSections.at(parts[0]);
      saw_section = true;
      continue;
    }
    Status record = Status::OK();
    switch (section) {
      case Section::kNone:
        record = Status::Corruption("line before any section: " + line);
        break;
      case Section::kTopics:
        topic_names.push_back(line);
        break;
      case Section::kVideos:
        record = SalvageVideo(line, &state);
        break;
      case Section::kStories:
        record = SalvageStory(line, &state);
        break;
      case Section::kShots:
        record = SalvageShot(line, &state);
        break;
      case Section::kSearchTopics:
        record = SalvageSearchTopic(line, &state);
        break;
      case Section::kQrels:
        record = SalvageQrel(line, &state);
        break;
    }
    if (!record.ok()) state.Drop(record.message());
  }
  if (!saw_magic && !saw_section) {
    return Status::Corruption("no ivr-collection structure found in " +
                              path);
  }
  state.out.generated.collection.SetTopicNames(std::move(topic_names));
  return std::move(state.out);
}

Result<GeneratedCollection> LoadCollectionRobust(const std::string& path,
                                                 size_t* dropped_records) {
  if (dropped_records != nullptr) *dropped_records = 0;
  {
    const Status injected =
        FaultInjector::Global().MaybeFail("collection.load");
    if (!injected.ok()) return injected;
  }
  // Retries draw on the shared process budget so a sustained I/O outage
  // across many concurrent loads fails fast instead of storming.
  RetryOptions retry;
  retry.budget = &ProcessRetryBudget();
  Result<GeneratedCollection> loaded =
      RetryOnIOError([&] { return LoadCollection(path); }, retry);
  if (loaded.ok() || !loaded.status().IsCorruption()) return loaded;

  Result<CollectionRecovery> recovered =
      RetryOnIOError([&] { return RecoverCollection(path); }, retry);
  if (!recovered.ok()) return loaded.status();
  IVR_LOG(Warning) << "collection " << path
                   << " failed verification (" << loaded.status().ToString()
                   << "); salvaged with " << recovered->dropped_records
                   << " dropped record(s)";
  if (dropped_records != nullptr) {
    *dropped_records = recovered->dropped_records;
  }
  return std::move(recovered->generated);
}

}  // namespace ivr
