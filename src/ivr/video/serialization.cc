#include "ivr/video/serialization.h"

#include <utility>

#include "ivr/core/file_util.h"
#include "ivr/core/string_util.h"

namespace ivr {
namespace {

constexpr std::string_view kMagic = "ivr-collection v1";

std::string EncodeHistogram(const ColorHistogram& h) {
  std::vector<std::string> parts;
  parts.reserve(h.size());
  for (size_t i = 0; i < h.size(); ++i) {
    parts.push_back(StrFormat("%.17g", h[i]));
  }
  return Join(parts, ",");
}

Result<ColorHistogram> DecodeHistogram(std::string_view text) {
  std::vector<double> bins;
  for (const std::string& part : Split(text, ',')) {
    IVR_ASSIGN_OR_RETURN(double v, ParseDouble(part));
    bins.push_back(v);
  }
  return ColorHistogram(std::move(bins));
}

std::string EncodeConcepts(const std::vector<bool>& concepts) {
  std::string out;
  out.reserve(concepts.size());
  for (bool b : concepts) {
    out.push_back(b ? '1' : '0');
  }
  return out;
}

// Line cursor over the archive.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : lines_(Split(text, '\n')) {}

  Result<std::string> Next() {
    if (pos_ >= lines_.size()) {
      return Status::Corruption("unexpected end of collection archive");
    }
    return lines_[pos_++];
  }

  /// Reads "keyword <count>".
  Result<size_t> Section(std::string_view keyword) {
    IVR_ASSIGN_OR_RETURN(std::string line, Next());
    const std::vector<std::string> parts = SplitWhitespace(line);
    if (parts.size() != 2 || parts[0] != keyword) {
      return Status::Corruption("expected section '" +
                                std::string(keyword) + "', got: " + line);
    }
    IVR_ASSIGN_OR_RETURN(int64_t n, ParseInt(parts[1]));
    if (n < 0) return Status::Corruption("negative section size");
    return static_cast<size_t>(n);
  }

 private:
  std::vector<std::string> lines_;
  size_t pos_ = 0;
};

Result<std::vector<std::string>> Columns(const std::string& line,
                                         size_t expected) {
  std::vector<std::string> cols = Split(line, '\t');
  if (cols.size() != expected) {
    return Status::Corruption(StrFormat(
        "expected %zu tab-separated columns, got %zu in: ", expected,
        cols.size()) + line);
  }
  return cols;
}

}  // namespace

std::string SerializeCollection(const GeneratedCollection& generated) {
  const VideoCollection& c = generated.collection;
  std::string out(kMagic);
  out += "\n";

  out += StrFormat("topics %zu\n", c.num_topics());
  for (const std::string& name : c.topic_names()) {
    out += name + "\n";
  }

  out += StrFormat("videos %zu\n", c.num_videos());
  for (const Video& v : c.videos()) {
    out += StrFormat("%u\t%s\t%d\n", v.id, v.name.c_str(), v.day);
  }

  out += StrFormat("stories %zu\n", c.num_stories());
  for (const NewsStory& s : c.stories()) {
    out += StrFormat("%u\t%u\t%u\t%s\n", s.id, s.video, s.topic,
                     s.headline.c_str());
  }

  out += StrFormat("shots %zu\n", c.num_shots());
  for (const Shot& s : c.shots()) {
    out += StrFormat(
        "%u\t%u\t%u\t%lld\t%lld\t%u\t%s\t%s\t%s\t%s\t%s\n", s.id, s.story,
        s.video, static_cast<long long>(s.start_ms),
        static_cast<long long>(s.duration_ms), s.primary_topic,
        EncodeConcepts(s.concepts).c_str(), s.external_id.c_str(),
        s.asr_transcript.c_str(), s.true_transcript.c_str(),
        EncodeHistogram(s.keyframe).c_str());
  }

  out += StrFormat("searchtopics %zu\n", generated.topics.size());
  for (const SearchTopic& t : generated.topics.topics) {
    std::vector<std::string> examples;
    for (const ColorHistogram& h : t.examples) {
      examples.push_back(EncodeHistogram(h));
    }
    out += StrFormat("%u\t%u\t%s\t%s\t%s\n", t.id, t.target_topic,
                     t.title.c_str(), t.description.c_str(),
                     Join(examples, ";").c_str());
  }

  const std::string qrels = generated.qrels.ToTrecFormat();
  const std::vector<std::string> qrel_lines = Split(qrels, '\n');
  // Split leaves one trailing empty line for a \n-terminated blob.
  const size_t num_qrels =
      qrel_lines.empty() ? 0 : qrel_lines.size() - 1;
  out += StrFormat("qrels %zu\n", num_qrels);
  out += qrels;
  return out;
}

Result<GeneratedCollection> ParseCollection(const std::string& text) {
  LineReader reader(text);
  IVR_ASSIGN_OR_RETURN(std::string magic, reader.Next());
  if (Trim(magic) != kMagic) {
    return Status::Corruption("not an ivr-collection v1 archive");
  }

  GeneratedCollection out;

  IVR_ASSIGN_OR_RETURN(size_t num_topics, reader.Section("topics"));
  std::vector<std::string> names;
  for (size_t i = 0; i < num_topics; ++i) {
    IVR_ASSIGN_OR_RETURN(std::string name, reader.Next());
    names.push_back(std::move(name));
  }
  out.collection.SetTopicNames(std::move(names));

  IVR_ASSIGN_OR_RETURN(size_t num_videos, reader.Section("videos"));
  for (size_t i = 0; i < num_videos; ++i) {
    IVR_ASSIGN_OR_RETURN(std::string line, reader.Next());
    IVR_ASSIGN_OR_RETURN(std::vector<std::string> cols, Columns(line, 3));
    Video v;
    v.name = cols[1];
    IVR_ASSIGN_OR_RETURN(int64_t day, ParseInt(cols[2]));
    v.day = static_cast<int32_t>(day);
    const VideoId id = out.collection.AddVideo(std::move(v));
    if (id != i) return Status::Corruption("non-dense video ids");
  }

  IVR_ASSIGN_OR_RETURN(size_t num_stories, reader.Section("stories"));
  for (size_t i = 0; i < num_stories; ++i) {
    IVR_ASSIGN_OR_RETURN(std::string line, reader.Next());
    IVR_ASSIGN_OR_RETURN(std::vector<std::string> cols, Columns(line, 4));
    NewsStory s;
    IVR_ASSIGN_OR_RETURN(int64_t video, ParseInt(cols[1]));
    IVR_ASSIGN_OR_RETURN(int64_t topic, ParseInt(cols[2]));
    s.video = static_cast<VideoId>(video);
    s.topic = static_cast<TopicLabel>(topic);
    s.headline = cols[3];
    const StoryId id = out.collection.AddStory(std::move(s));
    if (id != i) return Status::Corruption("non-dense story ids");
    Video* v = out.collection.mutable_video(static_cast<VideoId>(video));
    if (v == nullptr) return Status::Corruption("story with bad video id");
    v->stories.push_back(id);
  }

  IVR_ASSIGN_OR_RETURN(size_t num_shots, reader.Section("shots"));
  for (size_t i = 0; i < num_shots; ++i) {
    IVR_ASSIGN_OR_RETURN(std::string line, reader.Next());
    IVR_ASSIGN_OR_RETURN(std::vector<std::string> cols, Columns(line, 11));
    Shot s;
    IVR_ASSIGN_OR_RETURN(int64_t story, ParseInt(cols[1]));
    IVR_ASSIGN_OR_RETURN(int64_t video, ParseInt(cols[2]));
    IVR_ASSIGN_OR_RETURN(int64_t start, ParseInt(cols[3]));
    IVR_ASSIGN_OR_RETURN(int64_t duration, ParseInt(cols[4]));
    IVR_ASSIGN_OR_RETURN(int64_t topic, ParseInt(cols[5]));
    s.story = static_cast<StoryId>(story);
    s.video = static_cast<VideoId>(video);
    s.start_ms = start;
    s.duration_ms = duration;
    s.primary_topic = static_cast<TopicLabel>(topic);
    for (char bit : cols[6]) {
      if (bit != '0' && bit != '1') {
        return Status::Corruption("bad concept bitstring");
      }
      s.concepts.push_back(bit == '1');
    }
    s.external_id = cols[7];
    s.asr_transcript = cols[8];
    s.true_transcript = cols[9];
    IVR_ASSIGN_OR_RETURN(s.keyframe, DecodeHistogram(cols[10]));
    const ShotId id = out.collection.AddShot(std::move(s));
    if (id != i) return Status::Corruption("non-dense shot ids");
    NewsStory* st =
        out.collection.mutable_story(static_cast<StoryId>(story));
    if (st == nullptr) return Status::Corruption("shot with bad story id");
    st->shots.push_back(id);
  }

  IVR_ASSIGN_OR_RETURN(size_t num_search, reader.Section("searchtopics"));
  for (size_t i = 0; i < num_search; ++i) {
    IVR_ASSIGN_OR_RETURN(std::string line, reader.Next());
    IVR_ASSIGN_OR_RETURN(std::vector<std::string> cols, Columns(line, 5));
    SearchTopic t;
    IVR_ASSIGN_OR_RETURN(int64_t id, ParseInt(cols[0]));
    IVR_ASSIGN_OR_RETURN(int64_t target, ParseInt(cols[1]));
    t.id = static_cast<SearchTopicId>(id);
    t.target_topic = static_cast<TopicLabel>(target);
    t.title = cols[2];
    t.description = cols[3];
    if (!Trim(cols[4]).empty()) {
      for (const std::string& enc : Split(cols[4], ';')) {
        IVR_ASSIGN_OR_RETURN(ColorHistogram h, DecodeHistogram(enc));
        t.examples.push_back(std::move(h));
      }
    }
    out.topics.topics.push_back(std::move(t));
  }

  IVR_ASSIGN_OR_RETURN(size_t num_qrels, reader.Section("qrels"));
  std::string qrel_text;
  for (size_t i = 0; i < num_qrels; ++i) {
    IVR_ASSIGN_OR_RETURN(std::string line, reader.Next());
    qrel_text += line;
    qrel_text += "\n";
  }
  IVR_ASSIGN_OR_RETURN(out.qrels, Qrels::FromTrecFormat(qrel_text));
  return out;
}

Status SaveCollection(const GeneratedCollection& generated,
                      const std::string& path) {
  return WriteStringToFile(path, SerializeCollection(generated));
}

Result<GeneratedCollection> LoadCollection(const std::string& path) {
  IVR_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseCollection(text);
}

}  // namespace ivr
