#include "ivr/core/fault_injection.h"

#include "ivr/core/string_util.h"

namespace ivr {
namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t HashSite(std::string_view site) {
  // FNV-1a, 64 bit: stable across platforms so chaos runs replay anywhere.
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

Status FaultInjector::Configure(std::string_view spec, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  sites_.clear();
  has_default_ = false;
  default_prob_ = 0.0;
  checks_.store(0, std::memory_order_relaxed);
  injected_.store(0, std::memory_order_relaxed);
  seed_ = seed;

  if (Trim(spec).empty()) {
    return Status::InvalidArgument("empty fault spec");
  }
  for (const std::string& entry : Split(spec, ',')) {
    const std::vector<std::string> parts = Split(Trim(entry), ':');
    if (parts.size() != 2 || Trim(parts[0]).empty()) {
      return Status::InvalidArgument(
          "fault spec entries must be site:prob, got: " + entry);
    }
    Result<double> prob = ParseDouble(parts[1]);
    if (!prob.ok()) return prob.status();
    if (*prob < 0.0 || *prob > 1.0) {
      return Status::InvalidArgument(
          "fault probability must be in [0,1], got: " + parts[1]);
    }
    const std::string site(Trim(parts[0]));
    if (site == "all") {
      has_default_ = true;
      default_prob_ = *prob;
    } else {
      Site& s = sites_[site];
      s.prob = *prob;
      s.explicitly_configured = true;
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  sites_.clear();
  has_default_ = false;
  default_prob_ = 0.0;
}

bool FaultInjector::ShouldFail(std::string_view site) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    if (!has_default_) return false;
    it = sites_.emplace(std::string(site), Site{default_prob_, 0, 0, false})
             .first;
  }
  Site& s = it->second;
  const uint64_t ordinal = s.calls++;
  checks_.fetch_add(1, std::memory_order_relaxed);
  if (s.prob <= 0.0) return false;
  // (seed, site, ordinal) -> uniform [0,1): the per-site failure sequence
  // is a replayable stream, independent of what other sites do.
  const uint64_t h = SplitMix64(seed_ ^ HashSite(site) ^
                                (ordinal * 0xD1B54A32D192ED03ull));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  if (u >= s.prob) return false;
  ++s.injected;
  injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Status FaultInjector::MaybeFail(std::string_view site) {
  if (!enabled()) return Status::OK();
  if (ShouldFail(site)) {
    return Status::IOError("injected fault at site " + std::string(site));
  }
  return Status::OK();
}

std::string FaultInjector::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = StrFormat(
      "injected faults: %llu/%llu checks\n",
      static_cast<unsigned long long>(
          injected_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          checks_.load(std::memory_order_relaxed)));
  for (const auto& [name, site] : sites_) {
    if (site.calls == 0) continue;
    out += StrFormat("  %s: %llu/%llu\n", name.c_str(),
                     static_cast<unsigned long long>(site.injected),
                     static_cast<unsigned long long>(site.calls));
  }
  return out;
}

std::vector<FaultInjector::SiteStats> FaultInjector::PerSiteStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SiteStats> out;
  out.reserve(sites_.size());
  for (const auto& [name, site] : sites_) {
    if (site.calls == 0) continue;
    out.push_back(SiteStats{name, site.calls, site.injected});
  }
  return out;
}

}  // namespace ivr
