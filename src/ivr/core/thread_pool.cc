#include "ivr/core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace ivr {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  workers_.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void(size_t)> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

size_t ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop(size_t worker) {
  for (;;) {
    std::function<void(size_t)> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task(worker);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t, size_t)>& fn) {
  if (num_threads == 0) num_threads = ThreadPool::DefaultThreadCount();
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i, 0);
    }
    return;
  }
  // One long-running task per worker, pulling indices from a shared
  // counter: cheaper than queueing n closures and it load-balances
  // uneven per-index costs.
  std::atomic<size_t> next{0};
  ThreadPool pool(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    pool.Submit([&next, n, &fn](size_t worker) {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i, worker);
      }
    });
  }
  pool.Wait();
}

}  // namespace ivr
