#ifndef IVR_CORE_LOGGING_H_
#define IVR_CORE_LOGGING_H_

#include <sstream>
#include <string>

namespace ivr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded. Defaults to
/// kInfo. Benchmarks raise it to kWarning to keep output tables clean.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits to stderr on destruction. Use via IVR_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define IVR_LOG(level)                                              \
  ::ivr::internal_logging::LogMessage(::ivr::LogLevel::k##level,    \
                                      __FILE__, __LINE__)

}  // namespace ivr

#endif  // IVR_CORE_LOGGING_H_
