#ifndef IVR_CORE_RNG_H_
#define IVR_CORE_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ivr {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component of the library draws from an Rng
/// it is handed explicitly, so simulations are reproducible from a seed and
/// independent streams can be forked per user/session.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Forks an independent generator; the child stream is decorrelated from
  /// the parent's subsequent output.
  Rng Fork();

  /// Uniform double in [0, 1).
  double UniformDouble();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);
  /// Standard normal via Box–Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);
  /// Exponential with rate lambda > 0.
  double Exponential(double lambda);
  /// Geometric number of failures before first success, p in (0,1].
  int64_t Geometric(double p);
  /// Poisson-distributed count with given mean (Knuth's method; mean
  /// expected to be modest, < ~100).
  int64_t Poisson(double mean);

  /// Samples an index from an unnormalised non-negative weight vector.
  /// Returns 0 if the vector is empty or sums to zero.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k clamped to n), in random
  /// order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
};

/// Zipf distribution over ranks [0, n) with exponent s >= 0 (s = 0 is
/// uniform). Precomputes the CDF once (O(n) memory) and samples by binary
/// search, so repeated draws are O(log n) and exact.
class ZipfDistribution {
 public:
  ZipfDistribution(int64_t n, double s);

  int64_t Sample(Rng* rng) const;

  int64_t n() const { return static_cast<int64_t>(cdf_.size()); }
  double exponent() const { return s_; }
  /// Probability mass of rank k (0-based).
  double Pmf(int64_t k) const;

 private:
  double s_;
  std::vector<double> cdf_;
};

}  // namespace ivr

#endif  // IVR_CORE_RNG_H_
