#ifndef IVR_CORE_STRING_UTIL_H_
#define IVR_CORE_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ivr/core/result.h"

namespace ivr {

/// Splits `input` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view input, char sep);

/// Splits on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view input);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict integer / floating point parsers: the whole (trimmed) string must
/// be consumed, otherwise an InvalidArgument error is returned.
Result<int64_t> ParseInt(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Escapes `s` for embedding inside a JSON string literal: quote,
/// backslash, and the C0 control bytes (\n \r \t named, the rest \u00XX).
/// High-bit bytes pass through untouched — the output is raw-byte
/// transparent, so valid UTF-8 stays valid UTF-8. The ONE escaper every
/// JSON producer (obs stats/trace, the HTTP codecs) shares; duplicating
/// it is how emitters silently diverge.
std::string JsonEscape(std::string_view s);

}  // namespace ivr

#endif  // IVR_CORE_STRING_UTIL_H_
