#ifndef IVR_CORE_ARGS_H_
#define IVR_CORE_ARGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ivr/core/result.h"

namespace ivr {

/// Minimal command-line parser for the CLI tools: recognises
/// `--key=value`, `--key value`, and bare `--flag` (value "true");
/// everything else is a positional argument. Unknown keys are fine — the
/// tool decides what it needs.
class ArgParser {
 public:
  /// Parses argv (argv[0] is skipped). Fails on a lone "--".
  static Result<ArgParser> Parse(int argc, const char* const* argv);

  bool Has(const std::string& key) const;

  /// Value of --key, or `fallback` when absent.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;

  /// Typed getters; InvalidArgument when present but malformed.
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;
  Result<double> GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Shared by every CLI tool: arms the global FaultInjector from
/// `--fault-spec site:prob[,site:prob...]` and `--fault-seed N` (default
/// seed 1) so chaos runs are reproducible. No-op without --fault-spec;
/// InvalidArgument on a malformed spec.
Status ConfigureFaultInjectionFromArgs(const ArgParser& args);

}  // namespace ivr

#endif  // IVR_CORE_ARGS_H_
