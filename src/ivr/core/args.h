#ifndef IVR_CORE_ARGS_H_
#define IVR_CORE_ARGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ivr/core/result.h"

namespace ivr {

/// Minimal command-line parser for the CLI tools: recognises
/// `--key=value`, `--key value`, and bare `--flag` (value "true");
/// everything else is a positional argument. Tools declare their flag
/// vocabulary with RejectUnknown so a typo'd `--cache_mb` fails loudly
/// instead of being silently ignored.
class ArgParser {
 public:
  /// Parses argv (argv[0] is skipped). Fails on a lone "--".
  static Result<ArgParser> Parse(int argc, const char* const* argv);

  bool Has(const std::string& key) const;

  /// Value of --key, or `fallback` when absent.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;

  /// Typed getters; InvalidArgument when present but malformed. GetBool
  /// accepts exactly {true,false,1,0,yes,no,on,off} (case-insensitive);
  /// anything else (`--flag=ture`, `--flag=maybe`) is an error rather
  /// than a silent false.
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;
  Result<double> GetDouble(const std::string& key, double fallback) const;
  Result<bool> GetBool(const std::string& key, bool fallback = false) const;

  /// InvalidArgument when any parsed --flag is not in `known`, naming the
  /// offender and listing the known flags. Positional arguments are
  /// untouched. Every tool calls this once, right after Parse.
  Status RejectUnknown(const std::vector<std::string>& known) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Shared by every CLI tool: arms the global FaultInjector from
/// `--fault-spec site:prob[,site:prob...]` and `--fault-seed N` (default
/// seed 1) so chaos runs are reproducible. No-op without --fault-spec;
/// InvalidArgument on a malformed spec.
Status ConfigureFaultInjectionFromArgs(const ArgParser& args);

}  // namespace ivr

#endif  // IVR_CORE_ARGS_H_
