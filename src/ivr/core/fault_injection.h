#ifndef IVR_CORE_FAULT_INJECTION_H_
#define IVR_CORE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "ivr/core/status.h"

namespace ivr {

/// Deterministic, seedable fault-injection framework. Fallible operations
/// across the stack declare named *sites* ("file.read", "engine.text", ...)
/// and ask the process-wide injector whether this particular call should
/// fail. Whether call #n at a site fails is a pure function of
/// (seed, site name, n), so a single-threaded chaos run is reproducible
/// bit for bit from its --fault-spec/--fault-seed pair; multi-threaded runs
/// keep per-site failure *counts* reproducible (the per-site ordinal
/// counter is shared) while the interleaving may vary.
///
/// When disabled (the default) the only cost at a site is one relaxed
/// atomic load, so production and benchmark paths are unaffected.
///
/// Site naming convention (see DESIGN.md "Failure handling contract" for
/// the full table):
///   file.read            ReadFileToString
///   file.write           WriteStringToFile
///   file.atomic.write    WriteFileAtomic: payload write to the temp file
///   file.atomic.sync     WriteFileAtomic: fsync before rename
///   file.atomic.rename   WriteFileAtomic: publish rename
///   file.atomic.dirsync  SyncParentDirectory: directory-entry fsync
///   collection.load      LoadCollection / LoadCollectionRobust entry
///   profile.load         ProfileStore::Load entry
///   sessionlog.load      SessionLog::Load entry
///   engine.text          text modality (posting reads) of a search
///   engine.visual        visual-example modality of a search
///   engine.concept       concept modality of a search
///   concept.build        concept detector / index construction
///   adaptive.feedback    implicit-feedback expansion in AdaptiveEngine
///   adaptive.profile     profile re-ranking in AdaptiveEngine
///   sessionlog.append    SessionLogWriter Open/Append (journal chunk)
///   service.evict        SessionManager eviction pass (victim is kept)
///   service.persist      SessionManager eviction/end persistence
///   cache.lookup         ResultCache::Lookup (degrades to uncached search)
///   net.accept           HttpServer: close a just-accepted connection
///   net.read             HttpServer: readable socket becomes a conn error
///   net.write            HttpServer: kill a connection mid-response
///   ingest.append        LiveEngine: buffering a video into the delta
///   ingest.publish       LiveEngine::Publish entry (delta kept for retry)
///   ingest.merge         LiveEngine segment compaction entry
///   ingest.manifest      ManifestLog append/rewrite (the commit point)
class FaultInjector {
 public:
  /// The process-wide injector the library's fault sites consult.
  static FaultInjector& Global();

  /// Arms the injector from a spec "site:prob[,site:prob...]". The
  /// pseudo-site "all" sets a default probability for every site not named
  /// explicitly. Probabilities must parse and lie in [0,1];
  /// InvalidArgument otherwise (and the injector is left disabled).
  Status Configure(std::string_view spec, uint64_t seed);

  /// Disarms the injector and clears all per-site state.
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// True when the named site should fail this call. Counts the call and,
  /// when firing, the injected fault. Returns false when disabled.
  bool ShouldFail(std::string_view site);

  /// Convenience wrapper: an IOError naming the site when the site fires,
  /// OK otherwise.
  Status MaybeFail(std::string_view site);

  /// Totals across all sites since the last Configure.
  uint64_t num_checks() const {
    return checks_.load(std::memory_order_relaxed);
  }
  uint64_t num_injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// Multi-line report: an "injected faults: N/M checks" header followed
  /// by one "  site: injected/calls" line per exercised site
  /// (deterministic order). What the tools print to stderr after a chaos
  /// run.
  std::string Summary() const;

  /// Per-site call/injection tally for one exercised site.
  struct SiteStats {
    std::string site;
    uint64_t calls = 0;
    uint64_t injected = 0;
  };

  /// Machine-readable form of Summary(): every site with calls > 0 since
  /// the last Configure, sorted by site name. What --stats-json embeds so
  /// chaos runs can cross-check fault fire counts against metrics.
  std::vector<SiteStats> PerSiteStats() const;

 private:
  struct Site {
    double prob = 0.0;
    uint64_t calls = 0;
    uint64_t injected = 0;
    bool explicitly_configured = false;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> injected_{0};
  mutable std::mutex mu_;
  uint64_t seed_ = 1;
  double default_prob_ = 0.0;
  bool has_default_ = false;
  std::map<std::string, Site, std::less<>> sites_;
};

/// RAII guard for tests: arms the global injector on construction,
/// disarms it on destruction.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection(std::string_view spec, uint64_t seed) {
    status_ = FaultInjector::Global().Configure(spec, seed);
  }
  ~ScopedFaultInjection() { FaultInjector::Global().Disable(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  const Status& status() const { return status_; }

 private:
  Status status_;
};

}  // namespace ivr

#endif  // IVR_CORE_FAULT_INJECTION_H_
