#include "ivr/core/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ivr {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ull); }

double Rng::UniformDouble() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = range * (UINT64_MAX / range);
  uint64_t v = Next();
  while (v >= limit) {
    v = Next();
  }
  return lo + static_cast<int64_t>(v % range);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  // Box–Muller; draw until u1 is nonzero so log() is finite.
  double u1 = UniformDouble();
  while (u1 <= 0.0) {
    u1 = UniformDouble();
  }
  const double u2 = UniformDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

double Rng::Exponential(double lambda) {
  double u = UniformDouble();
  while (u <= 0.0) {
    u = UniformDouble();
  }
  return -std::log(u) / (lambda > 0.0 ? lambda : 1.0);
}

int64_t Rng::Geometric(double p) {
  if (p >= 1.0) return 0;
  if (p <= 0.0) p = 1e-12;
  double u = UniformDouble();
  while (u <= 0.0) {
    u = UniformDouble();
  }
  return static_cast<int64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  const double limit = std::exp(-mean);
  double prod = UniformDouble();
  int64_t n = 0;
  while (prod > limit) {
    prod *= UniformDouble();
    ++n;
  }
  return n;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (weights.empty() || total <= 0.0) return 0;
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k > n) k = n;
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  // Partial Fisher–Yates: only the first k positions need randomising.
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

ZipfDistribution::ZipfDistribution(int64_t n, double s) : s_(s) {
  if (n < 1) n = 1;
  if (s < 0.0) s_ = 0.0;
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s_);
    cdf_[static_cast<size_t>(k)] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;
}

int64_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int64_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(int64_t k) const {
  if (k < 0 || k >= n()) return 0.0;
  const size_t i = static_cast<size_t>(k);
  return k == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace ivr
