#include "ivr/core/checksum.h"

#include <array>

#include "ivr/core/string_util.h"

namespace ivr {
namespace {

constexpr std::string_view kEnvelopeMagic = "ivr-envelope";
constexpr std::string_view kEnvelopeVersion = "v1";

std::array<uint32_t, 256> BuildCrc32cTable() {
  // Reflected Castagnoli polynomial.
  constexpr uint32_t kPoly = 0x82F63B78u;
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(std::string_view data) {
  static const std::array<uint32_t, 256> table = BuildCrc32cTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(c)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string WrapEnvelope(std::string_view format, std::string_view payload) {
  std::string out = StrFormat(
      "%s %s %s %zu %08x\n", std::string(kEnvelopeMagic).c_str(),
      std::string(kEnvelopeVersion).c_str(), std::string(format).c_str(),
      payload.size(), Crc32c(payload));
  out.append(payload);
  return out;
}

Result<std::string> UnwrapEnvelope(std::string_view format,
                                   std::string_view enveloped) {
  const size_t newline = enveloped.find('\n');
  if (newline == std::string_view::npos) {
    return Status::Corruption("envelope header line missing");
  }
  const std::string header(enveloped.substr(0, newline));
  const std::vector<std::string> parts = SplitWhitespace(header);
  if (parts.size() != 5 || parts[0] != kEnvelopeMagic) {
    return Status::Corruption("malformed envelope header: " + header);
  }
  if (parts[1] != kEnvelopeVersion) {
    return Status::Corruption("unsupported envelope version: " + parts[1]);
  }
  if (parts[2] != format) {
    return Status::Corruption("envelope holds '" + parts[2] +
                              "', expected '" + std::string(format) + "'");
  }
  IVR_ASSIGN_OR_RETURN(int64_t declared, ParseInt(parts[3]));
  if (declared < 0) return Status::Corruption("negative payload size");
  const std::string_view payload = enveloped.substr(newline + 1);
  if (payload.size() != static_cast<size_t>(declared)) {
    return Status::Corruption(StrFormat(
        "payload is %zu bytes but envelope declares %lld (truncated or "
        "torn write)",
        payload.size(), static_cast<long long>(declared)));
  }
  uint64_t declared_crc = 0;
  if (parts[4].size() != 8) {
    return Status::Corruption("bad checksum field: " + parts[4]);
  }
  for (char c : parts[4]) {
    declared_crc <<= 4;
    if (c >= '0' && c <= '9') {
      declared_crc |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      declared_crc |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return Status::Corruption("bad checksum field: " + parts[4]);
    }
  }
  const uint32_t actual = Crc32c(payload);
  if (actual != static_cast<uint32_t>(declared_crc)) {
    return Status::Corruption(StrFormat(
        "checksum mismatch: payload crc32c %08x, envelope declares %08x",
        actual, static_cast<uint32_t>(declared_crc)));
  }
  return std::string(payload);
}

Result<std::string> UnwrapEnvelopePrefix(std::string_view format,
                                         std::string_view text,
                                         size_t* consumed) {
  const size_t newline = text.find('\n');
  if (newline == std::string_view::npos) {
    return Status::Corruption("envelope header line missing");
  }
  const std::vector<std::string> parts =
      SplitWhitespace(std::string(text.substr(0, newline)));
  if (parts.size() != 5 || parts[0] != kEnvelopeMagic) {
    return Status::Corruption("malformed envelope header");
  }
  IVR_ASSIGN_OR_RETURN(int64_t declared, ParseInt(parts[3]));
  if (declared < 0) return Status::Corruption("negative payload size");
  const size_t total = newline + 1 + static_cast<size_t>(declared);
  if (total > text.size()) {
    return Status::Corruption(StrFormat(
        "envelope declares %lld payload bytes but only %zu remain "
        "(truncated or torn append)",
        static_cast<long long>(declared), text.size() - newline - 1));
  }
  IVR_ASSIGN_OR_RETURN(std::string payload,
                       UnwrapEnvelope(format, text.substr(0, total)));
  if (consumed != nullptr) *consumed = total;
  return payload;
}

bool LooksEnveloped(std::string_view text) {
  if (StartsWith(text, kEnvelopeMagic)) {
    return text.size() > kEnvelopeMagic.size() &&
           text[kEnvelopeMagic.size()] == ' ';
  }
  // A file cut off inside the magic itself still "looks enveloped":
  // falling through to a legacy parse would silently misread a torn
  // envelope, so claim it and let UnwrapEnvelope report the corruption.
  return !text.empty() && text.size() < kEnvelopeMagic.size() &&
         kEnvelopeMagic.substr(0, text.size()) == text;
}

}  // namespace ivr
