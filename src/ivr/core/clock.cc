#include "ivr/core/clock.h"

#include <cstdio>

namespace ivr {

std::string FormatDuration(TimeMs ms) {
  const bool negative = ms < 0;
  if (negative) ms = -ms;
  const int64_t hours = ms / kMillisPerHour;
  const int64_t minutes = (ms / kMillisPerMinute) % 60;
  const int64_t seconds = (ms / kMillisPerSecond) % 60;
  const int64_t millis = ms % kMillisPerSecond;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s%lld:%02lld:%02lld.%03lld",
                negative ? "-" : "", static_cast<long long>(hours),
                static_cast<long long>(minutes),
                static_cast<long long>(seconds),
                static_cast<long long>(millis));
  return buf;
}

}  // namespace ivr
