#include "ivr/core/arrivals.h"

#include <chrono>
#include <thread>

namespace ivr {

PoissonArrivalStream::PoissonArrivalStream(double rate_per_sec,
                                           uint64_t seed)
    : rate_per_sec_(rate_per_sec > 0.0 ? rate_per_sec : 1.0), rng_(seed) {}

int64_t PoissonArrivalStream::NextUs() {
  // Accumulate in seconds (double) and convert once per arrival: summing
  // already-truncated microsecond gaps would bias the empirical rate low.
  elapsed_sec_ += rng_.Exponential(rate_per_sec_);
  return static_cast<int64_t>(elapsed_sec_ * 1e6);
}

std::vector<int64_t> PoissonScheduleUs(double rate_per_sec,
                                       int64_t duration_us, uint64_t seed) {
  std::vector<int64_t> schedule;
  if (duration_us <= 0) return schedule;
  PoissonArrivalStream stream(rate_per_sec, seed);
  for (int64_t t = stream.NextUs(); t < duration_us; t = stream.NextUs()) {
    schedule.push_back(t);
  }
  return schedule;
}

namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SteadySleepUs(int64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

OpenLoopPacer::OpenLoopPacer() : now_(SteadyNowUs), sleep_(SteadySleepUs) {}

OpenLoopPacer::OpenLoopPacer(NowFn now, SleepFn sleep)
    : now_(std::move(now)), sleep_(std::move(sleep)) {}

void OpenLoopPacer::Start() { origin_us_ = now_(); }

int64_t OpenLoopPacer::WaitUntil(int64_t offset_us) {
  const int64_t deadline = origin_us_ + offset_us;
  const int64_t now = now_();
  if (now >= deadline) return now - deadline;
  // One sleep computed against the absolute deadline. Even if the sleep
  // function oversleeps, the next WaitUntil re-anchors on the schedule
  // origin, so lateness never compounds.
  sleep_(deadline - now);
  return 0;
}

}  // namespace ivr
