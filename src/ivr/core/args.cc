#include "ivr/core/args.h"

#include "ivr/core/fault_injection.h"
#include "ivr/core/string_util.h"

namespace ivr {

Result<ArgParser> ArgParser::Parse(int argc, const char* const* argv) {
  ArgParser parser;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      parser.positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      parser.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself a flag.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      parser.values_[body] = argv[i + 1];
      ++i;
    } else {
      parser.values_[body] = "true";
    }
  }
  return parser;
}

bool ArgParser::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string ArgParser::GetString(const std::string& key,
                                 const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

Result<int64_t> ArgParser::GetInt(const std::string& key,
                                  int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  IVR_ASSIGN_OR_RETURN(int64_t value, ParseInt(it->second));
  return value;
}

Result<double> ArgParser::GetDouble(const std::string& key,
                                    double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  IVR_ASSIGN_OR_RETURN(double value, ParseDouble(it->second));
  return value;
}

Result<bool> ArgParser::GetBool(const std::string& key,
                                bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string lower = ToLower(it->second);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  return Status::InvalidArgument(
      "--" + key + "=" + it->second +
      " is not a boolean (expected true/false, 1/0, yes/no, on/off)");
}

Status ArgParser::RejectUnknown(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : values_) {
    bool found = false;
    for (const std::string& k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::string message = "unknown flag --" + key + " (known flags:";
      for (const std::string& k : known) message += " --" + k;
      message += ")";
      return Status::InvalidArgument(message);
    }
  }
  return Status::OK();
}

Status ConfigureFaultInjectionFromArgs(const ArgParser& args) {
  const std::string spec = args.GetString("fault-spec");
  if (spec.empty()) return Status::OK();
  IVR_ASSIGN_OR_RETURN(int64_t seed, args.GetInt("fault-seed", 1));
  return FaultInjector::Global().Configure(spec,
                                           static_cast<uint64_t>(seed));
}

}  // namespace ivr
