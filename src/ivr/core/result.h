#ifndef IVR_CORE_RESULT_H_
#define IVR_CORE_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "ivr/core/status.h"

namespace ivr {

/// Result<T> holds either a value of type T or a non-OK Status. It is the
/// return type of fallible functions that produce a value, mirroring
/// arrow::Result / absl::StatusOr.
///
/// Accessing the value of an errored Result aborts the process; callers
/// must check ok() (or use IVR_ASSIGN_OR_RETURN) first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value; mirrors absl::StatusOr so that
  /// `return value;` works in functions returning Result<T>.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status. Constructing from an OK
  /// status is a programming error and aborts.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns OK when a value is held, the error otherwise.
  Status status() const {
    if (ok()) {
      return Status::OK();
    }
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(rep_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(rep_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    if (ok()) {
      return std::get<T>(rep_);
    }
    return fallback;
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::abort();
    }
  }

  std::variant<T, Status> rep_;
};

/// IVR_ASSIGN_OR_RETURN(lhs, expr): evaluates `expr` (a Result<T>); on error
/// returns the error status from the enclosing function, otherwise assigns
/// the value to `lhs` (which may be a declaration).
#define IVR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value();

#define IVR_ASSIGN_OR_RETURN_CONCAT_(a, b) a##b
#define IVR_ASSIGN_OR_RETURN_NAME_(a, b) IVR_ASSIGN_OR_RETURN_CONCAT_(a, b)
#define IVR_ASSIGN_OR_RETURN(lhs, expr)                                     \
  IVR_ASSIGN_OR_RETURN_IMPL_(                                               \
      IVR_ASSIGN_OR_RETURN_NAME_(ivr_result_tmp_, __LINE__), lhs, expr)

}  // namespace ivr

#endif  // IVR_CORE_RESULT_H_
