#ifndef IVR_CORE_CHECKSUM_H_
#define IVR_CORE_CHECKSUM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "ivr/core/result.h"

namespace ivr {

/// CRC32C (Castagnoli) of `data` — the integrity check every on-disk
/// artefact carries. Standard test vector: Crc32c("123456789") ==
/// 0xE3069283.
uint32_t Crc32c(std::string_view data);

/// Versioned, checksummed envelope wrapped around every persisted payload.
/// Layout (single header line, then the raw payload bytes):
///
///   ivr-envelope v1 <format> <payload-bytes> <crc32c-hex8>\n
///   <payload>
///
/// `format` names the payload kind ("collection", "profiles",
/// "sessionlog") so a file saved by one subsystem cannot be silently
/// loaded by another. UnwrapEnvelope verifies the declared length and the
/// CRC over exactly that many bytes, so truncation, bit rot, and torn
/// writes all surface as kCorruption instead of a half-loaded object.
std::string WrapEnvelope(std::string_view format, std::string_view payload);

/// Extracts and verifies the payload. Corruption when the header is
/// malformed, the format tag differs, the length disagrees with the file,
/// or the checksum does not match.
Result<std::string> UnwrapEnvelope(std::string_view format,
                                   std::string_view enveloped);

/// Extracts and verifies the FIRST envelope of `text`, which may be a
/// concatenation of envelopes — the layout the appendable session-log
/// journal writes, one checksummed chunk per fsynced append. On success
/// `*consumed` is set to the byte length of that envelope (header +
/// payload), so callers can walk a journal chunk by chunk; a truncated
/// final chunk (torn append) surfaces as kCorruption exactly like a torn
/// whole-file write would.
Result<std::string> UnwrapEnvelopePrefix(std::string_view format,
                                         std::string_view text,
                                         size_t* consumed);

/// True when `text` starts with an envelope header. Loaders use it to
/// accept legacy (pre-envelope) files unchecked.
bool LooksEnveloped(std::string_view text);

}  // namespace ivr

#endif  // IVR_CORE_CHECKSUM_H_
