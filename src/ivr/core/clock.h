#ifndef IVR_CORE_CLOCK_H_
#define IVR_CORE_CLOCK_H_

#include <cstdint>
#include <string>

namespace ivr {

/// Milliseconds since an arbitrary epoch. All timestamps in interaction
/// logs and simulations use this type.
using TimeMs = int64_t;

constexpr TimeMs kMillisPerSecond = 1000;
constexpr TimeMs kMillisPerMinute = 60 * kMillisPerSecond;
constexpr TimeMs kMillisPerHour = 60 * kMillisPerMinute;

/// Renders a duration as "h:mm:ss.mmm" for logs and reports.
std::string FormatDuration(TimeMs ms);

/// A purely simulated clock. Interfaces and simulators advance it
/// explicitly (e.g. by the cost of a user action), which makes sessions
/// deterministic and lets experiments model dwell time without sleeping.
class SimulatedClock {
 public:
  explicit SimulatedClock(TimeMs start = 0) : now_(start) {}

  TimeMs Now() const { return now_; }

  /// Advances time; negative deltas are ignored (time is monotonic).
  void Advance(TimeMs delta) {
    if (delta > 0) now_ += delta;
  }

  /// Jumps to an absolute time, provided it is not in the past.
  void AdvanceTo(TimeMs t) {
    if (t > now_) now_ = t;
  }

 private:
  TimeMs now_;
};

}  // namespace ivr

#endif  // IVR_CORE_CLOCK_H_
