#include "ivr/core/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace ivr {
namespace {

// Atomic: worker threads read the level on every IVR_LOG while a test or
// benchmark main thread may call SetLogLevel concurrently.
std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() {
  return g_min_level.load(std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  (void)level_;
}

}  // namespace internal_logging
}  // namespace ivr
