#include "ivr/core/file_util.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "ivr/core/fault_injection.h"

namespace ivr {
namespace {

/// Directory part of `path` ("." when there is none), for fsyncing the
/// directory entry after a rename.
std::string DirName(const std::string& path) {
  const size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  IVR_RETURN_IF_ERROR(FaultInjector::Global().MaybeFail("file.read"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::string content;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    content.append(buffer, n);
  }
  const bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) {
    return Status::IOError("read failed for " + path);
  }
  return content;
}

Status WriteStringToFile(const std::string& path,
                         std::string_view content) {
  IVR_RETURN_IF_ERROR(FaultInjector::Global().MaybeFail("file.write"));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing: " +
                           std::strerror(errno));
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok) {
    return Status::IOError("write failed for " + path);
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view content) {
  // Temp file in the target's directory so the final rename cannot cross
  // a filesystem boundary (rename is only atomic within one).
  std::string temp_path = path + ".tmpXXXXXX";
  const int fd = mkstemp(temp_path.data());
  if (fd < 0) {
    return Status::IOError("cannot create temp file for " + path + ": " +
                           std::strerror(errno));
  }
  const auto fail = [&](const std::string& what, Status status) {
    ::close(fd);
    ::unlink(temp_path.c_str());
    if (!status.ok()) return status;
    return Status::IOError(what + " failed for " + temp_path + ": " +
                           std::strerror(errno));
  };

  {
    const Status injected =
        FaultInjector::Global().MaybeFail("file.atomic.write");
    if (!injected.ok()) return fail("write", injected);
  }
  size_t offset = 0;
  while (offset < content.size()) {
    const ssize_t written =
        ::write(fd, content.data() + offset, content.size() - offset);
    if (written < 0) {
      if (errno == EINTR) continue;
      return fail("write", Status::OK());
    }
    offset += static_cast<size_t>(written);
  }

  {
    const Status injected =
        FaultInjector::Global().MaybeFail("file.atomic.sync");
    if (!injected.ok()) return fail("fsync", injected);
  }
  if (::fsync(fd) != 0) return fail("fsync", Status::OK());
  if (::close(fd) != 0) {
    ::unlink(temp_path.c_str());
    return Status::IOError("close failed for " + temp_path + ": " +
                           std::strerror(errno));
  }

  {
    const Status injected =
        FaultInjector::Global().MaybeFail("file.atomic.rename");
    if (!injected.ok()) {
      ::unlink(temp_path.c_str());
      return injected;
    }
  }
  if (::rename(temp_path.c_str(), path.c_str()) != 0) {
    const Status status = Status::IOError(
        "rename failed for " + path + ": " + std::strerror(errno));
    ::unlink(temp_path.c_str());
    return status;
  }

  // Persist the rename itself: without the directory fsync a crash can
  // roll the entry back to the old content (or, for a first write, to no
  // file at all) even though the data blocks were synced. An error here
  // means "visible but possibly not durable" — reported so callers
  // retry the (idempotent) write instead of trusting the entry.
  return SyncParentDirectory(path);
}

Status SyncParentDirectory(const std::string& path) {
  IVR_RETURN_IF_ERROR(
      FaultInjector::Global().MaybeFail("file.atomic.dirsync"));
  const std::string dir = DirName(path);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY);
  if (dir_fd < 0) {
    return Status::IOError("cannot open directory " + dir +
                           " for fsync: " + std::strerror(errno));
  }
  if (::fsync(dir_fd) != 0) {
    const Status status = Status::IOError(
        "directory fsync failed for " + dir + ": " + std::strerror(errno));
    ::close(dir_fd);
    return status;
  }
  if (::close(dir_fd) != 0) {
    return Status::IOError("directory close failed for " + dir + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

bool IsAtomicTempName(std::string_view name) {
  // "<target>.tmpXXXXXX": a non-empty target, the ".tmp" marker, and
  // exactly six mkstemp replacement characters (alphanumeric).
  constexpr size_t kSuffix = 6;
  constexpr std::string_view kMarker = ".tmp";
  if (name.size() < 1 + kMarker.size() + kSuffix) return false;
  const size_t marker_pos = name.size() - kSuffix - kMarker.size();
  if (name.substr(marker_pos, kMarker.size()) != kMarker) return false;
  for (size_t i = name.size() - kSuffix; i < name.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(name[i]);
    if (!std::isalnum(c)) return false;
  }
  return true;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError("cannot remove " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status MakeDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create directory " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDirectory(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IOError("cannot open directory " + dir + ": " +
                           std::strerror(errno));
  }
  std::vector<std::string> names;
  for (struct dirent* entry = ::readdir(d); entry != nullptr;
       entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) != 0) continue;
    if (!S_ISREG(st.st_mode)) continue;
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace ivr
