#include "ivr/core/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace ivr {

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::string content;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    content.append(buffer, n);
  }
  const bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) {
    return Status::IOError("read failed for " + path);
  }
  return content;
}

Status WriteStringToFile(const std::string& path,
                         std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing: " +
                           std::strerror(errno));
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok) {
    return Status::IOError("write failed for " + path);
  }
  return Status::OK();
}

}  // namespace ivr
