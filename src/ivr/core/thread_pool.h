#ifndef IVR_CORE_THREAD_POOL_H_
#define IVR_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ivr {

/// A small fixed-size worker pool over a FIFO work queue. Tasks receive
/// the id of the worker that runs them (0 <= worker < size()), which lets
/// batch callers keep one scratch buffer per worker (e.g. per-thread score
/// accumulators) without locking.
///
/// Submit() and Wait() may be called from the owning thread only; tasks
/// themselves must not Submit.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means DefaultThreadCount().
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.
  void Submit(std::function<void(size_t worker)> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t size() const { return workers_.size(); }

  /// std::thread::hardware_concurrency(), floored at 1 (the value is 0 on
  /// platforms that cannot report it).
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop(size_t worker);

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void(size_t)>> queue_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(index, worker) for every index in [0, n), fanned out across up
/// to `num_threads` pool workers (0 means DefaultThreadCount()). Indices
/// are handed out dynamically, so callers needing deterministic output
/// must write into a per-index slot rather than append in completion
/// order. With one effective thread (or n <= 1) everything runs inline on
/// the calling thread as worker 0 — no pool is created, which keeps the
/// sequential path allocation- and synchronisation-free.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t index, size_t worker)>& fn);

}  // namespace ivr

#endif  // IVR_CORE_THREAD_POOL_H_
