#ifndef IVR_CORE_ARRIVALS_H_
#define IVR_CORE_ARRIVALS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "ivr/core/rng.h"

namespace ivr {

/// Open-loop arrival generation and pacing: the rate clocks beneath the
/// workload orchestrator. Closed-loop drivers issue the next operation
/// when the previous one finishes, so a slow server throttles its own
/// offered load and latency under overload is unobservable; an open-loop
/// driver fires operations at externally scheduled instants regardless of
/// completion, which is what makes saturation measurable. Arrival times
/// are a pure function of (rate, seed), so an open-loop run is exactly
/// reproducible.

/// A deterministic Poisson arrival process: exponential inter-arrival
/// gaps with the given rate, accumulated as absolute microsecond offsets
/// from the stream origin. The stream is a pure function of
/// (rate_per_sec, seed).
class PoissonArrivalStream {
 public:
  /// `rate_per_sec` must be > 0 (callers validate; a non-positive rate is
  /// clamped to one arrival per second rather than dividing by zero).
  PoissonArrivalStream(double rate_per_sec, uint64_t seed);

  /// Absolute offset (microseconds since the stream origin) of the next
  /// arrival. Non-decreasing.
  int64_t NextUs();

  double rate_per_sec() const { return rate_per_sec_; }

 private:
  double rate_per_sec_;
  double elapsed_sec_ = 0.0;
  Rng rng_;
};

/// Every arrival offset (microseconds) of a Poisson process with
/// `rate_per_sec` that falls inside [0, duration_us). Deterministic in
/// the seed; sorted ascending. May legitimately be empty at tiny
/// rate*duration products.
std::vector<int64_t> PoissonScheduleUs(double rate_per_sec,
                                       int64_t duration_us, uint64_t seed);

/// Paces a thread along an absolute schedule: WaitUntil(offset) sleeps
/// until `origin + offset` and returns immediately (reporting the
/// lateness) when that instant has already passed — it NEVER sleeps once
/// the deadline is behind, so a late operation does not push every later
/// arrival back (the open-loop no-drift property). The clock and sleep
/// functions are injectable so tests can freeze time and record sleeps.
class OpenLoopPacer {
 public:
  using NowFn = std::function<int64_t()>;        ///< monotonic microseconds
  using SleepFn = std::function<void(int64_t)>;  ///< sleep >0 microseconds

  /// Real steady-clock pacer.
  OpenLoopPacer();
  OpenLoopPacer(NowFn now, SleepFn sleep);

  /// Fixes the schedule origin at the current instant. Call once, before
  /// the first WaitUntil.
  void Start();

  /// Blocks until origin + offset_us. Returns how late the caller was
  /// (microseconds past the deadline at entry; 0 when the pacer slept or
  /// the deadline was exactly now).
  int64_t WaitUntil(int64_t offset_us);

  int64_t origin_us() const { return origin_us_; }

 private:
  NowFn now_;
  SleepFn sleep_;
  int64_t origin_us_ = 0;
};

}  // namespace ivr

#endif  // IVR_CORE_ARRIVALS_H_
