#include "ivr/core/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ivr {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() &&
           std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < input.size() &&
           !std::isspace(static_cast<unsigned char>(input[i]))) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(input.substr(start, i - start));
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt(std::string_view s) {
  const std::string trimmed(Trim(s));
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty string is not an integer");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(trimmed.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + trimmed);
  }
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("not an integer: " + trimmed);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  const std::string trimmed(Trim(s));
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty string is not a number");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(trimmed.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("number out of range: " + trimmed);
  }
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("not a number: " + trimmed);
  }
  return v;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace ivr
