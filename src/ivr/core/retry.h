#ifndef IVR_CORE_RETRY_H_
#define IVR_CORE_RETRY_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>

#include "ivr/core/result.h"

namespace ivr {

/// Policy for RetryOnIOError. Only kIOError is considered transient —
/// kCorruption, kNotFound etc. are permanent and returned immediately.
struct RetryOptions {
  int max_attempts = 3;
  int64_t initial_backoff_ms = 5;
  double backoff_multiplier = 2.0;
  /// Sleep hook; tests inject a recorder so retries take no wall time.
  /// Default: std::this_thread::sleep_for.
  std::function<void(int64_t)> sleep_ms;
};

namespace internal_retry {

inline Status ToStatus(const Status& s) { return s; }
template <typename T>
Status ToStatus(const Result<T>& r) {
  return r.status();
}

}  // namespace internal_retry

/// Runs `fn` (returning Status or Result<T>) up to max_attempts times,
/// sleeping with exponential backoff between attempts, until it returns
/// anything other than kIOError. Returns the last attempt's outcome.
template <typename Fn>
auto RetryOnIOError(Fn&& fn, const RetryOptions& options = RetryOptions())
    -> decltype(fn()) {
  int64_t backoff = options.initial_backoff_ms;
  auto outcome = fn();
  for (int attempt = 1; attempt < options.max_attempts; ++attempt) {
    const Status status = internal_retry::ToStatus(outcome);
    if (!status.IsIOError()) return outcome;
    if (options.sleep_ms) {
      options.sleep_ms(backoff);
    } else if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    backoff = static_cast<int64_t>(
        static_cast<double>(backoff) * options.backoff_multiplier);
    outcome = fn();
  }
  return outcome;
}

}  // namespace ivr

#endif  // IVR_CORE_RETRY_H_
