#ifndef IVR_CORE_RETRY_H_
#define IVR_CORE_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "ivr/core/result.h"

namespace ivr {

/// A per-process retry budget: a token bucket that caps how much of the
/// process's work may be retries. Every *initial* call deposits
/// `deposit_per_call` tokens (up to `capacity`); every retry attempt
/// withdraws one. When the bucket is empty, retries are denied and the
/// caller fails fast with the last error — so a hard outage degrades to
/// roughly `deposit_per_call` extra load instead of multiplying every
/// request by max_attempts (the retry-storm amplification this exists to
/// prevent). Thread-safe; one instance is meant to be shared by all
/// callers of a subsystem.
class RetryBudget {
 public:
  struct Options {
    /// Token ceiling — also the initial balance, so startup and small
    /// bursts retry freely.
    double capacity = 10.0;
    /// Tokens earned per initial (non-retry) call.
    double deposit_per_call = 0.1;
  };

  explicit RetryBudget(Options options)
      : options_(options), tokens_(options.capacity) {}
  RetryBudget() : RetryBudget(Options()) {}

  RetryBudget(const RetryBudget&) = delete;
  RetryBudget& operator=(const RetryBudget&) = delete;

  /// An initial call happened: deposit.
  void RecordCall() {
    std::lock_guard<std::mutex> lock(mu_);
    tokens_ = std::min(options_.capacity,
                       tokens_ + options_.deposit_per_call);
  }

  /// Withdraws one token for a retry. False (and counts a denial) when
  /// the bucket is empty.
  bool TryConsume() {
    std::lock_guard<std::mutex> lock(mu_);
    if (tokens_ < 1.0) {
      ++denied_;
      return false;
    }
    tokens_ -= 1.0;
    ++allowed_;
    return true;
  }

  double tokens() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tokens_;
  }
  uint64_t retries_allowed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return allowed_;
  }
  uint64_t retries_denied() const {
    std::lock_guard<std::mutex> lock(mu_);
    return denied_;
  }

 private:
  const Options options_;
  mutable std::mutex mu_;
  double tokens_;
  uint64_t allowed_ = 0;
  uint64_t denied_ = 0;
};

/// The process-wide budget the library's robust loaders share. Generous
/// (capacity 50): it never throttles healthy workloads, only sustained
/// failure storms.
inline RetryBudget& ProcessRetryBudget() {
  static RetryBudget* budget =
      new RetryBudget(RetryBudget::Options{50.0, 0.1});
  return *budget;
}

/// Policy for RetryOnIOError. Only kIOError is considered transient —
/// kCorruption, kNotFound etc. are permanent and returned immediately.
struct RetryOptions {
  int max_attempts = 3;
  int64_t initial_backoff_ms = 5;
  double backoff_multiplier = 2.0;
  /// Deterministic seeded jitter: each sleep is stretched by up to this
  /// fraction of the base backoff (0 = pure exponential, the legacy
  /// schedule). The stretch for attempt k is a pure function of
  /// (jitter_seed, k), so a retry schedule is reproducible from its seed
  /// while workers seeded differently (e.g. by worker id) desynchronize
  /// instead of hammering a recovering dependency in lockstep.
  double jitter = 0.0;
  uint64_t jitter_seed = 0;
  /// When non-null, each retry must win a token first; an exhausted
  /// budget fails fast with the last error. Null = unlimited retries
  /// (the legacy behavior).
  RetryBudget* budget = nullptr;
  /// Sleep hook; tests inject a recorder so retries take no wall time.
  /// Default: std::this_thread::sleep_for.
  std::function<void(int64_t)> sleep_ms;
};

namespace internal_retry {

inline Status ToStatus(const Status& s) { return s; }
template <typename T>
Status ToStatus(const Result<T>& r) {
  return r.status();
}

/// splitmix64: a deterministic, well-mixed function of (seed, attempt).
inline uint64_t MixJitter(uint64_t seed, uint64_t attempt) {
  uint64_t z = seed + attempt * 0x9E3779B97F4A7C15ull + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline int64_t JitteredBackoff(int64_t backoff, const RetryOptions& options,
                               int attempt) {
  if (options.jitter <= 0.0 || backoff <= 0) return backoff;
  const uint64_t mix =
      MixJitter(options.jitter_seed, static_cast<uint64_t>(attempt));
  // 53 high bits -> uniform double in [0, 1).
  const double frac =
      static_cast<double>(mix >> 11) / 9007199254740992.0;  // 2^53
  return backoff + static_cast<int64_t>(static_cast<double>(backoff) *
                                        options.jitter * frac);
}

}  // namespace internal_retry

/// Runs `fn` (returning Status or Result<T>) up to max_attempts times,
/// sleeping with exponential backoff (plus deterministic seeded jitter)
/// between attempts, until it returns anything other than kIOError. A
/// configured budget is consulted before every retry; denial returns the
/// last attempt's outcome immediately. Returns the last attempt's
/// outcome.
template <typename Fn>
auto RetryOnIOError(Fn&& fn, const RetryOptions& options = RetryOptions())
    -> decltype(fn()) {
  if (options.budget != nullptr) options.budget->RecordCall();
  int64_t backoff = options.initial_backoff_ms;
  auto outcome = fn();
  for (int attempt = 1; attempt < options.max_attempts; ++attempt) {
    const Status status = internal_retry::ToStatus(outcome);
    if (!status.IsIOError()) return outcome;
    if (options.budget != nullptr && !options.budget->TryConsume()) {
      return outcome;
    }
    const int64_t delay =
        internal_retry::JitteredBackoff(backoff, options, attempt);
    if (options.sleep_ms) {
      options.sleep_ms(delay);
    } else if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    backoff = static_cast<int64_t>(
        static_cast<double>(backoff) * options.backoff_multiplier);
    outcome = fn();
  }
  return outcome;
}

}  // namespace ivr

#endif  // IVR_CORE_RETRY_H_
