#ifndef IVR_CORE_FILE_UTIL_H_
#define IVR_CORE_FILE_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "ivr/core/result.h"

namespace ivr {

/// Reads an entire file into a string; IOError with errno detail on
/// failure. Fault site: "file.read".
Result<std::string> ReadFileToString(const std::string& path);

/// Writes (truncating) `content` to `path`. Not crash-safe: a failure can
/// leave a partial file behind. Prefer WriteFileAtomic for anything a
/// loader will later trust. Fault site: "file.write".
Status WriteStringToFile(const std::string& path, std::string_view content);

/// Crash-safe replacement write: writes `content` to a unique temp file in
/// the same directory, fsyncs it, renames it over `path`, and fsyncs the
/// directory so the rename itself survives power loss. At every point in
/// time `path` holds either the complete old or the complete new content,
/// never a torn mix; on any failure the temp file is removed and the old
/// content is untouched. A post-rename directory-fsync failure is
/// reported as an error even though the new content is already visible —
/// callers treat the write as not-durable and retry, which is idempotent.
/// Fault sites: "file.atomic.write", "file.atomic.sync",
/// "file.atomic.rename", "file.atomic.dirsync".
Status WriteFileAtomic(const std::string& path, std::string_view content);

/// Fsyncs the directory containing `path`, making a just-created (or
/// just-renamed) entry for `path` durable. Without this, a crash after a
/// file's own fsync can still lose the file: the data blocks are safe
/// but the directory entry pointing at them is not. Fault site:
/// "file.atomic.dirsync".
Status SyncParentDirectory(const std::string& path);

/// True when `name` matches the "<target>.tmpXXXXXX" pattern of
/// WriteFileAtomic's mkstemp temp files — the residue a crash between
/// temp creation and rename leaves behind. Startup sweeps use this to
/// reclaim the space without ever touching a committed file.
bool IsAtomicTempName(std::string_view name);

bool FileExists(const std::string& path);

/// Deletes a file; OK if it did not exist.
Status RemoveFile(const std::string& path);

/// Creates a directory (one level, like mkdir); OK if it already exists.
Status MakeDirectory(const std::string& path);

/// Names (not paths) of the regular files directly inside `dir`, sorted
/// lexicographically for deterministic iteration. IOError when the
/// directory cannot be opened.
Result<std::vector<std::string>> ListDirectory(const std::string& dir);

}  // namespace ivr

#endif  // IVR_CORE_FILE_UTIL_H_
