#ifndef IVR_CORE_FILE_UTIL_H_
#define IVR_CORE_FILE_UTIL_H_

#include <string>
#include <string_view>

#include "ivr/core/result.h"

namespace ivr {

/// Reads an entire file into a string; IOError with errno detail on
/// failure.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes (truncating) `content` to `path`.
Status WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace ivr

#endif  // IVR_CORE_FILE_UTIL_H_
