#ifndef IVR_CORE_STATUS_H_
#define IVR_CORE_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace ivr {

/// Error categories used across the library. Modelled after the
/// Status idiom used by RocksDB/Arrow: functions that can fail return a
/// Status (or a Result<T>, see result.h) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,
  kUnimplemented,
  kIOError,
  kInternal,
};

/// Returns a stable human-readable name ("Ok", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A Status is a cheap value type carrying an error code and message.
/// The OK status carries no message and allocates nothing.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Evaluates an expression producing a Status and returns it from the
/// enclosing function if it is not OK.
#define IVR_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::ivr::Status ivr_status_macro_tmp_ = (expr);  \
    if (!ivr_status_macro_tmp_.ok()) {             \
      return ivr_status_macro_tmp_;                \
    }                                              \
  } while (false)

}  // namespace ivr

#endif  // IVR_CORE_STATUS_H_
