#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "ivr/core/thread_pool.h"
#include "ivr/obs/metrics.h"

namespace ivr {
namespace obs {
namespace {

/// Deterministic value streams spanning the histogram's whole dynamic
/// range: an exponent picked uniformly keeps small and huge magnitudes
/// equally likely, which exercises every bucket, not just the low ones.
std::vector<int64_t> RandomValues(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> exponent(0, 44);
  std::vector<int64_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t magnitude = int64_t{1} << exponent(rng);
    std::uniform_int_distribution<int64_t> within(0, magnitude);
    values.push_back(within(rng));
  }
  return values;
}

class HistogramPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef IVR_OBS_OFF
    GTEST_SKIP() << "instrumentation compiled out (IVR_OBS_OFF)";
#endif
  }
};

TEST_F(HistogramPropertyTest, CountSumMaxMatchTheRecordedStream) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const std::vector<int64_t> values = RandomValues(seed, 2000);
    LatencyHistogram histogram;
    int64_t sum = 0;
    int64_t max = 0;
    for (int64_t v : values) {
      histogram.Record(v);
      sum += v;
      max = std::max(max, v);
    }
    const HistogramSnapshot snap = histogram.Snapshot();
    EXPECT_EQ(snap.count, values.size()) << "seed " << seed;
    EXPECT_EQ(snap.sum, sum) << "seed " << seed;
    EXPECT_EQ(snap.max, max) << "seed " << seed;
    uint64_t bucket_total = 0;
    for (uint64_t b : snap.buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, snap.count) << "seed " << seed;
  }
}

TEST_F(HistogramPropertyTest, EveryValueLandsInsideItsBucketBounds) {
  for (int64_t v : RandomValues(11, 4000)) {
    const size_t i = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(i, LatencyHistogram::kNumBuckets);
    EXPECT_GE(v, LatencyHistogram::BucketLowerBound(i)) << "value " << v;
    if (i + 1 < LatencyHistogram::kNumBuckets) {
      EXPECT_LE(v, LatencyHistogram::BucketUpperBound(i)) << "value " << v;
    }
  }
}

TEST_F(HistogramPropertyTest, QuantileIsExactToWithinOneBucket) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    std::vector<int64_t> values = RandomValues(seed, 1500);
    LatencyHistogram histogram;
    for (int64_t v : values) histogram.Record(v);
    const HistogramSnapshot snap = histogram.Snapshot();
    std::sort(values.begin(), values.end());
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
      // The exact q-quantile with the snapshot's nearest-rank
      // (1-based, ceil) convention.
      size_t rank = static_cast<size_t>(
          std::ceil(q * static_cast<double>(values.size())));
      rank = std::min(std::max<size_t>(rank, 1), values.size());
      const int64_t exact = values[rank - 1];
      const int64_t estimate = snap.Quantile(q);
      // The estimate is the upper bound of the bucket holding the exact
      // value — same bucket, never further.
      EXPECT_EQ(LatencyHistogram::BucketIndex(estimate),
                LatencyHistogram::BucketIndex(exact))
          << "seed " << seed << " q " << q;
      // An upper bound in every bucket except the unbounded last one,
      // whose nominal bound can sit below an overflow value.
      if (LatencyHistogram::BucketIndex(exact) + 1 <
          LatencyHistogram::kNumBuckets) {
        EXPECT_GE(estimate, exact) << "seed " << seed << " q " << q;
      }
    }
  }
}

TEST_F(HistogramPropertyTest, MergeEqualsRecordingTheUnion) {
  constexpr size_t kStreams = 4;
  LatencyHistogram merged;
  LatencyHistogram single;
  for (size_t s = 0; s < kStreams; ++s) {
    LatencyHistogram stream;
    for (int64_t v : RandomValues(100 + s, 700)) {
      stream.Record(v);
      single.Record(v);
    }
    merged.MergeFrom(stream);
  }
  const HistogramSnapshot a = merged.Snapshot();
  const HistogramSnapshot b = single.Snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST_F(HistogramPropertyTest, ConcurrentRecordingEqualsSequential) {
  constexpr size_t kThreads = 4;
  const std::vector<int64_t> values = RandomValues(77, 8000);
  LatencyHistogram sequential;
  for (int64_t v : values) sequential.Record(v);

  LatencyHistogram concurrent;
  {
    ThreadPool pool(kThreads);
    const size_t chunk = values.size() / kThreads;
    for (size_t t = 0; t < kThreads; ++t) {
      const size_t begin = t * chunk;
      const size_t end = t + 1 == kThreads ? values.size() : begin + chunk;
      pool.Submit([&concurrent, &values, begin, end](size_t) {
        for (size_t i = begin; i < end; ++i) concurrent.Record(values[i]);
      });
    }
    pool.Wait();
  }
  const HistogramSnapshot a = concurrent.Snapshot();
  const HistogramSnapshot b = sequential.Snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
}

}  // namespace
}  // namespace obs
}  // namespace ivr
