#include "ivr/profile/profile_reranker.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

// Collection with two shots: shot 0 about topic 0, shot 1 about topic 1.
VideoCollection MakeCollection() {
  VideoCollection c;
  c.SetTopicNames({"politics", "sports"});
  Video v;
  const VideoId vid = c.AddVideo(v);
  NewsStory s;
  s.video = vid;
  const StoryId sid = c.AddStory(s);
  for (TopicLabel t = 0; t < 2; ++t) {
    Shot shot;
    shot.story = sid;
    shot.video = vid;
    shot.primary_topic = t;
    shot.concepts = {t == 0, t == 1};
    shot.external_id = "s" + std::to_string(t);
    c.AddShot(shot);
  }
  return c;
}

TEST(ProfileRerankerTest, LambdaZeroLeavesListUntouched) {
  const VideoCollection c = MakeCollection();
  UserProfile profile("u");
  profile.SetInterest(1, 1.0);
  const ResultList original({{0, 2.0}, {1, 1.0}});
  ProfileRerankOptions options;
  options.lambda = 0.0;
  const ResultList reranked =
      RerankWithProfile(original, profile, c, options);
  EXPECT_EQ(reranked.ShotIds(), original.ShotIds());
}

TEST(ProfileRerankerTest, StrongProfileFlipsRanking) {
  const VideoCollection c = MakeCollection();
  UserProfile profile("sports-fan");
  profile.SetInterest(1, 1.0);
  // Retrieval slightly prefers shot 0; the fan's profile prefers shot 1.
  const ResultList original({{0, 1.01}, {1, 1.0}});
  ProfileRerankOptions options;
  options.lambda = 0.8;
  const ResultList reranked =
      RerankWithProfile(original, profile, c, options);
  EXPECT_EQ(reranked.at(0).shot, 1u);
}

TEST(ProfileRerankerTest, WeakProfilePreservesStrongRetrievalSignal) {
  const VideoCollection c = MakeCollection();
  UserProfile profile("sports-fan");
  profile.SetInterest(1, 1.0);
  const ResultList original({{0, 100.0}, {1, 1.0}});
  ProfileRerankOptions options;
  options.lambda = 0.2;
  const ResultList reranked =
      RerankWithProfile(original, profile, c, options);
  EXPECT_EQ(reranked.at(0).shot, 0u);
}

TEST(ProfileRerankerTest, EmptyListAndEmptyProfile) {
  const VideoCollection c = MakeCollection();
  const UserProfile profile("empty");
  EXPECT_TRUE(RerankWithProfile(ResultList(), profile, c).empty());
  const ResultList original({{0, 2.0}, {1, 1.0}});
  // Empty profile: affinity 0 everywhere, order preserved.
  const ResultList reranked = RerankWithProfile(original, profile, c);
  EXPECT_EQ(reranked.ShotIds(), original.ShotIds());
}

TEST(ProfileRerankerTest, ShotsOutsideCollectionKeepScore) {
  const VideoCollection c = MakeCollection();
  UserProfile profile("u");
  profile.SetInterest(0, 1.0);
  const ResultList original({{99, 1.0}, {0, 0.5}});
  ProfileRerankOptions options;
  options.lambda = 0.5;
  const ResultList reranked =
      RerankWithProfile(original, profile, c, options);
  // Shot 99 is unknown: affinity 0, normalised score 1 -> 0.5 total.
  // Shot 0: normalised 0 + affinity 1 -> 0.5. Tie broken by id: 0 first.
  EXPECT_EQ(reranked.at(0).shot, 0u);
  EXPECT_DOUBLE_EQ(reranked.ScoreOf(99), 0.5);
}

TEST(ProfileRerankerTest, LambdaClampedToUnitInterval) {
  const VideoCollection c = MakeCollection();
  UserProfile profile("u");
  profile.SetInterest(1, 1.0);
  const ResultList original({{0, 2.0}, {1, 1.0}});
  ProfileRerankOptions options;
  options.lambda = 5.0;  // clamped to 1: pure profile ranking
  const ResultList reranked =
      RerankWithProfile(original, profile, c, options);
  EXPECT_EQ(reranked.at(0).shot, 1u);
  EXPECT_DOUBLE_EQ(reranked.ScoreOf(0), 0.0);
}

}  // namespace
}  // namespace ivr
