// Chaos tier for the service layer: the concurrent-session driver runs
// with every fault site armed at 5% ("all:0.05") and the managed stack
// must degrade, never corrupt — no session lost without being counted,
// no event from one session ever observed in another's context, and all
// degradation visible through Stats()/Health().

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ivr/core/fault_injection.h"
#include "ivr/service/managed_backend.h"
#include "ivr/service/session_manager.h"
#include "ivr/sim/simulator.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

class ServiceChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 55;
    options.num_topics = 4;
    options.num_videos = 8;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection).value();
    adaptive_ = std::make_unique<AdaptiveEngine>(
        *engine_, AdaptiveOptions(), nullptr);
  }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> engine_;
  std::unique_ptr<AdaptiveEngine> adaptive_;
};

TEST_F(ServiceChaosTest, ConcurrentSessionsSurviveGlobalChaos) {
  constexpr size_t kSessions = 16;
  constexpr size_t kThreads = 4;

  SessionManagerOptions options;
  options.max_sessions = 8;  // eviction pressure under chaos too
  options.persist_dir = ::testing::TempDir() + "/ivr_service_chaos";
  SessionManager manager(*adaptive_, options);
  const SessionSimulator simulator(generated_->collection,
                                   generated_->qrels);
  const UserModel user = NoviceUser();
  const std::vector<SearchTopic>& topics = generated_->topics.topics;

  std::vector<SimulatedSession> sessions(kSessions);
  std::atomic<size_t> completed{0};
  {
    ScopedFaultInjection chaos("all:0.05", 2024);
    ASSERT_TRUE(chaos.status().ok());
    std::atomic<size_t> next{0};
    const auto worker = [&] {
      for (size_t j = next++; j < kSessions; j = next++) {
        SessionSimulator::RunConfig config;
        config.seed = 500 + j * 131;
        config.session_id = "chaos-s" + std::to_string(j);
        config.user_id = user.name + std::to_string(j % 4);
        ManagedSessionBackend backend(&manager, config.session_id,
                                      config.user_id);
        Result<SimulatedSession> session = simulator.Run(
            &backend, topics[j % topics.size()], user, config, nullptr);
        (void)backend.EndSession();
        if (session.ok()) {
          sessions[j] = std::move(session).value();
          ++completed;
        }
      }
    };
    std::vector<std::thread> pool;
    for (size_t t = 1; t < kThreads; ++t) pool.emplace_back(worker);
    worker();
    for (std::thread& t : pool) t.join();

    // Every session ran to completion: faults degrade individual steps
    // (skipped feedback, failed persists, kept victims), they never kill
    // a session outright.
    EXPECT_EQ(completed.load(), kSessions);

    // No session is silently lost: every begun session is accounted for
    // as still-active, ended, or evicted.
    const SessionManagerStats stats = manager.Stats();
    EXPECT_EQ(stats.begun, kSessions);
    EXPECT_EQ(stats.begun, stats.active + stats.ended +
                               stats.evicted_idle + stats.evicted_capacity);

    // No cross-contamination: each session's events carry only its own
    // session id (per-session contexts never mix streams).
    for (size_t j = 0; j < kSessions; ++j) {
      const std::string expected_id = "chaos-s" + std::to_string(j);
      for (const InteractionEvent& event : sessions[j].events) {
        ASSERT_EQ(event.session_id, expected_id)
            << "event from '" << event.session_id << "' leaked into '"
            << expected_id << "'";
      }
    }

    // Degradation is visible, not hidden.
    const HealthReport health = manager.Health();
    if (stats.persist_failures > 0) {
      EXPECT_TRUE(health.degraded());
      EXPECT_EQ(health.session_persist_failures, stats.persist_failures);
    }
  }
}

TEST_F(ServiceChaosTest, ChaosRunStaysDeterministic) {
  // Same seed, same spec, same single-threaded order => same degraded
  // behaviour, down to the counters.
  const auto run = [&] {
    SessionManagerOptions options;
    options.num_shards = 1;
    options.max_sessions = 2;
    SessionManager manager(*adaptive_, options);
    const SessionSimulator simulator(generated_->collection,
                                     generated_->qrels);
    const UserModel user = NoviceUser();
    ScopedFaultInjection chaos("all:0.05", 7);
    for (size_t j = 0; j < 6; ++j) {
      SessionSimulator::RunConfig config;
      config.seed = 900 + j;
      config.session_id = "rep-s" + std::to_string(j);
      config.user_id = "u";
      ManagedSessionBackend backend(&manager, config.session_id,
                                    config.user_id);
      (void)simulator.Run(&backend,
                          generated_->topics.topics[j % 4], user,
                          config, nullptr);
      (void)backend.EndSession();
    }
    const SessionManagerStats stats = manager.Stats();
    return std::vector<uint64_t>{stats.begun, stats.ended,
                                 stats.evicted_capacity,
                                 stats.evictions_skipped,
                                 stats.persist_failures,
                                 stats.rejected_ops};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ivr
