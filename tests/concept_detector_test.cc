#include "ivr/features/concept_detector.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(ConceptDetectorTest, Deterministic) {
  SimulatedConceptDetector detector(4, {}, 42);
  const double a = detector.Detect(7, 2, true);
  const double b = detector.Detect(7, 2, true);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(ConceptDetectorTest, ConfidencesInUnitInterval) {
  SimulatedConceptDetector::Options options;
  options.noise_stddev = 1.0;  // force clamping to happen
  SimulatedConceptDetector detector(4, options, 1);
  for (uint64_t shot = 0; shot < 200; ++shot) {
    const double c = detector.Detect(shot, 0, shot % 2 == 0);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(ConceptDetectorTest, SeparatesPresentFromAbsent) {
  SimulatedConceptDetector detector(1, {}, 3);
  double present_mean = 0.0;
  double absent_mean = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    present_mean += detector.Detect(static_cast<uint64_t>(i), 0, true);
    absent_mean +=
        detector.Detect(static_cast<uint64_t>(i) + 100000, 0, false);
  }
  present_mean /= n;
  absent_mean /= n;
  EXPECT_NEAR(present_mean, 0.8, 0.02);
  EXPECT_NEAR(absent_mean, 0.2, 0.02);
}

TEST(ConceptDetectorTest, UninformativeAtHalf) {
  SimulatedConceptDetector::Options options;
  options.mean_positive = 0.5;
  SimulatedConceptDetector detector(1, options, 5);
  double diff = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    diff += detector.Detect(static_cast<uint64_t>(i), 0, true) -
            detector.Detect(static_cast<uint64_t>(i) + 50000, 0, false);
  }
  EXPECT_NEAR(diff / n, 0.0, 0.02);
}

TEST(ConceptDetectorTest, DifferentSeedsGiveDifferentScores) {
  SimulatedConceptDetector a(1, {}, 1);
  SimulatedConceptDetector b(1, {}, 2);
  int identical = 0;
  for (uint64_t shot = 0; shot < 50; ++shot) {
    if (a.Detect(shot, 0, true) == b.Detect(shot, 0, true)) ++identical;
  }
  EXPECT_LT(identical, 5);
}

TEST(ConceptDetectorTest, DetectAllAlignsWithTruth) {
  SimulatedConceptDetector detector(3, {}, 9);
  const std::vector<bool> truth = {true, false, true};
  const std::vector<double> scores = detector.DetectAll(11, truth);
  ASSERT_EQ(scores.size(), 3u);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(
        scores[c],
        detector.Detect(11, static_cast<ConceptId>(c), truth[c]));
  }
}

TEST(ConceptDetectorTest, DetectAllTreatsMissingTruthAsAbsent) {
  SimulatedConceptDetector detector(3, {}, 9);
  const std::vector<double> scores = detector.DetectAll(11, {true});
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_DOUBLE_EQ(scores[1], detector.Detect(11, 1, false));
}

}  // namespace
}  // namespace ivr
