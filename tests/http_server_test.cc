#include "ivr/net/http_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/core/string_util.h"
#include "ivr/net/http_client.h"
#include "ivr/net/json.h"
#include "ivr/net/service_handler.h"
#include "ivr/retrieval/engine.h"
#include "ivr/service/session_manager.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace net {
namespace {

/// One shared retrieval stack for the whole suite (index construction is
/// the slow part); each test gets a fresh manager + server.
class HttpServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions options;
    options.seed = 2008;
    options.num_videos = 8;
    options.num_topics = 5;
    generated_ = new GeneratedCollection(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection)
                  .value()
                  .release();
    adaptive_ = new AdaptiveEngine(*engine_, AdaptiveOptions(), nullptr);
  }

  void SetUp() override {
    manager_ = std::make_unique<SessionManager>(*adaptive_,
                                                SessionManagerOptions());
    handler_ = std::make_unique<ServiceHandler>(manager_.get());
    StartServer(HttpServerOptions());
  }

  void StartServer(HttpServerOptions options) {
    if (server_ != nullptr) server_->Stop();
    server_ = std::make_unique<HttpServer>(
        std::move(options), [this](const HttpRequest& request) {
          return handler_->Handle(request);
        });
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  HttpClient Connected() {
    HttpClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  std::string TopicTitle(size_t i) const {
    const auto& topics = generated_->topics.topics;
    return topics[i % topics.size()].title;
  }

  static GeneratedCollection* generated_;
  static RetrievalEngine* engine_;
  static AdaptiveEngine* adaptive_;
  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<ServiceHandler> handler_;
  std::unique_ptr<HttpServer> server_;
};

GeneratedCollection* HttpServerTest::generated_ = nullptr;
RetrievalEngine* HttpServerTest::engine_ = nullptr;
AdaptiveEngine* HttpServerTest::adaptive_ = nullptr;

TEST_F(HttpServerTest, SessionLifecycleOverHttp) {
  HttpClient client = Connected();
  Result<HttpClientResponse> response = client.Post(
      "/v1/session/open", "{\"session_id\": \"s1\", \"user_id\": \"u1\"}");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_TRUE(manager_->Contains("s1"));

  response = client.Post(
      "/v1/search",
      StrFormat("{\"session_id\": \"s1\", \"query\": {\"text\": %s}, "
                "\"k\": 5}",
                JsonQuote(TopicTitle(0)).c_str()));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  const JsonValue body = JsonValue::Parse(response->body).value();
  const JsonValue* results = body.Find("results");
  ASSERT_NE(results, nullptr);
  EXPECT_GT(results->items().size(), 0u);
  EXPECT_LE(results->items().size(), 5u);

  response = client.Post(
      "/v1/feedback",
      "{\"session_id\": \"s1\", \"event\": {\"type\": \"click_keyframe\", "
      "\"shot\": 3, \"time\": 1}}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);

  response = client.Post("/v1/session/close", "{\"session_id\": \"s1\"}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_FALSE(manager_->Contains("s1"));
}

TEST_F(HttpServerTest, StatusCodeMapping) {
  HttpClient client = Connected();
  // Unknown session -> NotFound -> 404.
  EXPECT_EQ(client
                .Post("/v1/search",
                      "{\"session_id\": \"ghost\", "
                      "\"query\": {\"text\": \"x\"}}")
                ->status,
            404);
  // Double open -> AlreadyExists -> 409.
  ASSERT_EQ(client.Post("/v1/session/open", "{\"session_id\": \"dup\"}")
                ->status,
            200);
  EXPECT_EQ(client.Post("/v1/session/open", "{\"session_id\": \"dup\"}")
                ->status,
            409);
  // Malformed JSON / missing keys / bad values -> 400.
  EXPECT_EQ(client.Post("/v1/session/open", "notjson")->status, 400);
  EXPECT_EQ(client.Post("/v1/search", "{\"k\": 5}")->status, 400);
  EXPECT_EQ(client
                .Post("/v1/search",
                      "{\"session_id\": \"dup\", \"query\": {}}")
                ->status,
            400);
  EXPECT_EQ(client
                .Post("/v1/search",
                      "{\"session_id\": \"dup\", "
                      "\"query\": {\"text\": \"x\"}, \"k\": 2.5}")
                ->status,
            400);
  EXPECT_EQ(client
                .Post("/v1/feedback",
                      "{\"session_id\": \"dup\", "
                      "\"event\": {\"type\": \"no_such_event\"}}")
                ->status,
            400);
  // Unknown path -> 404; wrong method -> 405.
  EXPECT_EQ(client.Get("/nope")->status, 404);
  EXPECT_EQ(client.Get("/v1/search")->status, 405);
  EXPECT_EQ(client.Post("/healthz", "{}")->status, 405);
  // Error bodies are JSON.
  const Result<HttpClientResponse> error = client.Get("/nope");
  ASSERT_TRUE(error.ok());
  EXPECT_TRUE(JsonValue::Parse(error->body).ok()) << error->body;
}

TEST_F(HttpServerTest, HealthzAndStatszAreLiveJson) {
  HttpClient client = Connected();
  ASSERT_EQ(client.Post("/v1/session/open", "{\"session_id\": \"h1\"}")
                ->status,
            200);
  const Result<HttpClientResponse> healthz = client.Get("/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(healthz->status, 200);
  const JsonValue health = JsonValue::Parse(healthz->body).value();
  EXPECT_DOUBLE_EQ(health.GetNumber("sessions_active").value(), 1.0);

  const Result<HttpClientResponse> statsz = client.Get("/statsz");
  ASSERT_TRUE(statsz.ok());
  EXPECT_EQ(statsz->status, 200);
  const JsonValue stats = JsonValue::Parse(statsz->body).value();
  EXPECT_DOUBLE_EQ(stats.GetNumber("schema_version").value(), 1.0);
  ASSERT_NE(stats.Find("counters"), nullptr);
  ASSERT_NE(stats.Find("histograms"), nullptr);
}

TEST_F(HttpServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  HttpClient client = Connected();
  ASSERT_EQ(client.Post("/v1/session/open", "{\"session_id\": \"ka\"}")
                ->status,
            200);
  for (int i = 0; i < 20; ++i) {
    const Result<HttpClientResponse> response = client.Post(
        "/v1/search",
        StrFormat("{\"session_id\": \"ka\", \"query\": {\"text\": %s}}",
                  JsonQuote(TopicTitle(i)).c_str()));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, 200);
  }
  const HttpServerStats stats = server_->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.requests, 21u);
  EXPECT_EQ(stats.responses_2xx, 21u);
}

TEST_F(HttpServerTest, ConnectionCloseRequestHonoured) {
  HttpClient client = Connected();
  ASSERT_TRUE(client
                  .SendRaw("GET /healthz HTTP/1.1\r\n"
                           "Connection: close\r\n\r\n")
                  .ok());
  const Result<HttpClientResponse> response = client.ReadResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  // The server closed the socket: the client noticed via the header.
  EXPECT_FALSE(client.connected());
}

TEST_F(HttpServerTest, PipelinedRequestsAllAnswered) {
  HttpClient client = Connected();
  ASSERT_TRUE(client
                  .SendRaw("GET /healthz HTTP/1.1\r\n\r\n"
                           "GET /healthz HTTP/1.1\r\n\r\n")
                  .ok());
  for (int i = 0; i < 2; ++i) {
    const Result<HttpClientResponse> response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
  }
}

TEST_F(HttpServerTest, ConcurrentClientsAllServed) {
  constexpr size_t kThreads = 4;
  constexpr int kRequests = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &failures] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      const std::string session_id = StrFormat("conc-%zu", t);
      Result<HttpClientResponse> response = client.Post(
          "/v1/session/open",
          StrFormat("{\"session_id\": %s}", JsonQuote(session_id).c_str()));
      if (!response.ok() || response->status != 200) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        response = client.Post(
            "/v1/search",
            StrFormat("{\"session_id\": %s, \"query\": {\"text\": %s}}",
                      JsonQuote(session_id).c_str(),
                      JsonQuote(TopicTitle(i)).c_str()));
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const HttpServerStats stats = server_->stats();
  EXPECT_EQ(stats.responses_2xx, kThreads * (kRequests + 1));
  EXPECT_EQ(stats.responses_5xx, 0u);
}

TEST_F(HttpServerTest, OversizedBodyGets413) {
  HttpServerOptions options;
  options.limits.max_body_bytes = 64;
  StartServer(options);
  HttpClient client = Connected();
  const Result<HttpClientResponse> response =
      client.Post("/v1/search", std::string(256, 'x'));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 413);
  EXPECT_EQ(server_->stats().parse_errors, 1u);
}

TEST_F(HttpServerTest, StopIsIdempotentAndRestartable) {
  server_->Stop();
  server_->Stop();
  StartServer(HttpServerOptions());
  HttpClient client = Connected();
  EXPECT_EQ(client.Get("/healthz")->status, 200);
}

}  // namespace
}  // namespace net
}  // namespace ivr
