#include "ivr/eval/experiment.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

Qrels MakeQrels() {
  Qrels qrels;
  qrels.Set(1, 1, 1);
  qrels.Set(1, 2, 1);
  qrels.Set(2, 5, 2);
  return qrels;
}

TEST(EvaluateSystemTest, PerTopicAndMean) {
  SystemRun run;
  run.system = "bm25";
  run.runs[1] = ResultList({{1, 2.0}, {2, 1.0}});  // perfect for topic 1
  run.runs[2] = ResultList({{9, 2.0}, {5, 1.0}});  // AP 0.5 for topic 2
  const SystemEvaluation eval =
      EvaluateSystem(run, MakeQrels(), {1, 2});
  EXPECT_EQ(eval.system, "bm25");
  ASSERT_EQ(eval.per_topic.size(), 2u);
  EXPECT_DOUBLE_EQ(eval.per_topic[0].ap, 1.0);
  EXPECT_DOUBLE_EQ(eval.per_topic[1].ap, 0.5);
  EXPECT_DOUBLE_EQ(eval.mean.ap, 0.75);
  EXPECT_EQ(eval.ApVector(), (std::vector<double>{1.0, 0.5}));
}

TEST(EvaluateSystemTest, MissingTopicCountsAsEmptyRun) {
  SystemRun run;
  run.system = "partial";
  run.runs[1] = ResultList({{1, 2.0}, {2, 1.0}});
  const SystemEvaluation eval =
      EvaluateSystem(run, MakeQrels(), {1, 2});
  EXPECT_DOUBLE_EQ(eval.per_topic[1].ap, 0.0);
  EXPECT_DOUBLE_EQ(eval.mean.ap, 0.5);
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"system", "map"});
  table.AddRow({"baseline", "0.1234"});
  table.AddRow({"adaptive", "0.2345"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("system"), std::string::npos);
  EXPECT_NE(out.find("baseline"), std::string::npos);
  EXPECT_NE(out.find("0.2345"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"only"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(FormatMetricTest, FourDecimals) {
  EXPECT_EQ(FormatMetric(0.5), "0.5000");
  EXPECT_EQ(FormatMetric(0.123456), "0.1235");
}

TEST(FormatRelativeChangeTest, SignedPercent) {
  EXPECT_EQ(FormatRelativeChange(0.62, 0.5), "+24.0%");
  EXPECT_EQ(FormatRelativeChange(0.4, 0.5), "-20.0%");
  EXPECT_EQ(FormatRelativeChange(0.5, 0.5), "+0.0%");
  EXPECT_EQ(FormatRelativeChange(0.5, 0.0), "n/a");
}

}  // namespace
}  // namespace ivr
