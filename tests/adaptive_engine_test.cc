#include "ivr/adaptive/adaptive_engine.h"

#include <gtest/gtest.h>

#include "ivr/eval/metrics.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

class AdaptiveEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 31;
    options.num_topics = 6;
    options.num_videos = 10;
    // Hard ASR conditions: text retrieval alone leaves headroom for
    // feedback to exploit.
    options.asr_word_error_rate = 0.45;
    options.general_word_prob = 0.6;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection).value();
  }

  // Feeds positive interactions on `shots` into the backend. Each
  // engagement is closed by a query event so dwell windows stay bounded.
  void Engage(AdaptiveEngine* adaptive, const std::vector<ShotId>& shots,
              TimeMs start = 0) {
    TimeMs t = start;
    for (ShotId shot : shots) {
      InteractionEvent click;
      click.time = t;
      click.type = EventType::kClickKeyframe;
      click.shot = shot;
      adaptive->ObserveEvent(click);
      InteractionEvent play;
      play.time = t + 1000;
      play.type = EventType::kPlayStop;
      play.value = 20000.0;  // longer than any shot: fraction caps at 1
      play.shot = shot;
      adaptive->ObserveEvent(play);
      InteractionEvent nav;
      nav.time = t + 2000;
      nav.type = EventType::kQuerySubmit;
      nav.text = "next";
      adaptive->ObserveEvent(nav);
      t += 5000;
    }
  }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> engine_;
};

TEST_F(AdaptiveEngineTest, PassthroughMatchesBaseEngine) {
  AdaptiveOptions options;
  options.use_implicit = false;
  options.use_profile = false;
  AdaptiveEngine adaptive(*engine_, options, nullptr);
  Query query;
  query.text = generated_->topics.topics[0].title;
  const ResultList base = engine_->Search(query, 50);
  const ResultList adapted = adaptive.Search(query, 50);
  ASSERT_EQ(base.size(), adapted.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base.at(i).shot, adapted.at(i).shot);
  }
}

TEST_F(AdaptiveEngineTest, ImplicitFeedbackImprovesAp) {
  const SearchTopic& topic = generated_->topics.topics[0];
  Query query;
  query.text = topic.title;

  AdaptiveOptions options;
  options.use_implicit = true;
  AdaptiveEngine adaptive(*engine_, options, nullptr);
  adaptive.BeginSession();

  const ResultList before = adaptive.Search(query, 1000);
  const double ap_before =
      AveragePrecision(before, generated_->qrels, topic.id);

  // The user engages with three truly relevant shots.
  const std::vector<ShotId> relevant =
      generated_->qrels.RelevantShots(topic.id, 2);
  ASSERT_GE(relevant.size(), 3u);
  Engage(&adaptive, {relevant[0], relevant[1], relevant[2]});

  const ResultList after = adaptive.Search(query, 1000);
  const double ap_after =
      AveragePrecision(after, generated_->qrels, topic.id);
  EXPECT_GT(ap_after, ap_before);
}

TEST_F(AdaptiveEngineTest, BeginSessionClearsFeedback) {
  const SearchTopic& topic = generated_->topics.topics[0];
  Query query;
  query.text = topic.title;
  AdaptiveEngine adaptive(*engine_, AdaptiveOptions(), nullptr);
  adaptive.BeginSession();
  const ResultList clean = adaptive.Search(query, 50);

  const std::vector<ShotId> relevant =
      generated_->qrels.RelevantShots(topic.id, 2);
  Engage(&adaptive, {relevant[0], relevant[1]});
  EXPECT_FALSE(adaptive.session_events().empty());
  EXPECT_FALSE(adaptive.CurrentEvidence().empty());

  adaptive.BeginSession();
  EXPECT_TRUE(adaptive.session_events().empty());
  EXPECT_TRUE(adaptive.CurrentEvidence().empty());
  const ResultList again = adaptive.Search(query, 50);
  ASSERT_EQ(clean.size(), again.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean.at(i).shot, again.at(i).shot);
  }
}

TEST_F(AdaptiveEngineTest, ProfileRerankingBoostsPreferredTopic) {
  // Profile loves topic 1; query for topic 0's vocabulary would normally
  // rank topic-0 shots on top. With profile reranking at high lambda, the
  // user's preferred shots that still match text move up.
  UserProfile profile("fan");
  profile.SetInterest(generated_->topics.topics[1].target_topic, 1.0);

  AdaptiveOptions options;
  options.use_implicit = false;
  options.use_profile = true;
  options.profile_lambda = 0.9;
  AdaptiveEngine adaptive(*engine_, options, &profile);

  Query query;
  query.text = generated_->topics.topics[0].title + " " +
               generated_->topics.topics[1].title;
  const ResultList plain = engine_->Search(query, 50);
  const ResultList personalised = adaptive.Search(query, 50);

  // Count preferred-topic shots in the top 10 of each.
  auto count_preferred = [&](const ResultList& list) {
    size_t n = 0;
    for (size_t i = 0; i < std::min<size_t>(10, list.size()); ++i) {
      const Shot* shot =
          generated_->collection.shot(list.at(i).shot).value();
      if (shot->primary_topic ==
          generated_->topics.topics[1].target_topic) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_GE(count_preferred(personalised), count_preferred(plain));
}

TEST_F(AdaptiveEngineTest, OstensiveOptionChangesEvidence) {
  const SearchTopic& topic = generated_->topics.topics[0];
  const std::vector<ShotId> relevant =
      generated_->qrels.RelevantShots(topic.id, 2);
  ASSERT_GE(relevant.size(), 2u);

  AdaptiveOptions plain;
  plain.use_ostensive = false;
  AdaptiveOptions decayed;
  decayed.use_ostensive = true;
  decayed.ostensive_half_life_ms = kMillisPerMinute;

  AdaptiveEngine a(*engine_, plain, nullptr);
  AdaptiveEngine b(*engine_, decayed, nullptr);
  for (AdaptiveEngine* e : {&a, &b}) {
    Engage(e, {relevant[0]}, /*start=*/0);
    Engage(e, {relevant[1]}, /*start=*/10 * kMillisPerMinute);
  }
  const auto ev_a = a.CurrentEvidence();
  const auto ev_b = b.CurrentEvidence();
  ASSERT_EQ(ev_a.size(), 2u);
  ASSERT_EQ(ev_b.size(), 2u);
  // Without decay both shots weigh the same; with decay the old one is
  // discounted.
  EXPECT_NEAR(ev_a[0].weight, ev_a[1].weight, 1e-9);
  const double old_w =
      ev_b[0].shot == relevant[0] ? ev_b[0].weight : ev_b[1].weight;
  const double new_w =
      ev_b[0].shot == relevant[0] ? ev_b[1].weight : ev_b[0].weight;
  EXPECT_LT(old_w, new_w);
}

TEST_F(AdaptiveEngineTest, InjectedSchemeUsed) {
  AdaptiveEngine adaptive(*engine_, AdaptiveOptions(), nullptr);
  const BinaryWeighting binary;
  adaptive.SetWeightingScheme(&binary);
  InteractionEvent ev;
  ev.type = EventType::kClickKeyframe;
  ev.shot = 0;
  adaptive.ObserveEvent(ev);
  const auto evidence = adaptive.CurrentEvidence();
  ASSERT_EQ(evidence.size(), 1u);
  EXPECT_DOUBLE_EQ(evidence[0].weight, 1.0);  // binary scheme signature
  adaptive.SetWeightingScheme(nullptr);       // ignored
  EXPECT_DOUBLE_EQ(adaptive.CurrentEvidence()[0].weight, 1.0);
}

TEST_F(AdaptiveEngineTest, NameReflectsConfiguration) {
  AdaptiveOptions options;
  options.use_implicit = true;
  options.use_profile = true;
  options.use_ostensive = true;
  UserProfile profile("u");
  AdaptiveEngine adaptive(*engine_, options, &profile);
  const std::string name = adaptive.name();
  EXPECT_NE(name.find("implicit"), std::string::npos);
  EXPECT_NE(name.find("profile"), std::string::npos);
  EXPECT_NE(name.find("ostensive"), std::string::npos);

  AdaptiveOptions off;
  off.use_implicit = false;
  off.use_profile = false;
  AdaptiveEngine passthrough(*engine_, off, nullptr);
  EXPECT_NE(passthrough.name().find("passthrough"), std::string::npos);
}

TEST_F(AdaptiveEngineTest, UnknownSchemeNameFallsBackToLinear) {
  AdaptiveOptions options;
  options.weighting_scheme = "no-such-scheme";
  AdaptiveEngine adaptive(*engine_, options, nullptr);
  EXPECT_NE(adaptive.name().find("linear"), std::string::npos);
}

TEST_F(AdaptiveEngineTest, EmptyQueryStillEmpty) {
  AdaptiveEngine adaptive(*engine_, AdaptiveOptions(), nullptr);
  EXPECT_TRUE(adaptive.Search(Query(), 10).empty());
}

}  // namespace
}  // namespace ivr
