#include "ivr/adaptive/adaptive_engine.h"

#include <gtest/gtest.h>

#include "ivr/eval/metrics.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

class AdaptiveEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorOptions options;
    options.seed = 31;
    options.num_topics = 6;
    options.num_videos = 10;
    // Hard ASR conditions: text retrieval alone leaves headroom for
    // feedback to exploit.
    options.asr_word_error_rate = 0.45;
    options.general_word_prob = 0.6;
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection).value();
  }

  // Feeds positive interactions on `shots` into the backend. Each
  // engagement is closed by a query event so dwell windows stay bounded.
  void Engage(AdaptiveEngine* adaptive, const std::vector<ShotId>& shots,
              TimeMs start = 0) {
    TimeMs t = start;
    for (ShotId shot : shots) {
      InteractionEvent click;
      click.time = t;
      click.type = EventType::kClickKeyframe;
      click.shot = shot;
      adaptive->ObserveEvent(click);
      InteractionEvent play;
      play.time = t + 1000;
      play.type = EventType::kPlayStop;
      play.value = 20000.0;  // longer than any shot: fraction caps at 1
      play.shot = shot;
      adaptive->ObserveEvent(play);
      InteractionEvent nav;
      nav.time = t + 2000;
      nav.type = EventType::kQuerySubmit;
      nav.text = "next";
      adaptive->ObserveEvent(nav);
      t += 5000;
    }
  }

  std::unique_ptr<GeneratedCollection> generated_;
  std::unique_ptr<RetrievalEngine> engine_;
};

TEST_F(AdaptiveEngineTest, PassthroughMatchesBaseEngine) {
  AdaptiveOptions options;
  options.use_implicit = false;
  options.use_profile = false;
  AdaptiveEngine adaptive(*engine_, options, nullptr);
  Query query;
  query.text = generated_->topics.topics[0].title;
  const ResultList base = engine_->Search(query, 50);
  const ResultList adapted = adaptive.Search(query, 50);
  ASSERT_EQ(base.size(), adapted.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base.at(i).shot, adapted.at(i).shot);
  }
}

TEST_F(AdaptiveEngineTest, ImplicitFeedbackImprovesAp) {
  const SearchTopic& topic = generated_->topics.topics[0];
  Query query;
  query.text = topic.title;

  AdaptiveOptions options;
  options.use_implicit = true;
  AdaptiveEngine adaptive(*engine_, options, nullptr);
  adaptive.BeginSession();

  const ResultList before = adaptive.Search(query, 1000);
  const double ap_before =
      AveragePrecision(before, generated_->qrels, topic.id);

  // The user engages with three truly relevant shots.
  const std::vector<ShotId> relevant =
      generated_->qrels.RelevantShots(topic.id, 2);
  ASSERT_GE(relevant.size(), 3u);
  Engage(&adaptive, {relevant[0], relevant[1], relevant[2]});

  const ResultList after = adaptive.Search(query, 1000);
  const double ap_after =
      AveragePrecision(after, generated_->qrels, topic.id);
  EXPECT_GT(ap_after, ap_before);
}

TEST_F(AdaptiveEngineTest, BeginSessionClearsFeedback) {
  const SearchTopic& topic = generated_->topics.topics[0];
  Query query;
  query.text = topic.title;
  AdaptiveEngine adaptive(*engine_, AdaptiveOptions(), nullptr);
  adaptive.BeginSession();
  const ResultList clean = adaptive.Search(query, 50);

  const std::vector<ShotId> relevant =
      generated_->qrels.RelevantShots(topic.id, 2);
  Engage(&adaptive, {relevant[0], relevant[1]});
  EXPECT_FALSE(adaptive.session_events().empty());
  EXPECT_FALSE(adaptive.CurrentEvidence().empty());

  adaptive.BeginSession();
  EXPECT_TRUE(adaptive.session_events().empty());
  EXPECT_TRUE(adaptive.CurrentEvidence().empty());
  const ResultList again = adaptive.Search(query, 50);
  ASSERT_EQ(clean.size(), again.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean.at(i).shot, again.at(i).shot);
  }
}

TEST_F(AdaptiveEngineTest, ProfileRerankingBoostsPreferredTopic) {
  // Profile loves topic 1; query for topic 0's vocabulary would normally
  // rank topic-0 shots on top. With profile reranking at high lambda, the
  // user's preferred shots that still match text move up.
  UserProfile profile("fan");
  profile.SetInterest(generated_->topics.topics[1].target_topic, 1.0);

  AdaptiveOptions options;
  options.use_implicit = false;
  options.use_profile = true;
  options.profile_lambda = 0.9;
  AdaptiveEngine adaptive(*engine_, options, &profile);

  Query query;
  query.text = generated_->topics.topics[0].title + " " +
               generated_->topics.topics[1].title;
  const ResultList plain = engine_->Search(query, 50);
  const ResultList personalised = adaptive.Search(query, 50);

  // Count preferred-topic shots in the top 10 of each.
  auto count_preferred = [&](const ResultList& list) {
    size_t n = 0;
    for (size_t i = 0; i < std::min<size_t>(10, list.size()); ++i) {
      const Shot* shot =
          generated_->collection.shot(list.at(i).shot).value();
      if (shot->primary_topic ==
          generated_->topics.topics[1].target_topic) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_GE(count_preferred(personalised), count_preferred(plain));
}

TEST_F(AdaptiveEngineTest, OstensiveOptionChangesEvidence) {
  const SearchTopic& topic = generated_->topics.topics[0];
  const std::vector<ShotId> relevant =
      generated_->qrels.RelevantShots(topic.id, 2);
  ASSERT_GE(relevant.size(), 2u);

  AdaptiveOptions plain;
  plain.use_ostensive = false;
  AdaptiveOptions decayed;
  decayed.use_ostensive = true;
  decayed.ostensive_half_life_ms = kMillisPerMinute;

  AdaptiveEngine a(*engine_, plain, nullptr);
  AdaptiveEngine b(*engine_, decayed, nullptr);
  for (AdaptiveEngine* e : {&a, &b}) {
    Engage(e, {relevant[0]}, /*start=*/0);
    Engage(e, {relevant[1]}, /*start=*/10 * kMillisPerMinute);
  }
  const auto ev_a = a.CurrentEvidence();
  const auto ev_b = b.CurrentEvidence();
  ASSERT_EQ(ev_a.size(), 2u);
  ASSERT_EQ(ev_b.size(), 2u);
  // Without decay both shots weigh the same; with decay the old one is
  // discounted.
  EXPECT_NEAR(ev_a[0].weight, ev_a[1].weight, 1e-9);
  const double old_w =
      ev_b[0].shot == relevant[0] ? ev_b[0].weight : ev_b[1].weight;
  const double new_w =
      ev_b[0].shot == relevant[0] ? ev_b[1].weight : ev_b[0].weight;
  EXPECT_LT(old_w, new_w);
}

TEST_F(AdaptiveEngineTest, InjectedSchemeUsed) {
  AdaptiveEngine adaptive(*engine_, AdaptiveOptions(), nullptr);
  const BinaryWeighting binary;
  adaptive.SetWeightingScheme(&binary);
  InteractionEvent ev;
  ev.type = EventType::kClickKeyframe;
  ev.shot = 0;
  adaptive.ObserveEvent(ev);
  const auto evidence = adaptive.CurrentEvidence();
  ASSERT_EQ(evidence.size(), 1u);
  EXPECT_DOUBLE_EQ(evidence[0].weight, 1.0);  // binary scheme signature
  adaptive.SetWeightingScheme(nullptr);       // ignored
  EXPECT_DOUBLE_EQ(adaptive.CurrentEvidence()[0].weight, 1.0);
}

TEST_F(AdaptiveEngineTest, NameReflectsConfiguration) {
  AdaptiveOptions options;
  options.use_implicit = true;
  options.use_profile = true;
  options.use_ostensive = true;
  UserProfile profile("u");
  AdaptiveEngine adaptive(*engine_, options, &profile);
  const std::string name = adaptive.name();
  EXPECT_NE(name.find("implicit"), std::string::npos);
  EXPECT_NE(name.find("profile"), std::string::npos);
  EXPECT_NE(name.find("ostensive"), std::string::npos);

  AdaptiveOptions off;
  off.use_implicit = false;
  off.use_profile = false;
  AdaptiveEngine passthrough(*engine_, off, nullptr);
  EXPECT_NE(passthrough.name().find("passthrough"), std::string::npos);
}

TEST_F(AdaptiveEngineTest, UnknownSchemeNameFallsBackToLinear) {
  AdaptiveOptions options;
  options.weighting_scheme = "no-such-scheme";
  AdaptiveEngine adaptive(*engine_, options, nullptr);
  EXPECT_NE(adaptive.name().find("linear"), std::string::npos);
}

TEST_F(AdaptiveEngineTest, EmptyQueryStillEmpty) {
  AdaptiveEngine adaptive(*engine_, AdaptiveOptions(), nullptr);
  EXPECT_TRUE(adaptive.Search(Query(), 10).empty());
}

// --- the stateless context-taking API of the multi-session refactor ---

TEST_F(AdaptiveEngineTest, ContextApiMatchesAdapter) {
  const SearchTopic& topic = generated_->topics.topics[0];
  Query query;
  query.text = topic.title;
  const std::vector<ShotId> relevant =
      generated_->qrels.RelevantShots(topic.id, 2);
  ASSERT_GE(relevant.size(), 2u);

  // Drive the same session once through the classic adapter and once
  // through an explicit context; rankings must match exactly.
  AdaptiveEngine adapter(*engine_, AdaptiveOptions(), nullptr);
  adapter.BeginSession();
  Engage(&adapter, {relevant[0], relevant[1]});
  const ResultList via_adapter = adapter.Search(query, 100);

  const AdaptiveEngine stateless(*engine_, AdaptiveOptions(), nullptr);
  SessionContext ctx = stateless.MakeContext("s1", "u1");
  for (const InteractionEvent& event : adapter.session_events()) {
    stateless.ObserveEvent(&ctx, event);
  }
  const ResultList via_context = stateless.Search(&ctx, query, 100);

  ASSERT_EQ(via_adapter.size(), via_context.size());
  for (size_t i = 0; i < via_adapter.size(); ++i) {
    EXPECT_EQ(via_adapter.at(i).shot, via_context.at(i).shot);
    EXPECT_DOUBLE_EQ(via_adapter.at(i).score, via_context.at(i).score);
  }
}

TEST_F(AdaptiveEngineTest, ContextsAreIndependent) {
  const SearchTopic& topic = generated_->topics.topics[0];
  Query query;
  query.text = topic.title;
  const std::vector<ShotId> relevant =
      generated_->qrels.RelevantShots(topic.id, 2);
  ASSERT_GE(relevant.size(), 1u);

  const AdaptiveEngine engine(*engine_, AdaptiveOptions(), nullptr);
  SessionContext engaged = engine.MakeContext("s1", "u1");
  SessionContext fresh = engine.MakeContext("s2", "u2");

  InteractionEvent click;
  click.type = EventType::kClickKeyframe;
  click.shot = relevant[0];
  engine.ObserveEvent(&engaged, click);

  // Feedback in one context must not leak into the other: the fresh
  // context still matches the bare engine.
  EXPECT_FALSE(engine.CurrentEvidence(engaged).empty());
  EXPECT_TRUE(engine.CurrentEvidence(fresh).empty());
  const ResultList base = engine_->Search(query, 50);
  const ResultList from_fresh = engine.Search(&fresh, query, 50);
  ASSERT_EQ(base.size(), from_fresh.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base.at(i).shot, from_fresh.at(i).shot);
  }
}

TEST_F(AdaptiveEngineTest, ProfileSnapshotCannotDangle) {
  // The legacy raw-pointer constructor copies the profile; mutating or
  // destroying the caller's object afterwards must not affect the engine.
  AdaptiveOptions options;
  options.use_implicit = false;
  options.use_profile = true;
  options.profile_lambda = 0.9;
  const TopicLabel preferred = generated_->topics.topics[1].target_topic;

  std::unique_ptr<AdaptiveEngine> adaptive;
  {
    UserProfile profile("fan");
    profile.SetInterest(preferred, 1.0);
    adaptive = std::make_unique<AdaptiveEngine>(*engine_, options,
                                                &profile);
    profile.SetInterest(preferred, 0.0);  // snapshot must not see this
  }  // profile destroyed
  ASSERT_NE(adaptive->default_profile(), nullptr);
  EXPECT_DOUBLE_EQ(adaptive->default_profile()->Interest(preferred), 1.0);
}

TEST_F(AdaptiveEngineTest, StrayObserveEventLazilyOpensWithWarning) {
  AdaptiveEngine adaptive(*engine_, AdaptiveOptions(), nullptr);
  EXPECT_EQ(adaptive.implicit_session_opens(), 0u);
  InteractionEvent click;
  click.type = EventType::kClickKeyframe;
  click.shot = 0;
  adaptive.ObserveEvent(click);  // no BeginSession first
  EXPECT_EQ(adaptive.implicit_session_opens(), 1u);
  EXPECT_TRUE(adaptive.bound_context().open);
  // The stray event is kept (legacy callers relied on it).
  ASSERT_EQ(adaptive.session_events().size(), 1u);
  // A subsequent event does not re-open.
  adaptive.ObserveEvent(click);
  EXPECT_EQ(adaptive.implicit_session_opens(), 1u);
  EXPECT_EQ(adaptive.session_events().size(), 2u);
}

TEST_F(AdaptiveEngineTest, ContextProfileOverridesEngineDefault) {
  AdaptiveOptions options;
  options.use_implicit = false;
  options.use_profile = true;
  options.profile_lambda = 0.9;
  const AdaptiveEngine engine(*engine_, options, nullptr);

  auto profile = std::make_shared<UserProfile>("fan");
  profile->SetInterest(generated_->topics.topics[1].target_topic, 1.0);

  Query query;
  query.text = generated_->topics.topics[0].title + " " +
               generated_->topics.topics[1].title;
  SessionContext with_profile = engine.MakeContext("s1", "fan");
  with_profile.profile = profile;
  SessionContext without = engine.MakeContext("s2", "other");

  // A context without a profile reports profiles unavailable under
  // use_profile; the bound one is healthy.
  EXPECT_FALSE(engine.Health(without).profile_available);
  EXPECT_TRUE(engine.Health(with_profile).profile_available);

  const ResultList personalised =
      engine.Search(&with_profile, query, 50);
  const ResultList plain = engine.Search(&without, query, 50);
  auto count_preferred = [&](const ResultList& list) {
    size_t n = 0;
    for (size_t i = 0; i < std::min<size_t>(10, list.size()); ++i) {
      const Shot* shot =
          generated_->collection.shot(list.at(i).shot).value();
      if (shot->primary_topic ==
          generated_->topics.topics[1].target_topic) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_GE(count_preferred(personalised), count_preferred(plain));
}

}  // namespace
}  // namespace ivr
