// Phase-barrier semantics and the determinism contract of the workload
// orchestrator: no actor enters phase N+1 before every actor has finished
// phase N, a (workload, seed) pair reproduces the same summary and
// bit-identical rankings across runs and against the sequential reference,
// and the closed-loop path serves exactly what ivr_serve_sim's inline
// driver serves. Also exercises the chaos-phase and ingest-writes paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/core/string_util.h"
#include "ivr/iface/session_log.h"
#include "ivr/retrieval/engine.h"
#include "ivr/service/managed_backend.h"
#include "ivr/service/session_manager.h"
#include "ivr/sim/simulator.h"
#include "ivr/video/generator.h"
#include "ivr/workload/orchestrator.h"
#include "ivr/workload/spec.h"

namespace ivr {
namespace workload {
namespace {

GeneratedCollection TestCollection() {
  GeneratorOptions options;
  options.seed = 77;
  options.num_videos = 10;
  options.num_topics = 5;
  return GenerateCollection(options).value();
}

WorkloadSpec MustParse(const std::string& json) {
  Result<WorkloadSpec> spec = ParseWorkload(json);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return std::move(spec).value();
}

Result<RunArtifacts> RunSpec(const WorkloadSpec& spec,
                             OrchestratorConfig config) {
  config.collection = TestCollection();
  Orchestrator orchestrator(spec, std::move(config));
  return orchestrator.Run();
}

const char* kTwoPhaseDoc = R"({
  "name": "two_phase", "seed": 5, "cache": {"mb": 4},
  "phases": [
    {"name": "warm", "mode": "closed", "actors": 3, "sessions": 6,
     "session_mix": [{"user": "novice", "weight": 2},
                     {"user": "expert", "weight": 1}]},
    {"name": "surge", "mode": "open", "actors": 3, "duration_ms": 150,
     "rate": 120, "k": 5},
    {"name": "cool", "mode": "closed", "actors": 2, "sessions": 4,
     "env": "tv"}
  ]
})";

TEST(WorkloadOrchestratorTest, BarrierKeepsPhasesDisjoint) {
  const WorkloadSpec spec = MustParse(kTwoPhaseDoc);

  // Record every observer callback in global order; the barrier contract
  // is that all (p, exit) events precede every (p+1, enter) event.
  std::mutex mu;
  std::vector<std::pair<size_t, bool>> events;  // (phase, entering)
  OrchestratorConfig config;
  config.phase_observer = [&](size_t phase, size_t actor, bool entering) {
    (void)actor;
    std::lock_guard<std::mutex> lock(mu);
    events.emplace_back(phase, entering);
  };
  const Result<RunArtifacts> run = RunSpec(spec, std::move(config));
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  size_t max_exit_of_prev = 0;
  for (size_t p = 1; p < spec.phases.size(); ++p) {
    size_t last_exit = 0;
    size_t first_enter = events.size();
    for (size_t i = 0; i < events.size(); ++i) {
      if (events[i].first == p - 1 && !events[i].second) last_exit = i;
      if (events[i].first == p && events[i].second) {
        first_enter = std::min(first_enter, i);
      }
    }
    EXPECT_LT(last_exit, first_enter)
        << "an actor entered phase " << p
        << " before every actor left phase " << p - 1;
    max_exit_of_prev = last_exit;
  }
  (void)max_exit_of_prev;
  // Every phase has enter and exit events for each participating actor.
  for (size_t p = 0; p < spec.phases.size(); ++p) {
    size_t enters = 0;
    size_t exits = 0;
    for (const auto& [phase, entering] : events) {
      if (phase != p) continue;
      entering ? ++enters : ++exits;
    }
    EXPECT_EQ(enters, exits) << "phase " << p;
    EXPECT_GE(enters, spec.phases[p].actors) << "phase " << p;
  }
}

TEST(WorkloadOrchestratorTest, DeterministicBySeed) {
  const WorkloadSpec spec = MustParse(kTwoPhaseDoc);
  const Result<RunArtifacts> first = RunSpec(spec, {});
  const Result<RunArtifacts> second = RunSpec(spec, {});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first->RankingsText(), second->RankingsText());
  ASSERT_EQ(first->report.phases.size(), second->report.phases.size());
  for (size_t p = 0; p < first->report.phases.size(); ++p) {
    EXPECT_EQ(first->report.phases[p].planned_ops,
              second->report.phases[p].planned_ops);
    EXPECT_EQ(first->report.phases[p].ops, second->report.phases[p].ops);
  }

  WorkloadSpec reseeded = spec;
  reseeded.seed = 6;
  const Result<RunArtifacts> other = RunSpec(reseeded, {});
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  EXPECT_NE(first->RankingsText(), other->RankingsText());
}

TEST(WorkloadOrchestratorTest, ConcurrentMatchesSequentialBitForBit) {
  const WorkloadSpec spec = MustParse(kTwoPhaseDoc);
  ASSERT_TRUE(CheckableSpec(spec).ok());

  const Result<RunArtifacts> concurrent = RunSpec(spec, {});
  OrchestratorConfig sequential_config;
  sequential_config.sequential = true;
  const Result<RunArtifacts> sequential =
      RunSpec(spec, std::move(sequential_config));
  ASSERT_TRUE(concurrent.ok()) << concurrent.status().ToString();
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

  ASSERT_EQ(concurrent->sessions.size(), sequential->sessions.size());
  for (size_t j = 0; j < concurrent->sessions.size(); ++j) {
    EXPECT_EQ(concurrent->sessions[j].signature,
              sequential->sessions[j].signature)
        << "session " << j;
  }
  EXPECT_EQ(concurrent->RankingsText(), sequential->RankingsText());
}

TEST(WorkloadOrchestratorTest, CheckableSpecRejectsInterleavingDependence) {
  WorkloadSpec evicting = MustParse(kTwoPhaseDoc);
  evicting.service.max_sessions = 2;
  EXPECT_FALSE(CheckableSpec(evicting).ok());

  const WorkloadSpec chaos = MustParse(
      R"({"name": "c", "phases": [
            {"name": "p", "mode": "closed", "sessions": 2,
             "fault_spec": "engine.visual:0.5"}]})");
  EXPECT_FALSE(CheckableSpec(chaos).ok());
}

// The E-S1 equivalence half of the acceptance contract, in process: the
// orchestrator's closed-loop phase serves byte-identical sessions to the
// serve_sim driver shape (same seeds, session ids, user rotation, topic
// assignment). The tools_pipeline leg proves the same via cmp(1) on the
// two binaries' --rankings dumps.
TEST(WorkloadOrchestratorTest, ClosedPhaseMatchesServeSimDriver) {
  const WorkloadSpec spec = MustParse(
      R"({"name": "smoke", "seed": 1, "phases": [
            {"name": "serve", "mode": "closed", "actors": 2,
             "sessions": 6}]})");
  const Result<RunArtifacts> run = RunSpec(spec, {});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->sessions.size(), 6u);

  // Inline serve_sim reference: sequential, same collection, same seeds.
  const GeneratedCollection g = TestCollection();
  auto engine = RetrievalEngine::Build(g.collection).value();
  AdaptiveOptions adaptive_options;
  const AdaptiveEngine adaptive(*engine, adaptive_options, nullptr);
  SessionManager manager(adaptive, SessionManagerOptions{});
  const SessionSimulator simulator(g.collection, g.qrels);
  const UserModel user = NoviceUser();
  for (size_t j = 0; j < 6; ++j) {
    const SearchTopic& topic =
        g.topics.topics[j % g.topics.topics.size()];
    SessionSimulator::RunConfig config;
    config.environment = Environment::kDesktop;
    config.seed = spec.seed + j * 131;
    config.session_id = StrFormat("serve-s%zu", j);
    config.user_id = user.name + std::to_string(j % 4);
    ManagedSessionBackend backend(&manager, config.session_id,
                                  config.user_id, 0);
    Result<SimulatedSession> session =
        simulator.Run(&backend, topic, user, config, nullptr);
    (void)backend.EndSession();
    ASSERT_TRUE(session.ok()) << session.status().ToString();

    std::string signature;
    for (const InteractionEvent& event : session->events) {
      signature += SessionLog::EventToLine(event);
      signature += "\n";
    }
    for (const ResultList& results : session->outcome.per_query_results) {
      for (const RankedShot& entry : results.items()) {
        signature += StrFormat("%u:%.17g ", entry.shot, entry.score);
      }
      signature += "\n";
    }
    EXPECT_EQ(run->sessions[j].signature, signature) << "session " << j;
  }
}

TEST(WorkloadOrchestratorTest, ChaosPhaseDegradesWithoutFailingTheRun) {
  const WorkloadSpec spec = MustParse(
      R"({"name": "chaos", "seed": 5, "phases": [
            {"name": "steady", "mode": "closed", "actors": 2,
             "sessions": 4},
            {"name": "chaos", "mode": "closed", "actors": 2, "sessions": 4,
             "fault_spec": "engine.visual:0.3,adaptive.feedback:0.2",
             "fault_seed": 42}]})");
  const Result<RunArtifacts> run = RunSpec(spec, {});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->report.phases.size(), 2u);
  for (const PhaseResult& phase : run->report.phases) {
    EXPECT_EQ(phase.ops + phase.failures, phase.planned_ops) << phase.name;
  }
}

TEST(WorkloadOrchestratorTest, IngestWritesAppendAndPublish) {
  const WorkloadSpec spec = MustParse(
      R"({"name": "soak", "seed": 3,
          "ingest": {"stream_seed": 7, "stream_videos": 4,
                     "stream_topics": 4, "publish_every": 2},
          "phases": [
            {"name": "soak", "mode": "open", "actors": 2,
             "duration_ms": 400, "rate": 60, "k": 5,
             "writes": {"rate": 20, "publish_every": 2}}]})");
  OrchestratorConfig config;
  config.ingest_dir = ::testing::TempDir() + "/workload_ingest";
  const Result<RunArtifacts> run = RunSpec(spec, std::move(config));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->report.phases.size(), 1u);
  const PhaseResult& soak = run->report.phases[0];
  EXPECT_GT(soak.appends, 0u);
  EXPECT_GT(soak.publishes, 0u);
  EXPECT_GT(soak.ops, 0u);
}

TEST(WorkloadOrchestratorTest, IngestSpecWithoutDirIsASetupError) {
  const WorkloadSpec spec = MustParse(
      R"({"name": "soak", "ingest": {},
          "phases": [{"name": "p", "mode": "closed", "sessions": 1}]})");
  const Result<RunArtifacts> run = RunSpec(spec, {});
  EXPECT_FALSE(run.ok());
}

TEST(WorkloadOrchestratorTest, ReportJsonCarriesEveryPhase) {
  const WorkloadSpec spec = MustParse(kTwoPhaseDoc);
  const Result<RunArtifacts> run = RunSpec(spec, {});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const std::string json = run->report.ToJson();
  EXPECT_NE(json.find("\"type\": \"ivr.workload\""), std::string::npos);
  for (const PhaseSpec& phase : spec.phases) {
    EXPECT_NE(json.find("\"" + phase.name + "\""), std::string::npos)
        << phase.name;
  }
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
}

}  // namespace
}  // namespace workload
}  // namespace ivr
