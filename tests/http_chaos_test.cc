// Socket-level chaos tier for the HTTP front-end: slow-loris feeds, torn
// requests, abrupt disconnects, oversized headers, and injected faults on
// the accept/read/write paths. The server must never crash, never lose a
// session that was opened before the chaos, answer garbage with the right
// 4xx, and keep its health accounting consistent.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/string_util.h"
#include "ivr/net/http_client.h"
#include "ivr/net/http_server.h"
#include "ivr/net/json.h"
#include "ivr/net/service_handler.h"
#include "ivr/retrieval/engine.h"
#include "ivr/service/session_manager.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace net {
namespace {

class HttpChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorOptions options;
    options.seed = 2008;
    options.num_videos = 8;
    options.num_topics = 5;
    generated_ =
        new GeneratedCollection(GenerateCollection(options).value());
    engine_ = RetrievalEngine::Build(generated_->collection)
                  .value()
                  .release();
    adaptive_ = new AdaptiveEngine(*engine_, AdaptiveOptions(), nullptr);
  }

  void SetUp() override {
    manager_ = std::make_unique<SessionManager>(*adaptive_,
                                                SessionManagerOptions());
    handler_ = std::make_unique<ServiceHandler>(manager_.get());
  }

  void StartServer(HttpServerOptions options) {
    if (server_ != nullptr) server_->Stop();
    server_ = std::make_unique<HttpServer>(
        std::move(options), [this](const HttpRequest& request) {
          return handler_->Handle(request);
        });
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    FaultInjector::Global().Disable();
    if (server_ != nullptr) server_->Stop();
  }

  HttpClient Connected() {
    HttpClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  /// The liveness probe every scenario ends with: a fresh connection must
  /// still be served. Call only with fault injection disabled.
  void ExpectServerAlive() {
    HttpClient client = Connected();
    const Result<HttpClientResponse> response = client.Get("/healthz");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
  }

  std::string SearchBody(const std::string& session_id) const {
    const auto& topics = generated_->topics.topics;
    return StrFormat("{\"session_id\": %s, \"query\": {\"text\": %s}}",
                     JsonQuote(session_id).c_str(),
                     JsonQuote(topics[0].title).c_str());
  }

  static GeneratedCollection* generated_;
  static RetrievalEngine* engine_;
  static AdaptiveEngine* adaptive_;
  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<ServiceHandler> handler_;
  std::unique_ptr<HttpServer> server_;
};

GeneratedCollection* HttpChaosTest::generated_ = nullptr;
RetrievalEngine* HttpChaosTest::engine_ = nullptr;
AdaptiveEngine* HttpChaosTest::adaptive_ = nullptr;

TEST_F(HttpChaosTest, SlowLorisRequestIsStillServed) {
  StartServer(HttpServerOptions());
  HttpClient client = Connected();
  const std::string wire = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  for (char c : wire) {
    ASSERT_TRUE(client.SendRaw(std::string_view(&c, 1)).ok());
  }
  const Result<HttpClientResponse> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
}

TEST_F(HttpChaosTest, StalledConnectionIsReapedByIdleTimeout) {
  HttpServerOptions options;
  options.idle_timeout_ms = 100;
  StartServer(options);
  HttpClient client = Connected();
  // A loris that stalls after a few bytes: the sweep must reap it.
  ASSERT_TRUE(client.SendRaw("GET /hea").ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server_->stats().idle_closed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(server_->stats().idle_closed, 1u);
  EXPECT_EQ(server_->stats().connections_active, 0u);
  ExpectServerAlive();
}

TEST_F(HttpChaosTest, TornRequestThenAbruptCloseIsHarmless) {
  StartServer(HttpServerOptions());
  {
    HttpClient client = Connected();
    ASSERT_TRUE(client.SendRaw("POST /v1/search HTTP/1.1\r\n"
                               "Content-Length: 500\r\n\r\ntorn")
                    .ok());
    client.Close();  // mid-body
  }
  {
    HttpClient client = Connected();
    ASSERT_TRUE(client.SendRaw("GET /heal").ok());
    client.Close();  // mid-request-line
  }
  ExpectServerAlive();
}

TEST_F(HttpChaosTest, AbruptCloseWhileHandlerRunsDropsTheResponse) {
  StartServer(HttpServerOptions());
  ASSERT_EQ(Connected()
                .Post("/v1/session/open", "{\"session_id\": \"mid\"}")
                ->status,
            200);
  {
    HttpClient client = Connected();
    ASSERT_TRUE(client
                    .SendRaw(StrFormat(
                        "POST /v1/search HTTP/1.1\r\n"
                        "Content-Length: %zu\r\n\r\n%s",
                        SearchBody("mid").size(),
                        SearchBody("mid").c_str()))
                    .ok());
    client.Close();  // gone before the worker finishes
  }
  // The worker's completed response meets a dead connection id in the
  // mailbox and is dropped; nothing crashes and the session survives.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ExpectServerAlive();
  EXPECT_TRUE(manager_->Contains("mid"));
  EXPECT_EQ(Connected().Post("/v1/search", SearchBody("mid"))->status, 200);
}

TEST_F(HttpChaosTest, OversizedHeadersGet431) {
  HttpServerOptions options;
  options.limits.max_header_bytes = 256;
  StartServer(options);
  HttpClient client = Connected();
  std::string wire = "GET /healthz HTTP/1.1\r\n";
  for (int i = 0; i < 64; ++i) {
    wire += StrFormat("X-Flood-%d: %s\r\n", i,
                      std::string(32, 'a').c_str());
  }
  wire += "\r\n";
  ASSERT_TRUE(client.SendRaw(wire).ok());
  const Result<HttpClientResponse> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 431);
  EXPECT_GE(server_->stats().parse_errors, 1u);
  ExpectServerAlive();
}

TEST_F(HttpChaosTest, ChunkedUploadGets501) {
  StartServer(HttpServerOptions());
  HttpClient client = Connected();
  ASSERT_TRUE(client
                  .SendRaw("POST /v1/search HTTP/1.1\r\n"
                           "Transfer-Encoding: chunked\r\n\r\n"
                           "4\r\nbody\r\n0\r\n\r\n")
                  .ok());
  const Result<HttpClientResponse> response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 501);
  ExpectServerAlive();
}

TEST_F(HttpChaosTest, AcceptFaultsRefuseNewConnectionsThenRecover) {
  StartServer(HttpServerOptions());
  ASSERT_TRUE(
      FaultInjector::Global().Configure("net.accept:1.0", 7).ok());
  // The TCP handshake still completes (the kernel accepts), but the
  // server closes the connection immediately; the request dies.
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  EXPECT_FALSE(client.Get("/healthz").ok());
  EXPECT_GE(server_->stats().accept_faults, 1u);
  FaultInjector::Global().Disable();
  ExpectServerAlive();
}

TEST_F(HttpChaosTest, ReadFaultKillsTheConnectionNotTheServer) {
  StartServer(HttpServerOptions());
  ASSERT_EQ(Connected()
                .Post("/v1/session/open", "{\"session_id\": \"rf\"}")
                ->status,
            200);
  HttpClient client = Connected();  // accepted before the fault arms
  ASSERT_TRUE(
      FaultInjector::Global().Configure("net.read:1.0", 7).ok());
  ASSERT_TRUE(client.SendRaw("GET /healthz HTTP/1.1\r\n\r\n").ok());
  EXPECT_FALSE(client.ReadResponse().ok());
  EXPECT_GE(server_->stats().read_faults, 1u);
  FaultInjector::Global().Disable();
  ExpectServerAlive();
  EXPECT_TRUE(manager_->Contains("rf"));
  EXPECT_EQ(Connected().Post("/v1/search", SearchBody("rf"))->status, 200);
}

TEST_F(HttpChaosTest, WriteFaultMidResponseLosesNoSessionState) {
  StartServer(HttpServerOptions());
  ASSERT_EQ(Connected()
                .Post("/v1/session/open", "{\"session_id\": \"wf\"}")
                ->status,
            200);
  HttpClient client = Connected();
  ASSERT_TRUE(
      FaultInjector::Global().Configure("net.write:1.0", 7).ok());
  // The worker handles the search (mutating session state), then the
  // write path kills the connection before the response goes out.
  EXPECT_FALSE(client.Post("/v1/search", SearchBody("wf")).ok());
  EXPECT_GE(server_->stats().write_faults, 1u);
  FaultInjector::Global().Disable();
  ExpectServerAlive();
  EXPECT_TRUE(manager_->Contains("wf"));
  EXPECT_EQ(Connected().Post("/v1/search", SearchBody("wf"))->status, 200);
}

TEST_F(HttpChaosTest, OverloadClosesExcessConnections) {
  HttpServerOptions options;
  options.max_connections = 2;
  StartServer(options);
  HttpClient first = Connected();
  HttpClient second = Connected();
  ASSERT_EQ(first.Get("/healthz")->status, 200);
  ASSERT_EQ(second.Get("/healthz")->status, 200);
  // The third connection is accepted by the kernel and closed by the
  // server; its request never gets an answer.
  HttpClient third;
  ASSERT_TRUE(third.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(third.SendRaw("GET /healthz HTTP/1.1\r\n\r\n").ok());
  EXPECT_FALSE(third.ReadResponse().ok());
  EXPECT_GE(server_->stats().overload_closed, 1u);
  // The two admitted connections still work.
  EXPECT_EQ(first.Get("/healthz")->status, 200);
  EXPECT_EQ(second.Get("/healthz")->status, 200);
}

TEST_F(HttpChaosTest, GarbageFloodGetsCleanErrorsAndCleanAccounting) {
  StartServer(HttpServerOptions());
  for (int i = 0; i < 8; ++i) {
    HttpClient client = Connected();
    ASSERT_TRUE(client.SendRaw("\x01\x02garbage\r\nmore\r\n\r\n").ok());
    const Result<HttpClientResponse> response = client.ReadResponse();
    if (response.ok()) {
      EXPECT_EQ(response->status, 400);
    }
  }
  const HttpServerStats stats = server_->stats();
  EXPECT_GE(stats.parse_errors, 8u);
  EXPECT_EQ(stats.responses_5xx, 0u);
  ExpectServerAlive();
  // Every chaos connection above is gone; only the liveness probe's own
  // connection may linger. Active never goes negative.
  EXPECT_LE(server_->stats().connections_active, 1u);
}

TEST_F(HttpChaosTest, DrainFinishesEveryAcceptedRequest) {
  // A deliberately slow handler so Drain() arrives while requests are
  // mid-flight: the graceful-shutdown contract is that every dispatched
  // request still gets its complete response.
  std::atomic<int> handled{0};
  HttpServer server(HttpServerOptions(), [&handled](const HttpRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    handled.fetch_add(1);
    HttpResponse response;
    response.status = 200;
    response.body = "slow but served\n";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  // An idle keep-alive connection: drain sheds it immediately and it
  // must NOT count as an abandoned request.
  HttpClient idle;
  ASSERT_TRUE(idle.Connect("127.0.0.1", server.port()).ok());

  constexpr int kClients = 4;
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&server, &completed] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      const Result<HttpClientResponse> response = client.Get("/any");
      if (response.ok() && response->status == 200) {
        completed.fetch_add(1);
      }
    });
  }
  // Let every request reach its handler, then drain under a generous
  // deadline: all in-flight work must finish and flush.
  std::this_thread::sleep_for(std::chrono::milliseconds(75));
  EXPECT_TRUE(server.Drain(10000));
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(completed.load(), kClients);
  EXPECT_EQ(handled.load(), kClients);
  EXPECT_EQ(server.stats().requests_abandoned, 0u);
  // Drain stopped the server once empty: the listener is gone.
  HttpClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server.port()).ok());
}

TEST_F(HttpChaosTest, DrainDeadlineCountsAbandonedRequests) {
  HttpServer server(HttpServerOptions(), [](const HttpRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    HttpResponse response;
    response.status = 200;
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  std::thread client_thread([&server] {
    HttpClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) return;
    (void)client.Get("/too-slow");  // outlives the drain deadline
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(75));
  // The deadline passes with the handler still asleep: Drain reports the
  // truth instead of pretending the shutdown was clean.
  EXPECT_FALSE(server.Drain(10));
  EXPECT_GE(server.stats().requests_abandoned, 1u);
  client_thread.join();
}

}  // namespace
}  // namespace net
}  // namespace ivr
