#include "ivr/feedback/events.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(EventTypeTest, NameRoundTrip) {
  const EventType all[] = {
      EventType::kQuerySubmit,       EventType::kVisualExample,
      EventType::kResultDisplayed,   EventType::kBrowseNextPage,
      EventType::kBrowsePrevPage,    EventType::kTooltipHover,
      EventType::kClickKeyframe,     EventType::kPlayStart,
      EventType::kPlayStop,          EventType::kSeek,
      EventType::kHighlightMetadata, EventType::kMarkRelevant,
      EventType::kMarkNotRelevant,   EventType::kSessionEnd,
  };
  for (EventType type : all) {
    const std::string_view name = EventTypeName(type);
    EXPECT_NE(name, "unknown");
    EXPECT_EQ(EventTypeFromName(name).value(), type);
  }
}

TEST(EventTypeTest, UnknownNameRejected) {
  EXPECT_TRUE(EventTypeFromName("teleport").status().IsInvalidArgument());
  EXPECT_TRUE(EventTypeFromName("").status().IsInvalidArgument());
}

TEST(EventTypeTest, EventHasShotClassification) {
  EXPECT_TRUE(EventHasShot(EventType::kClickKeyframe));
  EXPECT_TRUE(EventHasShot(EventType::kPlayStop));
  EXPECT_TRUE(EventHasShot(EventType::kMarkRelevant));
  EXPECT_FALSE(EventHasShot(EventType::kQuerySubmit));
  EXPECT_FALSE(EventHasShot(EventType::kBrowseNextPage));
  EXPECT_FALSE(EventHasShot(EventType::kSessionEnd));
}

TEST(SortEventsTest, ChronologicalStableOrder) {
  InteractionEvent a;
  a.time = 100;
  a.type = EventType::kClickKeyframe;
  InteractionEvent b;
  b.time = 50;
  b.type = EventType::kQuerySubmit;
  InteractionEvent c;
  c.time = 100;
  c.type = EventType::kPlayStart;  // later enum than click

  std::vector<InteractionEvent> events = {c, a, b};
  SortEvents(&events);
  EXPECT_EQ(events[0].type, EventType::kQuerySubmit);
  EXPECT_EQ(events[1].type, EventType::kClickKeyframe);
  EXPECT_EQ(events[2].type, EventType::kPlayStart);
}

TEST(EventTimeLessTest, TimeDominatesType) {
  InteractionEvent early;
  early.time = 1;
  early.type = EventType::kSessionEnd;
  InteractionEvent late;
  late.time = 2;
  late.type = EventType::kQuerySubmit;
  EXPECT_TRUE(EventTimeLess(early, late));
  EXPECT_FALSE(EventTimeLess(late, early));
}

}  // namespace
}  // namespace ivr
