#include "ivr/retrieval/fusion.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(MinMaxNormalizeTest, MapsToUnitInterval) {
  const ResultList norm =
      MinMaxNormalize(ResultList({{1, 10.0}, {2, 20.0}, {3, 15.0}}));
  EXPECT_DOUBLE_EQ(norm.ScoreOf(2), 1.0);
  EXPECT_DOUBLE_EQ(norm.ScoreOf(1), 0.0);
  EXPECT_DOUBLE_EQ(norm.ScoreOf(3), 0.5);
}

TEST(MinMaxNormalizeTest, ConstantListMapsToNeutral) {
  // A constant-score list carries no ranking evidence; it must normalise
  // to 0.5 (neutral), not 1.0, so it cannot dominate fusion.
  const ResultList norm = MinMaxNormalize(ResultList({{1, 5.0}, {2, 5.0}}));
  EXPECT_DOUBLE_EQ(norm.ScoreOf(1), 0.5);
  EXPECT_DOUBLE_EQ(norm.ScoreOf(2), 0.5);
}

TEST(MinMaxNormalizeTest, ConstantListCannotDominateFusion) {
  // Regression for the all-ones bug: fusing an informative list with a
  // degenerate constant list used to hand the constant list maximal
  // evidence (1.0 per shot), letting its shots outrank the informative
  // winner. With neutral 0.5 the informative top shot stays on top.
  const ResultList informative({{1, 10.0}, {2, 5.0}, {3, 1.0}});
  const ResultList degenerate({{2, 7.0}, {3, 7.0}});
  const ResultList fused = CombSum({informative, degenerate});
  EXPECT_EQ(fused.at(0).shot, 1u);
  EXPECT_DOUBLE_EQ(fused.ScoreOf(1), 1.0);
  EXPECT_DOUBLE_EQ(fused.ScoreOf(2), 4.0 / 9.0 + 0.5);
  EXPECT_DOUBLE_EQ(fused.ScoreOf(3), 0.5);
  // Pin the full fused ranking.
  EXPECT_EQ(fused.ShotIds(), (std::vector<ShotId>{1, 2, 3}));
}

TEST(MinMaxNormalizeTest, EmptyList) {
  EXPECT_TRUE(MinMaxNormalize(ResultList()).empty());
}

TEST(CombSumTest, AddsNormalizedEvidence) {
  const ResultList a({{1, 1.0}, {2, 0.0}});
  const ResultList b({{2, 2.0}, {3, 0.0}});
  const ResultList fused = CombSum({a, b});
  // Shot 1: 1.0; shot 2: 0.0 + 1.0; shot 3: 0.0.
  EXPECT_DOUBLE_EQ(fused.ScoreOf(1), 1.0);
  EXPECT_DOUBLE_EQ(fused.ScoreOf(2), 1.0);
  EXPECT_DOUBLE_EQ(fused.ScoreOf(3), 0.0);
  EXPECT_EQ(fused.size(), 3u);
}

TEST(CombMnzTest, RewardsMultiListPresence) {
  const ResultList a({{1, 1.0}, {2, 0.5}, {4, 0.0}});
  const ResultList b({{2, 1.0}, {3, 0.0}});
  const ResultList fused = CombMnz({a, b});
  // Shot 2 appears in both lists: (0.5 + 1.0) * 2 = 3.0.
  EXPECT_DOUBLE_EQ(fused.ScoreOf(2), 3.0);
  EXPECT_DOUBLE_EQ(fused.ScoreOf(1), 1.0);
}

TEST(WeightedLinearTest, RespectsWeights) {
  const ResultList a({{1, 1.0}, {2, 0.0}});
  const ResultList b({{2, 1.0}, {1, 0.0}});
  const ResultList fused = WeightedLinear({a, b}, {0.9, 0.1});
  EXPECT_DOUBLE_EQ(fused.ScoreOf(1), 0.9);
  EXPECT_DOUBLE_EQ(fused.ScoreOf(2), 0.1);
  EXPECT_EQ(fused.at(0).shot, 1u);
}

TEST(WeightedLinearTest, ZeroWeightListIgnored) {
  const ResultList a({{1, 1.0}});
  const ResultList b({{2, 1.0}});
  const ResultList fused = WeightedLinear({a, b}, {1.0, 0.0});
  EXPECT_FALSE(fused.Contains(2));
}

TEST(WeightedLinearTest, LengthMismatchFusesAlignedPrefix) {
  const ResultList a({{1, 1.0}});
  const ResultList b({{2, 1.0}});
  // More lists than weights: only the aligned prefix contributes (an
  // error is logged); the unpaired list must not leak in with an
  // uninitialised weight.
  const ResultList fused = WeightedLinear({a, b}, {0.5});
  EXPECT_TRUE(fused.Contains(1));
  EXPECT_FALSE(fused.Contains(2));
  // More weights than lists is equally mismatched but must not crash.
  const ResultList fused2 = WeightedLinear({a}, {0.5, 0.5});
  EXPECT_TRUE(fused2.Contains(1));
  EXPECT_FALSE(fused2.Contains(2));
}

TEST(ReciprocalRankFusionTest, EarlierRanksScoreHigher) {
  const ResultList a({{1, 3.0}, {2, 2.0}, {3, 1.0}});
  const ResultList fused = ReciprocalRankFusion({a}, 60.0);
  EXPECT_DOUBLE_EQ(fused.ScoreOf(1), 1.0 / 61.0);
  EXPECT_DOUBLE_EQ(fused.ScoreOf(2), 1.0 / 62.0);
  EXPECT_GT(fused.ScoreOf(1), fused.ScoreOf(3));
}

TEST(ReciprocalRankFusionTest, AgreementWins) {
  const ResultList a({{1, 3.0}, {2, 2.0}});
  const ResultList b({{2, 9.0}, {3, 1.0}});
  const ResultList fused = ReciprocalRankFusion({a, b});
  // Shot 2 is in both lists (ranks 2 and 1) and must beat both
  // single-list shots.
  EXPECT_EQ(fused.at(0).shot, 2u);
}

TEST(BordaCountTest, AwardsPositionPoints) {
  const ResultList a({{1, 3.0}, {2, 2.0}, {3, 1.0}});
  const ResultList fused = BordaCount({a});
  EXPECT_DOUBLE_EQ(fused.ScoreOf(1), 3.0);
  EXPECT_DOUBLE_EQ(fused.ScoreOf(2), 2.0);
  EXPECT_DOUBLE_EQ(fused.ScoreOf(3), 1.0);
}

TEST(FusionTest, EmptyInputs) {
  EXPECT_TRUE(CombSum({}).empty());
  EXPECT_TRUE(CombMnz({}).empty());
  EXPECT_TRUE(WeightedLinear({}, {}).empty());
  EXPECT_TRUE(ReciprocalRankFusion({}).empty());
  EXPECT_TRUE(BordaCount({}).empty());
  EXPECT_TRUE(CombSum({ResultList(), ResultList()}).empty());
}

}  // namespace
}  // namespace ivr
