#include "ivr/features/similarity.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

std::vector<ColorHistogram> MakeCorpus(Rng* rng, size_t n) {
  std::vector<ColorHistogram> corpus;
  for (size_t i = 0; i < n; ++i) {
    corpus.push_back(ColorHistogram::RandomPrototype(rng));
  }
  return corpus;
}

TEST(VisualSearcherTest, ExactMatchRanksFirst) {
  Rng rng(1);
  const auto corpus = MakeCorpus(&rng, 20);
  const VisualSearcher searcher(corpus);
  const auto nn = searcher.NearestNeighbors(corpus[7], 5);
  ASSERT_FALSE(nn.empty());
  EXPECT_EQ(nn[0].index, 7u);
  EXPECT_NEAR(nn[0].score, 1.0, 1e-9);
}

TEST(VisualSearcherTest, ScoresDescendAndRespectK) {
  Rng rng(2);
  const auto corpus = MakeCorpus(&rng, 30);
  const VisualSearcher searcher(corpus);
  const auto nn = searcher.NearestNeighbors(corpus[0], 10);
  EXPECT_EQ(nn.size(), 10u);
  for (size_t i = 1; i < nn.size(); ++i) {
    EXPECT_GE(nn[i - 1].score, nn[i].score);
  }
}

TEST(VisualSearcherTest, KLargerThanCorpusReturnsAll) {
  Rng rng(3);
  const auto corpus = MakeCorpus(&rng, 4);
  const VisualSearcher searcher(corpus);
  EXPECT_EQ(searcher.NearestNeighbors(corpus[0], 100).size(), 4u);
}

TEST(VisualSearcherTest, EmptyCorpus) {
  const std::vector<ColorHistogram> corpus;
  const VisualSearcher searcher(corpus);
  Rng rng(4);
  const ColorHistogram q = ColorHistogram::RandomPrototype(&rng);
  EXPECT_TRUE(searcher.NearestNeighbors(q, 5).empty());
  EXPECT_TRUE(searcher.ScoreAll(q).empty());
}

TEST(VisualSearcherTest, ScoreAllAlignsWithCorpus) {
  Rng rng(5);
  const auto corpus = MakeCorpus(&rng, 10);
  const VisualSearcher searcher(corpus, VisualSimilarity::kCosine);
  const auto scores = searcher.ScoreAll(corpus[3]);
  ASSERT_EQ(scores.size(), 10u);
  EXPECT_NEAR(scores[3], 1.0, 1e-9);
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(
        scores[i],
        ComputeSimilarity(VisualSimilarity::kCosine, corpus[3], corpus[i]));
  }
}

TEST(ComputeSimilarityTest, AllKindsAgreeOnIdentity) {
  Rng rng(6);
  const ColorHistogram h = ColorHistogram::RandomPrototype(&rng);
  EXPECT_NEAR(ComputeSimilarity(VisualSimilarity::kHistogramIntersection,
                                h, h),
              1.0, 1e-9);
  EXPECT_NEAR(ComputeSimilarity(VisualSimilarity::kCosine, h, h), 1.0,
              1e-9);
  EXPECT_NEAR(ComputeSimilarity(VisualSimilarity::kInverseL1, h, h), 1.0,
              1e-9);
}

TEST(VisualSearcherTest, PerturbedQueryFindsItsPrototypeNeighborhood) {
  Rng rng(7);
  auto corpus = MakeCorpus(&rng, 8);
  // Add 10 perturbed variants of prototype 2 at indices 8..17.
  for (int i = 0; i < 10; ++i) {
    corpus.push_back(corpus[2].Perturb(&rng, 0.2));
  }
  const VisualSearcher searcher(corpus);
  const auto nn = searcher.NearestNeighbors(corpus[2].Perturb(&rng, 0.2),
                                            5);
  // The top neighbours should be from the prototype-2 cluster.
  size_t cluster_hits = 0;
  for (const Neighbor& n : nn) {
    if (n.index == 2 || n.index >= 8) ++cluster_hits;
  }
  EXPECT_GE(cluster_hits, 4u);
}

TEST(VisualSearcherTest, TieBreaksByIndex) {
  std::vector<ColorHistogram> corpus(3,
                                     ColorHistogram(std::vector<double>{
                                         0.5, 0.5}));
  const VisualSearcher searcher(corpus);
  const auto nn = searcher.NearestNeighbors(corpus[0], 3);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0].index, 0u);
  EXPECT_EQ(nn[1].index, 1u);
  EXPECT_EQ(nn[2].index, 2u);
}

}  // namespace
}  // namespace ivr
