#include "ivr/retrieval/rocchio.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TermQuery MakeQuery(const Analyzer& analyzer, const std::string& text) {
  TermQuery q;
  for (const std::string& term : analyzer.Analyze(text)) {
    q.weights[term] += 1.0;
  }
  return q;
}

TEST(RocchioTest, NoFeedbackScalesOriginalByAlpha) {
  const Analyzer analyzer;
  const TermQuery original = MakeQuery(analyzer, "goal football");
  RocchioOptions options;
  options.alpha = 2.0;
  const TermQuery expanded =
      RocchioExpand(original, {}, {}, analyzer, options);
  EXPECT_EQ(expanded.weights.size(), original.weights.size());
  for (const auto& [term, w] : original.weights) {
    EXPECT_DOUBLE_EQ(expanded.weights.at(term), 2.0 * w);
  }
}

TEST(RocchioTest, PositiveFeedbackAddsNewTerms) {
  const Analyzer analyzer;
  const TermQuery original = MakeQuery(analyzer, "goal");
  const std::vector<FeedbackDoc> positive = {
      {"goal striker penalty", 1.0}};
  const TermQuery expanded =
      RocchioExpand(original, positive, {}, analyzer);
  EXPECT_GT(expanded.weights.count("striker"), 0u);
  EXPECT_GT(expanded.weights.count("penalti"), 0u);  // stemmed
  // Original term reinforced beyond alpha alone.
  EXPECT_GT(expanded.weights.at("goal"), 1.0);
}

TEST(RocchioTest, NegativeFeedbackSuppressesTerms) {
  const Analyzer analyzer;
  const TermQuery original = MakeQuery(analyzer, "goal weather");
  const std::vector<FeedbackDoc> negative = {
      {"weather weather weather", 1.0}};
  RocchioOptions options;
  options.gamma = 2.0;  // strong negative to force removal
  const TermQuery expanded =
      RocchioExpand(original, {}, negative, analyzer, options);
  // "weather" should be suppressed below zero and dropped.
  EXPECT_EQ(expanded.weights.count("weather"), 0u);
  EXPECT_GT(expanded.weights.count("goal"), 0u);
}

TEST(RocchioTest, NegativeFeedbackNeverIntroducesTerms) {
  const Analyzer analyzer;
  const TermQuery original = MakeQuery(analyzer, "goal");
  const std::vector<FeedbackDoc> negative = {{"politics scandal", 1.0}};
  const TermQuery expanded =
      RocchioExpand(original, {}, negative, analyzer);
  EXPECT_EQ(expanded.weights.count("polit"), 0u);
  EXPECT_EQ(expanded.weights.count("scandal"), 0u);
}

TEST(RocchioTest, WeightsScaleFeedbackInfluence) {
  const Analyzer analyzer;
  const TermQuery original = MakeQuery(analyzer, "goal");
  const std::vector<FeedbackDoc> strong = {{"striker", 4.0},
                                           {"referee", 1.0}};
  const TermQuery expanded =
      RocchioExpand(original, strong, {}, analyzer);
  // The heavier feedback document dominates the centroid.
  EXPECT_GT(expanded.weights.at("striker"), expanded.weights.at("refere"));
}

TEST(RocchioTest, MaxExpansionTermsLimitsGrowth) {
  const Analyzer analyzer;
  const TermQuery original = MakeQuery(analyzer, "goal");
  std::string many_terms;
  for (int i = 0; i < 50; ++i) {
    many_terms += " uniqueterm" + std::to_string(i);
  }
  RocchioOptions options;
  options.max_expansion_terms = 5;
  const TermQuery expanded = RocchioExpand(
      original, {{many_terms, 1.0}}, {}, analyzer, options);
  // Original term + at most 5 expansion terms.
  EXPECT_LE(expanded.weights.size(), 6u);
  EXPECT_GT(expanded.weights.count("goal"), 0u);
}

TEST(RocchioTest, ZeroWeightFeedbackIgnored) {
  const Analyzer analyzer;
  const TermQuery original = MakeQuery(analyzer, "goal");
  const TermQuery expanded = RocchioExpand(
      original, {{"striker", 0.0}}, {}, analyzer);
  EXPECT_EQ(expanded.weights.count("striker"), 0u);
}

TEST(RocchioTest, EmptyOriginalQueryBuildsCentroidQuery) {
  const Analyzer analyzer;
  RocchioOptions options;
  options.alpha = 0.0;
  options.beta = 1.0;
  const TermQuery expanded = RocchioExpand(
      TermQuery(), {{"football striker", 1.0}}, {}, analyzer, options);
  EXPECT_EQ(expanded.weights.size(), 2u);
}

TEST(RocchioTest, LongDocumentsDoNotDominate) {
  const Analyzer analyzer;
  const TermQuery original = MakeQuery(analyzer, "goal");
  // One long document about weather vs one short about strikers, equal
  // weights: length normalisation should keep them comparable.
  std::string long_doc;
  for (int i = 0; i < 100; ++i) long_doc += " weather";
  const TermQuery expanded = RocchioExpand(
      original, {{long_doc, 1.0}, {"striker", 1.0}}, {}, analyzer);
  EXPECT_NEAR(expanded.weights.at("weather"),
              expanded.weights.at("striker"), 1e-9);
}

}  // namespace
}  // namespace ivr
