// ManifestLog: the ingest commit journal. Append/Load round trips,
// Rewrite compaction, torn-tail salvage, and payload validation.

#include "ivr/ingest/manifest.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ivr/core/fault_injection.h"
#include "ivr/core/file_util.h"

namespace ivr {
namespace {

std::string TempManifest(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

ManifestRecord Record(uint64_t generation,
                      std::vector<std::string> segments) {
  ManifestRecord record;
  record.generation = generation;
  record.segments = std::move(segments);
  return record;
}

TEST(ManifestLogTest, MissingFileLoadsEmpty) {
  ManifestLog log(TempManifest("manifest_missing"));
  const Result<ManifestLoadResult> loaded = log.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->records.empty());
  EXPECT_EQ(loaded->torn_chunks, 0u);
}

TEST(ManifestLogTest, AppendLoadRoundTripsInOrder) {
  ManifestLog log(TempManifest("manifest_roundtrip"));
  ASSERT_TRUE(log.Append(Record(1, {"seg-000001.seg"})).ok());
  ASSERT_TRUE(
      log.Append(Record(2, {"seg-000001.seg", "seg-000002.seg"})).ok());
  const Result<ManifestLoadResult> loaded = log.Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->records.size(), 2u);
  EXPECT_EQ(loaded->records[0].generation, 1u);
  EXPECT_EQ(loaded->records[0].segments,
            (std::vector<std::string>{"seg-000001.seg"}));
  EXPECT_EQ(loaded->records[1].generation, 2u);
  EXPECT_EQ(loaded->records[1].segments,
            (std::vector<std::string>{"seg-000001.seg", "seg-000002.seg"}));
  EXPECT_EQ(loaded->torn_chunks, 0u);
}

TEST(ManifestLogTest, RecordsCarryTheFullListNotADiff) {
  // An empty segment list is a legal record (a generation that serves
  // only the base), and later records must stand alone.
  ManifestLog log(TempManifest("manifest_fulllist"));
  ASSERT_TRUE(log.Append(Record(1, {})).ok());
  ASSERT_TRUE(log.Append(Record(2, {"a.seg", "b.seg"})).ok());
  const Result<ManifestLoadResult> loaded = log.Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->records.size(), 2u);
  EXPECT_TRUE(loaded->records[0].segments.empty());
  EXPECT_EQ(loaded->records[1].segments.size(), 2u);
}

TEST(ManifestLogTest, RewriteReplacesTheJournal) {
  ManifestLog log(TempManifest("manifest_rewrite"));
  ASSERT_TRUE(log.Append(Record(1, {"a.seg"})).ok());
  ASSERT_TRUE(log.Append(Record(2, {"a.seg", "b.seg"})).ok());
  ASSERT_TRUE(log.Rewrite(Record(2, {"merged.seg"})).ok());
  const Result<ManifestLoadResult> loaded = log.Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->records.size(), 1u);
  EXPECT_EQ(loaded->records[0].generation, 2u);
  EXPECT_EQ(loaded->records[0].segments,
            (std::vector<std::string>{"merged.seg"}));
}

TEST(ManifestLogTest, TornTailDropsOnlyTheTail) {
  const std::string path = TempManifest("manifest_torn");
  ManifestLog log(path);
  ASSERT_TRUE(log.Append(Record(1, {"a.seg"})).ok());
  const size_t intact_size = ReadFileToString(path).value().size();
  ASSERT_TRUE(log.Append(Record(2, {"a.seg", "b.seg"})).ok());
  const std::string bytes = ReadFileToString(path).value();

  // Cut the file at every offset strictly inside the second chunk: the
  // first record must always survive, the torn tail must always be
  // counted, and nothing may crash.
  for (size_t cut = intact_size + 1; cut < bytes.size(); ++cut) {
    ASSERT_TRUE(WriteStringToFile(path, bytes.substr(0, cut)).ok());
    const Result<ManifestLoadResult> loaded = log.Load();
    ASSERT_TRUE(loaded.ok()) << "cut at " << cut;
    ASSERT_EQ(loaded->records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(loaded->records[0].generation, 1u);
    EXPECT_EQ(loaded->torn_chunks, 1u) << "cut at " << cut;
  }
}

TEST(ManifestLogTest, MidFileCorruptionTruncatesReplayThere) {
  const std::string path = TempManifest("manifest_flip");
  ManifestLog log(path);
  ASSERT_TRUE(log.Append(Record(1, {"a.seg"})).ok());
  const size_t first_size = ReadFileToString(path).value().size();
  ASSERT_TRUE(log.Append(Record(2, {"b.seg"})).ok());
  std::string bytes = ReadFileToString(path).value();
  bytes[first_size / 2] ^= 0x40;  // damage the FIRST chunk
  ASSERT_TRUE(WriteStringToFile(path, bytes).ok());
  const Result<ManifestLoadResult> loaded = log.Load();
  ASSERT_TRUE(loaded.ok());
  // The reader cannot trust anything at or after the damage.
  EXPECT_TRUE(loaded->records.empty());
  EXPECT_EQ(loaded->torn_chunks, 1u);
}

TEST(ManifestLogTest, PayloadRoundTripAndValidation) {
  const ManifestRecord record = Record(7, {"x.seg", "y.seg"});
  const std::string payload = ManifestLog::RecordToPayload(record);
  const Result<ManifestRecord> parsed = ManifestLog::PayloadToRecord(payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->generation, 7u);
  EXPECT_EQ(parsed->segments, record.segments);

  EXPECT_FALSE(ManifestLog::PayloadToRecord("not a manifest").ok());
  EXPECT_FALSE(ManifestLog::PayloadToRecord("").ok());
}

TEST(ManifestLogTest, RejectsSegmentNamesThatEscapeTheDirectory) {
  ManifestLog log(TempManifest("manifest_names"));
  EXPECT_FALSE(log.Append(Record(1, {"../evil.seg"})).ok());
  EXPECT_FALSE(log.Append(Record(1, {"a\nb.seg"})).ok());
  EXPECT_FALSE(log.Rewrite(Record(1, {"sub/dir.seg"})).ok());
}

TEST(ManifestLogTest, FaultSiteFailsAppendCleanly) {
  const std::string path = TempManifest("manifest_fault");
  ManifestLog log(path);
  ASSERT_TRUE(log.Append(Record(1, {"a.seg"})).ok());
  {
    ScopedFaultInjection faults("ingest.manifest:1.0", 1);
    EXPECT_TRUE(log.Append(Record(2, {"b.seg"})).IsIOError());
    EXPECT_TRUE(log.Rewrite(Record(2, {"b.seg"})).IsIOError());
  }
  // The journal is untouched by the failed operations.
  const Result<ManifestLoadResult> loaded = log.Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->records.size(), 1u);
  EXPECT_EQ(loaded->records[0].generation, 1u);
}

}  // namespace
}  // namespace ivr
