#include "ivr/core/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(99);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
  // lo > hi returns lo (documented clamp).
  EXPECT_EQ(rng.UniformInt(9, 2), 9);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(2.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(29);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(6.0));
  EXPECT_NEAR(sum / n, 6.0, 0.1);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(31);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const int64_t v = rng.Geometric(0.25);
    EXPECT_GE(v, 0);
    sum += static_cast<double>(v);
  }
  // Mean of failures-before-success = (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, CategoricalDegenerateInputs) {
  Rng rng(37);
  EXPECT_EQ(rng.Categorical({}), 0u);
  EXPECT_EQ(rng.Categorical({0.0, 0.0}), 0u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementClampsK) {
  Rng rng(43);
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 50).size(), 5u);
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  ZipfDistribution zipf(4, 0.0);
  for (int64_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(zipf.Pmf(k), 0.25, 1e-12);
  }
}

TEST(ZipfTest, PmfMonotonicallyDecreasing) {
  ZipfDistribution zipf(100, 1.1);
  for (int64_t k = 1; k < 100; ++k) {
    EXPECT_LT(zipf.Pmf(k), zipf.Pmf(k - 1));
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(50, 0.8);
  double total = 0.0;
  for (int64_t k = 0; k < 50; ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  ZipfDistribution zipf(10, 1.0);
  Rng rng(47);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const int64_t k = zipf.Sample(&rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 10);
    ++counts[static_cast<size_t>(k)];
  }
  for (int64_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<size_t>(k)]) / n,
                zipf.Pmf(k), 0.01);
  }
}

TEST(ZipfTest, DegenerateSupport) {
  ZipfDistribution zipf(0, 1.0);
  EXPECT_EQ(zipf.n(), 1);
  Rng rng(1);
  EXPECT_EQ(zipf.Sample(&rng), 0);
  EXPECT_EQ(zipf.Pmf(-1), 0.0);
  EXPECT_EQ(zipf.Pmf(5), 0.0);
}

}  // namespace
}  // namespace ivr
