#include "ivr/adaptive/implicit_graph.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

InteractionEvent MakeEvent(TimeMs time, EventType type,
                           ShotId shot = kInvalidShotId,
                           const std::string& text = "",
                           double value = 0.0) {
  InteractionEvent ev;
  ev.time = time;
  ev.type = type;
  ev.shot = shot;
  ev.text = text;
  ev.value = value;
  return ev;
}

// A session that queried `query` and then engaged with `shots`.
std::vector<InteractionEvent> EngagedSession(const std::string& query,
                                             std::vector<ShotId> shots) {
  std::vector<InteractionEvent> events;
  events.push_back(
      MakeEvent(0, EventType::kQuerySubmit, kInvalidShotId, query));
  TimeMs t = 1000;
  for (ShotId shot : shots) {
    events.push_back(MakeEvent(t, EventType::kClickKeyframe, shot));
    events.push_back(
        MakeEvent(t + 500, EventType::kPlayStop, shot, "", 9000.0));
    t += 2000;
  }
  return events;
}

class ImplicitGraphTest : public ::testing::Test {
 protected:
  ImplicitGraph graph_;
  LinearWeighting scheme_;
};

TEST_F(ImplicitGraphTest, EmptyGraphRecommendsNothing) {
  EXPECT_TRUE(graph_.Recommend("football goal", 10).empty());
  EXPECT_EQ(graph_.num_query_nodes(), 0u);
  EXPECT_EQ(graph_.num_shot_nodes(), 0u);
  EXPECT_EQ(graph_.num_edges(), 0u);
}

TEST_F(ImplicitGraphTest, ExactQueryMatchRecommendsPastPositives) {
  graph_.AddSession(EngagedSession("football goal", {5, 9}), scheme_,
                    nullptr);
  const ResultList recs = graph_.Recommend("football goal", 10);
  EXPECT_TRUE(recs.Contains(5));
  EXPECT_TRUE(recs.Contains(9));
}

TEST_F(ImplicitGraphTest, TermOverlapMatchesPartially) {
  graph_.AddSession(EngagedSession("football goal striker", {5}), scheme_,
                    nullptr);
  // One shared term out of three.
  const ResultList partial = graph_.Recommend("goal", 10);
  EXPECT_TRUE(partial.Contains(5));
  // No shared terms: nothing.
  EXPECT_TRUE(graph_.Recommend("weather", 10).empty());
}

TEST_F(ImplicitGraphTest, CloserQueriesScoreHigher) {
  graph_.AddSession(EngagedSession("football goal", {5}), scheme_,
                    nullptr);
  const double exact = graph_.Recommend("football goal", 10).ScoreOf(5);
  const double partial = graph_.Recommend("goal", 10).ScoreOf(5);
  EXPECT_GT(exact, partial);
  EXPECT_GT(partial, 0.0);
}

TEST_F(ImplicitGraphTest, CoInteractionSpreadsActivation) {
  // Session A: query + shots 1,2. Session B (no query): engages 2 and 7.
  graph_.AddSession(EngagedSession("football goal", {1, 2}), scheme_,
                    nullptr);
  graph_.AddSession(EngagedSession("", {2, 7}), scheme_, nullptr);
  // Shot 7 is reachable only via the shot->shot co-interaction hop.
  const ResultList recs = graph_.Recommend("football goal", 10, 0.5);
  EXPECT_TRUE(recs.Contains(7));
  // With damping 0 the second hop is disabled.
  const ResultList direct = graph_.Recommend("football goal", 10, 0.0);
  EXPECT_FALSE(direct.Contains(7));
}

TEST_F(ImplicitGraphTest, QueryNormalizationMergesVariants) {
  graph_.AddSession(EngagedSession("Football GOAL", {3}), scheme_,
                    nullptr);
  graph_.AddSession(EngagedSession("goal football", {4}), scheme_,
                    nullptr);
  // Both sessions collapse onto one canonical query node.
  EXPECT_EQ(graph_.num_query_nodes(), 1u);
  const ResultList recs = graph_.Recommend("football goal", 10);
  EXPECT_TRUE(recs.Contains(3));
  EXPECT_TRUE(recs.Contains(4));
}

TEST_F(ImplicitGraphTest, SessionsWithoutPositivesIgnored) {
  std::vector<InteractionEvent> events = {
      MakeEvent(0, EventType::kQuerySubmit, kInvalidShotId, "football"),
      MakeEvent(1, EventType::kResultDisplayed, 1, "", 0.0),
  };
  graph_.AddSession(events, scheme_, nullptr);
  EXPECT_EQ(graph_.num_query_nodes(), 0u);
  EXPECT_EQ(graph_.num_edges(), 0u);
}

TEST_F(ImplicitGraphTest, RepeatedSessionsStrengthenEdges) {
  graph_.AddSession(EngagedSession("football", {5}), scheme_, nullptr);
  const double once = graph_.Recommend("football", 10).ScoreOf(5);
  graph_.AddSession(EngagedSession("football", {5}), scheme_, nullptr);
  const double twice = graph_.Recommend("football", 10).ScoreOf(5);
  EXPECT_GT(twice, once);
}

TEST_F(ImplicitGraphTest, KTruncatesRecommendations) {
  graph_.AddSession(EngagedSession("football", {1, 2, 3, 4, 5}), scheme_,
                    nullptr);
  EXPECT_LE(graph_.Recommend("football", 2).size(), 2u);
}

TEST_F(ImplicitGraphTest, NodeAndEdgeCounts) {
  graph_.AddSession(EngagedSession("football goal", {1, 2}), scheme_,
                    nullptr);
  EXPECT_EQ(graph_.num_query_nodes(), 1u);
  EXPECT_EQ(graph_.num_shot_nodes(), 2u);
  // query->1, query->2, 1->2, 2->1.
  EXPECT_EQ(graph_.num_edges(), 4u);
}

TEST_F(ImplicitGraphTest, SuggestQueriesRanksByRelatedness) {
  // Two past queries share the outcome shot 5; a third is unrelated.
  graph_.AddSession(EngagedSession("football goal", {5}), scheme_,
                    nullptr);
  graph_.AddSession(EngagedSession("goal striker", {5}), scheme_,
                    nullptr);
  graph_.AddSession(EngagedSession("weather rain", {9}), scheme_,
                    nullptr);
  const auto suggestions = graph_.SuggestQueries("football goal", 10);
  ASSERT_FALSE(suggestions.empty());
  // The shared-term, shared-outcome query comes first; weather never
  // appears (no overlap at all).
  EXPECT_EQ(suggestions[0].query, "goal striker");
  for (const auto& s : suggestions) {
    EXPECT_EQ(s.query.find("weather"), std::string::npos);
    EXPECT_GT(s.score, 0.0);
    EXPECT_LE(s.score, 1.0 + 1e-9);
  }
}

TEST_F(ImplicitGraphTest, SuggestQueriesExcludesSelf) {
  graph_.AddSession(EngagedSession("football goal", {5}), scheme_,
                    nullptr);
  for (const auto& s : graph_.SuggestQueries("football goal", 10)) {
    EXPECT_NE(s.query, "footbal goal");  // canonical (stemmed) self form
  }
  // A lone node suggests nothing for its own query.
  EXPECT_TRUE(graph_.SuggestQueries("football goal", 10).empty());
}

TEST_F(ImplicitGraphTest, SuggestQueriesOutcomeSimilarityCounts) {
  // Same outcome, zero term overlap: still suggested via hop through a
  // bridging query sharing terms with the input.
  graph_.AddSession(EngagedSession("football goal", {5}), scheme_,
                    nullptr);
  graph_.AddSession(EngagedSession("striker penalty", {5}), scheme_,
                    nullptr);
  const auto suggestions = graph_.SuggestQueries("football", 10);
  bool found = false;
  for (const auto& s : suggestions) {
    if (s.query.find("striker") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ImplicitGraphTest, SuggestQueriesEmptyInputs) {
  EXPECT_TRUE(graph_.SuggestQueries("anything", 5).empty());
  graph_.AddSession(EngagedSession("football", {1}), scheme_, nullptr);
  EXPECT_TRUE(graph_.SuggestQueries("", 5).empty());
  EXPECT_TRUE(graph_.SuggestQueries("the of", 5).empty());
}

TEST_F(ImplicitGraphTest, EmptyQueryRecommendsNothing) {
  graph_.AddSession(EngagedSession("football", {1}), scheme_, nullptr);
  EXPECT_TRUE(graph_.Recommend("", 10).empty());
  EXPECT_TRUE(graph_.Recommend("the of and", 10).empty());
}

}  // namespace
}  // namespace ivr
