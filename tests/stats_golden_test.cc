#include "ivr/obs/report.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ivr/adaptive/adaptive_engine.h"
#include "ivr/core/fault_injection.h"
#include "ivr/core/string_util.h"
#include "ivr/obs/metrics.h"
#include "ivr/retrieval/engine.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

// A frozen obs clock: every Stopwatch reads 0us elapsed, so even latency
// histograms become a pure function of the work performed — the property
// that makes the snapshots below byte-comparable.
int64_t FrozenNow() { return 1234567; }

class StatsGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef IVR_OBS_OFF
    GTEST_SKIP() << "instrumentation compiled out (IVR_OBS_OFF)";
#endif
    obs::SetClockForTest(&FrozenNow);
    FaultInjector::Global().Disable();
    generated_ = std::make_unique<GeneratedCollection>(
        GenerateCollection(MakeOptions()).value());
  }

  void TearDown() override { obs::SetClockForTest(nullptr); }

  static GeneratorOptions MakeOptions() {
    GeneratorOptions options;
    options.seed = 7;
    options.num_topics = 6;
    options.num_videos = 12;
    return options;
  }

  /// The fixed workload: every topic's title query (text + visual) through
  /// BatchSearch, plus a short adaptive session. Returns the stats JSON
  /// after resetting all metric values first, so back-to-back invocations
  /// observe identical state.
  std::string RunWorkloadAndSnapshot(size_t threads) {
    obs::Registry::Global().ResetValues();
    const std::unique_ptr<RetrievalEngine> engine =
        RetrievalEngine::Build(generated_->collection).value();
    std::vector<Query> queries;
    for (const SearchTopic& topic : generated_->topics.topics) {
      Query query;
      query.text = topic.title;
      query.examples = topic.examples;
      queries.push_back(std::move(query));
    }
    (void)engine->BatchSearch(queries, /*k=*/50, threads);

    const AdaptiveEngine adaptive(*engine, AdaptiveOptions(), nullptr);
    SessionContext ctx = adaptive.MakeContext("golden", "user");
    Query first;
    first.text = generated_->topics.topics[0].title;
    const ResultList results = adaptive.Search(&ctx, first, 10);
    InteractionEvent click;
    click.type = EventType::kClickKeyframe;
    click.shot = results.empty() ? 0 : results.at(0).shot;
    adaptive.ObserveEvent(&ctx, click);
    (void)adaptive.Search(&ctx, first, 10);

    return obs::StatsJson();
  }

  std::unique_ptr<GeneratedCollection> generated_;
};

TEST_F(StatsGoldenTest, SchemaVersionAndSectionsPresent) {
  const std::string json = RunWorkloadAndSnapshot(1);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"faults\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.queries\""), std::string::npos);
  EXPECT_NE(json.find("\"searcher.postings_scanned\""), std::string::npos);
}

TEST_F(StatsGoldenTest, RepeatedRunsAreByteIdentical) {
  const std::string first = RunWorkloadAndSnapshot(2);
  const std::string second = RunWorkloadAndSnapshot(2);
  EXPECT_EQ(first, second);
}

TEST_F(StatsGoldenTest, ThreadCountDoesNotChangeTheSnapshot) {
  // Counters are a pure function of the per-query work and BatchSearch
  // assigns output slots by index, so 1 worker and 4 workers must produce
  // the same bytes (the frozen clock removes the only timing channel).
  const std::string sequential = RunWorkloadAndSnapshot(1);
  const std::string parallel = RunWorkloadAndSnapshot(4);
  EXPECT_EQ(sequential, parallel);
}

TEST_F(StatsGoldenTest, SummaryReportsTheWorkload) {
  (void)RunWorkloadAndSnapshot(1);
  const std::string summary = obs::StatsSummary();
  EXPECT_NE(summary.find("-- observability summary --"), std::string::npos);
  EXPECT_NE(summary.find("engine.queries"), std::string::npos);
  EXPECT_EQ(summary.find("(no activity recorded)"), std::string::npos);
}

TEST_F(StatsGoldenTest, StatsJsonQuantilesUseTheNearestRankConvention) {
  // Regression for the floor-vs-ceil off-by-one: the p50 of 7 recorded
  // values is the 4th smallest (nearest-rank = ceil(q*count)), never the
  // 3rd. Pin it end to end through the --stats-json rendering with one
  // value per bucket so the two conventions give different bytes.
  obs::Registry::Global().ResetValues();
  obs::LatencyHistogram* histogram =
      obs::Registry::Global().GetHistogram("test.quantile_pin_us");
  const int64_t values[] = {1, 2, 4, 8, 16, 32, 64};
  for (const int64_t value : values) histogram->Record(value);

  const obs::HistogramSnapshot snap = histogram->Snapshot();
  const int64_t fourth = obs::LatencyHistogram::BucketUpperBound(
      obs::LatencyHistogram::BucketIndex(8));
  const int64_t third = obs::LatencyHistogram::BucketUpperBound(
      obs::LatencyHistogram::BucketIndex(4));
  ASSERT_NE(fourth, third) << "values must land in distinct buckets";
  EXPECT_EQ(snap.Quantile(0.50), fourth);
  // ceil(0.99 * 7) = 7: the p99 of seven values is the largest one.
  EXPECT_EQ(snap.Quantile(0.99),
            obs::LatencyHistogram::BucketUpperBound(
                obs::LatencyHistogram::BucketIndex(64)));

  const std::string json = obs::StatsJson();
  const std::string needle = StrFormat(
      "\"test.quantile_pin_us\": {\"count\": 7, \"sum\": 127, "
      "\"max\": 64, \"p50\": %lld", static_cast<long long>(fourth));
  EXPECT_NE(json.find(needle), std::string::npos)
      << "stats json: " << json;
}

TEST_F(StatsGoldenTest, EmptyRegistryValuesStillRenderValidSkeleton) {
  obs::Registry::Global().ResetValues();
  const std::string json = obs::StatsJson();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_EQ(json.find("\"faults\": {\n"), std::string::npos)
      << "chaos off: the faults section must be empty";
}

}  // namespace
}  // namespace ivr
