#include "ivr/index/searcher.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

class SearcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(index_.IndexText(0, "football goal goal striker").ok());
    ASSERT_TRUE(index_.IndexText(1, "football stadium").ok());
    ASSERT_TRUE(index_.IndexText(2, "weather rain forecast").ok());
    ASSERT_TRUE(index_.IndexText(3, "goal weather").ok());
  }

  InvertedIndex index_;
  Bm25Scorer scorer_;
};

TEST_F(SearcherTest, ParseQueryCountsDuplicates) {
  const Searcher searcher(index_, scorer_);
  const TermQuery q = searcher.ParseQuery("goal goal football");
  EXPECT_EQ(q.weights.size(), 2u);
  // Repetition is tracked as an integer query-term frequency (fed to the
  // scorer's saturating qtf component), not folded into the linear weight.
  EXPECT_DOUBLE_EQ(q.weights.at("goal"), 1.0);
  EXPECT_DOUBLE_EQ(q.weights.at("footbal"), 1.0);  // stemmed
  EXPECT_EQ(q.QueryTf("goal"), 2u);
  EXPECT_EQ(q.QueryTf("footbal"), 1u);
  EXPECT_EQ(q.QueryTf("absent"), 1u);
}

TEST_F(SearcherTest, RepeatedQueryTermSaturatesNotDoubles) {
  // Regression: "goal goal" used to score exactly 2x "goal" because the
  // duplicate was folded into a linear weight. BM25's qtf component must
  // saturate instead.
  const Searcher searcher(index_, scorer_);
  const auto once = searcher.SearchText("goal", 10);
  const auto twice = searcher.SearchText("goal goal", 10);
  ASSERT_EQ(once.size(), twice.size());
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(twice[i].doc, once[i].doc);
    EXPECT_GT(twice[i].score, once[i].score);
    EXPECT_LT(twice[i].score, 2.0 * once[i].score);
  }
}

TEST_F(SearcherTest, TopDocMatchesMostTerms) {
  const Searcher searcher(index_, scorer_);
  const auto hits = searcher.SearchText("football goal", 10);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc, 0u);  // matches both terms, goal twice
}

TEST_F(SearcherTest, ScoresDescendingAndDeterministic) {
  const Searcher searcher(index_, scorer_);
  const auto hits = searcher.SearchText("goal weather", 10);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
  const auto again = searcher.SearchText("goal weather", 10);
  EXPECT_EQ(hits, again);
}

TEST_F(SearcherTest, KLimitsResults) {
  const Searcher searcher(index_, scorer_);
  EXPECT_EQ(searcher.SearchText("goal", 1).size(), 1u);
  EXPECT_EQ(searcher.SearchText("goal", 0).size(), 0u);
}

TEST_F(SearcherTest, EmptyAndUnknownQueries) {
  const Searcher searcher(index_, scorer_);
  EXPECT_TRUE(searcher.SearchText("", 10).empty());
  EXPECT_TRUE(searcher.SearchText("zzzunknownzzz", 10).empty());
  EXPECT_TRUE(searcher.SearchText("the of and", 10).empty());
}

TEST_F(SearcherTest, WeightedTermQueryShiftsRanking) {
  const Searcher searcher(index_, scorer_);
  TermQuery q;
  q.weights["goal"] = 0.1;
  q.weights["weather"] = 5.0;
  const auto hits = searcher.Search(q, 10);
  ASSERT_FALSE(hits.empty());
  // Weather-dominated query should put a weather doc first.
  EXPECT_TRUE(hits[0].doc == 2u || hits[0].doc == 3u);
}

TEST_F(SearcherTest, ZeroWeightTermIgnored) {
  const Searcher searcher(index_, scorer_);
  TermQuery q;
  q.weights["goal"] = 0.0;
  EXPECT_TRUE(searcher.Search(q, 10).empty());
}

TEST_F(SearcherTest, ScoreDocumentMatchesSearchScores) {
  const Searcher searcher(index_, scorer_);
  const TermQuery q = searcher.ParseQuery("football goal");
  const auto hits = searcher.Search(q, 10);
  for (const SearchHit& hit : hits) {
    EXPECT_NEAR(searcher.ScoreDocument(q, hit.doc), hit.score, 1e-9);
  }
  // Non-matching document scores zero.
  EXPECT_DOUBLE_EQ(searcher.ScoreDocument(q, 2), 0.0);
}

TEST_F(SearcherTest, TieBreaksByDocId) {
  // Two identical documents must rank by ascending id.
  InvertedIndex index;
  ASSERT_TRUE(index.IndexText(0, "identical text").ok());
  ASSERT_TRUE(index.IndexText(1, "identical text").ok());
  const Searcher searcher(index, scorer_);
  const auto hits = searcher.SearchText("identical", 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc, 0u);
  EXPECT_EQ(hits[1].doc, 1u);
  EXPECT_DOUBLE_EQ(hits[0].score, hits[1].score);
}

}  // namespace
}  // namespace ivr
