#include "ivr/retrieval/result_list.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(ResultListTest, EmptyList) {
  ResultList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_FALSE(list.Contains(1));
  EXPECT_EQ(list.RankOf(1), std::nullopt);
  EXPECT_DOUBLE_EQ(list.ScoreOf(1), 0.0);
  EXPECT_TRUE(list.ShotIds().empty());
}

TEST(ResultListTest, SortsByScoreDescending) {
  ResultList list;
  list.Add(1, 0.5);
  list.Add(2, 0.9);
  list.Add(3, 0.7);
  EXPECT_EQ(list.ShotIds(), (std::vector<ShotId>{2, 3, 1}));
  EXPECT_EQ(list.at(0).shot, 2u);
  EXPECT_DOUBLE_EQ(list.at(0).score, 0.9);
}

TEST(ResultListTest, TiesBreakByShotId) {
  ResultList list;
  list.Add(9, 0.5);
  list.Add(3, 0.5);
  list.Add(6, 0.5);
  EXPECT_EQ(list.ShotIds(), (std::vector<ShotId>{3, 6, 9}));
}

TEST(ResultListTest, DuplicatesKeepMaxScore) {
  ResultList list;
  list.Add(5, 0.2);
  list.Add(5, 0.8);
  list.Add(5, 0.4);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_DOUBLE_EQ(list.ScoreOf(5), 0.8);
}

TEST(ResultListTest, ConstructorDeduplicates) {
  ResultList list({{1, 0.1}, {2, 0.5}, {1, 0.9}});
  EXPECT_EQ(list.size(), 2u);
  EXPECT_DOUBLE_EQ(list.ScoreOf(1), 0.9);
  EXPECT_EQ(list.at(0).shot, 1u);
}

TEST(ResultListTest, RankOfAndContains) {
  ResultList list({{10, 1.0}, {20, 2.0}, {30, 3.0}});
  EXPECT_EQ(list.RankOf(30), 0u);
  EXPECT_EQ(list.RankOf(20), 1u);
  EXPECT_EQ(list.RankOf(10), 2u);
  EXPECT_TRUE(list.Contains(20));
  EXPECT_FALSE(list.Contains(40));
}

TEST(ResultListTest, TruncateKeepsTop) {
  ResultList list({{1, 0.1}, {2, 0.2}, {3, 0.3}, {4, 0.4}});
  list.Truncate(2);
  EXPECT_EQ(list.ShotIds(), (std::vector<ShotId>{4, 3}));
  list.Truncate(10);  // no-op when k >= size
  EXPECT_EQ(list.size(), 2u);
  list.Truncate(0);
  EXPECT_TRUE(list.empty());
}

TEST(ResultListTest, AddAfterReadResorts) {
  ResultList list({{1, 0.5}});
  EXPECT_EQ(list.at(0).shot, 1u);
  list.Add(2, 0.9);
  EXPECT_EQ(list.at(0).shot, 2u);
  EXPECT_EQ(list.size(), 2u);
}

TEST(ResultListTest, NegativeScoresSupported) {
  ResultList list({{1, -0.5}, {2, 0.1}, {3, -0.1}});
  EXPECT_EQ(list.ShotIds(), (std::vector<ShotId>{2, 3, 1}));
}

}  // namespace
}  // namespace ivr
