#include "ivr/index/document_store.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

Document MakeDoc(const std::string& ext, const std::string& text) {
  Document doc;
  doc.external_id = ext;
  doc.text = text;
  return doc;
}

TEST(DocumentStoreTest, AddAssignsDenseIds) {
  DocumentStore store;
  EXPECT_EQ(store.Add(MakeDoc("a", "x")).value(), 0u);
  EXPECT_EQ(store.Add(MakeDoc("b", "y")).value(), 1u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(DocumentStoreTest, GetReturnsStoredDocument) {
  DocumentStore store;
  Document doc = MakeDoc("shot1", "hello world");
  doc.fields["headline"] = "breaking";
  const DocId id = store.Add(doc).value();
  const Document* got = store.Get(id).value();
  EXPECT_EQ(got->id, id);
  EXPECT_EQ(got->external_id, "shot1");
  EXPECT_EQ(got->text, "hello world");
  EXPECT_EQ(got->fields.at("headline"), "breaking");
}

TEST(DocumentStoreTest, GetOutOfRange) {
  DocumentStore store;
  EXPECT_TRUE(store.Get(0).status().IsOutOfRange());
  store.Add(MakeDoc("a", "x")).value();
  EXPECT_TRUE(store.Get(1).status().IsOutOfRange());
  EXPECT_TRUE(store.Get(kInvalidDocId).status().IsOutOfRange());
}

TEST(DocumentStoreTest, DuplicateExternalIdRejected) {
  DocumentStore store;
  ASSERT_TRUE(store.Add(MakeDoc("dup", "1")).ok());
  EXPECT_TRUE(store.Add(MakeDoc("dup", "2")).status().IsAlreadyExists());
  EXPECT_EQ(store.size(), 1u);
}

TEST(DocumentStoreTest, EmptyExternalIdRejected) {
  DocumentStore store;
  EXPECT_TRUE(store.Add(MakeDoc("", "x")).status().IsInvalidArgument());
}

TEST(DocumentStoreTest, LookupExternal) {
  DocumentStore store;
  store.Add(MakeDoc("v1/s1", "a")).value();
  const DocId id = store.Add(MakeDoc("v1/s2", "b")).value();
  EXPECT_EQ(store.LookupExternal("v1/s2").value(), id);
  EXPECT_TRUE(store.LookupExternal("v9/s9").status().IsNotFound());
}

TEST(DocumentStoreTest, DocumentsVectorAlignedWithIds) {
  DocumentStore store;
  store.Add(MakeDoc("a", "1")).value();
  store.Add(MakeDoc("b", "2")).value();
  const auto& docs = store.documents();
  ASSERT_EQ(docs.size(), 2u);
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(docs[i].id, static_cast<DocId>(i));
  }
}

}  // namespace
}  // namespace ivr
