// The incremental-publish invariant, attacked with randomized histories:
// for ANY interleaving of appends, publishes, merges and reopens, the
// segmented serving snapshot (base sub-index + one sub-index per
// published segment, merged at query time) ranks every topic
// bit-identically to a monolithic engine rebuilt from scratch over the
// same materialized collection — across text, visual and concept
// modalities. This is the property that lets Publish() index only the
// delta: if it ever drifts from the full rebuild, serving silently
// forks from what a restart would compute.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ivr/core/file_util.h"
#include "ivr/core/rng.h"
#include "ivr/core/string_util.h"
#include "ivr/ingest/live_engine.h"
#include "ivr/retrieval/engine.h"
#include "ivr/video/generator.h"

namespace ivr {
namespace {

GeneratedCollection MakeBase() {
  GeneratorOptions options;
  options.seed = 2008;
  options.num_videos = 6;
  options.num_topics = 5;
  return GenerateCollection(options).value();
}

GeneratedCollection MakeStream(uint64_t seed) {
  GeneratorOptions options;
  options.seed = seed;
  options.num_videos = 8;
  options.num_topics = 5;
  return GenerateCollection(options).value();
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  if (FileExists(dir)) {
    const auto entries = ListDirectory(dir);
    if (entries.ok()) {
      for (const std::string& entry : *entries) {
        (void)RemoveFile(dir + "/" + entry);
      }
    }
  }
  return dir;
}

std::string Render(const ResultList& list) {
  std::string out;
  for (size_t i = 0; i < list.size(); ++i) {
    out += StrFormat("%u:%.17g ", list.at(i).shot, list.at(i).score);
  }
  return out;
}

/// Every topic through every modality on both engines; returns the first
/// divergence as a printable label ("" = bit-identical everywhere).
std::string CompareEngines(const RetrievalEngine& segmented,
                           const RetrievalEngine& monolithic,
                           const TopicSet& topics) {
  for (const SearchTopic& topic : topics.topics) {
    // Fused text+visual, the full serving path.
    Query query;
    query.text = topic.title;
    query.examples = topic.examples;
    if (Render(segmented.Search(query, 10)) !=
        Render(monolithic.Search(query, 10))) {
      return StrFormat("topic %u fused", topic.id);
    }
    // Text alone (different fusion input set).
    Query text_only;
    text_only.text = topic.title;
    if (Render(segmented.Search(text_only, 10)) !=
        Render(monolithic.Search(text_only, 10))) {
      return StrFormat("topic %u text", topic.id);
    }
    // Concept postings (per-segment ConceptIndex under global ids).
    const auto seg_concepts =
        segmented.SearchConcepts({topic.target_topic}, 10);
    const auto mono_concepts =
        monolithic.SearchConcepts({topic.target_topic}, 10);
    if (seg_concepts.ok() != mono_concepts.ok() ||
        (seg_concepts.ok() &&
         Render(*seg_concepts) != Render(*mono_concepts))) {
      return StrFormat("topic %u concepts", topic.id);
    }
  }
  return "";
}

TEST(IngestSegmentPropertyTest,
     RandomizedHistoriesStayBitIdenticalToFullRebuild) {
  size_t multi_segment_checks = 0;
  for (const uint64_t seed : {11ull, 23ull, 47ull}) {
    const std::string dir =
        FreshDir(StrFormat("segment_prop_%llu",
                           static_cast<unsigned long long>(seed)));
    const GeneratedCollection stream = MakeStream(seed * 7 + 1);
    IngestOptions options;
    options.dir = dir;
    auto live = LiveEngine::Open(MakeBase(), options).value();
    Rng rng(seed);

    size_t appended = 0;
    bool dirty = false;  // appends since the last publish
    for (size_t step = 0; step < 18; ++step) {
      const double roll = rng.UniformDouble();
      if (roll < 0.45) {
        const VideoId id = static_cast<VideoId>(
            appended % stream.collection.num_videos());
        ASSERT_TRUE(live->AppendVideoFrom(stream.collection, id).ok());
        ++appended;
        dirty = true;
        continue;
      }
      if (roll < 0.75) {
        ASSERT_TRUE(live->Publish().ok());
        dirty = false;
      } else if (roll < 0.90) {
        ASSERT_TRUE(live->Merge().ok());
      } else {
        // Reopen: replay the manifest from disk. Unpublished appends die
        // with the process, so the materialized state is unchanged.
        live.reset();
        live = LiveEngine::Open(MakeBase(), options).value();
        dirty = false;
      }

      // After every state change the segmented snapshot must match a
      // from-scratch monolithic build of the exported collection.
      const auto snapshot = live->Acquire();
      const GeneratedCollection exported = live->ExportCollection();
      auto monolithic = RetrievalEngine::Build(exported.collection,
                                               live->options().engine);
      ASSERT_TRUE(monolithic.ok()) << monolithic.status().ToString();
      const std::string diverged = CompareEngines(
          *snapshot->engine, **monolithic, exported.topics);
      EXPECT_EQ(diverged, "")
          << "seed " << seed << " step " << step << ": " << diverged;
      EXPECT_EQ(snapshot->num_shots(), exported.collection.num_shots());
      if (snapshot->engine->num_shards() > 2) ++multi_segment_checks;
      (void)dirty;
    }
  }
  // The sweep genuinely exercised the query-time merge across 2+
  // published segments (3+ shards counting the base), not just the
  // single-segment fast path.
  EXPECT_GT(multi_segment_checks, 0u);
}

}  // namespace
}  // namespace ivr
