#include "ivr/core/checksum.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(Crc32cTest, StandardTestVector) {
  // The canonical CRC32C check value (RFC 3720 appendix / every
  // implementation's sanity vector).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, EmptyAndSensitivity) {
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_NE(Crc32c("a"), Crc32c("b"));
  EXPECT_NE(Crc32c("ab"), Crc32c("ba"));
  // Embedded NUL bytes are part of the digest.
  EXPECT_NE(Crc32c(std::string_view("a\0b", 3)),
            Crc32c(std::string_view("a\0c", 3)));
}

TEST(EnvelopeTest, RoundTrip) {
  const std::string payload = "line one\nline two\ttabbed\n";
  const std::string wrapped = WrapEnvelope("collection", payload);
  EXPECT_TRUE(LooksEnveloped(wrapped));
  EXPECT_EQ(UnwrapEnvelope("collection", wrapped).value(), payload);
}

TEST(EnvelopeTest, RoundTripEmptyAndBinaryPayload) {
  EXPECT_EQ(UnwrapEnvelope("x", WrapEnvelope("x", "")).value(), "");
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  EXPECT_EQ(UnwrapEnvelope("x", WrapEnvelope("x", binary)).value(), binary);
}

TEST(EnvelopeTest, FormatMismatchIsCorruption) {
  const std::string wrapped = WrapEnvelope("profiles", "payload");
  EXPECT_TRUE(
      UnwrapEnvelope("sessionlog", wrapped).status().IsCorruption());
}

TEST(EnvelopeTest, BitFlipIsCorruption) {
  const std::string payload(500, 'x');
  std::string wrapped = WrapEnvelope("collection", payload);
  wrapped[wrapped.size() / 2] ^= 0x01;
  EXPECT_TRUE(
      UnwrapEnvelope("collection", wrapped).status().IsCorruption());
}

TEST(EnvelopeTest, TruncationIsCorruption) {
  const std::string wrapped = WrapEnvelope("collection", "some payload");
  for (size_t len = 0; len < wrapped.size(); ++len) {
    EXPECT_TRUE(UnwrapEnvelope("collection", wrapped.substr(0, len))
                    .status()
                    .IsCorruption())
        << "prefix of " << len << " bytes accepted";
  }
}

TEST(EnvelopeTest, TrailingGarbageIsCorruption) {
  const std::string wrapped = WrapEnvelope("collection", "payload");
  EXPECT_TRUE(UnwrapEnvelope("collection", wrapped + "extra")
                  .status()
                  .IsCorruption());
}

TEST(EnvelopeTest, NonEnvelopedInputs) {
  EXPECT_FALSE(LooksEnveloped(""));
  EXPECT_FALSE(LooksEnveloped("ivr-collection v1\n"));
  EXPECT_FALSE(LooksEnveloped("random text"));
  EXPECT_TRUE(UnwrapEnvelope("collection", "random text")
                  .status()
                  .IsCorruption());
}

}  // namespace
}  // namespace ivr
