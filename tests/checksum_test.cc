#include "ivr/core/checksum.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

TEST(Crc32cTest, StandardTestVector) {
  // The canonical CRC32C check value (RFC 3720 appendix / every
  // implementation's sanity vector).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, EmptyAndSensitivity) {
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_NE(Crc32c("a"), Crc32c("b"));
  EXPECT_NE(Crc32c("ab"), Crc32c("ba"));
  // Embedded NUL bytes are part of the digest.
  EXPECT_NE(Crc32c(std::string_view("a\0b", 3)),
            Crc32c(std::string_view("a\0c", 3)));
}

TEST(EnvelopeTest, RoundTrip) {
  const std::string payload = "line one\nline two\ttabbed\n";
  const std::string wrapped = WrapEnvelope("collection", payload);
  EXPECT_TRUE(LooksEnveloped(wrapped));
  EXPECT_EQ(UnwrapEnvelope("collection", wrapped).value(), payload);
}

TEST(EnvelopeTest, RoundTripEmptyAndBinaryPayload) {
  EXPECT_EQ(UnwrapEnvelope("x", WrapEnvelope("x", "")).value(), "");
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  EXPECT_EQ(UnwrapEnvelope("x", WrapEnvelope("x", binary)).value(), binary);
}

TEST(EnvelopeTest, FormatMismatchIsCorruption) {
  const std::string wrapped = WrapEnvelope("profiles", "payload");
  EXPECT_TRUE(
      UnwrapEnvelope("sessionlog", wrapped).status().IsCorruption());
}

TEST(EnvelopeTest, BitFlipIsCorruption) {
  const std::string payload(500, 'x');
  std::string wrapped = WrapEnvelope("collection", payload);
  wrapped[wrapped.size() / 2] ^= 0x01;
  EXPECT_TRUE(
      UnwrapEnvelope("collection", wrapped).status().IsCorruption());
}

TEST(EnvelopeTest, TruncationIsCorruption) {
  const std::string wrapped = WrapEnvelope("collection", "some payload");
  for (size_t len = 0; len < wrapped.size(); ++len) {
    EXPECT_TRUE(UnwrapEnvelope("collection", wrapped.substr(0, len))
                    .status()
                    .IsCorruption())
        << "prefix of " << len << " bytes accepted";
  }
}

TEST(EnvelopeTest, TrailingGarbageIsCorruption) {
  const std::string wrapped = WrapEnvelope("collection", "payload");
  EXPECT_TRUE(UnwrapEnvelope("collection", wrapped + "extra")
                  .status()
                  .IsCorruption());
}

TEST(EnvelopeTest, NonEnvelopedInputs) {
  EXPECT_FALSE(LooksEnveloped(""));
  EXPECT_FALSE(LooksEnveloped("ivr-collection v1\n"));
  EXPECT_FALSE(LooksEnveloped("random text"));
  EXPECT_TRUE(UnwrapEnvelope("collection", "random text")
                  .status()
                  .IsCorruption());
}

TEST(EnvelopePrefixTest, WalksConcatenatedEnvelopes) {
  const std::string journal = WrapEnvelope("sessionlog", "first\n") +
                              WrapEnvelope("sessionlog", "second\n") +
                              WrapEnvelope("sessionlog", "");
  size_t offset = 0;
  std::vector<std::string> payloads;
  while (offset < journal.size()) {
    size_t consumed = 0;
    Result<std::string> payload = UnwrapEnvelopePrefix(
        "sessionlog", journal.substr(offset), &consumed);
    ASSERT_TRUE(payload.ok());
    payloads.push_back(*payload);
    offset += consumed;
  }
  EXPECT_EQ(payloads,
            (std::vector<std::string>{"first\n", "second\n", ""}));
  EXPECT_EQ(offset, journal.size());
}

TEST(EnvelopePrefixTest, TornLastChunkIsCorruption) {
  const std::string journal = WrapEnvelope("sessionlog", "complete\n") +
                              WrapEnvelope("sessionlog", "torn chunk\n");
  // Cut inside the second envelope: first chunk still unwraps, the tail
  // surfaces as corruption instead of a silent partial read.
  const std::string cut = journal.substr(0, journal.size() - 4);
  size_t consumed = 0;
  const Result<std::string> first =
      UnwrapEnvelopePrefix("sessionlog", cut, &consumed);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, "complete\n");
  EXPECT_TRUE(UnwrapEnvelopePrefix("sessionlog", cut.substr(consumed),
                                   &consumed)
                  .status()
                  .IsCorruption());
}

TEST(EnvelopePrefixTest, ChecksumStillVerifiedPerChunk) {
  std::string journal = WrapEnvelope("sessionlog", "payload one\n");
  const size_t first_size = journal.size();
  journal += WrapEnvelope("sessionlog", "payload two\n");
  journal[first_size / 2] ^= 0x04;  // corrupt inside the first payload
  size_t consumed = 0;
  EXPECT_TRUE(UnwrapEnvelopePrefix("sessionlog", journal, &consumed)
                  .status()
                  .IsCorruption());
}

}  // namespace
}  // namespace ivr
