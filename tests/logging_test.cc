#include "ivr/core/logging.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ivr {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, MessagesAtOrAboveLevelAreEmitted) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  IVR_LOG(Info) << "hello " << 42;
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("hello 42"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, MessagesBelowLevelAreSuppressed) {
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  IVR_LOG(Info) << "should not appear";
  IVR_LOG(Debug) << "nor this";
  IVR_LOG(Warning) << "but this does";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("should not appear"), std::string::npos);
  EXPECT_EQ(out.find("nor this"), std::string::npos);
  EXPECT_NE(out.find("but this does"), std::string::npos);
  EXPECT_NE(out.find("WARN"), std::string::npos);
}

TEST_F(LoggingTest, ConcurrentLevelChangesAndLoggingAreRaceFree) {
  // The level gate is a single atomic: concurrent SetLogLevel and
  // filtered logging must be clean under TSan (IVR_SANITIZE=thread).
  ::testing::internal::CaptureStderr();
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([w] {
      for (int i = 0; i < 200; ++i) {
        if (w % 2 == 0) {
          SetLogLevel(i % 2 == 0 ? LogLevel::kWarning : LogLevel::kError);
        } else {
          IVR_LOG(Info) << "suppressed most of the time " << i;
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  ::testing::internal::GetCapturedStderr();
  const LogLevel final_level = GetLogLevel();
  EXPECT_TRUE(final_level == LogLevel::kWarning ||
              final_level == LogLevel::kError);
}

TEST_F(LoggingTest, ErrorAlwaysEmitted) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  IVR_LOG(Error) << "boom";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("ERROR"), std::string::npos);
  EXPECT_NE(out.find("boom"), std::string::npos);
}

}  // namespace
}  // namespace ivr
