#include "ivr/obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "ivr/core/file_util.h"

namespace ivr {
namespace obs {
namespace {

// A settable fake obs clock (ClockFn is a plain function pointer, so the
// knob lives in a file-level atomic).
std::atomic<int64_t> g_fake_now{0};
int64_t FakeNow() { return g_fake_now.load(std::memory_order_relaxed); }

class TraceSpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef IVR_OBS_OFF
    GTEST_SKIP() << "instrumentation compiled out (IVR_OBS_OFF)";
#endif
    g_fake_now = 1000;
    SetClockForTest(&FakeNow);
    TraceRecorder::Global().Enable();
  }

  void TearDown() override {
    TraceRecorder::Global().Disable();
    SetClockForTest(nullptr);
  }
};

TEST_F(TraceSpanTest, DisabledRecorderBuffersNothing) {
  TraceRecorder::Global().Disable();
  { ScopedSpan span("never.recorded"); }
  TraceRecorder::Global().Enable();
  EXPECT_TRUE(TraceRecorder::Global().Drain().empty());
}

TEST_F(TraceSpanTest, SpanRecordsNameTimesAndAnnotations) {
  {
    ScopedSpan span("unit.work");
    span.Annotate("items", "3");
    g_fake_now += 250;
  }
  const std::vector<TraceEvent> events = TraceRecorder::Global().Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.work");
  EXPECT_EQ(events[0].start_us, 1000);
  EXPECT_EQ(events[0].duration_us, 250);
  EXPECT_GT(events[0].id, 0u);
  EXPECT_EQ(events[0].parent, 0u);
  EXPECT_GT(events[0].tid, 0u);
  ASSERT_EQ(events[0].annotations.size(), 1u);
  EXPECT_EQ(events[0].annotations[0].first, "items");
  EXPECT_EQ(events[0].annotations[0].second, "3");
}

TEST_F(TraceSpanTest, NestedSpansCarryParentIds) {
  {
    ScopedSpan outer("outer");
    g_fake_now += 1;
    {
      ScopedSpan inner("inner");
      g_fake_now += 1;
    }
    {
      ScopedSpan sibling("sibling");
      g_fake_now += 1;
    }
  }
  {
    ScopedSpan root("root.after");
    g_fake_now += 1;
  }
  const std::vector<TraceEvent> events = TraceRecorder::Global().Drain();
  ASSERT_EQ(events.size(), 4u);
  uint64_t outer_id = 0;
  for (const TraceEvent& e : events) {
    if (e.name == "outer") outer_id = e.id;
  }
  ASSERT_GT(outer_id, 0u);
  for (const TraceEvent& e : events) {
    if (e.name == "inner" || e.name == "sibling") {
      EXPECT_EQ(e.parent, outer_id) << e.name;
    } else {
      EXPECT_EQ(e.parent, 0u) << e.name;
    }
  }
}

TEST_F(TraceSpanTest, DrainSortsByStartTimeThenId) {
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span("tick");
    g_fake_now += 10;
  }
  const std::vector<TraceEvent> events = TraceRecorder::Global().Drain();
  ASSERT_EQ(events.size(), 5u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_TRUE(events[i - 1].start_us < events[i].start_us ||
                (events[i - 1].start_us == events[i].start_us &&
                 events[i - 1].id < events[i].id));
  }
}

TEST_F(TraceSpanTest, RingOverflowDropsOldestAndCounts) {
  TraceRecorder::Global().Enable(/*ring_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("spin");
    g_fake_now += 1;  // distinct start times, in emission order
  }
  EXPECT_EQ(TraceRecorder::Global().dropped(), 6u);
  const std::vector<TraceEvent> events = TraceRecorder::Global().Drain();
  ASSERT_EQ(events.size(), 4u);
  // Drop-oldest: the survivors are the LAST four spans emitted.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].start_us, events[i - 1].start_us + 1);
  }
  EXPECT_EQ(events.back().start_us, 1009);
}

TEST_F(TraceSpanTest, EnableClearsPreviousBufferAndDrops) {
  TraceRecorder::Global().Enable(/*ring_capacity=*/1);
  for (int i = 0; i < 3; ++i) {
    ScopedSpan span("old");
  }
  EXPECT_GT(TraceRecorder::Global().dropped(), 0u);
  TraceRecorder::Global().Enable();
  EXPECT_EQ(TraceRecorder::Global().dropped(), 0u);
  EXPECT_TRUE(TraceRecorder::Global().Drain().empty());
}

TEST_F(TraceSpanTest, ThreadsGetStableOrdinalIdsAndOwnRings) {
  constexpr int kSpansPerThread = 8;
  std::thread worker([&] {
    for (int i = 0; i < kSpansPerThread; ++i) {
      ScopedSpan span("worker.span");
    }
  });
  for (int i = 0; i < kSpansPerThread; ++i) {
    ScopedSpan span("main.span");
  }
  worker.join();
  const std::vector<TraceEvent> events = TraceRecorder::Global().Drain();
  ASSERT_EQ(events.size(), 2u * kSpansPerThread);
  uint32_t main_tid = 0;
  uint32_t worker_tid = 0;
  for (const TraceEvent& e : events) {
    uint32_t& tid = e.name == "main.span" ? main_tid : worker_tid;
    if (tid == 0) {
      tid = e.tid;
    } else {
      EXPECT_EQ(tid, e.tid) << e.name;  // stable per thread
    }
  }
  EXPECT_NE(main_tid, worker_tid);
}

TEST_F(TraceSpanTest, FlushWritesJsonlHeaderAndEvents) {
  {
    ScopedSpan span("flush.me");
    span.Annotate("key", "value \"quoted\"");
    g_fake_now += 5;
  }
  const std::string path =
      ::testing::TempDir() + "/trace_span_test_flush.jsonl";
  ASSERT_TRUE(TraceRecorder::Global().FlushToFile(path).ok());
  const Result<std::string> text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());

  // One header line plus one line per event, each a JSON object.
  std::vector<std::string> lines;
  std::string current;
  for (char c : *text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"events\": 1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"dropped\": 0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\": \"flush.me\""), std::string::npos);
  EXPECT_NE(lines[1].find("\\\"quoted\\\""), std::string::npos);

  // Flushing drained the buffer: a second flush reports zero events.
  ASSERT_TRUE(TraceRecorder::Global().FlushToFile(path).ok());
  const Result<std::string> empty = ReadFileToString(path);
  ASSERT_TRUE(empty.ok());
  EXPECT_NE(empty->find("\"events\": 0"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace ivr
