#include "ivr/core/args.h"

#include <gtest/gtest.h>

namespace ivr {
namespace {

ArgParser Parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "tool");
  return ArgParser::Parse(static_cast<int>(argv.size()), argv.data())
      .value();
}

TEST(ArgParserTest, KeyEqualsValue) {
  const ArgParser args = Parse({"--seed=42", "--name=test"});
  EXPECT_TRUE(args.Has("seed"));
  EXPECT_EQ(args.GetString("seed"), "42");
  EXPECT_EQ(args.GetString("name"), "test");
}

TEST(ArgParserTest, KeySpaceValue) {
  const ArgParser args = Parse({"--seed", "42", "--out", "file.txt"});
  EXPECT_EQ(args.GetString("seed"), "42");
  EXPECT_EQ(args.GetString("out"), "file.txt");
}

TEST(ArgParserTest, BareFlagIsTrue) {
  const ArgParser args = Parse({"--visual", "--k", "5"});
  EXPECT_TRUE(args.GetBool("visual").value());
  EXPECT_EQ(args.GetString("visual"), "true");
  EXPECT_EQ(args.GetInt("k", 0).value(), 5);
}

TEST(ArgParserTest, FlagFollowedByFlagStaysBare) {
  const ArgParser args = Parse({"--a", "--b", "x"});
  EXPECT_EQ(args.GetString("a"), "true");
  EXPECT_EQ(args.GetString("b"), "x");
}

TEST(ArgParserTest, PositionalArguments) {
  const ArgParser args = Parse({"input.txt", "--k=3", "output.txt"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"input.txt", "output.txt"}));
}

TEST(ArgParserTest, TypedGetters) {
  const ArgParser args = Parse({"--n=7", "--rate=0.25", "--on=yes",
                                "--off=0"});
  EXPECT_EQ(args.GetInt("n", -1).value(), 7);
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0.0).value(), 0.25);
  EXPECT_TRUE(args.GetBool("on").value());
  EXPECT_FALSE(args.GetBool("off").value());
  // Fallbacks for absent keys.
  EXPECT_EQ(args.GetInt("missing", 9).value(), 9);
  EXPECT_DOUBLE_EQ(args.GetDouble("missing", 1.5).value(), 1.5);
  EXPECT_TRUE(args.GetBool("missing", true).value());
  EXPECT_EQ(args.GetString("missing", "dft"), "dft");
}

TEST(ArgParserTest, MalformedTypedValuesError) {
  const ArgParser args = Parse({"--n=notanumber"});
  EXPECT_FALSE(args.GetInt("n", 0).ok());
  EXPECT_FALSE(args.GetDouble("n", 0.0).ok());
}

TEST(ArgParserTest, BoolAcceptsTheWholeVocabulary) {
  const ArgParser args =
      Parse({"--a=TRUE", "--b=False", "--c=YES", "--d=no", "--e=On",
             "--f=OFF", "--g=1", "--h=0"});
  EXPECT_TRUE(args.GetBool("a").value());
  EXPECT_FALSE(args.GetBool("b").value());
  EXPECT_TRUE(args.GetBool("c").value());
  EXPECT_FALSE(args.GetBool("d").value());
  EXPECT_TRUE(args.GetBool("e").value());
  EXPECT_FALSE(args.GetBool("f").value());
  EXPECT_TRUE(args.GetBool("g").value());
  EXPECT_FALSE(args.GetBool("h").value());
}

TEST(ArgParserTest, BoolRejectsUnrecognisedValues) {
  // The historical bug: --check=ture silently parsed as false, making a
  // mistyped verification flag a no-op instead of an error.
  const ArgParser args = Parse({"--check=ture", "--flag=maybe", "--x=2"});
  EXPECT_TRUE(args.GetBool("check").status().IsInvalidArgument());
  EXPECT_TRUE(args.GetBool("flag").status().IsInvalidArgument());
  EXPECT_TRUE(args.GetBool("x").status().IsInvalidArgument());
}

TEST(ArgParserTest, RejectUnknownFlagsUnknownFails) {
  const ArgParser args = Parse({"--cache_mb=16", "--seed=1"});
  const Status status = args.RejectUnknown({"cache-mb", "seed"});
  ASSERT_TRUE(status.IsInvalidArgument());
  // The error names the offender and lists the vocabulary.
  EXPECT_NE(status.ToString().find("--cache_mb"), std::string::npos);
  EXPECT_NE(status.ToString().find("--cache-mb"), std::string::npos);
}

TEST(ArgParserTest, RejectUnknownAcceptsKnownAndPositionals) {
  const ArgParser args = Parse({"pos1", "--seed=1", "pos2"});
  EXPECT_TRUE(args.RejectUnknown({"seed"}).ok());
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(ArgParserTest, BareDoubleDashRejected) {
  const char* argv[] = {"tool", "--"};
  EXPECT_TRUE(ArgParser::Parse(2, argv).status().IsInvalidArgument());
}

TEST(ArgParserTest, LastOccurrenceWins) {
  const ArgParser args = Parse({"--k=1", "--k=2"});
  EXPECT_EQ(args.GetInt("k", 0).value(), 2);
}

}  // namespace
}  // namespace ivr
